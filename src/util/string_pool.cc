// StringPool is header-only; this translation unit exists so the library has
// a home for future out-of-line definitions and to verify the header is
// self-contained.
#include "util/string_pool.h"
