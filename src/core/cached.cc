#include "core/cached.h"

#include <algorithm>

#include "util/macros.h"
#include "util/search_stats.h"

namespace sss {

CachedSearcher::CachedSearcher(const Searcher* inner, size_t capacity)
    : inner_(inner), capacity_(std::max<size_t>(1, capacity)) {
  SSS_CHECK(inner != nullptr);
}

Status CachedSearcher::Search(const Query& query, const SearchContext& ctx,
                              MatchList* out) const {
  Key key{query.text, query.max_distance};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      // Refresh recency.
      lru_.splice(lru_.begin(), lru_, it->second.lru_slot);
      *out = it->second.results;
      if (ctx.stats != nullptr) {
        SearchStats hit;
        hit.cache_hits = 1;
        hit.matches_found = out->size();
        ctx.stats->Record(hit);
      }
      return Status::OK();
    }
    ++misses_;
  }
  if (ctx.stats != nullptr) {
    SearchStats miss;
    miss.cache_misses = 1;
    ctx.stats->Record(miss);
  }

  // Miss: compute outside the lock so concurrent distinct queries overlap.
  out->clear();
  const Status st = inner_->Search(query, ctx, out);
  if (!st.ok()) {
    // Incomplete answers must not poison the cache.
    out->clear();
    return st;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Insert into the map first: std::map keys have stable addresses, so the
    // LRU list can reference the map's own Key instead of a second copy.
    const auto [it, inserted] = cache_.try_emplace(std::move(key));
    if (inserted) {
      it->second.results = *out;
      lru_.push_front(&it->first);
      it->second.lru_slot = lru_.begin();
      if (cache_.size() > capacity_) {
        const Key* victim = lru_.back();
        lru_.pop_back();
        cache_.erase(*victim);
      }
    }
  }
  return Status::OK();
}

size_t CachedSearcher::entries() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

size_t CachedSearcher::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = inner_->memory_bytes();
  for (const auto& [key, entry] : cache_) {
    bytes += key.text.size() + entry.results.size() * sizeof(uint32_t) +
             sizeof(Entry) + sizeof(Key);
  }
  // The recency list stores one pointer per entry (plus its two link
  // pointers); the query text itself lives only in the map above.
  bytes += lru_.size() * (sizeof(const Key*) + 2 * sizeof(void*));
  return bytes;
}

void CachedSearcher::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
}

}  // namespace sss
