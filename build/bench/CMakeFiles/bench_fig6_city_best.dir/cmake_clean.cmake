file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_city_best.dir/bench_fig6_city_best.cc.o"
  "CMakeFiles/bench_fig6_city_best.dir/bench_fig6_city_best.cc.o.d"
  "bench_fig6_city_best"
  "bench_fig6_city_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_city_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
