// Table VII: "Evaluation of the sequential solution on the DNA data set" —
// the six-step ladder on long strings.
//
//   paper (sec):                         100q      500q      1000q
//     1) base implementation          ≈ half day  ≈ 1 day   ≈ 2 days (!)
//     2) edit-distance calculation      278.45   1767.40    3191.10
//     3) value or reference             269.45   1746.70    3110.12
//     4) simple data types              267.42   1512.36    2833.03
//     5) parallelism (thread/query)      88.18    434.66     905.89
//     6) management of parallelism       89.53    413.98     827.32
//
// Note the differences from the city table: step 1 is so slow the paper
// only *estimated* it (we do the same: measure a small sample and
// extrapolate), and step 5 does NOT regress here because each DNA query is
// expensive enough to amortize a thread spawn.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/kernels.h"
#include "core/scan.h"
#include "util/stopwatch.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kDnaReads;

const SequentialScanSearcher& EngineForStep(int step) {
  static const SequentialScanSearcher* engines[5] = {};
  if (engines[step - 1] == nullptr) {
    ScanOptions options;
    options.step = static_cast<LadderStep>(step);
    options.verify_kernel = VerifyKernel::kPaperStep4;
    engines[step - 1] =
        new SequentialScanSearcher(SharedWorkload(kKind).dataset, options);
  }
  return *engines[step - 1];
}

// Row 1 is extrapolated, as in the paper: run the base kernel over a small
// sample of (query, string) pairs and scale linearly.
void PrintExtrapolatedBaseRow() {
  const BenchWorkload& w = SharedWorkload(kKind);
  const size_t sample_strings = std::min<size_t>(w.dataset.size(), 300);
  const size_t sample_queries = std::min<size_t>(w.batch_100.size(), 3);
  Dataset sample("sample", AlphabetKind::kDna);
  for (size_t i = 0; i < sample_strings; ++i) sample.Add(w.dataset.View(i));

  EditDistanceWorkspace ws;
  Stopwatch timer;
  for (size_t qi = 0; qi < sample_queries; ++qi) {
    benchmark::DoNotOptimize(
        RunLadderKernel(sample, w.batch_100[qi], LadderStep::kBase, &ws));
  }
  const double sample_seconds = timer.ElapsedSeconds();
  const double per_pair =
      sample_seconds /
      static_cast<double>(sample_strings * sample_queries);
  std::printf(
      "# Row 1 (base implementation), extrapolated as in the paper:\n");
  for (int count : {100, 500, 1000}) {
    const double est = per_pair * static_cast<double>(w.dataset.size()) *
                       static_cast<double>(w.Batch(count).size());
    std::printf("#   %4d queries: ~%.1f s (estimated from %zux%zu sample)\n",
                count, est, sample_strings, sample_queries);
  }
}

void BM_DnaLadder(benchmark::State& state) {
  const int step = static_cast<int>(state.range(0));
  const int paper_queries = static_cast<int>(state.range(1));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, EngineForStep(step), w.Batch(paper_queries),
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_DnaLadder)
    ->ArgNames({"step", "queries"})
    ->ArgsProduct({{2, 3, 4}, {100, 500, 1000}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_DnaLadder_Step5_ThreadPerQuery(benchmark::State& state) {
  const int paper_queries = static_cast<int>(state.range(0));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, EngineForStep(4), w.Batch(paper_queries),
                    {ExecutionStrategy::kThreadPerQuery, 0});
}
BENCHMARK(BM_DnaLadder_Step5_ThreadPerQuery)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

// Row 6: fixed pool at the paper's DNA optimum (16).
void BM_DnaLadder_Step6_ManagedPool(benchmark::State& state) {
  const int paper_queries = static_cast<int>(state.range(0));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, EngineForStep(4), w.Batch(paper_queries),
                    {ExecutionStrategy::kFixedPool, 16});
}
BENCHMARK(BM_DnaLadder_Step6_ManagedPool)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace sss::bench

int main(int argc, char** argv) {
  sss::bench::BenchJson::Instance().StripFlag(&argc, argv);
  const auto& w = sss::bench::SharedWorkload(sss::gen::WorkloadKind::kDnaReads);
  sss::bench::PrintBanner("Table VII: sequential-solution ladder, DNA reads",
                          w);
  sss::bench::SetBenchJsonContext(
      "Table VII: sequential-solution ladder, DNA reads", w);
  sss::bench::PrintExtrapolatedBaseRow();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!sss::bench::BenchJson::Instance().Write()) return 1;
  return 0;
}
