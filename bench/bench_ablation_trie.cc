// Ablation: trie compression (paper §4.2, Fig. 4 — "after the compression
// the sample prefix tree only includes half of the nodes").
//
// Reports, for both workloads: node counts, index memory, build time, and
// serial query time of the basic vs. the path-compressed trie.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/compressed_trie.h"
#include "core/trie.h"

namespace sss::bench {
namespace {

gen::WorkloadKind KindOf(int64_t arg) {
  return arg == 0 ? gen::WorkloadKind::kCityNames
                  : gen::WorkloadKind::kDnaReads;
}

const TrieSearcher& Basic(gen::WorkloadKind kind) {
  static const TrieSearcher* engines[2] = {};
  const int ki = kind == gen::WorkloadKind::kCityNames ? 0 : 1;
  if (engines[ki] == nullptr) {
    engines[ki] = new TrieSearcher(SharedWorkload(kind).dataset);
  }
  return *engines[ki];
}

const CompressedTrieSearcher& Radix(gen::WorkloadKind kind) {
  static const CompressedTrieSearcher* engines[2] = {};
  const int ki = kind == gen::WorkloadKind::kCityNames ? 0 : 1;
  if (engines[ki] == nullptr) {
    engines[ki] = new CompressedTrieSearcher(SharedWorkload(kind).dataset);
  }
  return *engines[ki];
}

void BM_TrieBuild(benchmark::State& state) {
  const gen::WorkloadKind kind = KindOf(state.range(0));
  const bool compressed = state.range(1) != 0;
  const BenchWorkload& w = SharedWorkload(kind);
  TrieStats stats;
  for (auto _ : state) {
    if (compressed) {
      CompressedTrieSearcher trie(w.dataset);
      stats = trie.Stats();
    } else {
      TrieSearcher trie(w.dataset);
      stats = trie.Stats();
    }
    benchmark::DoNotOptimize(stats.num_nodes);
  }
  state.counters["nodes"] = static_cast<double>(stats.num_nodes);
  state.counters["mem_mb"] = static_cast<double>(stats.memory_bytes) / 1e6;
  state.counters["nodes_per_string"] =
      static_cast<double>(stats.num_nodes) /
      static_cast<double>(w.dataset.size());
}
BENCHMARK(BM_TrieBuild)
    ->ArgNames({"workload", "compressed"})
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

// The pruning-rule ablation: the paper's weak k + d_m test vs this
// library's banded rows, on the compressed trie. Expected shape: dramatic
// on city names (wide length spread makes d_m huge near the root, so the
// paper rule barely prunes — the root cause of the paper's "scan beats
// index" result there), mild on DNA (tight lengths keep d_m small).
void BM_TriePruningRule(benchmark::State& state) {
  const gen::WorkloadKind kind = KindOf(state.range(0));
  const bool paper_rule = state.range(1) != 0;
  static const CompressedTrieSearcher* engines[2][2] = {};
  const int ki = kind == gen::WorkloadKind::kCityNames ? 0 : 1;
  if (engines[ki][paper_rule] == nullptr) {
    engines[ki][paper_rule] = new CompressedTrieSearcher(
        SharedWorkload(kind).dataset,
        paper_rule ? TriePruning::kPaperRule : TriePruning::kBandedRows);
  }
  const BenchWorkload& w = SharedWorkload(kind);
  RunBatchBenchmark(state, *engines[ki][paper_rule], w.Batch(100),
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_TriePruningRule)
    ->ArgNames({"workload", "paper_rule"})
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

// PETER-style frequency bounds (paper §2.3 / §6 "Frequency vectors"): the
// per-subtree count ranges prune branches the length range alone cannot.
// Expected shape: helps most on DNA at moderate k (all reads the same
// length, so d_m/length pruning is blind there).
void BM_TrieFrequencyBounds(benchmark::State& state) {
  const gen::WorkloadKind kind = KindOf(state.range(0));
  const bool bounds = state.range(1) != 0;
  static const CompressedTrieSearcher* engines[2][2] = {};
  const int ki = kind == gen::WorkloadKind::kCityNames ? 0 : 1;
  if (engines[ki][bounds] == nullptr) {
    engines[ki][bounds] = new CompressedTrieSearcher(
        SharedWorkload(kind).dataset, TriePruning::kBandedRows, bounds);
  }
  const BenchWorkload& w = SharedWorkload(kind);
  RunBatchBenchmark(state, *engines[ki][bounds], w.Batch(100),
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_TrieFrequencyBounds)
    ->ArgNames({"workload", "freq_bounds"})
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_TrieQuery(benchmark::State& state) {
  const gen::WorkloadKind kind = KindOf(state.range(0));
  const bool compressed = state.range(1) != 0;
  const BenchWorkload& w = SharedWorkload(kind);
  const Searcher& engine =
      compressed ? static_cast<const Searcher&>(Radix(kind))
                 : static_cast<const Searcher&>(Basic(kind));
  RunBatchBenchmark(state, engine, w.Batch(100),
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_TrieQuery)
    ->ArgNames({"workload", "compressed"})
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

void PrintCompressionSummary() {
  for (auto kind :
       {gen::WorkloadKind::kCityNames, gen::WorkloadKind::kDnaReads}) {
    const TrieStats basic = Basic(kind).Stats();
    const TrieStats radix = Radix(kind).Stats();
    std::printf(
        "# %s: %zu -> %zu nodes (%.2fx fewer; paper Fig. 4 predicts ~2x), "
        "%.1f -> %.1f MB\n",
        gen::ToString(kind).c_str(), basic.num_nodes, radix.num_nodes,
        static_cast<double>(basic.num_nodes) /
            static_cast<double>(radix.num_nodes),
        static_cast<double>(basic.memory_bytes) / 1e6,
        static_cast<double>(radix.memory_bytes) / 1e6);
  }
}

}  // namespace
}  // namespace sss::bench

int main(int argc, char** argv) {
  sss::bench::BenchJson::Instance().StripFlag(&argc, argv);
  const auto& w =
      sss::bench::SharedWorkload(sss::gen::WorkloadKind::kCityNames);
  sss::bench::PrintBanner(
      "Ablation: trie compression (workload 0=city, 1=dna)", w);
  sss::bench::SetBenchJsonContext(
      "Ablation: trie compression (workload 0=city, 1=dna)", w);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  sss::bench::PrintCompressionSummary();
  ::benchmark::Shutdown();
  if (!sss::bench::BenchJson::Instance().Write()) return 1;
  return 0;
}
