#include "core/scan.h"

#include <algorithm>

#include "core/simd_verify.h"
#include "util/kernel_dispatch.h"
#include "util/macros.h"
#include "util/search_stats.h"

namespace sss {

SequentialScanSearcher::SequentialScanSearcher(SnapshotHandle snapshot,
                                               ScanOptions options)
    : snapshot_(std::move(snapshot)),
      dataset_(snapshot_->dataset()),
      options_(options) {
  if (options_.sort_by_length) {
    const size_t max_len = dataset_.pool().max_length();
    // Counting sort of ids by length: length_starts_[L] is the first slot of
    // length L in ids_by_length_ (and [max+1] the end sentinel).
    std::vector<uint32_t> counts(max_len + 2, 0);
    for (size_t id = 0; id < dataset_.size(); ++id) {
      ++counts[dataset_.Length(id) + 1];
    }
    for (size_t l = 1; l < counts.size(); ++l) counts[l] += counts[l - 1];
    length_starts_ = counts;
    ids_by_length_.resize(dataset_.size());
    std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
    for (size_t id = 0; id < dataset_.size(); ++id) {
      ids_by_length_[cursor[dataset_.Length(id)]++] =
          static_cast<uint32_t>(id);
    }
  }
  if (options_.frequency_filter) {
    frequency_filter_.emplace(dataset_);
  }
  if (options_.qgram_filter_q > 0) {
    qgram_filter_.emplace(dataset_, options_.qgram_filter_q);
  }
}

const LanePool& SequentialScanSearcher::EnsureLanePool() const {
  const LanePool* pool = lane_pool_.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  std::call_once(lane_pool_once_, [this] {
    lane_pool_storage_ =
        std::make_unique<LanePool>(LanePool::Build(dataset_));
    lane_pool_.store(lane_pool_storage_.get(), std::memory_order_release);
  });
  return *lane_pool_.load(std::memory_order_acquire);
}

bool SequentialScanSearcher::LaneEligible(const Query& query,
                                          KernelTier tier) const {
  // The lane kernels reproduce BoundedMyers exactly, so they can stand in
  // only for the default verify pipeline: the historical kernels
  // (kPaperStep4/kBanded) and the optional pre-filters stay per-pair, and
  // those verifications are counted as simd_fallback_pairs instead.
  return tier != KernelTier::kScalar &&
         options_.verify_kernel == VerifyKernel::kMyersAuto &&
         !frequency_filter_ && !qgram_filter_ && !query.text.empty() &&
         query.max_distance >= 0;
}

size_t SequentialScanSearcher::memory_bytes() const {
  size_t bytes = ids_by_length_.size() * sizeof(uint32_t) +
                 length_starts_.size() * sizeof(uint32_t);
  if (const LanePool* pool = lane_pool_.load(std::memory_order_acquire)) {
    bytes += pool->memory_bytes();
  }
  if (frequency_filter_) bytes += dataset_.size() * 6 * sizeof(uint16_t);
  if (qgram_filter_) {
    // Approximation: one hashed gram per byte of data plus offsets.
    bytes += dataset_.pool().total_bytes() * sizeof(uint32_t) +
             (dataset_.size() + 1) * sizeof(uint64_t);
  }
  return bytes;
}

bool SequentialScanSearcher::Verify(std::string_view q, uint32_t id, int k,
                                    EditDistanceWorkspace* ws) const {
  SSS_DCHECK(options_.step == LadderStep::kSimpleTypes);
  switch (options_.verify_kernel) {
    case VerifyKernel::kPaperStep4:
      return internal::EditDistanceSimpleTypes(q, dataset_.View(id), k, ws) <=
             k;
    case VerifyKernel::kBanded:
      return BoundedEditDistance(q, dataset_.View(id), k, ws) <= k;
    case VerifyKernel::kMyersAuto:
      return WithinDistance(q, dataset_.View(id), k, ws);
  }
  return false;
}

Status SequentialScanSearcher::ScanIdRange(const Query& query,
                                           const SearchContext& ctx,
                                           EditDistanceWorkspace* ws,
                                           uint32_t begin, uint32_t end,
                                           bool count_simd_fallback,
                                           MatchList* out) const {
  const std::string_view q = query.text;
  const int k = query.max_distance;
  const FrequencyVector qvec =
      frequency_filter_ ? frequency_filter_->Compute(q) : FrequencyVector{};
  const std::vector<uint32_t> qprofile =
      qgram_filter_ ? qgram_filter_->Profile(q) : std::vector<uint32_t>{};

  // Reject counters increment only on filtered (continue) paths; the
  // pass-through totals are derived after the loop, so the verify hot path
  // carries no extra work even while collecting.
  StatsScope stats(ctx.stats);
  const KernelCounters kernel_before = ws->kernel;
  const size_t out_before = out->size();

  StopChecker stopper(ctx);
  for (uint32_t id = begin; id < end; ++id) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    if (!LengthFilterPasses(q.size(), dataset_.Length(id), k)) {
      ++stats->length_filter_rejects;
      continue;
    }
    if (frequency_filter_ && !frequency_filter_->MayMatch(qvec, id, k)) {
      ++stats->frequency_filter_rejects;
      continue;
    }
    if (qgram_filter_ &&
        !qgram_filter_->MayMatch(qprofile, q.size(), id, k)) {
      ++stats->qgram_filter_rejects;
      continue;
    }
    if (Verify(q, id, k, ws)) out->push_back(id);
  }
  stats->candidates_considered += end - begin;
  const uint64_t verified = (end - begin) - stats->length_filter_rejects -
                            stats->frequency_filter_rejects -
                            stats->qgram_filter_rejects;
  stats->verify_calls += verified;
  if (count_simd_fallback) stats->simd_fallback_pairs += verified;
  stats->matches_found += out->size() - out_before;
  stats.AddKernelDelta(ws->kernel, kernel_before);
  return Status::OK();
}

Status SequentialScanSearcher::ScanByLength(const Query& query,
                                            const SearchContext& ctx,
                                            EditDistanceWorkspace* ws,
                                            bool count_simd_fallback,
                                            MatchList* out) const {
  const std::string_view q = query.text;
  const int k = query.max_distance;
  const size_t max_len = dataset_.pool().max_length();
  const size_t lo =
      q.size() > static_cast<size_t>(k) ? q.size() - k : 0;
  const size_t hi = std::min(max_len, q.size() + static_cast<size_t>(k));

  // Length rejects are wholesale here: ids outside the [lo, hi] window are
  // never visited at all, which is exactly the set ScanIdRange rejects one
  // by one — the two layouts report identical funnel totals.
  StatsScope stats(ctx.stats);
  if (lo > max_len) {
    stats->candidates_considered += dataset_.size();
    stats->length_filter_rejects += dataset_.size();
    return Status::OK();
  }
  const uint32_t window =
      length_starts_[hi + 1] - length_starts_[lo];
  const KernelCounters kernel_before = ws->kernel;
  const size_t out_before = out->size();

  const FrequencyVector qvec =
      frequency_filter_ ? frequency_filter_->Compute(q) : FrequencyVector{};
  const std::vector<uint32_t> qprofile =
      qgram_filter_ ? qgram_filter_->Profile(q) : std::vector<uint32_t>{};

  StopChecker stopper(ctx);
  for (uint32_t pos = length_starts_[lo]; pos < length_starts_[hi + 1];
       ++pos) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    const uint32_t id = ids_by_length_[pos];
    if (frequency_filter_ && !frequency_filter_->MayMatch(qvec, id, k)) {
      ++stats->frequency_filter_rejects;
      continue;
    }
    if (qgram_filter_ &&
        !qgram_filter_->MayMatch(qprofile, q.size(), id, k)) {
      ++stats->qgram_filter_rejects;
      continue;
    }
    if (Verify(q, id, k, ws)) out->push_back(id);
  }
  stats->candidates_considered += dataset_.size();
  stats->length_filter_rejects += dataset_.size() - window;
  const uint64_t verified = window - stats->frequency_filter_rejects -
                            stats->qgram_filter_rejects;
  stats->verify_calls += verified;
  if (count_simd_fallback) stats->simd_fallback_pairs += verified;
  stats->matches_found += out->size() - out_before;
  stats.AddKernelDelta(ws->kernel, kernel_before);
  // The by-length walk visits ids out of order; results must be ascending.
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status SequentialScanSearcher::Search(const Query& query,
                                      const SearchContext& ctx,
                                      MatchList* out) const {
  // One workspace per thread: Search must be thread-safe under every
  // ExecutionStrategy, and per-call allocation would undo the step-3/4
  // optimizations this engine exists to demonstrate.
  thread_local EditDistanceWorkspace ws;

  if (options_.step != LadderStep::kSimpleTypes) {
    // Historical rungs run their own full-dataset loop (they are the
    // benchmark subjects, not composable fast paths). They predate
    // cancellation, so honor the context between queries only.
    if (ctx.CanStop() && ctx.StopRequested()) return ctx.StopStatus();
    *out = RunLadderKernel(dataset_, query, options_.step, &ws);
    return Status::OK();
  }

  const KernelTier tier = ResolveKernelTier(ctx.kernel_tier);
  if (LaneEligible(query, tier)) {
    // Many-vs-many path: the lane pool's buckets already realize the
    // by-length restriction, so both scan layouts route here.
    return LaneVerifyRange(EnsureLanePool(), query, ctx, tier, 0,
                           static_cast<uint32_t>(dataset_.size()), out);
  }
  const bool simd_fallback = tier != KernelTier::kScalar;
  if (options_.sort_by_length) {
    return ScanByLength(query, ctx, &ws, simd_fallback, out);
  }
  return ScanIdRange(query, ctx, &ws, 0,
                     static_cast<uint32_t>(dataset_.size()), simd_fallback,
                     out);
}

Status SequentialScanSearcher::SearchRange(const Query& query, uint32_t begin,
                                           uint32_t end,
                                           const SearchContext& ctx,
                                           MatchList* out) const {
  if (options_.step != LadderStep::kSimpleTypes) {
    return Searcher::SearchRange(query, begin, end, ctx, out);
  }
  thread_local EditDistanceWorkspace ws;
  const KernelTier tier = ResolveKernelTier(ctx.kernel_tier);
  if (LaneEligible(query, tier)) {
    return LaneVerifyRange(EnsureLanePool(), query, ctx, tier, begin, end,
                           out);
  }
  // Sub-scans always walk the pool in id order: the by-length permutation
  // does not decompose into contiguous id shards, and ascending appends are
  // what lets the sharded driver concatenate shards allocation-free.
  return ScanIdRange(query, ctx, &ws, begin, end,
                     tier != KernelTier::kScalar, out);
}

}  // namespace sss
