// Many-vs-many verification: one query against a whole LanePool group of
// kLaneWidth candidates per kernel pass.
//
// Why this beats the per-pair scan even though Myers is already
// bit-parallel *within* a pair: the per-pair kernel rebuilds the 256-entry
// peq table for every candidate and holds one 64-bit DP state in a register
// file that could carry four. The LaneVerifier builds the query's peq table
// ONCE (SetQuery), then advances four independent blocked-Myers recurrences
// per column — as four uint64 lanes of plain C++ (KernelTier::kSwar) or as
// the four 64-bit lanes of one __m256i (KernelTier::kAvx2, compiled
// per-function so baseline builds still run everywhere and dispatch happens
// at runtime via util/kernel_dispatch).
//
// Exactness contract: every lane's verdict is byte-identical to
// BoundedMyers(query, candidate, k) — the exact distance when it is <= k,
// else k+1. The lane kernels run the full recurrence (no early abort) and
// capture each lane's score at its own text length, so a group may mix
// lengths freely; the <=k clamp subsumes the per-pair length filter
// (distance >= |length difference|). The differential kernel-equivalence
// suite (tests/core/kernel_equivalence_test.cc) enforces this contract
// across all tiers on >=5000 randomized triples.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/edit_distance.h"
#include "core/lane_pool.h"
#include "io/dataset.h"
#include "util/cancellation.h"
#include "util/kernel_dispatch.h"
#include "util/status.h"

namespace sss {

/// \brief Reusable many-vs-many verifier: per-query tables built once by
/// SetQuery, per-group scratch reused across VerifyGroup calls. Not
/// thread-safe; engines keep one per thread.
class LaneVerifier {
 public:
  /// \brief Prepares the query pattern. Tables for the byte and packed2
  /// column layouts are built lazily, on the first group of each kind.
  void SetQuery(std::string_view query);

  /// \brief Writes, for every lane of `group` (padding lanes included), the
  /// exact edit distance to the query when <= k, else k+1 — byte-identical
  /// to BoundedMyers per pair, for any tier. Requires k >= 0.
  void VerifyGroup(const LaneGroupView& group, int k, KernelTier tier,
                   int out[kLaneWidth]);

 private:
  const uint64_t* PeqFor(const LaneGroupView& group);
  void RunScalar(const LaneGroupView& group, int k, int out[kLaneWidth]);

  std::string query_;
  size_t blocks_ = 0;
  uint64_t last_mask_ = 0;
  bool byte_peq_ready_ = false;
  bool packed2_peq_ready_ = false;
  std::vector<uint64_t> byte_peq_;     // [256][blocks_]
  std::vector<uint64_t> packed2_peq_;  // [4][blocks_]
  std::vector<uint64_t> pv_, mv_;      // [blocks_][kLaneWidth] scratch
  std::string lane_text_;              // scalar-tier materialization buffer
  EditDistanceWorkspace scalar_ws_;
};

/// \brief The lane-based range scan shared by the scan-shaped engines:
/// verifies `query` against every pool candidate with id in [begin, end)
/// under `tier`, appending matches in ascending id order and reporting the
/// same candidate-funnel counters the per-pair scans report, plus
/// simd_lanes_verified. Requires a non-empty query text and k >= 0 (engines
/// route empty queries through their per-pair path as simd_fallback_pairs).
/// Returns kCancelled with `out` cleared if `ctx` stops the scan.
Status LaneVerifyRange(const LanePool& pool, const Query& query,
                       const SearchContext& ctx, KernelTier tier,
                       uint32_t begin, uint32_t end, MatchList* out);

}  // namespace sss
