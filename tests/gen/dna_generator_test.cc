#include "gen/dna_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "util/bitpack.h"

namespace sss::gen {
namespace {

DnaGeneratorOptions SmallOptions() {
  DnaGeneratorOptions options;
  options.num_reads = 500;
  options.genome_length = 20000;
  return options;
}

TEST(DnaGeneratorTest, DeterministicForSeed) {
  DnaReadGenerator a(SmallOptions(), 42), b(SmallOptions(), 42);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(DnaGeneratorTest, GenomeUsesOnlyBases) {
  DnaReadGenerator gen(SmallOptions(), 1);
  for (char c : gen.genome()) {
    ASSERT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T') << c;
  }
  EXPECT_EQ(gen.genome().size(), SmallOptions().genome_length);
}

TEST(DnaGeneratorTest, ReadsUseReadAlphabet) {
  DnaReadGenerator gen(SmallOptions(), 2);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(DnaCodec::IsValid(gen.Next()));
  }
}

TEST(DnaGeneratorTest, ReadLengthsNearTarget) {
  DnaGeneratorOptions options = SmallOptions();
  options.read_length = 100;
  options.read_length_jitter = 4;
  DnaReadGenerator gen(options, 3);
  for (int i = 0; i < 500; ++i) {
    const std::string read = gen.Next();
    EXPECT_GE(read.size(), 96u);
    EXPECT_LE(read.size(), 104u);
  }
}

TEST(DnaGeneratorTest, GenerateMatchesTableOneShape) {
  DnaGeneratorOptions options = SmallOptions();
  options.num_reads = 2000;
  Dataset d = DnaReadGenerator(options, 5).Generate();
  EXPECT_EQ(d.size(), 2000u);
  EXPECT_EQ(d.alphabet(), AlphabetKind::kDna);
  const DatasetStats stats = d.ComputeStats();
  EXPECT_LE(stats.alphabet_size, 5u);
  EXPECT_GE(stats.alphabet_size, 4u);  // N is rare but A/C/G/T all present
  EXPECT_NEAR(stats.avg_length, 100.0, 5.0);
}

TEST(DnaGeneratorTest, NsAppearAtConfiguredRate) {
  DnaGeneratorOptions options = SmallOptions();
  options.n_rate = 0.05;
  DnaReadGenerator gen(options, 7);
  size_t ns = 0, total = 0;
  for (int i = 0; i < 1000; ++i) {
    for (char c : gen.Next()) {
      ++total;
      if (c == 'N') ++ns;
    }
  }
  EXPECT_NEAR(static_cast<double>(ns) / total, 0.05, 0.01);
}

TEST(DnaGeneratorTest, ZeroErrorReadsAreGenomeSubstrings) {
  DnaGeneratorOptions options = SmallOptions();
  options.substitution_rate = 0;
  options.insertion_rate = 0;
  options.deletion_rate = 0;
  options.n_rate = 0;
  options.reverse_strand_prob = 0;
  DnaReadGenerator gen(options, 11);
  for (int i = 0; i < 50; ++i) {
    const std::string read = gen.Next();
    EXPECT_NE(gen.genome().find(read), std::string::npos)
        << "error-free forward read must be a genome substring";
  }
}

TEST(DnaGeneratorTest, CoverageCreatesNearDuplicates) {
  // With high coverage (many reads over a small genome), some reads must
  // overlap heavily — the property the paper's DNA experiments depend on.
  DnaGeneratorOptions options;
  options.num_reads = 2000;
  options.genome_length = 4000;  // ~50x coverage
  options.reverse_strand_prob = 0;
  DnaReadGenerator gen(options, 13);
  std::set<std::string> prefixes;
  size_t collisions = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string read = gen.Next();
    if (!prefixes.insert(read.substr(0, 30)).second) ++collisions;
  }
  EXPECT_GT(collisions, 100u) << "expected shared 30-mers at 50x coverage";
}

TEST(DnaGeneratorTest, ReverseStrandReadsDiffer) {
  DnaGeneratorOptions fwd = SmallOptions();
  fwd.reverse_strand_prob = 0;
  DnaGeneratorOptions rev = SmallOptions();
  rev.reverse_strand_prob = 1.0;
  DnaReadGenerator a(fwd, 17), b(rev, 17);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace sss::gen
