// Environment-variable helpers used by the bench harness to pick dataset
// scale and seeds without recompiling (e.g. SSS_BENCH_SCALE=full).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sss {

/// \brief Raw environment lookup; nullopt when unset.
std::optional<std::string> GetEnv(std::string_view name);

/// \brief Environment integer, or `fallback` when unset/unparseable.
int64_t GetEnvInt(std::string_view name, int64_t fallback);

/// \brief Environment double, or `fallback` when unset/unparseable.
double GetEnvDouble(std::string_view name, double fallback);

/// \brief Environment boolean ("1", "true", "on", "yes" case-insensitive),
/// or `fallback` when unset.
bool GetEnvBool(std::string_view name, bool fallback);

}  // namespace sss
