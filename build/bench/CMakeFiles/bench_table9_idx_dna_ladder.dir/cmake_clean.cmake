file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_idx_dna_ladder.dir/bench_table9_idx_dna_ladder.cc.o"
  "CMakeFiles/bench_table9_idx_dna_ladder.dir/bench_table9_idx_dna_ladder.cc.o.d"
  "bench_table9_idx_dna_ladder"
  "bench_table9_idx_dna_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_idx_dna_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
