#include "core/cached.h"

#include <algorithm>

#include "util/macros.h"

namespace sss {

CachedSearcher::CachedSearcher(const Searcher* inner, size_t capacity)
    : inner_(inner), capacity_(std::max<size_t>(1, capacity)) {
  SSS_CHECK(inner != nullptr);
}

Status CachedSearcher::Search(const Query& query, const SearchContext& ctx,
                              MatchList* out) const {
  Key key{query.text, query.max_distance};
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      // Refresh recency.
      lru_.splice(lru_.begin(), lru_, it->second.lru_slot);
      *out = it->second.results;
      return Status::OK();
    }
    ++misses_;
  }

  // Miss: compute outside the lock so concurrent distinct queries overlap.
  out->clear();
  const Status st = inner_->Search(query, ctx, out);
  if (!st.ok()) {
    // Incomplete answers must not poison the cache.
    out->clear();
    return st;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.find(key) == cache_.end()) {
      lru_.push_front(key);
      cache_[std::move(key)] = Entry{*out, lru_.begin()};
      if (cache_.size() > capacity_) {
        const Key& victim = lru_.back();
        cache_.erase(victim);
        lru_.pop_back();
      }
    }
  }
  return Status::OK();
}

size_t CachedSearcher::entries() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

size_t CachedSearcher::memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = inner_->memory_bytes();
  for (const auto& [key, entry] : cache_) {
    bytes += key.text.size() + entry.results.size() * sizeof(uint32_t) +
             sizeof(Entry) + sizeof(Key);
  }
  return bytes;
}

void CachedSearcher::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
}

}  // namespace sss
