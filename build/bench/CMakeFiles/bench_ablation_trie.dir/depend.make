# Empty dependencies file for bench_ablation_trie.
# This may be replaced when dependencies are built.
