file(REMOVE_RECURSE
  "libsss_align.a"
)
