#include "util/arena.h"

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"

namespace sss {

Arena::Arena(size_t initial_block_bytes)
    : next_block_bytes_(std::max<size_t>(initial_block_bytes, 64)),
      initial_block_bytes_(next_block_bytes_) {}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  SSS_DCHECK((alignment & (alignment - 1)) == 0);
  uintptr_t p = reinterpret_cast<uintptr_t>(cursor_);
  uintptr_t aligned = (p + alignment - 1) & ~(alignment - 1);
  size_t padding = aligned - p;
  if (cursor_ == nullptr ||
      bytes + padding > static_cast<size_t>(limit_ - cursor_)) {
    // A fresh block from operator new is max_align_t-aligned, so no padding
    // is needed after AddBlock.
    AddBlock(bytes);
    aligned = reinterpret_cast<uintptr_t>(cursor_);
    padding = 0;
  }
  cursor_ = reinterpret_cast<char*>(aligned + bytes);
  bytes_allocated_ += bytes + padding;
  return reinterpret_cast<void*>(aligned);
}

const char* Arena::CopyString(const char* data, size_t len) {
  char* out = static_cast<char*>(Allocate(len == 0 ? 1 : len, 1));
  if (len > 0) std::memcpy(out, data, len);
  return out;
}

void Arena::AddBlock(size_t min_bytes) {
  // Block acquisition is the arena's only interaction with the system
  // allocator; tests inject delays/callbacks here to exercise allocation
  // pressure mid-batch.
  SSS_FAILPOINT("arena:add_block");
  size_t block_bytes = std::max(next_block_bytes_, min_bytes);
  blocks_.push_back(std::make_unique<char[]>(block_bytes));
  cursor_ = blocks_.back().get();
  limit_ = cursor_ + block_bytes;
  bytes_reserved_ += block_bytes;
  next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
}

void Arena::Rewind() {
  bytes_allocated_ = 0;
  if (blocks_.empty()) return;
  // The newest block is the largest (blocks grow geometrically), so it is
  // the one worth keeping.
  std::unique_ptr<char[]> keep = std::move(blocks_.back());
  const size_t keep_bytes = static_cast<size_t>(limit_ - keep.get());
  blocks_.clear();
  blocks_.push_back(std::move(keep));
  cursor_ = blocks_.back().get();
  limit_ = cursor_ + keep_bytes;
  bytes_reserved_ = keep_bytes;
}

void Arena::Reset() {
  blocks_.clear();
  cursor_ = limit_ = nullptr;
  next_block_bytes_ = initial_block_bytes_;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace sss
