file(REMOVE_RECURSE
  "CMakeFiles/near_dedupe.dir/near_dedupe.cpp.o"
  "CMakeFiles/near_dedupe.dir/near_dedupe.cpp.o.d"
  "near_dedupe"
  "near_dedupe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/near_dedupe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
