#include "parallel/adaptive_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace sss {
namespace {

AdaptivePoolOptions FastOptions() {
  AdaptivePoolOptions options;
  options.master_interval = std::chrono::microseconds(100);
  return options;
}

TEST(AdaptivePoolTest, RunsAllSubmittedTasks) {
  AdaptivePool pool(FastOptions());
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 500);
}

TEST(AdaptivePoolTest, ParallelForCoversEveryIndexOnce) {
  AdaptivePool pool(FastOptions());
  std::vector<std::atomic<int>> hits(777);
  pool.ParallelFor(777, [&](size_t i) { hits[i].fetch_add(1); }, 5);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(AdaptivePoolTest, StartsWithInitialThreads) {
  AdaptivePoolOptions options = FastOptions();
  options.initial_threads = 3;
  options.min_threads = 1;
  options.max_threads = 8;
  AdaptivePool pool(options);
  EXPECT_EQ(pool.live_threads(), 3u);
}

TEST(AdaptivePoolTest, OpensWorkersUnderSustainedPressure) {
  AdaptivePoolOptions options = FastOptions();
  options.initial_threads = 1;
  options.min_threads = 1;
  options.max_threads = 4;
  options.high_watermark = 2.0;
  AdaptivePool pool(options);
  // Flood with slow tasks: queue pressure must trigger the open rule.
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_GT(pool.total_opens(), options.initial_threads)
      << "the master never scaled up despite queue pressure";
  EXPECT_GT(pool.peak_threads(), 1u);
  EXPECT_LE(pool.peak_threads(), 4u);
}

TEST(AdaptivePoolTest, ClosesWorkersWhenIdle) {
  AdaptivePoolOptions options = FastOptions();
  options.initial_threads = 4;
  options.min_threads = 1;
  options.max_threads = 4;
  options.low_watermark = 0.5;
  AdaptivePool pool(options);
  // Idle pool: pressure is 0 < low watermark, so the master should shrink
  // toward min_threads.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pool.live_threads() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(pool.live_threads(), 1u) << "idle pool did not shrink to min";
  EXPECT_GE(pool.total_closes(), 3u);
}

TEST(AdaptivePoolTest, NeverExceedsMaxThreads) {
  AdaptivePoolOptions options = FastOptions();
  options.initial_threads = 1;
  options.max_threads = 3;
  AdaptivePool pool(options);
  for (int i = 0; i < 300; ++i) {
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    });
  }
  pool.Wait();
  EXPECT_LE(pool.peak_threads(), 3u);
}

TEST(AdaptivePoolTest, SurvivesRepeatedBatches) {
  AdaptivePool pool(FastOptions());
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.ParallelFor(100, [&](size_t) { counter.fetch_add(1); }, 4);
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(AdaptivePoolTest, CleanShutdownWithPendingWork) {
  std::atomic<int> counter{0};
  {
    AdaptivePool pool(FastOptions());
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        counter.fetch_add(1);
      });
    }
    pool.Wait();
  }  // destructor: master joins everyone
  EXPECT_EQ(counter.load(), 50);
}

TEST(AdaptivePoolTest, WaitWithNoTasksReturns) {
  AdaptivePool pool(FastOptions());
  pool.Wait();
}

// Soak tests: the seed suite hung intermittently because the master counted
// retired-but-not-yet-exited workers as live, closed its last real worker at
// the tail of a batch, and a short residual queue (pressure below the high
// watermark) could then never reopen one. Thousands of tiny batches with an
// aggressive master and oversubscribed workers reproduce that window
// reliably enough that a regression shows up as a test timeout.

TEST(AdaptivePoolSoakTest, ThousandsOfTinyBatchesSurviveCloseChurn) {
  AdaptivePoolOptions options;
  options.master_interval = std::chrono::microseconds(50);
  options.initial_threads = 4;
  options.min_threads = 1;
  options.max_threads = 8;  // oversubscribed on small containers
  // Aggressive watermarks: almost every master tick opens or closes, so
  // batch tails constantly race retirement against the last few tasks.
  options.high_watermark = 1.0;
  options.low_watermark = 0.9;
  AdaptivePool pool(options);
  std::atomic<size_t> counter{0};
  for (int batch = 0; batch < 2000; ++batch) {
    pool.ParallelFor(3, [&](size_t) { counter.fetch_add(1); }, 1);
  }
  EXPECT_EQ(counter.load(), 6000u);
  EXPECT_LE(pool.peak_threads(), 8u);
}

TEST(AdaptivePoolSoakTest, TrickledSingleTasksNeverStrand) {
  // One task at a time is the worst case for the reopen rule: queue
  // pressure never exceeds 1, so recovery cannot rely on bulk submits.
  AdaptivePoolOptions options;
  options.master_interval = std::chrono::microseconds(50);
  options.initial_threads = 2;
  options.min_threads = 1;
  options.max_threads = 4;
  options.low_watermark = 0.99;
  AdaptivePool pool(options);
  std::atomic<size_t> counter{0};
  for (int i = 0; i < 3000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
    if (i % 16 == 0) pool.Wait();
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 3000u);
}

TEST(AdaptivePoolSoakTest, RapidConstructDestroyWithPendingWork) {
  std::atomic<size_t> counter{0};
  for (int round = 0; round < 200; ++round) {
    AdaptivePoolOptions options;
    options.master_interval = std::chrono::microseconds(50);
    options.initial_threads = 3;
    options.max_threads = 6;
    AdaptivePool pool(options);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    if (round % 2 == 0) pool.Wait();
    // Odd rounds destruct with work possibly queued: the destructor must
    // drain, not drop or deadlock.
  }
  EXPECT_EQ(counter.load(), 200u * 16u);
}

}  // namespace
}  // namespace sss
