// sss_loadgen — closed-loop load generator for sss_server: N worker
// threads, each with its own connection, each keeping exactly one request
// in flight (issue, wait, repeat), so offered concurrency equals
// --concurrency and overload shows up as kUnavailable responses rather
// than client-side queueing.
//
//   sss_loadgen --port 7070 --queries q.txt --concurrency 32
//               --requests 10000 [--json[=path]]     (one command line)
//
// Every request carries a globally unique id; the client layer verifies
// the response echoes it, so crossed responses surface as transport errors
// instead of silently wrong answers. The report covers latency percentiles,
// per-StatusCode response counts, and transport errors; --json writes the
// bench-pipeline document (schema_version 1) with the client-observed
// counts mirrored into the server_* SearchStats fields.
//
// Exit codes: 0 = every exchange completed at the transport level (shed or
// cancelled responses are still successful exchanges), 1 = transport or
// protocol errors, 2 = usage.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "io/reader.h"
#include "server/client.h"
#include "util/cancellation.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/search_stats.h"
#include "util/stopwatch.h"

namespace sss::server {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;

// One slot per StatusCode value (kOk..kUnavailable).
constexpr size_t kNumCodes = 10;

struct Totals {
  std::atomic<uint64_t> by_code[kNumCodes] = {};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> matches{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  // Distinct non-zero engine generations seen in responses. Under a live
  // reload the set should hold the old and the new id — the reload smoke
  // asserts exactly that. Mutexed: inserts are rare (one per response, tiny
  // set) and only the final report reads it.
  std::mutex gen_mu;
  std::set<uint64_t> generations;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: sss_loadgen --port N --queries FILE [flags]\n"
      "  --host ADDR       server address (default 127.0.0.1)\n"
      "  --default-k K     threshold for query lines without one (default 1)\n"
      "  --concurrency N   worker connections, one request in flight each\n"
      "                    (default 8)\n"
      "  --requests N      total requests across all workers (default 1000)\n"
      "  --duration-s S    run for S seconds of wall time instead of a fixed\n"
      "                    request count (overrides --requests)\n"
      "  --deadline-ms MS  per-request deadline (default 0 = none)\n"
      "  --json[=PATH]     write BENCH_sss_loadgen.json (bench schema)\n"
      "exit codes: 0 all exchanges completed, 1 transport errors, 2 usage\n");
  return kExitUsage;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return kExitError;
}

void Worker(const std::string& host, uint16_t port, const QuerySet& queries,
            uint32_t deadline_ms, size_t num_requests, Deadline until,
            std::atomic<size_t>* next, Totals* totals,
            LatencyHistogram* latency) {
  // Accumulated across reconnects; folded into the totals once at exit.
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  const auto retire = [&](Client* c) {
    bytes_sent += c->bytes_sent();
    bytes_received += c->bytes_received();
    c->Close();
  };

  auto connected = Client::Connect(host, port);
  if (!connected.ok()) {
    // A refused connection sinks every request this worker would have
    // issued; count one transport error and let the others be claimed by
    // workers that did connect.
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.status().ToString().c_str());
    totals->transport_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Client client = std::move(*connected);
  for (;;) {
    if (until.Expired()) break;  // duration mode: stop issuing, finish clean
    const size_t i = next->fetch_add(1, std::memory_order_relaxed);
    if (i >= num_requests) break;
    const Query& q = queries[i % queries.size()];
    Request request;
    request.request_id = static_cast<uint64_t>(i) + 1;  // globally unique
    request.k = static_cast<uint32_t>(q.max_distance);
    request.deadline_ms = deadline_ms;
    request.query = q.text;

    Response response;
    Stopwatch timer;
    const Status st = client.Call(std::move(request), &response);
    latency->Record(static_cast<uint64_t>(timer.ElapsedNanos()));
    if (!st.ok()) {
      // The request is lost (counted as a transport error, not retried) and
      // the connection cannot resync; reconnect and keep claiming so one
      // severed connection doesn't retire the worker.
      std::fprintf(stderr, "request %zu failed: %s\n", i + 1,
                   st.ToString().c_str());
      totals->transport_errors.fetch_add(1, std::memory_order_relaxed);
      retire(&client);
      auto again = Client::Connect(host, port);
      if (!again.ok()) break;  // server gone: this worker is done
      client = std::move(*again);
      continue;
    }
    const size_t code = static_cast<size_t>(response.code);
    totals->by_code[code < kNumCodes ? code : kNumCodes - 1].fetch_add(
        1, std::memory_order_relaxed);
    totals->matches.fetch_add(response.matches.size(),
                              std::memory_order_relaxed);
    if (response.generation != 0) {
      std::lock_guard<std::mutex> lock(totals->gen_mu);
      totals->generations.insert(response.generation);
    }
  }
  retire(&client);
  totals->bytes_sent.fetch_add(bytes_sent, std::memory_order_relaxed);
  totals->bytes_received.fetch_add(bytes_received, std::memory_order_relaxed);
}

int Run(const FlagSet& flags) {
  Result<int64_t> port = flags.GetInt("port", 0);
  if (!port.ok()) return Fail(port.status());
  if (*port <= 0 || *port > 65535) {
    std::fprintf(stderr, "sss_loadgen: --port is required\n");
    return kExitUsage;
  }
  const std::string query_path = flags.GetString("queries", "");
  if (query_path.empty()) {
    std::fprintf(stderr, "sss_loadgen: --queries is required\n");
    return kExitUsage;
  }
  const std::string host = flags.GetString("host", "127.0.0.1");
  Result<int64_t> default_k = flags.GetInt("default-k", 1);
  if (!default_k.ok()) return Fail(default_k.status());
  Result<int64_t> concurrency = flags.GetInt("concurrency", 8);
  if (!concurrency.ok()) return Fail(concurrency.status());
  if (*concurrency < 1) {
    std::fprintf(stderr, "sss_loadgen: --concurrency must be >= 1\n");
    return kExitUsage;
  }
  Result<int64_t> requests = flags.GetInt("requests", 1000);
  if (!requests.ok()) return Fail(requests.status());
  if (*requests < 1) {
    std::fprintf(stderr, "sss_loadgen: --requests must be >= 1\n");
    return kExitUsage;
  }
  Result<int64_t> deadline_ms = flags.GetInt("deadline-ms", 0);
  if (!deadline_ms.ok()) return Fail(deadline_ms.status());
  Result<int64_t> duration_s = flags.GetInt("duration-s", 0);
  if (!duration_s.ok()) return Fail(duration_s.status());
  if (*duration_s < 0) {
    std::fprintf(stderr, "sss_loadgen: --duration-s must be >= 0\n");
    return kExitUsage;
  }

  auto queries =
      ReadQueryFile(query_path, static_cast<int>(*default_k));
  if (!queries.ok()) return Fail(queries.status());
  if (queries->empty()) {
    std::fprintf(stderr, "sss_loadgen: %s has no queries\n",
                 query_path.c_str());
    return kExitUsage;
  }

  Totals totals;
  LatencyHistogram latency;
  std::atomic<size_t> next{0};
  // Duration mode uncaps the request counter and stops workers on the
  // clock instead; each worker still finishes its in-flight exchange, so
  // the run ends with complete responses, not severed connections.
  const bool timed = *duration_s > 0;
  const size_t num_requests =
      timed ? SIZE_MAX : static_cast<size_t>(*requests);
  const Deadline until =
      timed ? Deadline::After(std::chrono::seconds(*duration_s))
            : Deadline::Infinite();

  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(*concurrency));
  for (int64_t w = 0; w < *concurrency; ++w) {
    workers.emplace_back(Worker, host, static_cast<uint16_t>(*port),
                         std::cref(*queries),
                         static_cast<uint32_t>(*deadline_ms), num_requests,
                         until, &next, &totals, &latency);
  }
  for (std::thread& t : workers) t.join();
  const double wall_seconds = wall.ElapsedSeconds();

  uint64_t completed = 0;
  for (const auto& counter : totals.by_code) {
    completed += counter.load(std::memory_order_relaxed);
  }
  const uint64_t transport_errors =
      totals.transport_errors.load(std::memory_order_relaxed);
  const uint64_t issued =
      std::min(next.load(std::memory_order_relaxed),
               static_cast<size_t>(num_requests));
  std::printf(
      "requests=%llu completed=%llu transport_errors=%llu matches=%llu "
      "wall=%.3fs (%.0f req/s)\n",
      static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(transport_errors),
      static_cast<unsigned long long>(
          totals.matches.load(std::memory_order_relaxed)),
      wall_seconds,
      wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds : 0);
  for (size_t code = 0; code < kNumCodes; ++code) {
    const uint64_t n = totals.by_code[code].load(std::memory_order_relaxed);
    if (n == 0) continue;
    std::printf("  %-12s %llu\n",
                std::string(StatusCodeToString(static_cast<StatusCode>(code)))
                    .c_str(),
                static_cast<unsigned long long>(n));
  }
  std::printf("latency: %s\n", latency.ScaledSummary(1e3, "us").c_str());
  {
    // No lock needed — workers are joined — but keep the accessor pattern.
    std::lock_guard<std::mutex> lock(totals.gen_mu);
    std::string gens;
    for (const uint64_t g : totals.generations) {
      gens += ' ';
      gens += std::to_string(g);
    }
    std::printf("generations observed: %zu [%s]\n", totals.generations.size(),
                gens.empty() ? "" : gens.c_str() + 1);
  }

  auto& json = bench::BenchJson::Instance();
  if (json.enabled()) {
    json.SetContext("sss_loadgen", "loopback", 1.0, 1.0, 0, queries->size());
    // Client-observed outcomes, mirrored onto the serving-layer counters so
    // the document validates against the same schema as the other benches.
    SearchStats stats;
    stats.server_requests_accepted =
        totals.by_code[static_cast<size_t>(StatusCode::kOk)].load();
    stats.server_requests_shed =
        totals.by_code[static_cast<size_t>(StatusCode::kUnavailable)].load();
    stats.server_requests_cancelled =
        totals.by_code[static_cast<size_t>(StatusCode::kCancelled)].load();
    stats.server_bytes_in = totals.bytes_received.load();
    stats.server_bytes_out = totals.bytes_sent.load();
    int k_max = 0;
    for (const Query& q : *queries) k_max = std::max(k_max, q.max_distance);
    json.AddRun("server", "closed-loop",
                static_cast<size_t>(*concurrency), num_requests, k_max,
                totals.matches.load(), 1, latency, stats);
    if (!json.Write()) return kExitError;
  }
  return transport_errors == 0 ? kExitOk : kExitError;
}

}  // namespace
}  // namespace sss::server

int main(int argc, char** argv) {
  sss::bench::BenchJson::Instance().StripFlag(&argc, argv);
  auto flags = sss::FlagSet::Parse(argc, argv);
  if (!flags.ok()) return sss::server::Fail(flags.status());
  if (flags->Has("help")) return sss::server::Usage();
  return sss::server::Run(*flags);
}
