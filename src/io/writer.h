// Writers: dataset files, query files, and competition-style result files.
#pragma once

#include <string>

#include "io/dataset.h"
#include "util/status.h"

namespace sss {

/// \brief Writes one string per line.
Status WriteDatasetFile(const std::string& path, const Dataset& dataset);

/// \brief Writes queries as "k<TAB>string" lines (readable by ReadQueryFile).
Status WriteQueryFile(const std::string& path, const QuerySet& queries);

/// \brief Writes results in the competition layout: for each query one line
/// "query_index:id id id ..." with ids ascending.
Status WriteResultFile(const std::string& path, const SearchResults& results);

}  // namespace sss
