file(REMOVE_RECURSE
  "libsss_util.a"
)
