#include "core/partition_index.h"

#include <algorithm>

#include "core/edit_distance.h"
#include "core/filters.h"
#include "util/macros.h"
#include "util/search_stats.h"

namespace sss {

namespace {

// 64-bit FNV-1a over the piece bytes.
uint64_t HashBytes(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t MixInt(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

std::vector<size_t> PartitionIndexSearcher::PieceBounds(size_t len,
                                                        int pieces) {
  SSS_DCHECK(pieces >= 1);
  std::vector<size_t> bounds;
  bounds.reserve(static_cast<size_t>(pieces) + 1);
  const size_t base = len / static_cast<size_t>(pieces);
  const size_t extra = len % static_cast<size_t>(pieces);
  size_t pos = 0;
  bounds.push_back(0);
  for (int j = 0; j < pieces; ++j) {
    pos += base + (static_cast<size_t>(j) < extra ? 1 : 0);
    bounds.push_back(pos);
  }
  return bounds;
}

uint64_t PartitionIndexSearcher::MakeKey(std::string_view piece, size_t len,
                                         int piece_idx) {
  uint64_t h = HashBytes(piece);
  h = MixInt(h, static_cast<uint64_t>(len));
  h = MixInt(h, static_cast<uint64_t>(piece_idx));
  return h;
}

PartitionIndexSearcher::PartitionIndexSearcher(SnapshotHandle snapshot,
                                               PartitionIndexOptions options)
    : snapshot_(std::move(snapshot)),
      dataset_(snapshot_->dataset()),
      options_(options) {
  SSS_CHECK(options_.max_k >= 0);
  const int pieces = options_.max_k + 1;
  entries_.reserve(dataset_.size() * static_cast<size_t>(pieces));
  for (size_t id = 0; id < dataset_.size(); ++id) {
    const std::string_view s = dataset_.View(id);
    if (s.size() < static_cast<size_t>(pieces)) {
      // Strings shorter than the piece count have empty pieces, and an
      // empty piece can be the only one edits spare — unprobeable. Such
      // strings are always verified directly instead.
      short_ids_.push_back(static_cast<uint32_t>(id));
      continue;
    }
    const std::vector<size_t> bounds = PieceBounds(s.size(), pieces);
    for (int j = 0; j < pieces; ++j) {
      const std::string_view piece =
          s.substr(bounds[j], bounds[j + 1] - bounds[j]);
      entries_.push_back(
          Entry{MakeKey(piece, s.size(), j), static_cast<uint32_t>(id)});
    }
  }
  std::sort(entries_.begin(), entries_.end());
}

size_t PartitionIndexSearcher::memory_bytes() const {
  return entries_.size() * sizeof(Entry);
}

Status PartitionIndexSearcher::ScanFallback(const Query& query,
                                            const SearchContext& ctx,
                                            MatchList* out) const {
  thread_local EditDistanceWorkspace ws;
  const int k = query.max_distance;
  StatsScope stats(ctx.stats);
  const KernelCounters kernel_before = ws.kernel;
  const size_t out_before = out->size();
  StopChecker stopper(ctx);
  for (uint32_t id = 0; id < dataset_.size(); ++id) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    if (!LengthFilterPasses(query.text.size(), dataset_.Length(id), k)) {
      ++stats->length_filter_rejects;
      continue;
    }
    if (WithinDistance(query.text, dataset_.View(id), k, &ws)) {
      out->push_back(id);
    }
  }
  stats->candidates_considered += dataset_.size();
  stats->verify_calls += dataset_.size() - stats->length_filter_rejects;
  stats->matches_found += out->size() - out_before;
  stats.AddKernelDelta(ws.kernel, kernel_before);
  return Status::OK();
}

Status PartitionIndexSearcher::Search(const Query& query,
                                      const SearchContext& ctx,
                                      MatchList* out) const {
  const int k = query.max_distance;
  if (k > options_.max_k) {
    // The pigeonhole argument needs ≥ k+1 pieces; beyond the build-time
    // budget we degrade gracefully rather than answer wrongly.
    return ScanFallback(query, ctx, out);
  }

  const std::string_view q = query.text;
  const int pieces = options_.max_k + 1;
  thread_local std::vector<uint32_t> candidates;
  candidates.clear();
  StatsScope stats(ctx.stats);
  StopChecker stopper(ctx);

  // Probe every compatible data length, piece, and shift.
  const size_t min_len = q.size() > static_cast<size_t>(k)
                             ? q.size() - static_cast<size_t>(k)
                             : 0;
  const size_t max_len = q.size() + static_cast<size_t>(k);
  for (size_t len = min_len; len <= max_len; ++len) {
    const std::vector<size_t> bounds = PieceBounds(len, pieces);
    for (int j = 0; j < pieces; ++j) {
      const size_t piece_begin = bounds[j];
      const size_t piece_len = bounds[j + 1] - bounds[j];
      if (piece_len == 0 || piece_len > q.size()) continue;
      // A surviving piece keeps its position up to the ±k drift caused by
      // insertions/deletions before it.
      const size_t lo =
          piece_begin > static_cast<size_t>(k) ? piece_begin - k : 0;
      const size_t hi =
          std::min(q.size() - piece_len, piece_begin + static_cast<size_t>(k));
      for (size_t pos = lo; pos <= hi && pos + piece_len <= q.size(); ++pos) {
        if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
          out->clear();
          return ctx.StopStatus();
        }
        ++stats->partition_probes;
        const uint64_t key =
            MakeKey(q.substr(pos, piece_len), len, j);
        auto range = std::equal_range(
            entries_.begin(), entries_.end(), Entry{key, 0},
            [](const Entry& a, const Entry& b) { return a.key < b.key; });
        for (auto it = range.first; it != range.second; ++it) {
          candidates.push_back(it->id);
        }
      }
    }
  }

  // Short strings are unprobeable (see constructor) — always candidates.
  candidates.insert(candidates.end(), short_ids_.begin(), short_ids_.end());

  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  thread_local EditDistanceWorkspace ws;
  const KernelCounters kernel_before = ws.kernel;
  const size_t out_before = out->size();
  for (uint32_t id : candidates) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    if (!LengthFilterPasses(q.size(), dataset_.Length(id), k)) {
      ++stats->length_filter_rejects;
      continue;
    }
    if (WithinDistance(q, dataset_.View(id), k, &ws)) {
      out->push_back(id);
    }
  }
  stats->candidates_considered += candidates.size();
  stats->verify_calls += candidates.size() - stats->length_filter_rejects;
  stats->matches_found += out->size() - out_before;
  stats.AddKernelDelta(ws.kernel, kernel_before);
  return Status::OK();
}

}  // namespace sss
