# Empty dependencies file for bench_table2_seq_city_threads.
# This may be replaced when dependencies are built.
