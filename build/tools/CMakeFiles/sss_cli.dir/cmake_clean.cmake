file(REMOVE_RECURSE
  "CMakeFiles/sss_cli.dir/sss_cli.cc.o"
  "CMakeFiles/sss_cli.dir/sss_cli.cc.o.d"
  "sss_cli"
  "sss_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
