# Empty dependencies file for city_search.
# This may be replaced when dependencies are built.
