// Table V: "Evaluation of the index-based solution on the city name data
// set" — the paper's three-step index ladder.
//
//   paper (sec):                         100q     500q    1000q
//     1) base implementation (trie)      8.14    42.26    77.95
//     2) compression (radix trie)        7.26    38.79    73.43
//     3) management of parallelism       1.53     7.58    14.19
//
// Expected shape: compression helps modestly; parallelism delivers the big
// cut. (Index build time is reported separately — the paper excludes it
// from these numbers, timing only result computation.)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/compressed_trie.h"
#include "core/trie.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kCityNames;

const TrieSearcher& BasicTrie() {
  static const auto* engine = new TrieSearcher(SharedWorkload(kKind).dataset, TriePruning::kPaperRule);
  return *engine;
}

const CompressedTrieSearcher& RadixTrie() {
  static const auto* engine =
      new CompressedTrieSearcher(SharedWorkload(kKind).dataset,
                                 TriePruning::kPaperRule);
  return *engine;
}

// Row 1: uncompressed trie, serial.
void BM_IdxLadder_Base(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, BasicTrie(),
                    w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kSerial, 0});
  state.counters["nodes"] = static_cast<double>(BasicTrie().Stats().num_nodes);
}
BENCHMARK(BM_IdxLadder_Base)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

// Row 2: path-compressed trie, serial.
void BM_IdxLadder_Compression(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, RadixTrie(),
                    w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kSerial, 0});
  state.counters["nodes"] = static_cast<double>(RadixTrie().Stats().num_nodes);
}
BENCHMARK(BM_IdxLadder_Compression)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

// Row 3: compressed trie + managed parallelism (paper's city pick: 32).
void BM_IdxLadder_ManagedPool(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, RadixTrie(),
                    w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kFixedPool, 32});
}
BENCHMARK(BM_IdxLadder_ManagedPool)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

// Build times (not a paper row; reported for completeness).
void BM_IdxBuild_Basic(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  for (auto _ : state) {
    TrieSearcher trie(w.dataset, TriePruning::kPaperRule);
    benchmark::DoNotOptimize(trie.Stats().num_nodes);
  }
}
BENCHMARK(BM_IdxBuild_Basic)->Unit(benchmark::kSecond)->Iterations(1);

void BM_IdxBuild_Compressed(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  for (auto _ : state) {
    CompressedTrieSearcher trie(w.dataset, TriePruning::kPaperRule);
    benchmark::DoNotOptimize(trie.Stats().num_nodes);
  }
}
BENCHMARK(BM_IdxBuild_Compressed)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Table V: index-based-solution ladder, city names",
               sss::gen::WorkloadKind::kCityNames)
