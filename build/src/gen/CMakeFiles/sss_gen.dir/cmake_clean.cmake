file(REMOVE_RECURSE
  "CMakeFiles/sss_gen.dir/city_corpus.cc.o"
  "CMakeFiles/sss_gen.dir/city_corpus.cc.o.d"
  "CMakeFiles/sss_gen.dir/city_generator.cc.o"
  "CMakeFiles/sss_gen.dir/city_generator.cc.o.d"
  "CMakeFiles/sss_gen.dir/dna_generator.cc.o"
  "CMakeFiles/sss_gen.dir/dna_generator.cc.o.d"
  "CMakeFiles/sss_gen.dir/query_generator.cc.o"
  "CMakeFiles/sss_gen.dir/query_generator.cc.o.d"
  "CMakeFiles/sss_gen.dir/typo_model.cc.o"
  "CMakeFiles/sss_gen.dir/typo_model.cc.o.d"
  "CMakeFiles/sss_gen.dir/workload.cc.o"
  "CMakeFiles/sss_gen.dir/workload.cc.o.d"
  "libsss_gen.a"
  "libsss_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
