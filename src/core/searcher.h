// The common engine interface: both competitors (sequential scan and
// prefix-trie index) implement Searcher, so benches, tests and examples can
// swap them freely. Mirrors the paper's setup where both solutions answer
// the same query batches and only the result-computation time is compared.
//
// Every entry point takes a SearchContext carrying optional cancellation and
// deadline conditions (see util/cancellation.h). Engines poll the context at
// a bounded candidate interval; a stopped search returns kCancelled with its
// output cleared, so callers never see a silently partial MatchList. The
// context-free overloads are conveniences wiring in an inactive context.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "io/dataset.h"
#include "io/snapshot.h"
#include "util/cancellation.h"
#include "util/result.h"
#include "util/status.h"

namespace sss {

/// \brief How a batch of queries is executed (§3.5/§3.6, plus the sharded
/// batch engine that goes beyond the paper).
enum class ExecutionStrategy {
  kSerial,          // no parallelism
  kThreadPerQuery,  // strategy 1: one thread per query
  kFixedPool,       // strategy 2: fixed worker count
  kAdaptive,        // strategy 3: master/slave adaptive management
  kSharded,         // planner-grouped (shard × query-group) execution
};

/// \brief Parallel execution parameters shared by all engines.
struct ExecutionOptions {
  ExecutionStrategy strategy = ExecutionStrategy::kSerial;
  /// Worker count for kFixedPool and kSharded (0 = hardware concurrency);
  /// the max worker bound for kAdaptive.
  size_t num_threads = 0;
  /// kSharded: target dataset strings per shard (0 = auto-sized from the
  /// worker count and group count). Only range-capable engines shard the
  /// collection; others fall back to query-chunk tasks.
  size_t shard_size = 0;
  /// kSharded: queries whose text lengths land in the same bucket of this
  /// width (and share a threshold) are planned as one group.
  size_t length_bucket_width = 8;
};

/// \brief The outcome of a cancellable batch: graceful degradation instead
/// of all-or-nothing. Queries the batch finished carry their full answers
/// and an OK status; queries cut off by the deadline/token have kCancelled
/// statuses and empty match lists (partial per-query results are discarded —
/// a present answer is always a complete answer).
struct BatchResult {
  /// Positionally parallel to the input queries.
  SearchResults matches;
  /// Per-query outcome; statuses[i].ok() iff matches[i] is trustworthy.
  std::vector<Status> statuses;
  /// Number of queries with OK status.
  size_t completed = 0;
  /// True iff any query was cut off (completed < queries.size()).
  bool truncated = false;
};

/// \brief A built engine answering string similarity queries over one
/// dataset.
class Searcher {
 public:
  virtual ~Searcher() = default;

  /// \brief Appends all dataset ids within query.max_distance of query.text
  /// to `out`, ascending. Returns kCancelled (with `out` cleared) if `ctx`
  /// stopped the search before it finished; `out` holds the complete answer
  /// otherwise. `out` must be empty on entry.
  virtual Status Search(const Query& query, const SearchContext& ctx,
                        MatchList* out) const = 0;

  /// \brief Convenience: Search with no stop conditions (cannot fail).
  MatchList Search(const Query& query) const;

  /// \brief Answers a whole batch, parallelized per `exec`, honoring `ctx`
  /// across queries and executors: when the deadline passes (or the token
  /// cancels), in-flight queries stop cooperatively, queued work is skipped,
  /// and the completed subset comes back tagged per query.
  virtual BatchResult SearchBatch(const QuerySet& queries,
                                  const ExecutionOptions& exec,
                                  const SearchContext& ctx) const;

  /// \brief Convenience: batch with no stop conditions; every query
  /// completes, so only the match lists are interesting.
  SearchResults SearchBatch(const QuerySet& queries,
                            const ExecutionOptions& exec) const;

  /// \brief Engine name for reports ("sequential_scan", "trie_index", ...).
  virtual std::string name() const = 0;

  /// \brief Bytes of auxiliary memory the engine built (index structures,
  /// filter tables; excludes the dataset itself).
  virtual size_t memory_bytes() const { return 0; }

  /// \brief The snapshot this engine was built over. Engines return (a copy
  /// of) the handle they hold, so the caller pins the collection — and its
  /// version id — for as long as the returned handle lives; decorators
  /// forward to the inner engine. nullptr (the default) means "no backing
  /// collection": plan-time skipping and dataset sharding are disabled but
  /// grouped execution stays correct.
  virtual SnapshotHandle SearchedSnapshot() const { return nullptr; }

  /// \brief Convenience over SearchedSnapshot() for callers that only need
  /// the collection (the kSharded planner's group-level length filter and
  /// shard geometry). The pointer is valid for the engine's lifetime (the
  /// engine's own handle keeps the snapshot alive); callers that must
  /// outlive the engine hold the SearchedSnapshot() handle instead.
  const Dataset* SearchedDataset() const {
    const SnapshotHandle snapshot = SearchedSnapshot();
    return snapshot == nullptr ? nullptr : &snapshot->dataset();
  }

  /// \brief True iff SearchRange answers a query restricted to an id range
  /// at proportional cost — the scans, whose data layout *is* the id order.
  /// The sharded driver only splits the collection for such engines; index
  /// engines keep the default and get query-chunk parallelism instead.
  virtual bool SupportsRangeSearch() const { return false; }

  /// \brief Appends every match with begin <= id < end to `out`, ascending.
  /// Stop semantics match Search. Base implementation: full Search()
  /// filtered to the range — correct for any engine but pays the whole
  /// search per call, so the sharded driver never uses it for engines that
  /// do not claim SupportsRangeSearch().
  virtual Status SearchRange(const Query& query, uint32_t begin, uint32_t end,
                             const SearchContext& ctx, MatchList* out) const;

 protected:
  /// \brief Shared batch driver: runs Search(queries[i]) under the chosen
  /// strategy. Engines whose Search is thread-safe get parallelism for free.
  BatchResult RunBatch(const QuerySet& queries, const ExecutionOptions& exec,
                       const SearchContext& ctx) const;

 private:
  /// \brief The kSharded driver: plan (BatchPlanner) → (shard × group)
  /// tasks (ShardedExecutor) → in-order merge. Byte-identical to kSerial.
  BatchResult RunShardedBatch(const QuerySet& queries,
                              const ExecutionOptions& exec,
                              const SearchContext& ctx) const;
};

/// \brief Which engine to construct.
enum class EngineKind {
  kSequentialScan,       // the paper's contribution (§3)
  kTrieIndex,            // the paper's index (§4.1)
  kCompressedTrieIndex,  // §4.2
  kQGramIndex,           // related-work baseline: inverted q-gram index
  kPartitionIndex,       // related-work baseline: pigeonhole partitioning
  kPackedDnaScan,        // §6 future work: scan over 3-bit-packed reads
  kBKTree,               // classic metric-tree baseline (Burkhard–Keller)
};

/// \brief Human-readable engine name.
std::string ToString(EngineKind kind);

/// \brief Strategy name for reports ("serial", "thread_per_query", ...).
std::string ToString(ExecutionStrategy strategy);

/// \brief Builds an engine of `kind` over `snapshot` with default engine
/// options. The searcher keeps a handle, so the snapshot (and its dataset)
/// live at least as long as the engine.
Result<std::unique_ptr<Searcher>> MakeSearcher(EngineKind kind,
                                               SnapshotHandle snapshot);

/// \brief Legacy convenience: wraps `dataset` in a borrowed (non-owning)
/// snapshot. The dataset must outlive the returned searcher — prefer the
/// SnapshotHandle overload anywhere the collection can be replaced at
/// runtime.
Result<std::unique_ptr<Searcher>> MakeSearcher(EngineKind kind,
                                               const Dataset& dataset);

}  // namespace sss
