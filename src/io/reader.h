// File readers for the competition's line-oriented formats.
//
//   dataset file: one string per line ('\n' separated; a trailing '\r' from
//                 CRLF files is stripped; empty lines are skipped)
//   query file:   either "k<TAB>string" per line, or plain strings combined
//                 with a default threshold passed by the caller
#pragma once

#include <string>
#include <string_view>

#include "io/dataset.h"
#include "util/result.h"

namespace sss {

/// \brief Reads a dataset file. `name`/`alphabet` tag the returned Dataset.
Result<Dataset> ReadDatasetFile(const std::string& path, std::string name,
                                AlphabetKind alphabet);

/// \brief Reads a query file. Lines of the form "k<TAB>string" carry their
/// own threshold; bare lines use `default_k`.
Result<QuerySet> ReadQueryFile(const std::string& path, int default_k);

/// \brief Parses one query line (exposed for tests).
Result<Query> ParseQueryLine(std::string_view line, int default_k);

}  // namespace sss
