# Empty dependencies file for bench_table7_seq_dna_ladder.
# This may be replaced when dependencies are built.
