file(REMOVE_RECURSE
  "CMakeFiles/adaptive_pool_test.dir/parallel/adaptive_pool_test.cc.o"
  "CMakeFiles/adaptive_pool_test.dir/parallel/adaptive_pool_test.cc.o.d"
  "adaptive_pool_test"
  "adaptive_pool_test.pdb"
  "adaptive_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
