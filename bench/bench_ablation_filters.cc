// Ablation: candidate filters (paper §6 "Frequency vectors" + q-gram
// filtering from the related literature).
//
// Runs the step-4 scan with each filter stack on both workloads and reports
// batch time plus total matches (identical across rows — the filters are
// sound). Expected shape: the length filter is already implicit in the
// banded verify; frequency vectors help most on DNA where length filtering
// is useless (all reads ≈100 long); q-grams are strongest at small k and
// can cost more than they save at k=16.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scan.h"

namespace sss::bench {
namespace {

gen::WorkloadKind KindOf(int64_t arg) {
  return arg == 0 ? gen::WorkloadKind::kCityNames
                  : gen::WorkloadKind::kDnaReads;
}

// filter_stack: 0 = none, 1 = frequency vector, 2 = q-grams(3), 3 = both.
const SequentialScanSearcher& Engine(gen::WorkloadKind kind,
                                     int filter_stack) {
  static const SequentialScanSearcher* engines[2][4] = {};
  const int ki = kind == gen::WorkloadKind::kCityNames ? 0 : 1;
  if (engines[ki][filter_stack] == nullptr) {
    ScanOptions options;
    options.frequency_filter = filter_stack == 1 || filter_stack == 3;
    options.qgram_filter_q = (filter_stack == 2 || filter_stack == 3) ? 3 : 0;
    engines[ki][filter_stack] =
        new SequentialScanSearcher(SharedWorkload(kind).dataset, options);
  }
  return *engines[ki][filter_stack];
}

void BM_FilterStack(benchmark::State& state) {
  const gen::WorkloadKind kind = KindOf(state.range(0));
  const int stack = static_cast<int>(state.range(1));
  const BenchWorkload& w = SharedWorkload(kind);
  RunBatchBenchmark(state, Engine(kind, stack), w.Batch(100),
                    {ExecutionStrategy::kSerial, 0});
  state.counters["filter_mem_mb"] =
      static_cast<double>(Engine(kind, stack).memory_bytes()) / 1e6;
}
BENCHMARK(BM_FilterStack)
    ->ArgNames({"workload", "stack"})  // stack: 0 none, 1 freq, 2 qgram, 3 both
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN(
    "Ablation: candidate filters (workload 0=city 1=dna; "
    "stack 0=none 1=freq 2=qgram3 3=both)",
    sss::gen::WorkloadKind::kCityNames)
