// Wall-clock timing. The paper (§5.2) measures wall time, not CPU time,
// because parallel runs would otherwise over-report; we follow that choice.
#pragma once

#include <chrono>
#include <cstdint>

namespace sss {

/// \brief Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed wall time in nanoseconds since construction/Reset.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// \brief Elapsed wall time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// \brief Elapsed wall time in milliseconds.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sss
