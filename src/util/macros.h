// Small project-wide macros, in the spirit of arrow/util/macros.h.
#pragma once

#include <cstdio>
#include <cstdlib>

/// \brief Marks a branch as unlikely for the optimizer.
#if defined(__GNUC__) || defined(__clang__)
#define SSS_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define SSS_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define SSS_FORCE_INLINE inline __attribute__((always_inline))
#define SSS_NO_INLINE __attribute__((noinline))
#else
#define SSS_PREDICT_FALSE(x) (x)
#define SSS_PREDICT_TRUE(x) (x)
#define SSS_FORCE_INLINE inline
#define SSS_NO_INLINE
#endif

#define SSS_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

#define SSS_DEFAULT_MOVE_AND_ASSIGN(TypeName) \
  TypeName(TypeName&&) = default;             \
  TypeName& operator=(TypeName&&) = default

/// \brief Aborts the process with a message when an internal invariant is
/// violated. Used for programmer errors only; expected failures go through
/// Status.
#define SSS_CHECK(condition)                                                  \
  do {                                                                        \
    if (SSS_PREDICT_FALSE(!(condition))) {                                    \
      ::std::fprintf(stderr, "SSS_CHECK failed at %s:%d: %s\n", __FILE__,     \
                     __LINE__, #condition);                                   \
      ::std::abort();                                                         \
    }                                                                         \
  } while (false)

#define SSS_DCHECK_ENABLED !defined(NDEBUG)
#if !defined(NDEBUG)
#define SSS_DCHECK(condition) SSS_CHECK(condition)
#else
#define SSS_DCHECK(condition) \
  do {                        \
  } while (false)
#endif

/// \brief Propagates a non-OK Status out of the current function.
#define SSS_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::sss::Status _st = (expr);                 \
    if (SSS_PREDICT_FALSE(!_st.ok())) {         \
      return _st;                               \
    }                                           \
  } while (false)

/// \brief Assigns the value of a Result<T> expression to `lhs`, or propagates
/// its error Status.
#define SSS_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto&& result_name = (rexpr);                            \
  if (SSS_PREDICT_FALSE(!result_name.ok())) {              \
    return result_name.status();                           \
  }                                                        \
  lhs = std::move(result_name).ValueUnsafe()

#define SSS_CONCAT_IMPL(x, y) x##y
#define SSS_CONCAT(x, y) SSS_CONCAT_IMPL(x, y)

#define SSS_ASSIGN_OR_RETURN(lhs, rexpr) \
  SSS_ASSIGN_OR_RETURN_IMPL(SSS_CONCAT(_sss_result_, __LINE__), lhs, rexpr)
