// Figure 7: "best sequential solution vs. best index-based solution, DNA
// reads" — the paper's result for hypothesis 2.
//
//   paper: best scan   = step 4 + 16-thread pool  → 89.53 / 413.98 / 827.32 s
//          best index  = radix trie + 16 threads  → 71.78 / 367.95 / 753.01 s
//
// Expected shape: THE INDEX WINS at every query count — on long strings
// over a 5-symbol alphabet the trie's shared-prefix pruning pays for
// itself (the paper: the index needs only 81–91% of the scan's time).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/compressed_trie.h"
#include "core/scan.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kDnaReads;

const SequentialScanSearcher& Scan() {
  // Faithful to the paper's best scan: the §3.4 step-4 kernel (the banded
  // and bit-parallel kernels are this library's extensions, ablated
  // separately).
  static const auto* engine = [] {
    ScanOptions options;
    options.verify_kernel = VerifyKernel::kPaperStep4;
    return new SequentialScanSearcher(SharedWorkload(kKind).dataset, options);
  }();
  return *engine;
}

const CompressedTrieSearcher& Index() {
  static const auto* engine =
      new CompressedTrieSearcher(SharedWorkload(kKind).dataset,
                                 TriePruning::kPaperRule);
  return *engine;
}

void BM_Fig7_BestSequential(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Scan(), w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kFixedPool, 16});  // paper pick: 16
}
BENCHMARK(BM_Fig7_BestSequential)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

void BM_Fig7_BestIndex(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Index(), w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kFixedPool, 16});  // paper pick: 16
}
BENCHMARK(BM_Fig7_BestIndex)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN(
    "Figure 7: best sequential vs. best index-based solution, DNA reads "
    "(expected: index wins)",
    sss::gen::WorkloadKind::kDnaReads)
