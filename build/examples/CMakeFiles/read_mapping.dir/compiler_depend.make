# Empty compiler generated dependencies file for read_mapping.
# This may be replaced when dependencies are built.
