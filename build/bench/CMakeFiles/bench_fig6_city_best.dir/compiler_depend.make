# Empty compiler generated dependencies file for bench_fig6_city_best.
# This may be replaced when dependencies are built.
