// Machine-readable bench output: pass --json[=path] to any bench binary and
// it writes one BENCH_<binary>.json file next to its human-readable output.
//
// Schema (version 1):
//   {
//     "schema_version": 1,
//     "bench": "<table name>",
//     "workload": {"kind": "...", "scale": F, "query_scale": F,
//                  "seed": N, "strings": N},
//     "runs": [
//       {"engine": "...", "strategy": "...", "threads": N, "queries": N,
//        "k_max": N, "matches": N, "iterations": N,
//        "wall_ns": {"p50": N, "p90": N, "p99": N, "max": N,
//                    "mean": F, "count": N},
//        "stats": {<every SearchStats counter>}}
//     ]
//   }
//
// The flag is stripped before google-benchmark sees argv, so it composes
// with every --benchmark_* flag. Run identity is (engine, strategy, threads,
// queries): the installed google-benchmark has no State::name(), so records
// are keyed by what was actually executed rather than the registration name.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "util/histogram.h"
#include "util/search_stats.h"

namespace sss::bench {

class BenchJson {
 public:
  static BenchJson& Instance() {
    static BenchJson instance;
    return instance;
  }

  /// \brief Removes --json / --json=PATH from argv (call before
  /// benchmark::Initialize). Enables collection when the flag was present;
  /// the default path is BENCH_<basename(argv[0])>.json in the working
  /// directory.
  void StripFlag(int* argc, char** argv) {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        enabled_ = true;
        continue;
      }
      if (std::strncmp(argv[i], "--json=", 7) == 0) {
        enabled_ = true;
        path_ = argv[i] + 7;
        continue;
      }
      argv[kept++] = argv[i];
    }
    *argc = kept;
    if (enabled_ && path_.empty()) {
      const char* base = argv[0];
      for (const char* p = argv[0]; *p != '\0'; ++p) {
        if (*p == '/') base = p + 1;
      }
      path_ = std::string("BENCH_") + base + ".json";
    }
  }

  bool enabled() const noexcept { return enabled_; }

  /// \brief Records the bench name and workload header (call once, after the
  /// shared workload is built).
  void SetContext(const char* bench_name, const std::string& workload_kind,
                  double scale, double query_scale, uint64_t seed,
                  size_t strings) {
    bench_name_ = bench_name;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"kind\":\"%s\",\"scale\":%g,\"query_scale\":%g,"
                  "\"seed\":%" PRIu64 ",\"strings\":%zu}",
                  workload_kind.c_str(), scale, query_scale, seed, strings);
    workload_json_ = buf;
  }

  /// \brief Appends one run record.
  void AddRun(const std::string& engine, const std::string& strategy,
              size_t threads, size_t queries, int k_max, size_t matches,
              uint64_t iterations, const LatencyHistogram& wall_ns,
              const SearchStats& stats) {
    std::string r;
    char buf[384];
    std::snprintf(
        buf, sizeof(buf),
        "{\"engine\":\"%s\",\"strategy\":\"%s\",\"threads\":%zu,"
        "\"queries\":%zu,\"k_max\":%d,\"matches\":%zu,"
        "\"iterations\":%" PRIu64
        ",\"wall_ns\":{\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
        ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64
        ",\"mean\":%.1f,\"count\":%" PRIu64 "},\"stats\":",
        engine.c_str(), strategy.c_str(), threads, queries, k_max, matches,
        iterations, wall_ns.Percentile(0.50), wall_ns.Percentile(0.90),
        wall_ns.Percentile(0.99), wall_ns.max(), wall_ns.Mean(),
        wall_ns.count());
    r += buf;
    stats.AppendJson(&r);
    r += "}";
    runs_.push_back(std::move(r));
  }

  /// \brief Writes the collected document. No-op (returning true) when the
  /// flag was absent; prints to stderr and returns false on I/O failure.
  bool Write() const {
    if (!enabled_) return true;
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\"schema_version\":1,\"bench\":\"%s\",\"workload\":%s,"
                    "\"runs\":[",
                 bench_name_.c_str(),
                 workload_json_.empty() ? "{}" : workload_json_.c_str());
    for (size_t i = 0; i < runs_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ",", runs_[i].c_str());
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("bench json written to %s (%zu runs)\n", path_.c_str(),
                runs_.size());
    return true;
  }

 private:
  BenchJson() = default;
  bool enabled_ = false;
  std::string path_;
  std::string bench_name_;
  std::string workload_json_;
  std::vector<std::string> runs_;
};

}  // namespace sss::bench
