#include "parallel/partitioner.h"

#include <gtest/gtest.h>

#include <numeric>

namespace sss {
namespace {

TEST(PartitionerTest, SinglePartIsWholeRange) {
  const auto ranges = PartitionEvenly(10, 1);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (Range{0, 10}));
}

TEST(PartitionerTest, EvenSplit) {
  const auto ranges = PartitionEvenly(12, 4);
  ASSERT_EQ(ranges.size(), 4u);
  for (const Range& r : ranges) EXPECT_EQ(r.size(), 3u);
}

TEST(PartitionerTest, RemainderGoesToFirstParts) {
  const auto ranges = PartitionEvenly(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].size(), 3u);
  EXPECT_EQ(ranges[1].size(), 3u);
  EXPECT_EQ(ranges[2].size(), 2u);
  EXPECT_EQ(ranges[3].size(), 2u);
}

TEST(PartitionerTest, MorePartsThanItems) {
  const auto ranges = PartitionEvenly(2, 5);
  ASSERT_EQ(ranges.size(), 5u);
  EXPECT_EQ(ranges[0].size(), 1u);
  EXPECT_EQ(ranges[1].size(), 1u);
  for (size_t p = 2; p < 5; ++p) EXPECT_TRUE(ranges[p].empty());
}

TEST(PartitionerTest, ZeroItems) {
  const auto ranges = PartitionEvenly(0, 3);
  ASSERT_EQ(ranges.size(), 3u);
  for (const Range& r : ranges) EXPECT_TRUE(r.empty());
}

// Property: ranges are contiguous, disjoint, cover [0, n), sizes differ by
// at most one.
class PartitionPropertyTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(PartitionPropertyTest, CoversRangeExactly) {
  const auto [n, parts] = GetParam();
  const auto ranges = PartitionEvenly(n, parts);
  ASSERT_EQ(ranges.size(), parts);
  size_t expected_begin = 0;
  size_t min_size = SIZE_MAX, max_size = 0;
  for (const Range& r : ranges) {
    EXPECT_EQ(r.begin, expected_begin);
    EXPECT_LE(r.begin, r.end);
    expected_begin = r.end;
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
  }
  EXPECT_EQ(expected_begin, n);
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionPropertyTest,
    ::testing::Values(std::pair<size_t, size_t>{0, 1},
                      std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{100, 7},
                      std::pair<size_t, size_t>{7, 100},
                      std::pair<size_t, size_t>{1000, 8},
                      std::pair<size_t, size_t>{999, 32},
                      std::pair<size_t, size_t>{1, 64}));

}  // namespace
}  // namespace sss
