#include "core/hamming.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::RandomDataset;
using sss::testing::RandomString;

// Byte-by-byte reference, independent of the word-parallel kernel.
int ReferenceHamming(std::string_view x, std::string_view y) {
  int d = 0;
  for (size_t i = 0; i < x.size(); ++i) d += x[i] != y[i] ? 1 : 0;
  return d;
}

MatchList BruteForceHamming(const Dataset& d, const Query& q) {
  MatchList out;
  for (uint32_t id = 0; id < d.size(); ++id) {
    if (d.Length(id) != q.text.size()) continue;
    if (ReferenceHamming(q.text, d.View(id)) <= q.max_distance) {
      out.push_back(id);
    }
  }
  return out;
}

TEST(HammingDistanceTest, KnownValues) {
  EXPECT_EQ(HammingDistance("", ""), 0);
  EXPECT_EQ(HammingDistance("a", "a"), 0);
  EXPECT_EQ(HammingDistance("a", "b"), 1);
  EXPECT_EQ(HammingDistance("karolin", "kathrin"), 3);
  EXPECT_EQ(HammingDistance("GGGCCGTTGGT", "GGGACGTTGGT"), 1);
}

TEST(HammingDistanceTest, WordParallelMatchesReference) {
  Xoshiro256 rng(0x4A11);
  for (int t = 0; t < 500; ++t) {
    // Lengths straddling the 8-byte word boundary matter most.
    const size_t len = rng.Uniform(40);
    std::string x = RandomString(&rng, "abcd", len, len);
    std::string y = RandomString(&rng, "abcd", len, len);
    ASSERT_EQ(HammingDistance(x, y), ReferenceHamming(x, y))
        << "x='" << x << "' y='" << y << "'";
  }
}

TEST(BoundedHammingTest, ExactWithinThresholdGreaterBeyond) {
  Xoshiro256 rng(0x4A12);
  for (int t = 0; t < 300; ++t) {
    const size_t len = 1 + rng.Uniform(30);
    const std::string x = RandomString(&rng, "ab", len, len);
    const std::string y = RandomString(&rng, "ab", len, len);
    const int expected = ReferenceHamming(x, y);
    for (int k : {0, 1, 3, 8}) {
      const int got = BoundedHamming(x, y, k);
      if (expected <= k) {
        ASSERT_EQ(got, expected);
      } else {
        ASSERT_GT(got, k);
      }
    }
  }
}

TEST(BoundedHammingTest, DifferentLengthsNeverMatch) {
  EXPECT_GT(BoundedHamming("abc", "abcd", 10), 10);
  EXPECT_GT(BoundedHamming("", "a", 5), 5);
  EXPECT_FALSE(WithinHamming("ab", "abc", 99));
}

TEST(HammingScanTest, FindsMatches) {
  Dataset d("x", AlphabetKind::kDna);
  d.Add("ACGT");
  d.Add("ACGA");   // Hamming 1 from ACGT
  d.Add("AGCT");   // Hamming 2
  d.Add("ACG");    // wrong length
  HammingScanSearcher scan(d);
  EXPECT_EQ(scan.Search({"ACGT", 0}), (MatchList{0}));
  EXPECT_EQ(scan.Search({"ACGT", 1}), (MatchList{0, 1}));
  EXPECT_EQ(scan.Search({"ACGT", 2}), (MatchList{0, 1, 2}));
  EXPECT_EQ(scan.name(), "hamming_scan");
}

TEST(HammingTrieTest, FindsMatches) {
  Dataset d("x", AlphabetKind::kDna);
  d.Add("ACGT");
  d.Add("ACGA");
  d.Add("AGCT");
  d.Add("ACG");
  HammingTrieSearcher trie(d);
  EXPECT_EQ(trie.Search({"ACGT", 0}), (MatchList{0}));
  EXPECT_EQ(trie.Search({"ACGT", 1}), (MatchList{0, 1}));
  EXPECT_EQ(trie.Search({"ACGT", 2}), (MatchList{0, 1, 2}));
  EXPECT_EQ(trie.Search({"ACG", 0}), (MatchList{3}));
  EXPECT_TRUE(trie.Search({"AC", 3}).empty());
}

TEST(HammingTrieTest, EmptyQueryAndEmptyStrings) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("");
  d.Add("a");
  HammingTrieSearcher trie(d);
  EXPECT_EQ(trie.Search({"", 0}), (MatchList{0}));
  EXPECT_EQ(trie.Search({"", 5}), (MatchList{0}));  // "a" has length 1
}

struct HammingSweep {
  const char* label;
  const char* alphabet;
  size_t min_len;
  size_t max_len;
  std::vector<int> ks;
};

class HammingEquivalenceTest
    : public ::testing::TestWithParam<HammingSweep> {};

TEST_P(HammingEquivalenceTest, ScanAndTrieMatchBruteForce) {
  const HammingSweep& cfg = GetParam();
  Xoshiro256 rng(0x4A13);
  Dataset d =
      RandomDataset(&rng, cfg.alphabet, 200, cfg.min_len, cfg.max_len);
  HammingScanSearcher scan(d);
  HammingTrieSearcher trie(d);
  for (int t = 0; t < 40; ++t) {
    for (int k : cfg.ks) {
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        for (int e = 0; e < k && !text.empty(); ++e) {
          text[rng.Uniform(text.size())] =
              cfg.alphabet[rng.Uniform(std::string_view(cfg.alphabet)
                                           .size())];
        }
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      const MatchList expected = BruteForceHamming(d, q);
      ASSERT_EQ(scan.Search(q), expected)
          << cfg.label << " (scan) q='" << q.text << "' k=" << k;
      ASSERT_EQ(trie.Search(q), expected)
          << cfg.label << " (trie) q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, HammingEquivalenceTest,
    ::testing::Values(
        HammingSweep{"dna_like", "ACGNT", 20, 30, {0, 4, 8}},
        HammingSweep{"fixed_length", "ab", 10, 10, {0, 1, 2, 5}},
        HammingSweep{"city_like", "abcdefgh -", 2, 20, {0, 1, 2, 3}}),
    [](const ::testing::TestParamInfo<HammingSweep>& info) {
      return info.param.label;
    });

TEST(HammingTest, HammingUpperBoundsEditDistance) {
  // For equal lengths, ed(x,y) ≤ hamming(x,y): substitutions are one valid
  // edit script.
  Xoshiro256 rng(0x4A14);
  for (int t = 0; t < 200; ++t) {
    const size_t len = 1 + rng.Uniform(20);
    const std::string x = RandomString(&rng, "abc", len, len);
    const std::string y = RandomString(&rng, "abc", len, len);
    EXPECT_LE(sss::testing::ReferenceEditDistance(x, y),
              ReferenceHamming(x, y));
  }
}

}  // namespace
}  // namespace sss
