file(REMOVE_RECURSE
  "CMakeFiles/bench_app_read_mapping.dir/bench_app_read_mapping.cc.o"
  "CMakeFiles/bench_app_read_mapping.dir/bench_app_read_mapping.cc.o.d"
  "bench_app_read_mapping"
  "bench_app_read_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_read_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
