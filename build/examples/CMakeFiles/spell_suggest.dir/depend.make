# Empty dependencies file for spell_suggest.
# This may be replaced when dependencies are built.
