#include "core/batch_planner.h"

#include <algorithm>

#include "util/macros.h"

namespace sss {

BatchPlanner::BatchPlanner(BatchPlannerOptions options) : options_(options) {
  if (options_.length_bucket_width == 0) options_.length_bucket_width = 1;
}

const BatchPlan& BatchPlanner::Plan(const QuerySet& queries,
                                    size_t dataset_min_len,
                                    size_t dataset_max_len) {
  arena_.Rewind();
  plan_.groups.clear();
  plan_.num_queries = queries.size();
  plan_.num_skipped_queries = 0;
  if (queries.empty()) return plan_;

  // Key = (threshold, length bucket). Sorting (key, index) pairs groups
  // equal keys and keeps query indices ascending within a group, so plans
  // are deterministic regardless of input order.
  sort_buffer_.clear();
  sort_buffer_.reserve(queries.size());
  const uint64_t width = options_.length_bucket_width;
  for (uint32_t i = 0; i < queries.size(); ++i) {
    const uint64_t bucket = queries[i].text.size() / width;
    const uint64_t k = static_cast<uint64_t>(
        std::max(0, queries[i].max_distance));
    sort_buffer_.emplace_back((k << 40) | bucket, i);
  }
  std::sort(sort_buffer_.begin(), sort_buffer_.end());

  for (size_t run = 0; run < sort_buffer_.size();) {
    const uint64_t key = sort_buffer_[run].first;
    size_t end = run + 1;
    while (end < sort_buffer_.size() && sort_buffer_[end].first == key) ++end;

    QueryGroup group;
    group.num_queries = static_cast<uint32_t>(end - run);
    uint32_t* ids = arena_.NewArray<uint32_t>(group.num_queries);
    uint32_t min_len = UINT32_MAX, max_len = 0;
    for (size_t j = run; j < end; ++j) {
      const uint32_t qi = sort_buffer_[j].second;
      ids[j - run] = qi;
      const auto len = static_cast<uint32_t>(queries[qi].text.size());
      min_len = std::min(min_len, len);
      max_len = std::max(max_len, len);
    }
    group.queries = ids;
    group.max_distance = std::max(0, queries[sort_buffer_[run].second]
                                         .max_distance);
    group.min_query_len = min_len;
    group.max_query_len = max_len;

    // Length filter once per group (eq. 5): any match of any group member
    // has length within k of that member's length.
    const auto k = static_cast<uint32_t>(group.max_distance);
    group.candidate_min_len = min_len > k ? min_len - k : 0;
    group.candidate_max_len =
        max_len > UINT32_MAX - k ? UINT32_MAX : max_len + k;
    group.skip = dataset_max_len < group.candidate_min_len ||
                 dataset_min_len > group.candidate_max_len;
    if (group.skip) plan_.num_skipped_queries += group.num_queries;

    plan_.groups.push_back(group);
    run = end;
  }
  return plan_;
}

}  // namespace sss
