// Figure 6: "best sequential solution vs. best index-based solution, city
// names" — the paper's headline result for hypothesis 1.
//
//   paper: best scan   = step 4 + 8-thread pool  → 1.46 / 3.57 /  5.93 s
//          best index  = radix trie + 32 threads → 1.53 / 7.58 / 14.19 s
//
// Expected shape: THE SCAN WINS at every query count — the paper's point
// that on short strings an optimized scan needs only 4–58% of the index's
// time. (We run both engines with the identical pool so the comparison is
// engine-vs-engine, plus the paper's exact per-engine thread picks.)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/compressed_trie.h"
#include "core/scan.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kCityNames;

const SequentialScanSearcher& Scan() {
  // The paper's best scan: step-4 kernel (this library's faster banded /
  // bit-parallel kernels are deliberately off for fidelity).
  static const auto* engine = [] {
    ScanOptions options;
    options.verify_kernel = VerifyKernel::kPaperStep4;
    return new SequentialScanSearcher(SharedWorkload(kKind).dataset, options);
  }();
  return *engine;
}

const CompressedTrieSearcher& Index() {
  static const auto* engine =
      new CompressedTrieSearcher(SharedWorkload(kKind).dataset,
                                 TriePruning::kPaperRule);
  return *engine;
}

void BM_Fig6_BestSequential(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Scan(), w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kFixedPool, 8});  // paper pick: 8
}
BENCHMARK(BM_Fig6_BestSequential)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

void BM_Fig6_BestIndex(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Index(), w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kFixedPool, 32});  // paper pick: 32
}
BENCHMARK(BM_Fig6_BestIndex)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN(
    "Figure 6: best sequential vs. best index-based solution, city names "
    "(expected: scan wins)",
    sss::gen::WorkloadKind::kCityNames)
