
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/binary_format.cc" "src/io/CMakeFiles/sss_io.dir/binary_format.cc.o" "gcc" "src/io/CMakeFiles/sss_io.dir/binary_format.cc.o.d"
  "/root/repo/src/io/dataset.cc" "src/io/CMakeFiles/sss_io.dir/dataset.cc.o" "gcc" "src/io/CMakeFiles/sss_io.dir/dataset.cc.o.d"
  "/root/repo/src/io/reader.cc" "src/io/CMakeFiles/sss_io.dir/reader.cc.o" "gcc" "src/io/CMakeFiles/sss_io.dir/reader.cc.o.d"
  "/root/repo/src/io/writer.cc" "src/io/CMakeFiles/sss_io.dir/writer.cc.o" "gcc" "src/io/CMakeFiles/sss_io.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
