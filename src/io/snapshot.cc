#include "io/snapshot.h"

#include <atomic>

namespace sss {
namespace {

// Process-wide version source. Starts at 1 so 0 can mean "no generation"
// (e.g. a server response produced outside any EngineHost).
std::atomic<uint64_t> g_next_version{1};

uint64_t NextVersion() noexcept {
  return g_next_version.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CollectionSnapshot::CollectionSnapshot(OwnedTag, Dataset dataset,
                                       std::string source_path)
    : owned_(std::move(dataset)),
      view_(&owned_),
      version_(NextVersion()),
      source_path_(std::move(source_path)) {}

CollectionSnapshot::CollectionSnapshot(BorrowedTag, const Dataset& dataset)
    : view_(&dataset), version_(NextVersion()) {}

SnapshotHandle CollectionSnapshot::Create(Dataset dataset,
                                          std::string source_path) {
  // Plain `new` (not make_shared): the constructors are private, and a
  // snapshot's one-allocation difference is irrelevant at collection scale.
  return SnapshotHandle(new CollectionSnapshot(OwnedTag{}, std::move(dataset),
                                               std::move(source_path)));
}

SnapshotHandle CollectionSnapshot::Borrow(const Dataset& dataset) {
  return SnapshotHandle(new CollectionSnapshot(BorrowedTag{}, dataset));
}

uint64_t CollectionSnapshot::LatestVersion() noexcept {
  return g_next_version.load(std::memory_order_relaxed) - 1;
}

}  // namespace sss
