# Empty compiler generated dependencies file for near_dedupe.
# This may be replaced when dependencies are built.
