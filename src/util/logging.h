// Minimal leveled logging to stderr. Benches and examples use it for
// progress reporting; library code logs only at WARNING and above.
#pragma once

#include <sstream>
#include <string>

namespace sss {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// \brief Global minimum level; messages below it are dropped.
/// Initialized from SSS_LOG_LEVEL (debug|info|warning|error), default info.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// \brief Accumulates one log line and emits it (with level tag and
/// timestamp) on destruction. Use via the SSS_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sss

#define SSS_LOG(level) \
  ::sss::internal::LogMessage(::sss::LogLevel::k##level, __FILE__, __LINE__)
