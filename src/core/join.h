// Similarity self-join: all pairs of dataset strings within edit distance k.
// The EDBT/ICDT 2013 competition the paper draws its datasets from had a
// search track and a join track; the paper implements search, and this
// module rounds the library out with the join (used by the near-duplicate
// detection example).
//
// The implementation is scan-flavoured, in the paper's spirit: strings are
// processed in length order so each one is only compared against the window
// of candidates whose length can still match (the eq.-5 bound applied to the
// join), with the banded/bit-parallel verifier doing the rest.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief One joined pair: ids with ed ≤ k, first < second.
using JoinPair = std::pair<uint32_t, uint32_t>;

/// \brief How the join generates candidate pairs.
enum class JoinAlgorithm {
  /// Length-sorted sliding window + banded verification (scan-flavoured,
  /// the default; best for short strings / small k).
  kScanWindow,
  /// Build a compressed trie once, probe every string against it
  /// (index-flavoured; wins where the trie wins the search problem).
  kTrieProbe,
};

/// \brief Join configuration.
struct JoinOptions {
  /// Distance threshold.
  int max_distance = 1;
  /// Report identical strings (distance 0 pairs) too.
  bool include_exact_duplicates = true;
  /// Candidate generation strategy.
  JoinAlgorithm algorithm = JoinAlgorithm::kScanWindow;
  /// Parallel execution of the outer loop.
  ExecutionOptions exec;
};

/// \brief Computes the similarity self-join of `dataset`. Pairs are returned
/// sorted (by first id, then second).
std::vector<JoinPair> SimilaritySelfJoin(const Dataset& dataset,
                                         const JoinOptions& options);

}  // namespace sss
