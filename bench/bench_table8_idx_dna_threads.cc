// Table VIII: "Management of parallelism in the index-based solution on the
// DNA data set" — the compressed trie under the fixed-pool thread sweep.
//
//   paper (sec):        100q     500q    1000q
//     4 threads        118.31   545.35  1094.73
//     8 threads         76.60   419.59   823.76
//     16 threads        71.78   367.95   753.01   <- paper's pick
//     32 threads        72.62   370.21   768.96
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/compressed_trie.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kDnaReads;

const CompressedTrieSearcher& Engine() {
  static const auto* engine =
      new CompressedTrieSearcher(SharedWorkload(kKind).dataset,
                                 TriePruning::kPaperRule);
  return *engine;
}

void BM_IdxDnaThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const int paper_queries = static_cast<int>(state.range(1));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Engine(), w.Batch(paper_queries),
                    {ExecutionStrategy::kFixedPool, threads});
}
BENCHMARK(BM_IdxDnaThreads)
    ->ArgNames({"threads", "queries"})
    ->ArgsProduct({{4, 8, 16, 32}, {100, 500, 1000}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN(
    "Table VIII: parallelism management, index-based solution, DNA reads",
    sss::gen::WorkloadKind::kDnaReads)
