# Empty dependencies file for sss_core.
# This may be replaced when dependencies are built.
