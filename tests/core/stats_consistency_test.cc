// The observability acceptance test: the engine-side counters an engine
// reports for a batch must not depend on which execution strategy ran it.
// Execution-layer counters (pool opens, task claims) legitimately differ per
// strategy and are checked separately for their own invariants.
#include <gtest/gtest.h>

#include "core/searcher.h"
#include "test_util.h"
#include "util/kernel_dispatch.h"
#include "util/random.h"
#include "util/search_stats.h"

namespace sss {
namespace {

using sss::testing::RandomDataset;
using sss::testing::RandomString;

constexpr ExecutionStrategy kAllStrategies[] = {
    ExecutionStrategy::kSerial, ExecutionStrategy::kThreadPerQuery,
    ExecutionStrategy::kFixedPool, ExecutionStrategy::kAdaptive,
    ExecutionStrategy::kSharded};

// Zeroes the counters owned by the execution layer, leaving only what the
// engine itself reported. planner_skipped_queries is also execution-side:
// only the sharded planner groups (and thus can skip) queries.
SearchStats EngineSide(SearchStats s) {
  s.planner_skipped_queries = 0;
  s.pool_opens = 0;
  s.pool_closes = 0;
  s.tasks_executed = 0;
  s.tasks_stolen = 0;
  return s;
}

SearchStats CollectBatchStats(const Searcher& searcher,
                              const QuerySet& queries,
                              ExecutionStrategy strategy,
                              KernelTierChoice tier = KernelTierChoice::kScalar) {
  StatsSink sink;
  SearchContext ctx;
  ctx.stats = &sink;
  ctx.kernel_tier = tier;
  const BatchResult batch = searcher.SearchBatch(queries, {strategy, 4}, ctx);
  EXPECT_FALSE(batch.truncated) << static_cast<int>(strategy);
  EXPECT_EQ(batch.completed, queries.size()) << static_cast<int>(strategy);
  return sink.Collected();
}

// Query lengths stay within the dataset's length range: a query the batch
// planner can prove unanswerable is skipped by the sharded strategy without
// running any engine code, so it legitimately records less engine-side work
// than the strategies that execute it (covered by PlannerSkipsCountQueries).
QuerySet MakeQueries(Xoshiro256* rng, const char* alphabet, int count,
                     int max_len, int max_k) {
  QuerySet queries;
  for (int i = 0; i < count; ++i) {
    queries.push_back({RandomString(rng, alphabet, 1, max_len),
                       static_cast<int>(rng->Uniform(max_k + 1))});
  }
  return queries;
}

TEST(StatsConsistencyTest, ScanCountersIdenticalAcrossStrategies) {
  Xoshiro256 rng(0x57A7);
  Dataset d = RandomDataset(&rng, "abcdefgh -", 250, 1, 30);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  const QuerySet queries = MakeQueries(&rng, "abcdefgh -", 40, 30, 2);

  const SearchStats serial = EngineSide(
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kSerial));
  // The scan visits every string for every query, funnels through the
  // length filter, and verifies the survivors with the banded kernel.
  EXPECT_EQ(serial.candidates_considered, queries.size() * d.size());
  EXPECT_GT(serial.length_filter_rejects, 0u);
  EXPECT_GT(serial.verify_calls, 0u);
  if (ResolveKernelTier(KernelTierChoice::kScalar) == KernelTier::kScalar) {
    EXPECT_GT(serial.dp_early_aborts, 0u);
  } else {
    // A forced lane tier (SSS_FORCE_KERNEL_TIER) bypasses the per-pair DP;
    // its verifications surface as lane counters instead.
    EXPECT_GT(serial.simd_lanes_verified, 0u);
  }
  EXPECT_EQ(serial.candidates_considered,
            serial.length_filter_rejects + serial.frequency_filter_rejects +
                serial.verify_calls);

  for (ExecutionStrategy strategy : kAllStrategies) {
    if (strategy == ExecutionStrategy::kSerial) continue;
    const SearchStats got =
        EngineSide(CollectBatchStats(*searcher, queries, strategy));
    EXPECT_EQ(got, serial) << "strategy " << ToString(strategy) << "\nserial:\n"
                           << serial.ToString() << "\ngot:\n"
                           << got.ToString();
  }
}

TEST(StatsConsistencyTest, IndexEngineCountersIdenticalAcrossStrategies) {
  Xoshiro256 rng(0x57A8);
  Dataset d = RandomDataset(&rng, "abcd", 200, 1, 20);
  const QuerySet queries = MakeQueries(&rng, "abcd", 24, 20, 2);
  for (EngineKind kind :
       {EngineKind::kTrieIndex, EngineKind::kCompressedTrieIndex,
        EngineKind::kQGramIndex, EngineKind::kPartitionIndex,
        EngineKind::kBKTree}) {
    auto searcher = std::move(MakeSearcher(kind, d)).ValueOrDie();
    const SearchStats serial = EngineSide(
        CollectBatchStats(*searcher, queries, ExecutionStrategy::kSerial));
    EXPECT_GT(serial.matches_found, 0u) << ToString(kind);
    for (ExecutionStrategy strategy : kAllStrategies) {
      if (strategy == ExecutionStrategy::kSerial) continue;
      const SearchStats got =
          EngineSide(CollectBatchStats(*searcher, queries, strategy));
      EXPECT_EQ(got, serial)
          << ToString(kind) << " under " << ToString(strategy) << "\nserial:\n"
          << serial.ToString() << "\ngot:\n"
          << got.ToString();
    }
  }
}

// The lane tiers must keep the counters strategy-independent too: a lane
// group straddling a shard boundary is re-verified by the neighbouring
// shard, but each candidate's verdict is consumed exactly once, so the
// funnel totals cannot depend on the shard geometry.
TEST(StatsConsistencyTest, LaneTierCountersIdenticalAcrossStrategies) {
  if (KernelTierForced()) {
    GTEST_SKIP() << "SSS_FORCE_KERNEL_TIER overrides the context choice";
  }
  Xoshiro256 rng(0x57AE);
  Dataset d = RandomDataset(&rng, "ACGT", 240, 1, 30, AlphabetKind::kDna);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  const QuerySet queries = MakeQueries(&rng, "ACGT", 32, 30, 2);

  const SearchStats serial = EngineSide(CollectBatchStats(
      *searcher, queries, ExecutionStrategy::kSerial, KernelTierChoice::kSwar));
  EXPECT_EQ(serial.candidates_considered, queries.size() * d.size());
  EXPECT_GT(serial.simd_lanes_verified, 0u);
  // Every eligible query runs through the lane path; nothing falls back.
  EXPECT_EQ(serial.simd_fallback_pairs, 0u);
  EXPECT_EQ(serial.simd_lanes_verified + serial.simd_fallback_pairs,
            serial.verify_calls);
  // The lane kernels never call the per-pair DP, so its counters stay zero.
  EXPECT_EQ(serial.dp_early_aborts, 0u);
  EXPECT_EQ(serial.candidates_considered,
            serial.length_filter_rejects + serial.verify_calls);

  for (ExecutionStrategy strategy : kAllStrategies) {
    if (strategy == ExecutionStrategy::kSerial) continue;
    const SearchStats got = EngineSide(CollectBatchStats(
        *searcher, queries, strategy, KernelTierChoice::kSwar));
    EXPECT_EQ(got, serial) << "strategy " << ToString(strategy) << "\nserial:\n"
                           << serial.ToString() << "\ngot:\n"
                           << got.ToString();
  }
}

// simd_lanes_verified and simd_fallback_pairs partition verify_calls: a
// batch mixing lane-eligible queries with an empty query (per-pair
// fallback) must account for every verification in exactly one of the two.
TEST(StatsConsistencyTest, LaneAndFallbackPairsPartitionVerifyCalls) {
  if (KernelTierForced()) {
    GTEST_SKIP() << "SSS_FORCE_KERNEL_TIER overrides the context choice";
  }
  Xoshiro256 rng(0x57AF);
  Dataset d = RandomDataset(&rng, "ACGT", 150, 1, 20, AlphabetKind::kDna);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  QuerySet queries = MakeQueries(&rng, "ACGT", 10, 20, 2);
  queries.push_back({"", 2});  // empty query: per-pair fallback, counted

  const SearchStats stats = CollectBatchStats(
      *searcher, queries, ExecutionStrategy::kSerial, KernelTierChoice::kSwar);
  EXPECT_GT(stats.simd_lanes_verified, 0u);
  EXPECT_GT(stats.simd_fallback_pairs, 0u);  // len <= 2 strings verified
  EXPECT_EQ(stats.simd_lanes_verified + stats.simd_fallback_pairs,
            stats.verify_calls);

  // On the scalar tier both lane counters stay zero.
  const SearchStats scalar = CollectBatchStats(
      *searcher, queries, ExecutionStrategy::kSerial,
      KernelTierChoice::kScalar);
  EXPECT_EQ(scalar.simd_lanes_verified, 0u);
  EXPECT_EQ(scalar.simd_fallback_pairs, 0u);
}

// dispatch_tier is a once-per-batch label (0 = scalar, 1 = swar, 2 = avx2),
// recorded by both the flat and the sharded batch drivers.
TEST(StatsConsistencyTest, DispatchTierRecordsResolvedTier) {
  if (KernelTierForced()) {
    GTEST_SKIP() << "SSS_FORCE_KERNEL_TIER overrides the context choice";
  }
  Xoshiro256 rng(0x57B0);
  Dataset d = RandomDataset(&rng, "ACGT", 60, 1, 16, AlphabetKind::kDna);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  const QuerySet queries = MakeQueries(&rng, "ACGT", 6, 16, 1);

  EXPECT_EQ(CollectBatchStats(*searcher, queries, ExecutionStrategy::kSerial,
                              KernelTierChoice::kScalar)
                .dispatch_tier,
            0u);
  EXPECT_EQ(CollectBatchStats(*searcher, queries, ExecutionStrategy::kSerial,
                              KernelTierChoice::kSwar)
                .dispatch_tier,
            1u);
  EXPECT_EQ(CollectBatchStats(*searcher, queries, ExecutionStrategy::kSharded,
                              KernelTierChoice::kSwar)
                .dispatch_tier,
            1u);
  EXPECT_EQ(CollectBatchStats(*searcher, queries, ExecutionStrategy::kSerial,
                              KernelTierChoice::kAuto)
                .dispatch_tier,
            static_cast<uint64_t>(DetectCpuKernelTier()));
}

TEST(StatsConsistencyTest, PlannerSkipsCountQueries) {
  // Queries provably unanswerable from their length alone (longer than the
  // longest string plus k) are answered by the sharded planner without
  // touching the engine — and the skip is visible in the stats.
  Xoshiro256 rng(0x57AD);
  Dataset d = RandomDataset(&rng, "abcd", 100, 1, 10);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  QuerySet queries = MakeQueries(&rng, "abcd", 8, 10, 1);
  const size_t impossible = 4;
  for (size_t i = 0; i < impossible; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 40, 40), 1});
  }
  const SearchStats sharded =
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kSharded);
  EXPECT_EQ(sharded.planner_skipped_queries, impossible);
  // The serial driver runs every query; nothing is planner-skipped.
  const SearchStats serial =
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kSerial);
  EXPECT_EQ(serial.planner_skipped_queries, 0u);
}

TEST(StatsConsistencyTest, TrieReportsTraversalWork) {
  Xoshiro256 rng(0x57A9);
  Dataset d = RandomDataset(&rng, "abcd", 300, 2, 16);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kTrieIndex, d)).ValueOrDie();
  const QuerySet queries = MakeQueries(&rng, "abcd", 16, 16, 1);
  const SearchStats stats =
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kSerial);
  EXPECT_GT(stats.trie_nodes_visited, 0u);
  EXPECT_GT(stats.trie_nodes_pruned, 0u);
}

TEST(StatsConsistencyTest, MatchesFoundAgreesWithReturnedMatches) {
  Xoshiro256 rng(0x57AA);
  Dataset d = RandomDataset(&rng, "abc", 150, 1, 10);
  const QuerySet queries = MakeQueries(&rng, "abc", 20, 10, 2);
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kQGramIndex, EngineKind::kPartitionIndex}) {
    auto searcher = std::move(MakeSearcher(kind, d)).ValueOrDie();
    StatsSink sink;
    SearchContext ctx;
    ctx.stats = &sink;
    const BatchResult batch =
        searcher->SearchBatch(queries, {ExecutionStrategy::kSerial, 0}, ctx);
    size_t total_matches = 0;
    for (const MatchList& m : batch.matches) total_matches += m.size();
    EXPECT_EQ(sink.Collected().matches_found, total_matches) << ToString(kind);
  }
}

TEST(StatsConsistencyTest, ExecutorCountersReflectStrategy) {
  Xoshiro256 rng(0x57AB);
  Dataset d = RandomDataset(&rng, "abcd", 100, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  const QuerySet queries = MakeQueries(&rng, "abcd", 12, 12, 1);

  const SearchStats serial =
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kSerial);
  EXPECT_EQ(serial.pool_opens, 0u);
  EXPECT_EQ(serial.tasks_executed, queries.size());

  const SearchStats per_query =
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kThreadPerQuery);
  EXPECT_EQ(per_query.pool_opens, queries.size());
  EXPECT_EQ(per_query.pool_closes, queries.size());
  EXPECT_EQ(per_query.tasks_executed, queries.size());

  const SearchStats pooled =
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kFixedPool);
  EXPECT_GT(pooled.pool_opens, 0u);
  EXPECT_EQ(pooled.pool_opens, pooled.pool_closes);
  EXPECT_GT(pooled.tasks_executed, 0u);

  const SearchStats adaptive =
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kAdaptive);
  EXPECT_EQ(adaptive.tasks_executed, queries.size());
  EXPECT_EQ(adaptive.pool_opens, adaptive.pool_closes);

  const SearchStats sharded =
      CollectBatchStats(*searcher, queries, ExecutionStrategy::kSharded);
  EXPECT_GT(sharded.tasks_executed, 0u);
  EXPECT_EQ(sharded.pool_opens, sharded.pool_closes);
}

TEST(StatsConsistencyTest, NoSinkMeansNoCrash) {
  Xoshiro256 rng(0x57AC);
  Dataset d = RandomDataset(&rng, "ab", 50, 1, 8);
  const QuerySet queries = MakeQueries(&rng, "ab", 8, 8, 1);
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kQGramIndex}) {
    auto searcher = std::move(MakeSearcher(kind, d)).ValueOrDie();
    for (ExecutionStrategy strategy : kAllStrategies) {
      const BatchResult batch =
          searcher->SearchBatch(queries, {strategy, 2}, SearchContext{});
      EXPECT_EQ(batch.completed, queries.size());
    }
  }
}

}  // namespace
}  // namespace sss
