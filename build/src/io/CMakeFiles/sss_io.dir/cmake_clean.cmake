file(REMOVE_RECURSE
  "CMakeFiles/sss_io.dir/binary_format.cc.o"
  "CMakeFiles/sss_io.dir/binary_format.cc.o.d"
  "CMakeFiles/sss_io.dir/dataset.cc.o"
  "CMakeFiles/sss_io.dir/dataset.cc.o.d"
  "CMakeFiles/sss_io.dir/reader.cc.o"
  "CMakeFiles/sss_io.dir/reader.cc.o.d"
  "CMakeFiles/sss_io.dir/writer.cc.o"
  "CMakeFiles/sss_io.dir/writer.cc.o.d"
  "libsss_io.a"
  "libsss_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
