#include "gen/query_generator.h"

#include <algorithm>
#include <cstddef>

#include "util/macros.h"

namespace sss::gen {

std::string Perturb(std::string_view base, int edits,
                    std::string_view alphabet, Xoshiro256* rng) {
  std::string s(base);
  for (int e = 0; e < edits; ++e) {
    const uint64_t op = rng->Uniform(3);
    const auto random_symbol = [&]() -> char {
      if (!alphabet.empty()) return alphabet[rng->Uniform(alphabet.size())];
      if (!s.empty()) return s[rng->Uniform(s.size())];
      return 'a';
    };
    switch (op) {
      case 0: {  // insert
        const size_t pos = rng->Uniform(s.size() + 1);
        s.insert(s.begin() + static_cast<ptrdiff_t>(pos), random_symbol());
        break;
      }
      case 1: {  // delete
        if (s.empty()) break;
        const size_t pos = rng->Uniform(s.size());
        s.erase(s.begin() + static_cast<ptrdiff_t>(pos));
        break;
      }
      default: {  // replace
        if (s.empty()) break;
        const size_t pos = rng->Uniform(s.size());
        s[pos] = random_symbol();
        break;
      }
    }
  }
  return s;
}

QuerySet MakeQuerySet(const Dataset& dataset,
                      const QueryGeneratorOptions& options, uint64_t seed) {
  SSS_CHECK(!dataset.empty());
  SSS_CHECK(!options.thresholds.empty());
  Xoshiro256 rng(seed);
  QuerySet queries;
  queries.reserve(options.num_queries);
  for (size_t i = 0; i < options.num_queries; ++i) {
    const int k = options.thresholds[i % options.thresholds.size()];
    const std::string_view base = dataset.View(rng.Uniform(dataset.size()));
    const int edits =
        options.exact_edits
            ? k
            : static_cast<int>(rng.Uniform(static_cast<uint64_t>(k) + 1));
    queries.push_back(Query{Perturb(base, edits, options.alphabet, &rng), k});
  }
  return queries;
}

}  // namespace sss::gen
