#include "align/suffix_array.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace sss::align {
namespace {

// Brute-force occurrence search for cross-checking.
std::vector<uint32_t> BruteOccurrences(std::string_view text,
                                       std::string_view pattern) {
  std::vector<uint32_t> out;
  if (pattern.empty()) {
    for (size_t i = 0; i < text.size(); ++i) {
      out.push_back(static_cast<uint32_t>(i));
    }
    return out;
  }
  size_t pos = 0;
  while ((pos = text.find(pattern, pos)) != std::string::npos) {
    out.push_back(static_cast<uint32_t>(pos));
    ++pos;
  }
  return out;
}

TEST(SuffixArrayTest, EmptyText) {
  SuffixArray sa("");
  EXPECT_EQ(sa.size(), 0u);
  EXPECT_EQ(sa.Count("x"), 0u);
}

TEST(SuffixArrayTest, SingleCharacter) {
  SuffixArray sa("a");
  EXPECT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa.At(0), 0u);
  EXPECT_EQ(sa.Count("a"), 1u);
  EXPECT_EQ(sa.Count("b"), 0u);
}

TEST(SuffixArrayTest, ClassicBanana) {
  SuffixArray sa("banana");
  // Suffixes sorted: a, ana, anana, banana, na, nana.
  EXPECT_EQ(sa.At(0), 5u);
  EXPECT_EQ(sa.At(1), 3u);
  EXPECT_EQ(sa.At(2), 1u);
  EXPECT_EQ(sa.At(3), 0u);
  EXPECT_EQ(sa.At(4), 4u);
  EXPECT_EQ(sa.At(5), 2u);
  EXPECT_EQ(sa.Occurrences("ana"), (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(sa.Occurrences("banana"), (std::vector<uint32_t>{0}));
  EXPECT_EQ(sa.Count("nan"), 1u);
  EXPECT_EQ(sa.Count("x"), 0u);
}

TEST(SuffixArrayTest, SuffixesAreSorted) {
  Xoshiro256 rng(0x5A1);
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    text.push_back("ACGT"[rng.Uniform(4)]);
  }
  SuffixArray sa(text);
  ASSERT_EQ(sa.size(), text.size());
  std::vector<bool> seen(text.size(), false);
  for (size_t i = 1; i < sa.size(); ++i) {
    ASSERT_LT(std::string_view(text).substr(sa.At(i - 1)),
              std::string_view(text).substr(sa.At(i)))
        << "slot " << i;
  }
  for (size_t i = 0; i < sa.size(); ++i) seen[sa.At(i)] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }))
      << "suffix array is not a permutation";
}

TEST(SuffixArrayTest, RepetitiveText) {
  SuffixArray sa(std::string(500, 'a'));
  EXPECT_EQ(sa.Count("aaa"), 498u);
  EXPECT_EQ(sa.Count("b"), 0u);
  // Sorted by length: shortest suffix first.
  EXPECT_EQ(sa.At(0), 499u);
  EXPECT_EQ(sa.At(499), 0u);
}

class SuffixArrayPropertyTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(SuffixArrayPropertyTest, OccurrencesMatchBruteForce) {
  const std::string_view alphabet = GetParam();
  Xoshiro256 rng(0x5A2);
  std::string text;
  const size_t n = 1500;
  for (size_t i = 0; i < n; ++i) {
    text.push_back(alphabet[rng.Uniform(alphabet.size())]);
  }
  SuffixArray sa(text);
  for (int t = 0; t < 120; ++t) {
    std::string pattern;
    if (t % 3 == 0 && !text.empty()) {
      // Pattern guaranteed present: a random substring.
      const size_t len = 1 + rng.Uniform(12);
      const size_t pos = rng.Uniform(text.size() - std::min(text.size(), len) + 1);
      pattern = text.substr(pos, len);
    } else {
      const size_t len = 1 + rng.Uniform(8);
      for (size_t i = 0; i < len; ++i) {
        pattern.push_back(alphabet[rng.Uniform(alphabet.size())]);
      }
    }
    ASSERT_EQ(sa.Occurrences(pattern), BruteOccurrences(text, pattern))
        << "pattern '" << pattern << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, SuffixArrayPropertyTest,
                         ::testing::Values("ACGT", "ab", "abcdefgh"),
                         [](const auto& info) {
                           return std::string("alpha") +
                                  std::to_string(info.index);
                         });

TEST(SuffixArrayTest, MemoryIsFourBytesPerChar) {
  SuffixArray sa(std::string(1000, 'x'));
  EXPECT_EQ(sa.memory_bytes(), 4000u);  // the related work's "4n" claim
}

}  // namespace
}  // namespace sss::align
