// ShardedExecutor — the execution half of ExecutionStrategy::kSharded: a
// dynamic self-scheduling pool whose workers carry persistent scratch (an
// arena plus reusable index buffers) across every task they claim.
//
// The paper's strategies (§3.6) differ only in how threads come and go; the
// task shape stays "one query, full collection". This executor changes the
// task shape instead: callers enumerate (shard × query-group) cells as flat
// task indices, workers claim them from a shared atomic cursor (idle workers
// drain whatever is left — the work-stealing effect without per-worker
// deques), and every worker reuses one ShardScratch for its whole lifetime,
// so the hot path performs no per-query allocation.
//
// This layer is deliberately core-agnostic: it schedules opaque task indices
// and owns only the scratch lifecycle, so src/parallel keeps not depending
// on src/core. The (planner → tasks → merge) orchestration lives with
// Searcher::RunBatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/arena.h"
#include "util/cancellation.h"
#include "util/macros.h"

namespace sss {

/// \brief Executor tuning knobs.
struct ShardedExecutorOptions {
  /// Worker count (0 = hardware concurrency). The calling thread doubles as
  /// worker 0, so `1` means "run inline, no thread is ever spawned".
  size_t num_threads = 0;
};

/// \brief Per-worker scratch handed to every task a worker runs. Lives as
/// long as the executor, so arena-backed task output stays valid after Run()
/// returns (until ResetScratch() or destruction).
struct ShardScratch {
  /// Bump allocator for task output (match spans). Workers append only;
  /// the owner decides when to rewind via ResetScratch().
  Arena arena{size_t{1} << 16};
  /// Reusable per-query match buffer (cleared, never shrunk, between
  /// queries).
  std::vector<uint32_t> match_buffer;
  /// Which worker this scratch belongs to (stable across Run() calls).
  size_t worker_index = 0;
  /// Tasks this worker has executed (stats; proves scratch reuse in tests).
  uint64_t tasks_run = 0;
};

/// \brief A reusable pool of workers with persistent scratch.
class ShardedExecutor {
 public:
  explicit ShardedExecutor(ShardedExecutorOptions options = {});

  SSS_DISALLOW_COPY_AND_ASSIGN(ShardedExecutor);

  using TaskFn = std::function<void(size_t task, ShardScratch* scratch)>;

  /// \brief Runs fn(task, scratch) for every task in [0, num_tasks), each
  /// at most once, across the workers. Blocks until all claimed tasks
  /// finished. fn must be safe to call concurrently for distinct tasks. May
  /// be called repeatedly; scratch (arena contents included) persists across
  /// calls. When `stop` requests a stop, workers stop claiming: unclaimed
  /// tasks are never invoked, and all workers still join before Run returns.
  ///
  /// Returns the number of helper threads spawned for this call (the calling
  /// thread is worker 0 and is never counted), so callers can report thread
  /// open/close totals per batch.
  size_t Run(size_t num_tasks, const TaskFn& fn,
             const SearchContext* stop = nullptr);

  /// \brief Rewinds every worker arena (invalidating prior task output) and
  /// clears stats. Call between batches once output has been merged.
  void ResetScratch();

  /// \brief Configured worker count (≥ 1).
  size_t num_threads() const noexcept { return scratches_.size(); }

  /// \brief Worker `i`'s scratch, for tests and post-run accounting.
  const ShardScratch& scratch(size_t i) const { return *scratches_[i]; }

 private:
  std::vector<std::unique_ptr<ShardScratch>> scratches_;
};

}  // namespace sss
