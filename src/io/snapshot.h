// CollectionSnapshot — the unit of dataset ownership for every engine.
//
// The paper's engines are built once over a frozen collection (§3 step 4's
// contiguous string pool), and the original reproduction encoded that as a
// borrowed `const Dataset&` in every searcher: correct while the process
// serves exactly one dataset forever, fatal the moment the data must be
// replaced under live traffic. A CollectionSnapshot wraps one immutable
// Dataset together with a process-wide monotonically increasing version id,
// and is always held through a refcounted SnapshotHandle:
//
//   * engines keep a handle, so the collection they were built over cannot
//     be destroyed while any engine (or any in-flight query pinning an
//     engine set) still references it;
//   * the version id names the data generation in responses, stats and
//     benches, so results are attributable to the snapshot that produced
//     them across a live reload (see core/engine_host.h).
//
// Snapshots are immutable after construction; "changing the data" always
// means building a new snapshot and republishing (EngineHost::Reload).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "io/dataset.h"

namespace sss {

class CollectionSnapshot;

/// \brief How every layer holds a snapshot. Copying a handle pins the
/// collection (and its version) for as long as the copy lives.
using SnapshotHandle = std::shared_ptr<const CollectionSnapshot>;

/// \brief An immutable, versioned string collection.
class CollectionSnapshot {
 public:
  /// \brief Takes ownership of `dataset` and assigns the next process-wide
  /// version id. `source_path` records where the data came from (empty for
  /// generated/in-memory collections); EngineHost uses it for path-less
  /// reloads.
  static SnapshotHandle Create(Dataset dataset, std::string source_path = "");

  /// \brief Non-owning view over a caller-owned Dataset, for call sites
  /// that manage dataset lifetime themselves (benches, tests, one-shot CLI
  /// runs). The dataset must outlive every handle — exactly the borrowed
  /// `const Dataset&` contract this type replaces; prefer Create() anywhere
  /// the collection can be swapped at runtime.
  static SnapshotHandle Borrow(const Dataset& dataset);

  const Dataset& dataset() const noexcept { return *view_; }
  uint64_t version() const noexcept { return version_; }
  const std::string& source_path() const noexcept { return source_path_; }
  /// \brief True iff this snapshot owns its dataset (Create, not Borrow).
  bool owns_dataset() const noexcept { return view_ == &owned_; }

  /// \brief The most recently assigned version id (0 before any snapshot
  /// exists). Version ids are process-wide: every snapshot gets a strictly
  /// larger id than all snapshots created before it, whichever host or test
  /// created them.
  static uint64_t LatestVersion() noexcept;

  CollectionSnapshot(const CollectionSnapshot&) = delete;
  CollectionSnapshot& operator=(const CollectionSnapshot&) = delete;

 private:
  struct OwnedTag {};
  struct BorrowedTag {};
  CollectionSnapshot(OwnedTag, Dataset dataset, std::string source_path);
  CollectionSnapshot(BorrowedTag, const Dataset& dataset);

  Dataset owned_;             // meaningful only for owning snapshots
  const Dataset* view_;       // always valid: &owned_ or the borrowed one
  uint64_t version_;
  std::string source_path_;
};

}  // namespace sss
