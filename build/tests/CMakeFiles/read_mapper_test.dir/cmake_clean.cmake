file(REMOVE_RECURSE
  "CMakeFiles/read_mapper_test.dir/align/read_mapper_test.cc.o"
  "CMakeFiles/read_mapper_test.dir/align/read_mapper_test.cc.o.d"
  "read_mapper_test"
  "read_mapper_test.pdb"
  "read_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
