#include "util/bitpack.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sss {
namespace {

TEST(DnaCodecTest, EncodeDecodeAllSymbols) {
  for (int i = 0; i < DnaCodec::kAlphabetSize; ++i) {
    const char c = DnaCodec::kAlphabet[i];
    EXPECT_EQ(DnaCodec::Encode(c), i);
    EXPECT_EQ(DnaCodec::Decode(static_cast<uint8_t>(i)), c);
  }
}

TEST(DnaCodecTest, RejectsForeignSymbols) {
  EXPECT_EQ(DnaCodec::Encode('a'), DnaCodec::kInvalidCode);  // lowercase
  EXPECT_EQ(DnaCodec::Encode('X'), DnaCodec::kInvalidCode);
  EXPECT_EQ(DnaCodec::Encode(' '), DnaCodec::kInvalidCode);
  EXPECT_EQ(DnaCodec::Encode('\0'), DnaCodec::kInvalidCode);
}

TEST(DnaCodecTest, IsValidChecksWholeString) {
  EXPECT_TRUE(DnaCodec::IsValid("ACGTN"));
  EXPECT_TRUE(DnaCodec::IsValid(""));
  EXPECT_FALSE(DnaCodec::IsValid("ACGTX"));
  EXPECT_FALSE(DnaCodec::IsValid("acgt"));
}

TEST(PackedDnaTest, EmptyString) {
  auto packed = PackedDna::Pack("");
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->size(), 0u);
  EXPECT_EQ(packed->Unpack(), "");
}

TEST(PackedDnaTest, RoundTripsShortString) {
  auto packed = PackedDna::Pack("AGGCGT");
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->size(), 6u);
  EXPECT_EQ(packed->Unpack(), "AGGCGT");
  EXPECT_EQ(packed->At(0), 'A');
  EXPECT_EQ(packed->At(5), 'T');
}

TEST(PackedDnaTest, RoundTripsAcrossWordBoundary) {
  // 21 symbols per word; use lengths around multiples of 21.
  for (size_t len : {20u, 21u, 22u, 41u, 42u, 43u, 100u}) {
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(DnaCodec::kAlphabet[i % 5]);
    }
    auto packed = PackedDna::Pack(s);
    ASSERT_TRUE(packed.ok()) << "len " << len;
    EXPECT_EQ(packed->Unpack(), s) << "len " << len;
  }
}

TEST(PackedDnaTest, RejectsInvalidSymbol) {
  auto packed = PackedDna::Pack("ACGTZ");
  EXPECT_FALSE(packed.ok());
  EXPECT_TRUE(packed.status().IsInvalid());
}

TEST(PackedDnaTest, CompressionRatioIsThreeEighths) {
  std::string s(168, 'A');  // 168 symbols = exactly 8 words = 64 bytes
  auto packed = PackedDna::Pack(s);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->packed_bytes(), 64u);
  // 64 / 168 ≈ 0.381 ≈ 3/8, the paper's dictionary-compression claim.
  EXPECT_LT(static_cast<double>(packed->packed_bytes()) / s.size(), 0.4);
}

TEST(PackedDnaTest, RandomRoundTripSweep) {
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    const size_t len = rng.Uniform(300);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(DnaCodec::kAlphabet[rng.Uniform(5)]);
    }
    auto packed = PackedDna::Pack(s);
    ASSERT_TRUE(packed.ok());
    ASSERT_EQ(packed->Unpack(), s) << "trial " << trial;
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ(packed->At(i), s[i]) << "trial " << trial << " pos " << i;
    }
  }
}

TEST(PackedDnaPoolTest, AddAndUnpackMany) {
  Xoshiro256 rng(66);
  PackedDnaPool pool;
  std::vector<std::string> truth;
  for (int i = 0; i < 500; ++i) {
    std::string s;
    const size_t len = 80 + rng.Uniform(40);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(DnaCodec::kAlphabet[rng.Uniform(5)]);
    }
    auto id = pool.Add(s);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<uint32_t>(i));
    truth.push_back(s);
  }
  ASSERT_EQ(pool.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    ASSERT_EQ(pool.Unpack(i), truth[i]) << "id " << i;
    ASSERT_EQ(pool.Length(i), truth[i].size());
  }
}

TEST(PackedDnaPoolTest, CodeAtMatchesSource) {
  PackedDnaPool pool;
  ASSERT_TRUE(pool.Add("ACGNT").ok());
  ASSERT_TRUE(pool.Add("TTTAA").ok());
  EXPECT_EQ(pool.CodeAt(0, 0), DnaCodec::Encode('A'));
  EXPECT_EQ(pool.CodeAt(0, 3), DnaCodec::Encode('N'));
  EXPECT_EQ(pool.CodeAt(1, 0), DnaCodec::Encode('T'));
  EXPECT_EQ(pool.CodeAt(1, 4), DnaCodec::Encode('A'));
}

TEST(PackedDnaPoolTest, InvalidAddRollsBack) {
  PackedDnaPool pool;
  ASSERT_TRUE(pool.Add("ACGT").ok());
  const size_t bytes_before = pool.packed_bytes();
  EXPECT_FALSE(pool.Add("ACGTQ").ok());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.packed_bytes(), bytes_before);
  EXPECT_EQ(pool.Unpack(0), "ACGT");  // earlier entry intact
}

TEST(PackedDnaPoolTest, DecodeCodesMatchesUnpack) {
  PackedDnaPool pool;
  ASSERT_TRUE(pool.Add("GATTACANNNGATTACAGATTACAGG").ok());
  std::vector<uint8_t> codes;
  pool.DecodeCodes(0, &codes);
  const std::string text = pool.Unpack(0);
  ASSERT_EQ(codes.size(), text.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(DnaCodec::Decode(codes[i]), text[i]);
  }
}

TEST(PackedDnaPoolTest, TotalSymbolsAccumulates) {
  PackedDnaPool pool;
  ASSERT_TRUE(pool.Add("ACG").ok());
  ASSERT_TRUE(pool.Add("TTTT").ok());
  EXPECT_EQ(pool.total_symbols(), 7u);
}

}  // namespace
}  // namespace sss
