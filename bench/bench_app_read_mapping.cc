// Application benchmark: read mapping with the `align` substrate
// (suffix-array seeding + infix verification) — the use case behind the
// paper's DNA workload. Reports build time, mapping throughput, and
// accuracy against the generator's ground truth.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "align/read_mapper.h"
#include "bench_common.h"
#include "gen/dna_generator.h"
#include "gen/query_generator.h"
#include "util/random.h"

namespace sss::bench {
namespace {

struct MappingWorkload {
  std::string genome;
  std::vector<std::string> reads;
  std::vector<uint32_t> true_positions;
};

const MappingWorkload& SharedMappingWorkload() {
  static const MappingWorkload* workload = [] {
    const BenchConfig cfg = GetBenchConfig(gen::WorkloadKind::kDnaReads);
    auto* w = new MappingWorkload();
    gen::DnaGeneratorOptions options;
    options.genome_length =
        std::max<size_t>(20000, static_cast<size_t>((4 << 20) *
                                                    cfg.data_scale));
    options.num_reads = 1;
    gen::DnaReadGenerator generator(options, cfg.seed);
    w->genome = generator.genome();

    Xoshiro256 rng(cfg.seed ^ 0x3A9);
    const size_t num_reads = 2000;
    for (size_t i = 0; i < num_reads; ++i) {
      const size_t pos = rng.Uniform(w->genome.size() - 120);
      std::string read = w->genome.substr(pos, 100);
      read = gen::Perturb(read, static_cast<int>(rng.Uniform(5)), "ACGT",
                          &rng);
      if (rng.Bernoulli(0.5)) read = align::ReverseComplement(read);
      w->reads.push_back(std::move(read));
      w->true_positions.push_back(static_cast<uint32_t>(pos));
    }
    return w;
  }();
  return *workload;
}

void BM_SuffixArrayBuild(benchmark::State& state) {
  const MappingWorkload& w = SharedMappingWorkload();
  for (auto _ : state) {
    align::SuffixArray sa(w.genome);
    benchmark::DoNotOptimize(sa.size());
  }
  state.counters["genome_bp"] = static_cast<double>(w.genome.size());
}
BENCHMARK(BM_SuffixArrayBuild)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_MapReads(benchmark::State& state) {
  const MappingWorkload& w = SharedMappingWorkload();
  const int max_k = static_cast<int>(state.range(0));
  align::ReadMapperOptions options;
  options.max_distance = max_k;
  static const align::ReadMapper* mappers[8] = {};
  if (mappers[max_k] == nullptr) {
    mappers[max_k] = new align::ReadMapper(w.genome, options);
  }
  const align::ReadMapper& mapper = *mappers[max_k];

  size_t mapped = 0, correct = 0;
  for (auto _ : state) {
    mapped = correct = 0;
    for (size_t i = 0; i < w.reads.size(); ++i) {
      const auto mappings = mapper.Map(w.reads[i]);
      if (mappings.empty()) continue;
      ++mapped;
      const uint32_t got = mappings.front().position;
      const uint32_t want = w.true_positions[i];
      const uint32_t delta = got > want ? got - want : want - got;
      if (delta <= static_cast<uint32_t>(2 * max_k)) ++correct;
    }
  }
  state.counters["reads"] = static_cast<double>(w.reads.size());
  state.counters["mapped_pct"] =
      100.0 * static_cast<double>(mapped) /
      static_cast<double>(w.reads.size());
  state.counters["correct_pct"] =
      100.0 * static_cast<double>(correct) /
      static_cast<double>(w.reads.size());
  state.counters["reads_per_s"] = benchmark::Counter(
      static_cast<double>(w.reads.size() * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MapReads)
    ->ArgNames({"max_k"})
    ->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

int main(int argc, char** argv) {
  sss::bench::BenchJson::Instance().StripFlag(&argc, argv);
  const auto& w = sss::bench::SharedMappingWorkload();
  std::printf("# Application: read mapping (genome %zu bp, %zu reads)\n",
              w.genome.size(), w.reads.size());
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!sss::bench::BenchJson::Instance().Write()) return 1;
  return 0;
}
