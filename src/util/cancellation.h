// Cooperative cancellation and deadlines. Exact similarity search has
// unbounded cost (a huge k degrades every engine toward a full scan), so a
// production batch needs a way to bound work explicitly: callers attach a
// SearchContext carrying an optional CancellationToken and an optional
// Deadline, and every engine hot loop polls it at a bounded candidate
// interval via StopChecker. Nothing here blocks or signals — cancellation is
// purely cooperative, so the cost on the never-cancelled fast path is one
// predictable branch per candidate.
//
// This lives in util (not core) so the executors in src/parallel can honor
// the same stop conditions without depending on the engine layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/kernel_dispatch.h"
#include "util/macros.h"
#include "util/status.h"

namespace sss {

class StatsSink;  // util/search_stats.h; borrowed via SearchContext::stats

/// \brief A sticky thread-safe cancel flag shared between a controller and
/// any number of workers. The controller calls Cancel(); workers poll
/// IsCancelled(). Tokens are typically stack-owned by the caller driving a
/// batch and outlive every search that references them.
class CancellationToken {
 public:
  CancellationToken() = default;
  SSS_DISALLOW_COPY_AND_ASSIGN(CancellationToken);

  /// \brief Requests cancellation. Idempotent; safe from any thread.
  void Cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// \brief True iff Cancel() has been called.
  bool IsCancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// \brief Re-arms the token for reuse across batches. Only call while no
  /// search references it.
  void Reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief A point on the steady clock after which work should stop. The
/// default-constructed Deadline is infinite (never expires), so plumbing one
/// through unconditionally costs nothing on the common no-deadline path.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Constructs an infinite deadline.
  constexpr Deadline() = default;

  static constexpr Deadline Infinite() { return Deadline(); }

  /// \brief A deadline `d` from now. Non-positive durations are already
  /// expired.
  static Deadline After(Clock::duration d) { return Deadline(Clock::now() + d); }
  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }
  static Deadline At(Clock::time_point when) { return Deadline(when); }

  bool IsInfinite() const noexcept { return infinite_; }

  /// \brief True iff the deadline has passed. Always false when infinite.
  bool Expired() const noexcept {
    return !infinite_ && Clock::now() >= when_;
  }

  /// \brief Time left before expiry; Clock::duration::max() when infinite,
  /// zero when already expired.
  Clock::duration Remaining() const noexcept {
    if (infinite_) return Clock::duration::max();
    const Clock::time_point now = Clock::now();
    return now >= when_ ? Clock::duration::zero() : when_ - now;
  }

  /// \brief The raw expiry instant; meaningless when IsInfinite().
  Clock::time_point when() const noexcept { return when_; }

 private:
  constexpr explicit Deadline(Clock::time_point when)
      : when_(when), infinite_(false) {}

  Clock::time_point when_{};
  bool infinite_ = true;
};

/// \brief Per-operation stop conditions carried through Searcher::Search,
/// SearchBatch and the executors. Cheap to copy; the token is borrowed (the
/// caller keeps it alive for the duration of the operation).
struct SearchContext {
  /// Optional external cancel signal (nullptr = not cancellable).
  const CancellationToken* cancellation = nullptr;
  /// Optional time budget (infinite by default).
  Deadline deadline;
  /// Hot loops re-check the stop conditions every `check_interval` units of
  /// work (candidates, trie nodes, ...). Clock reads dominate the check
  /// cost, so the interval trades responsiveness for throughput; the
  /// default keeps serial scans within noise of an uncancellable build.
  uint32_t check_interval = 1024;
  /// Optional observability sink (nullptr = collection disabled, the
  /// default). Engines fold per-call SearchStats deltas into it; executors
  /// add pool/task counters once per batch. See util/search_stats.h.
  StatsSink* stats = nullptr;
  /// Which many-vs-many verify-kernel tier the lane-capable engines should
  /// use (see util/kernel_dispatch.h). kScalar — the default — keeps the
  /// per-pair kernels exactly as before; kAuto opts in to the widest tier
  /// this CPU supports; explicit tiers clamp to hardware capability. The
  /// SSS_FORCE_KERNEL_TIER environment variable overrides this field.
  KernelTierChoice kernel_tier = KernelTierChoice::kScalar;

  /// \brief True iff this context can ever request a stop. Loops with an
  /// inactive context skip stop polling entirely.
  bool CanStop() const noexcept {
    return cancellation != nullptr || !deadline.IsInfinite();
  }

  /// \brief Immediate (unamortized) stop poll: token first (one atomic
  /// load), clock only when a deadline is set.
  bool StopRequested() const noexcept {
    if (cancellation != nullptr && cancellation->IsCancelled()) return true;
    return deadline.Expired();
  }

  /// \brief The kCancelled status describing why a stopped operation ended:
  /// "cancelled" for token cancellation, "deadline exceeded" otherwise.
  Status StopStatus() const;
};

/// \brief Amortizes SearchContext polling over a hot loop: call ShouldStop()
/// once per candidate; it touches the token/clock only every
/// ctx.check_interval calls (and never, when the context is inactive).
class StopChecker {
 public:
  explicit StopChecker(const SearchContext& ctx) noexcept
      : ctx_(&ctx),
        interval_(ctx.CanStop()
                      ? (ctx.check_interval == 0 ? 1 : ctx.check_interval)
                      : 0),
        countdown_(interval_) {}

  /// \brief True when the loop should abandon work and return kCancelled.
  /// Sticky once it has returned true.
  SSS_FORCE_INLINE bool ShouldStop() noexcept {
    // interval_ is 0 for an inactive context (stopped_ stays false) and
    // after a stop was observed (stopped_ is true) — both skip the poll.
    if (SSS_PREDICT_TRUE(interval_ == 0)) return stopped_;
    if (SSS_PREDICT_TRUE(--countdown_ != 0)) return false;
    countdown_ = interval_;
    if (SSS_PREDICT_FALSE(ctx_->StopRequested())) {
      interval_ = 0;
      stopped_ = true;
    }
    return stopped_;
  }

  /// \brief Whether a previous ShouldStop() returned true.
  bool stopped() const noexcept { return stopped_; }

  const SearchContext& context() const noexcept { return *ctx_; }

 private:
  const SearchContext* ctx_;
  uint32_t interval_;
  uint32_t countdown_;
  bool stopped_ = false;
};

}  // namespace sss
