#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

namespace sss {
namespace {

TEST(ArenaTest, AllocateReturnsWritableMemory) {
  Arena arena;
  auto* p = static_cast<char*>(arena.Allocate(128));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 128);
  EXPECT_EQ(static_cast<unsigned char>(p[127]), 0xAB);
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(64);
  std::set<uintptr_t> starts;
  std::vector<std::pair<uintptr_t, size_t>> blocks;
  for (int i = 0; i < 200; ++i) {
    const size_t n = 1 + static_cast<size_t>(i % 37);
    auto* p = static_cast<char*>(arena.Allocate(n));
    std::memset(p, i & 0xFF, n);
    blocks.emplace_back(reinterpret_cast<uintptr_t>(p), n);
  }
  std::sort(blocks.begin(), blocks.end());
  for (size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_GE(blocks[i].first, blocks[i - 1].first + blocks[i - 1].second)
        << "allocation " << i << " overlaps its predecessor";
  }
}

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  (void)arena.Allocate(1, 1);  // misalign the cursor
  for (size_t align : {2, 4, 8, 16, 64}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "alignment " << align;
  }
}

TEST(ArenaTest, GrowsBeyondInitialBlock) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) (void)arena.Allocate(50);
  EXPECT_GT(arena.num_blocks(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, LargeAllocationGetsItsOwnBlock) {
  Arena arena(64);
  auto* p = static_cast<char*>(arena.Allocate(1 << 20));
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 1 << 20);
  EXPECT_GE(arena.bytes_reserved(), size_t{1} << 20);
}

TEST(ArenaTest, NewConstructsObjects) {
  Arena arena;
  struct Pod {
    int a;
    double b;
  };
  Pod* pod = arena.New<Pod>(Pod{3, 2.5});
  EXPECT_EQ(pod->a, 3);
  EXPECT_DOUBLE_EQ(pod->b, 2.5);
}

TEST(ArenaTest, NewArrayIsUsable) {
  Arena arena;
  int* xs = arena.NewArray<int>(100);
  for (int i = 0; i < 100; ++i) xs[i] = i * i;
  EXPECT_EQ(xs[99], 99 * 99);
}

TEST(ArenaTest, CopyStringCopies) {
  Arena arena;
  const char src[] = "hello arena";
  const char* copy = arena.CopyString(src, sizeof(src) - 1);
  EXPECT_NE(copy, src);
  EXPECT_EQ(std::memcmp(copy, src, sizeof(src) - 1), 0);
}

TEST(ArenaTest, CopyEmptyStringIsSafe) {
  Arena arena;
  const char* copy = arena.CopyString("", 0);
  EXPECT_NE(copy, nullptr);
}

TEST(ArenaTest, ResetReleasesEverything) {
  Arena arena(64);
  for (int i = 0; i < 50; ++i) (void)arena.Allocate(100);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.num_blocks(), 0u);
  // Usable again after reset.
  auto* p = static_cast<char*>(arena.Allocate(16));
  std::memset(p, 0, 16);
}

TEST(ArenaTest, RewindKeepsTheLargestBlock) {
  Arena arena(64);
  for (int i = 0; i < 50; ++i) (void)arena.Allocate(100);
  EXPECT_GT(arena.num_blocks(), 1u);
  const size_t reserved_before = arena.bytes_reserved();
  arena.Rewind();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_LE(arena.bytes_reserved(), reserved_before);
  // The kept block's full capacity is reusable: filling it exactly must not
  // reserve anything new, across many rewind cycles (steady-state reuse).
  const size_t kept = arena.bytes_reserved();
  for (int cycle = 0; cycle < 10; ++cycle) {
    auto* p = static_cast<char*>(arena.Allocate(kept, 1));
    std::memset(p, cycle, kept);
    EXPECT_EQ(arena.bytes_reserved(), kept);
    EXPECT_EQ(arena.num_blocks(), 1u);
    arena.Rewind();
  }
}

TEST(ArenaTest, RewindOnFreshArenaIsSafe) {
  Arena arena;
  arena.Rewind();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  auto* p = static_cast<char*>(arena.Allocate(16));
  std::memset(p, 0, 16);
}

TEST(ArenaTest, TracksBytesAllocated) {
  Arena arena;
  (void)arena.Allocate(10, 1);
  (void)arena.Allocate(20, 1);
  EXPECT_GE(arena.bytes_allocated(), 30u);
}

}  // namespace
}  // namespace sss
