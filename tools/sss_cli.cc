// sss_cli — command-line front end for the library, in the shape of the
// EDBT/ICDT 2013 competition harness: datasets and queries are files, the
// tool reports only the result-computation time (I/O excluded), and
// results are written in the competition layout.
//
//   sss_cli generate --workload city --count 40000 --seed 7 \
//           --out data.txt --queries 100 --queries-out q.txt
//   sss_cli search --data data.txt --queries q.txt --engine scan \
//           --strategy pool --threads 8 --out results.txt
//   sss_cli join --data data.txt --k 1 --out pairs.txt
//   sss_cli stats --data data.txt
//
// Engines: scan | trie | ctrie | qgram | partition | packed | bktree
// Strategies: serial | tpq | pool | adaptive
#include <cstdio>
#include <string>

#include "core/join.h"
#include "core/searcher.h"
#include "gen/city_generator.h"
#include "gen/dna_generator.h"
#include "gen/query_generator.h"
#include "gen/workload.h"
#include "io/reader.h"
#include "io/writer.h"
#include "util/flags.h"
#include "util/histogram.h"
#include "util/kernel_dispatch.h"
#include "util/random.h"
#include "util/search_stats.h"
#include "util/stopwatch.h"

// Unwraps a Result into a declaration, or exits the subcommand with the
// error printed (CLI-flavored SSS_ASSIGN_OR_RETURN).
#define SSS_ASSIGN_OR_RETURN_CLI(decl, rexpr)                       \
  auto SSS_CONCAT(_cli_result_, __LINE__) = (rexpr);                \
  if (!SSS_CONCAT(_cli_result_, __LINE__).ok()) {                   \
    return Fail(SSS_CONCAT(_cli_result_, __LINE__).status());       \
  }                                                                 \
  decl = std::move(SSS_CONCAT(_cli_result_, __LINE__)).ValueUnsafe()

namespace sss::cli {
namespace {

// Keeps the latency-pass searches from being optimized away.
volatile size_t benchmark_results_sink_ = 0;

// Exit codes: 0 success, 1 generic error, 2 usage error, 3 I/O error,
// 4 search completed partially (deadline/cancellation truncated the batch),
// 5 service unavailable (shared with sss_server/sss_loadgen: the serving
// layer shed the request or the server is draining).
constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIOError = 3;
constexpr int kExitTruncated = 4;
constexpr int kExitUnavailable = 5;

int Usage() {
  std::fprintf(stderr,
               "usage: sss_cli <generate|search|join|stats> [flags]\n"
               "  generate --workload city|dna --count N [--seed S]\n"
               "           --out FILE [--queries N --queries-out FILE]\n"
               "  search   --data FILE --queries FILE [--default-k K]\n"
               "           [--engine scan|trie|ctrie|qgram|partition|packed|bktree]\n"
               "           [--strategy serial|tpq|pool|adaptive|sharded]\n"
               "           [--threads N] [--shard-size N] [--bucket-width N]\n"
               "           [--deadline-ms MS] [--max-line-bytes N]\n"
               "           [--out FILE] [--dna] [--latency]\n"
               "           [--kernel-tier scalar|swar|avx2|auto]\n"
               "           [--stats] [--stats-json]\n"
               "  join     --data FILE --k K [--out FILE] [--threads N] [--dna]\n"
               "  stats    --data FILE [--dna] [--max-line-bytes N]\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 I/O error,\n"
               "            4 deadline truncated the search,\n"
               "            5 service unavailable (see sss_server)\n");
  return kExitUsage;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  if (status.IsIOError()) return kExitIOError;
  if (status.IsUnavailable()) return kExitUnavailable;
  return kExitError;
}

// Reader limits from flags; exits with usage on a malformed value, so the
// result is delivered via out-parameter and the int return is the exit code
// (negative = keep going).
int LimitsFromFlags(const FlagSet& flags, ReaderLimits* out) {
  Result<int64_t> max_line = flags.GetInt("max-line-bytes", 0);
  if (!max_line.ok()) return Fail(max_line.status());
  if (*max_line < 0) {
    std::fprintf(stderr, "error: --max-line-bytes must be >= 0\n");
    return kExitUsage;
  }
  if (*max_line > 0) out->max_line_bytes = static_cast<size_t>(*max_line);
  return -1;
}

Result<EngineKind> ParseEngine(const std::string& name) {
  if (name == "scan") return EngineKind::kSequentialScan;
  if (name == "trie") return EngineKind::kTrieIndex;
  if (name == "ctrie") return EngineKind::kCompressedTrieIndex;
  if (name == "qgram") return EngineKind::kQGramIndex;
  if (name == "partition") return EngineKind::kPartitionIndex;
  if (name == "packed") return EngineKind::kPackedDnaScan;
  if (name == "bktree") return EngineKind::kBKTree;
  return Status::Invalid("unknown engine '" + name + "'");
}

Result<ExecutionStrategy> ParseStrategy(const std::string& name) {
  if (name == "serial") return ExecutionStrategy::kSerial;
  if (name == "tpq") return ExecutionStrategy::kThreadPerQuery;
  if (name == "pool") return ExecutionStrategy::kFixedPool;
  if (name == "adaptive") return ExecutionStrategy::kAdaptive;
  if (name == "sharded") return ExecutionStrategy::kSharded;
  return Status::Invalid("unknown strategy '" + name + "'");
}

AlphabetKind AlphabetFromFlags(const FlagSet& flags) {
  Result<bool> dna = flags.GetBool("dna", false);
  return dna.ok() && *dna ? AlphabetKind::kDna : AlphabetKind::kGeneric;
}

int RunGenerate(const FlagSet& flags) {
  const std::string workload = flags.GetString("workload", "city");
  SSS_ASSIGN_OR_RETURN_CLI(int64_t count, flags.GetInt("count", 10000));
  SSS_ASSIGN_OR_RETURN_CLI(
      int64_t seed,
      flags.GetInt("seed", static_cast<int64_t>(Xoshiro256::kDefaultSeed)));
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return kExitUsage;
  }

  Dataset dataset;
  gen::WorkloadKind kind;
  if (workload == "city") {
    kind = gen::WorkloadKind::kCityNames;
    gen::CityGeneratorOptions options;
    options.num_strings = static_cast<size_t>(count);
    dataset =
        gen::CityNameGenerator(options, static_cast<uint64_t>(seed))
            .Generate();
  } else if (workload == "dna") {
    kind = gen::WorkloadKind::kDnaReads;
    gen::DnaGeneratorOptions options;
    options.num_reads = static_cast<size_t>(count);
    dataset =
        gen::DnaReadGenerator(options, static_cast<uint64_t>(seed))
            .Generate();
  } else {
    std::fprintf(stderr, "generate: unknown workload '%s'\n",
                 workload.c_str());
    return kExitUsage;
  }

  Status st = WriteDatasetFile(out, dataset);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu strings to %s\n", dataset.size(), out.c_str());

  SSS_ASSIGN_OR_RETURN_CLI(int64_t num_queries, flags.GetInt("queries", 0));
  if (num_queries > 0) {
    const std::string queries_out = flags.GetString("queries-out", "");
    if (queries_out.empty()) {
      std::fprintf(stderr, "generate: --queries needs --queries-out\n");
      return kExitUsage;
    }
    gen::QueryGeneratorOptions q_options;
    q_options.num_queries = static_cast<size_t>(num_queries);
    q_options.thresholds = gen::ThresholdsFor(kind);
    const QuerySet queries = gen::MakeQuerySet(
        dataset, q_options, static_cast<uint64_t>(seed) ^ 0xABCD);
    st = WriteQueryFile(queries_out, queries);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu queries to %s\n", queries.size(),
                queries_out.c_str());
  }
  return kExitOk;
}

int RunSearch(const FlagSet& flags) {
  const std::string data_path = flags.GetString("data", "");
  const std::string query_path = flags.GetString("queries", "");
  if (data_path.empty() || query_path.empty()) {
    std::fprintf(stderr, "search: --data and --queries are required\n");
    return kExitUsage;
  }
  SSS_ASSIGN_OR_RETURN_CLI(int64_t default_k, flags.GetInt("default-k", 0));
  SSS_ASSIGN_OR_RETURN_CLI(int64_t deadline_ms,
                           flags.GetInt("deadline-ms", 0));
  if (deadline_ms < 0) {
    std::fprintf(stderr, "search: --deadline-ms must be >= 0\n");
    return kExitUsage;
  }
  ReaderLimits limits;
  if (const int rc = LimitsFromFlags(flags, &limits); rc >= 0) return rc;

  auto dataset = ReadDatasetFile(data_path, "cli_data",
                                 AlphabetFromFlags(flags), limits);
  if (!dataset.ok()) return Fail(dataset.status());
  auto queries =
      ReadQueryFile(query_path, static_cast<int>(default_k), limits);
  if (!queries.ok()) return Fail(queries.status());

  auto engine_kind = ParseEngine(flags.GetString("engine", "scan"));
  if (!engine_kind.ok()) return Fail(engine_kind.status());
  auto strategy = ParseStrategy(flags.GetString("strategy", "pool"));
  if (!strategy.ok()) return Fail(strategy.status());
  SSS_ASSIGN_OR_RETURN_CLI(int64_t threads, flags.GetInt("threads", 0));
  SSS_ASSIGN_OR_RETURN_CLI(int64_t shard_size, flags.GetInt("shard-size", 0));
  SSS_ASSIGN_OR_RETURN_CLI(int64_t bucket_width,
                           flags.GetInt("bucket-width", 8));

  Stopwatch build_timer;
  auto searcher = MakeSearcher(*engine_kind, *dataset);
  if (!searcher.ok()) return Fail(searcher.status());
  const double build_seconds = build_timer.ElapsedSeconds();

  ExecutionOptions exec;
  exec.strategy = *strategy;
  exec.num_threads = static_cast<size_t>(threads);
  exec.shard_size = static_cast<size_t>(shard_size);
  exec.length_bucket_width =
      bucket_width > 0 ? static_cast<size_t>(bucket_width) : 8;

  const bool want_stats = flags.Has("stats");
  const bool want_stats_json = flags.Has("stats-json");

  SearchContext ctx;
  if (deadline_ms > 0) ctx.deadline = Deadline::AfterMillis(deadline_ms);
  const std::string tier_flag = flags.GetString("kernel-tier", "scalar");
  const std::optional<KernelTierChoice> tier = ParseKernelTierChoice(tier_flag);
  if (!tier.has_value()) {
    std::fprintf(stderr,
                 "search: --kernel-tier must be scalar|swar|avx2|auto\n");
    return kExitUsage;
  }
  ctx.kernel_tier = *tier;
  StatsSink sink;
  if (want_stats || want_stats_json) ctx.stats = &sink;

  // The paper's measurement (§5.2): only the result computation is timed.
  Stopwatch query_timer;
  const BatchResult batch = (*searcher)->SearchBatch(*queries, exec, ctx);
  const double query_seconds = query_timer.ElapsedSeconds();
  const SearchResults& results = batch.matches;

  size_t total_matches = 0;
  for (const MatchList& m : results) total_matches += m.size();
  std::printf(
      "engine=%s strings=%zu queries=%zu completed=%zu matches=%zu\n"
      "build_time=%.3fs query_time=%.3fs (%.3f ms/query)\n",
      (*searcher)->name().c_str(), dataset->size(), queries->size(),
      batch.completed, total_matches, build_seconds, query_seconds,
      queries->empty() ? 0.0
                       : query_seconds * 1e3 /
                             static_cast<double>(queries->size()));

  if (want_stats) {
    std::printf("%s\n", sink.Collected().ToString().c_str());
  }
  if (want_stats_json) {
    std::string json;
    json += "{\"schema_version\":1,\"engine\":\"";
    json += (*searcher)->name();
    json += "\",\"strategy\":\"";
    json += ToString(*strategy);
    json += "\"";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\"queries\":%zu,\"completed\":%zu,\"matches\":%zu,"
                  "\"build_seconds\":%.6f,\"query_seconds\":%.6f,\"stats\":",
                  queries->size(), batch.completed, total_matches,
                  build_seconds, query_seconds);
    json += buf;
    sink.Collected().AppendJson(&json);
    json += "}";
    std::printf("%s\n", json.c_str());
  }

  // Optional per-query latency distribution (serial pass; the parallel
  // batch above reports throughput, this reports the tail). Recorded in
  // nanoseconds — integer microseconds would floor sub-µs queries to 0 —
  // and scaled to µs only for display.
  if (flags.Has("latency")) {
    LatencyHistogram histogram;
    for (const Query& q : *queries) {
      Stopwatch t;
      benchmark_results_sink_ += (*searcher)->Search(q).size();
      histogram.Record(static_cast<uint64_t>(t.ElapsedNanos()));
    }
    std::printf("per-query latency: %s\n",
                histogram.ScaledSummary(1e3, "us").c_str());
  }

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    Status st = WriteResultFile(out, results);
    if (!st.ok()) return Fail(st);
    std::printf("results written to %s\n", out.c_str());
  }
  if (batch.truncated) {
    std::fprintf(stderr,
                 "warning: deadline expired with %zu of %zu queries "
                 "answered; unanswered queries have empty result lines\n",
                 batch.completed, queries->size());
    return kExitTruncated;
  }
  return kExitOk;
}

int RunJoin(const FlagSet& flags) {
  const std::string data_path = flags.GetString("data", "");
  if (data_path.empty()) {
    std::fprintf(stderr, "join: --data is required\n");
    return kExitUsage;
  }
  SSS_ASSIGN_OR_RETURN_CLI(int64_t k, flags.GetInt("k", 1));
  SSS_ASSIGN_OR_RETURN_CLI(int64_t threads, flags.GetInt("threads", 0));

  auto dataset = ReadDatasetFile(data_path, "cli_data",
                                 AlphabetFromFlags(flags));
  if (!dataset.ok()) return Fail(dataset.status());

  JoinOptions options;
  options.max_distance = static_cast<int>(k);
  options.exec = {ExecutionStrategy::kFixedPool,
                  static_cast<size_t>(threads)};
  Stopwatch timer;
  const std::vector<JoinPair> pairs = SimilaritySelfJoin(*dataset, options);
  std::printf("join k=%lld: %zu pairs in %.3fs\n",
              static_cast<long long>(k), pairs.size(),
              timer.ElapsedSeconds());

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "wb");
    if (f == nullptr) return Fail(Status::IOError("cannot open " + out));
    for (const auto& [a, b] : pairs) std::fprintf(f, "%u %u\n", a, b);
    std::fclose(f);
    std::printf("pairs written to %s\n", out.c_str());
  }
  return kExitOk;
}

int RunStats(const FlagSet& flags) {
  const std::string data_path = flags.GetString("data", "");
  if (data_path.empty()) {
    std::fprintf(stderr, "stats: --data is required\n");
    return kExitUsage;
  }
  ReaderLimits limits;
  if (const int rc = LimitsFromFlags(flags, &limits); rc >= 0) return rc;
  auto dataset = ReadDatasetFile(data_path, "cli_data",
                                 AlphabetFromFlags(flags), limits);
  if (!dataset.ok()) return Fail(dataset.status());
  const DatasetStats stats = dataset->ComputeStats();
  std::printf(
      "strings=%zu alphabet=%zu min_len=%zu max_len=%zu avg_len=%.2f "
      "bytes=%zu\n",
      stats.num_strings, stats.alphabet_size, stats.min_length,
      stats.max_length, stats.avg_length, stats.total_bytes);
  return kExitOk;
}

}  // namespace
}  // namespace sss::cli

int main(int argc, char** argv) {
  if (argc < 2) return sss::cli::Usage();
  const std::string command = argv[1];

  auto flags = sss::FlagSet::Parse(argc - 1, argv + 1);
  if (!flags.ok()) return sss::cli::Fail(flags.status());

  if (command == "generate") return sss::cli::RunGenerate(*flags);
  if (command == "search") return sss::cli::RunSearch(*flags);
  if (command == "join") return sss::cli::RunJoin(*flags);
  if (command == "stats") return sss::cli::RunStats(*flags);
  return sss::cli::Usage();
}
