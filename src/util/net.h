// Minimal POSIX TCP helpers for the serving layer: Status-returning socket
// setup (listen / accept / connect) and EINTR-retrying full-buffer I/O.
// All writes are SIGPIPE-safe (MSG_NOSIGNAL), so a peer that disappears
// mid-response surfaces as Status::IOError instead of killing the process.
//
// This lives in util (not src/server) so tools and tests can drive raw
// sockets — e.g. to feed the server deliberately malformed frames — without
// depending on the protocol layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace sss::net {

/// \brief Owns one file descriptor; closes it on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  SSS_DISALLOW_COPY_AND_ASSIGN(Socket);

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }

  /// \brief Closes the descriptor now (idempotent).
  void Close() noexcept;

  /// \brief Releases ownership without closing.
  int Release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// \brief Creates a TCP socket bound to host:port and listening. Port 0
/// binds an ephemeral port — recover it with LocalPort(). `host` must be a
/// numeric IPv4 address ("127.0.0.1", "0.0.0.0").
Result<Socket> ListenTcp(const std::string& host, uint16_t port, int backlog);

/// \brief The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// \brief Blocks for one connection on a listening socket. EINTR retried;
/// transient per-connection failures (ECONNABORTED) retried; a closed or
/// shut-down listener returns kUnavailable so accept loops can exit cleanly.
Result<Socket> Accept(int listen_fd);

/// \brief Blocking connect to a numeric IPv4 host:port.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// \brief Reads exactly `len` bytes unless EOF arrives first; EINTR retried.
/// Returns the byte count actually read: `len` on success, less (possibly 0)
/// on a clean peer close. Socket-level failures return kIOError.
Result<size_t> ReadFull(int fd, void* buf, size_t len);

/// \brief Writes all `len` bytes; EINTR retried, MSG_NOSIGNAL set so a dead
/// peer yields kIOError (EPIPE) instead of SIGPIPE.
Status WriteFull(int fd, const void* buf, size_t len);

/// \brief shutdown(fd, SHUT_RD): wakes this side's blocked reads with EOF
/// while leaving writes usable. The server's drain uses it to tell
/// connection handlers "no more requests" without cutting off in-flight
/// responses.
Status ShutdownRead(int fd);

/// \brief shutdown(fd, SHUT_WR): signals EOF to the peer while keeping this
/// side's reads usable — the client-side "request sent, now drain the
/// response" half-close.
Status ShutdownWrite(int fd);

/// \brief shutdown(fd, SHUT_RDWR): wakes any thread blocked on the socket.
/// Used on listeners to terminate their accept loop.
Status ShutdownBoth(int fd);

}  // namespace sss::net
