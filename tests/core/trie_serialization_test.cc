#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "core/compressed_trie.h"
#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::RandomDataset;
using sss::testing::RandomString;

class TrieSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sss_idx_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string ReadRaw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }
  void WriteRaw(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  std::filesystem::path dir_;
};

TEST_F(TrieSerializationTest, RoundTripAnswersIdentically) {
  Xoshiro256 rng(0x1D1);
  Dataset d = RandomDataset(&rng, "abcdef -", 300, 1, 25);
  CompressedTrieSearcher original(d);
  ASSERT_TRUE(original.SaveIndex(Path("idx.bin")).ok());

  auto loaded = CompressedTrieSearcher::LoadIndex(Path("idx.bin"), d);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Stats().num_nodes, original.Stats().num_nodes);
  EXPECT_EQ((*loaded)->pruning(), original.pruning());

  for (int t = 0; t < 30; ++t) {
    const Query q{RandomString(&rng, "abcdef -", 1, 25),
                  static_cast<int>(rng.Uniform(4))};
    ASSERT_EQ((*loaded)->Search(q), original.Search(q))
        << "q='" << q.text << "' k=" << q.max_distance;
  }
}

TEST_F(TrieSerializationTest, PreservesOptions) {
  Xoshiro256 rng(0x1D2);
  Dataset d = RandomDataset(&rng, "ACGNT", 100, 30, 50, AlphabetKind::kDna);
  CompressedTrieSearcher original(d, TriePruning::kPaperRule,
                                  /*frequency_bounds=*/true);
  ASSERT_TRUE(original.SaveIndex(Path("opt.bin")).ok());
  auto loaded = CompressedTrieSearcher::LoadIndex(Path("opt.bin"), d);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->pruning(), TriePruning::kPaperRule);
  for (int t = 0; t < 15; ++t) {
    const Query q{RandomString(&rng, "ACGNT", 30, 50),
                  static_cast<int>(rng.Uniform(9))};
    ASSERT_EQ((*loaded)->Search(q), original.Search(q));
  }
}

TEST_F(TrieSerializationTest, RejectsDifferentDataset) {
  Xoshiro256 rng(0x1D3);
  Dataset d1 = RandomDataset(&rng, "abc", 100, 2, 10);
  Dataset d2 = RandomDataset(&rng, "abc", 100, 2, 10);
  CompressedTrieSearcher original(d1);
  ASSERT_TRUE(original.SaveIndex(Path("fp.bin")).ok());
  auto loaded = CompressedTrieSearcher::LoadIndex(Path("fp.bin"), d2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalid());
  EXPECT_NE(loaded.status().message().find("fingerprint"),
            std::string::npos);
}

TEST_F(TrieSerializationTest, DetectsCorruption) {
  Xoshiro256 rng(0x1D4);
  Dataset d = RandomDataset(&rng, "ab", 80, 2, 10);
  CompressedTrieSearcher original(d);
  ASSERT_TRUE(original.SaveIndex(Path("c.bin")).ok());
  const std::string full = ReadRaw(Path("c.bin"));

  // Bit flips anywhere must be caught (checksum covers the whole body).
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupted = full;
    const size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    if (corrupted == full) continue;
    WriteRaw(Path("c.bin"), corrupted);
    auto loaded = CompressedTrieSearcher::LoadIndex(Path("c.bin"), d);
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << pos;
  }

  // Truncations too.
  for (size_t keep : {full.size() - 1, full.size() / 2, size_t{10}}) {
    WriteRaw(Path("c.bin"), full.substr(0, keep));
    auto loaded = CompressedTrieSearcher::LoadIndex(Path("c.bin"), d);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep;
  }
}

TEST_F(TrieSerializationTest, MissingFileIsIOError) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("a");
  auto loaded = CompressedTrieSearcher::LoadIndex(Path("nope.bin"), d);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(TrieSerializationTest, EmptyDatasetRoundTrips) {
  Dataset d("empty", AlphabetKind::kGeneric);
  CompressedTrieSearcher original(d);
  ASSERT_TRUE(original.SaveIndex(Path("e.bin")).ok());
  auto loaded = CompressedTrieSearcher::LoadIndex(Path("e.bin"), d);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->Search({"x", 3}).empty());
}

}  // namespace
}  // namespace sss
