#include "align/read_mapper.h"

#include <gtest/gtest.h>

#include "gen/query_generator.h"
#include "test_util.h"
#include "util/random.h"

namespace sss::align {
namespace {

std::string RandomGenome(Xoshiro256* rng, size_t len) {
  std::string g;
  g.reserve(len);
  for (size_t i = 0; i < len; ++i) g.push_back("ACGT"[rng->Uniform(4)]);
  return g;
}

TEST(ReverseComplementTest, KnownValues) {
  EXPECT_EQ(ReverseComplement(""), "");
  EXPECT_EQ(ReverseComplement("A"), "T");
  EXPECT_EQ(ReverseComplement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(ReverseComplement("AACG"), "CGTT");
  EXPECT_EQ(ReverseComplement("ANT"), "ANT");  // N is its own complement
}

TEST(ReverseComplementTest, IsAnInvolution) {
  Xoshiro256 rng(0x4C);
  for (int t = 0; t < 100; ++t) {
    const std::string s = RandomGenome(&rng, 1 + rng.Uniform(50));
    EXPECT_EQ(ReverseComplement(ReverseComplement(s)), s);
  }
}

TEST(InfixEditDistanceTest, ExactSubstringIsZero) {
  EXPECT_EQ(InfixEditDistance("ACGT", "TTACGTTT", 2), 0);
  EXPECT_EQ(InfixEditDistance("ACGT", "ACGT", 0), 0);
  EXPECT_EQ(InfixEditDistance("", "anything", 0), 0);
}

TEST(InfixEditDistanceTest, CountsInnerErrorsOnly) {
  // One substitution inside the window, free ends.
  EXPECT_EQ(InfixEditDistance("ACGT", "TTAGGTTT", 2), 1);   // C→G
  EXPECT_EQ(InfixEditDistance("ACGT", "TTACGGTTT", 2), 1);  // one insertion
  EXPECT_EQ(InfixEditDistance("ACGT", "TTAGTTT", 2), 1);    // one deletion
}

TEST(InfixEditDistanceTest, ExceedingKReportsGreater) {
  EXPECT_GT(InfixEditDistance("AAAA", "TTTTTTT", 2), 2);
  EXPECT_GT(InfixEditDistance("ACGTACGT", "T", 1), 1);
}

TEST(InfixEditDistanceTest, NeverExceedsGlobalDistance) {
  Xoshiro256 rng(0x4D);
  for (int t = 0; t < 200; ++t) {
    const std::string read = RandomGenome(&rng, 1 + rng.Uniform(15));
    const std::string window = RandomGenome(&rng, 1 + rng.Uniform(25));
    const int global =
        sss::testing::ReferenceEditDistance(read, window);
    const int infix = InfixEditDistance(read, window, global);
    EXPECT_LE(infix, global) << "read=" << read << " window=" << window;
  }
}

TEST(ReadMapperTest, ErrorFreeReadsMapToOrigin) {
  Xoshiro256 rng(0x4E);
  const std::string genome = RandomGenome(&rng, 20000);
  ReadMapperOptions options;
  options.max_distance = 4;
  ReadMapper mapper(genome, options);
  for (int t = 0; t < 50; ++t) {
    const size_t pos = rng.Uniform(genome.size() - 100);
    const std::string read = genome.substr(pos, 100);
    const auto mappings = mapper.Map(read);
    ASSERT_FALSE(mappings.empty()) << "read from position " << pos;
    EXPECT_EQ(mappings[0].distance, 0);
    EXPECT_FALSE(mappings[0].reverse_strand);
    // The window starts k before the true position (clamped).
    EXPECT_NEAR(static_cast<double>(mappings[0].position),
                static_cast<double>(pos), options.max_distance);
  }
}

TEST(ReadMapperTest, ReverseStrandReadsAreFound) {
  Xoshiro256 rng(0x4F);
  const std::string genome = RandomGenome(&rng, 20000);
  ReadMapper mapper(genome, {});
  for (int t = 0; t < 25; ++t) {
    const size_t pos = rng.Uniform(genome.size() - 80);
    const std::string read = ReverseComplement(genome.substr(pos, 80));
    const auto mappings = mapper.Map(read);
    ASSERT_FALSE(mappings.empty());
    EXPECT_EQ(mappings[0].distance, 0);
    EXPECT_TRUE(mappings[0].reverse_strand);
  }
}

TEST(ReadMapperTest, MutatedReadsMapWithinBudget) {
  Xoshiro256 rng(0x50);
  const std::string genome = RandomGenome(&rng, 20000);
  ReadMapperOptions options;
  options.max_distance = 4;
  options.map_reverse_strand = false;
  ReadMapper mapper(genome, options);
  size_t mapped = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const size_t pos = rng.Uniform(genome.size() - 100);
    std::string read = genome.substr(pos, 100);
    // Apply ≤ 4 random edits.
    read = sss::gen::Perturb(read, 4, "ACGT", &rng);
    const auto mappings = mapper.Map(read);
    if (!mappings.empty()) {
      ++mapped;
      EXPECT_LE(mappings[0].distance, 4);
    }
  }
  // Pigeonhole seeding guarantees the true locus is a candidate; every
  // mutated read must map.
  EXPECT_EQ(mapped, static_cast<size_t>(trials));
}

TEST(ReadMapperTest, ForeignReadsDoNotMap) {
  Xoshiro256 rng(0x51);
  const std::string genome = RandomGenome(&rng, 20000);
  ReadMapperOptions options;
  options.max_distance = 2;
  ReadMapper mapper(genome, options);
  size_t false_hits = 0;
  for (int t = 0; t < 25; ++t) {
    // A random 100-mer almost surely has no 2-error occurrence in 20 kbp.
    const std::string read = RandomGenome(&rng, 100);
    false_hits += mapper.Map(read).empty() ? 0 : 1;
  }
  EXPECT_EQ(false_hits, 0u);
}

TEST(ReadMapperTest, RepeatMaskingStillFindsUniqueSeeds) {
  // Genome = repetitive region + unique tail; a read overlapping the tail
  // maps even when its other seeds are repeat-masked.
  Xoshiro256 rng(0x52);
  std::string genome(4000, 'A');
  const std::string unique = RandomGenome(&rng, 200);
  genome += unique;
  ReadMapperOptions options;
  options.max_distance = 2;
  options.map_reverse_strand = false;
  options.max_seed_hits = 16;
  ReadMapper mapper(genome, options);
  const std::string read = genome.substr(3950, 120);  // 50 A's + unique
  const auto mappings = mapper.Map(read);
  ASSERT_FALSE(mappings.empty());
  EXPECT_EQ(mappings[0].distance, 0);
}

TEST(ReadMapperTest, MaxMappingsCapsOutput) {
  // A read from a tandem repeat maps in many places; the cap applies.
  std::string genome;
  Xoshiro256 rng(0x53);
  const std::string unit = RandomGenome(&rng, 50);
  for (int i = 0; i < 40; ++i) genome += unit;
  ReadMapperOptions options;
  options.max_distance = 1;
  options.max_mappings = 3;
  options.map_reverse_strand = false;
  options.max_seed_hits = 0;  // no masking
  ReadMapper mapper(genome, options);
  const auto mappings = mapper.Map(unit);
  EXPECT_LE(mappings.size(), 3u);
  EXPECT_FALSE(mappings.empty());
}

}  // namespace
}  // namespace sss::align
