#include "util/string_pool.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sss {
namespace {

TEST(StringPoolTest, EmptyPool) {
  StringPool pool;
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.total_bytes(), 0u);
  EXPECT_EQ(pool.max_length(), 0u);
  EXPECT_EQ(pool.min_length(), 0u);
}

TEST(StringPoolTest, AddReturnsSequentialIds) {
  StringPool pool;
  EXPECT_EQ(pool.Add("a"), 0u);
  EXPECT_EQ(pool.Add("bb"), 1u);
  EXPECT_EQ(pool.Add("ccc"), 2u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(StringPoolTest, ViewRoundTrips) {
  StringPool pool;
  pool.Add("Magdeburg");
  pool.Add("Berlin");
  pool.Add("");
  pool.Add("Ulm");
  EXPECT_EQ(pool.View(0), "Magdeburg");
  EXPECT_EQ(pool.View(1), "Berlin");
  EXPECT_EQ(pool.View(2), "");
  EXPECT_EQ(pool.View(3), "Ulm");
  EXPECT_EQ(pool[1], "Berlin");
}

TEST(StringPoolTest, LengthMatchesView) {
  StringPool pool;
  pool.Add("abc");
  pool.Add("");
  pool.Add("longer string here");
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(pool.Length(i), pool.View(i).size());
  }
}

TEST(StringPoolTest, MinMaxLengthTracked) {
  StringPool pool;
  pool.Add("aaaa");
  pool.Add("a");
  pool.Add("aaaaaaa");
  EXPECT_EQ(pool.min_length(), 1u);
  EXPECT_EQ(pool.max_length(), 7u);
}

TEST(StringPoolTest, TotalBytesIsSumOfLengths) {
  StringPool pool;
  pool.Add("ab");
  pool.Add("cde");
  EXPECT_EQ(pool.total_bytes(), 5u);
}

TEST(StringPoolTest, StorageIsContiguous) {
  StringPool pool;
  pool.Add("abc");
  pool.Add("def");
  EXPECT_EQ(std::string_view(pool.data(), 6), "abcdef");
}

TEST(StringPoolTest, HandlesEmbeddedNulAndHighBytes) {
  StringPool pool;
  const std::string with_nul{"a\0b", 3};
  const std::string high = "\xC3\xA9\xFF";
  pool.Add(with_nul);
  pool.Add(high);
  EXPECT_EQ(pool.View(0), std::string_view(with_nul));
  EXPECT_EQ(pool.View(1), std::string_view(high));
}

TEST(StringPoolTest, ToVectorMaterializesAll) {
  StringPool pool;
  pool.Add("x");
  pool.Add("y");
  const auto v = pool.ToVector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "x");
  EXPECT_EQ(v[1], "y");
}

TEST(StringPoolTest, ManyRandomStringsRoundTrip) {
  Xoshiro256 rng(99);
  StringPool pool;
  std::vector<std::string> truth;
  for (int i = 0; i < 5000; ++i) {
    std::string s;
    const size_t len = rng.Uniform(40);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng.Uniform(256)));
    }
    truth.push_back(s);
    pool.Add(s);
  }
  ASSERT_EQ(pool.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(pool.View(i), std::string_view(truth[i])) << "id " << i;
  }
}

TEST(StringPoolTest, ReserveDoesNotChangeContents) {
  StringPool pool;
  pool.Add("before");
  pool.Reserve(1000, 10000);
  pool.Add("after");
  EXPECT_EQ(pool.View(0), "before");
  EXPECT_EQ(pool.View(1), "after");
}

TEST(StringPoolTest, MoveTransfersContents) {
  StringPool a;
  a.Add("payload");
  StringPool b = std::move(a);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.View(0), "payload");
}

}  // namespace
}  // namespace sss
