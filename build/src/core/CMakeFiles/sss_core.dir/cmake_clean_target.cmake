file(REMOVE_RECURSE
  "libsss_core.a"
)
