// Ablation: the full engine zoo on both paper workloads.
//
// Beyond the paper's two competitors, the library ships the related-work
// baselines its §2.3 discusses (inverted q-gram index, pigeonhole
// partitioning) and the §6 future-work packed-DNA scan. This bench races
// all of them with identical batches, serial, so engine quality is isolated
// from parallelism.
//
// Expected shape:
//   city  — partition index strongest at k ≤ 3 (few probes), q-gram index
//           competitive, paper-rule trie slowest (weak pruning), library
//           scan/banded-trie in between;
//   DNA   — q-gram/partition degrade at k = 16 (vacuous bounds / probe
//           explosion), banded trie and packed scan lead.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/searcher.h"

namespace sss::bench {
namespace {

gen::WorkloadKind KindOf(int64_t arg) {
  return arg == 0 ? gen::WorkloadKind::kCityNames
                  : gen::WorkloadKind::kDnaReads;
}

constexpr EngineKind kEngines[] = {
    EngineKind::kSequentialScan,      EngineKind::kTrieIndex,
    EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
    EngineKind::kPartitionIndex,      EngineKind::kPackedDnaScan,
    EngineKind::kBKTree,
};

const Searcher* Engine(gen::WorkloadKind kind, int engine_idx) {
  static std::unique_ptr<Searcher> engines[2][7];
  const int ki = kind == gen::WorkloadKind::kCityNames ? 0 : 1;
  if (engines[ki][engine_idx] == nullptr) {
    auto result = MakeSearcher(kEngines[engine_idx],
                               SharedWorkload(kind).dataset);
    if (!result.ok()) return nullptr;  // packed scan on city data
    engines[ki][engine_idx] = std::move(result).ValueUnsafe();
  }
  return engines[ki][engine_idx].get();
}

void BM_EngineZoo(benchmark::State& state) {
  const gen::WorkloadKind kind = KindOf(state.range(0));
  const int engine_idx = static_cast<int>(state.range(1));
  const Searcher* engine = Engine(kind, engine_idx);
  if (engine == nullptr) {
    state.SkipWithError("engine not applicable to this workload");
    return;
  }
  const BenchWorkload& w = SharedWorkload(kind);
  RunBatchBenchmark(state, *engine, w.Batch(100),
                    {ExecutionStrategy::kSerial, 0});
  state.SetLabel(engine->name());
  state.counters["index_mb"] =
      static_cast<double>(engine->memory_bytes()) / 1e6;
}
BENCHMARK(BM_EngineZoo)
    ->ArgNames({"workload", "engine"})
    // city: every engine except packed (DNA-only).
    ->ArgsProduct({{0}, {0, 1, 2, 3, 4, 6}})
    // dna: every engine.
    ->ArgsProduct({{1}, {0, 1, 2, 3, 4, 5, 6}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN(
    "Ablation: engine zoo (engine 0=scan 1=trie 2=ctrie 3=qgram "
    "4=partition 5=packed 6=bktree)",
    sss::gen::WorkloadKind::kCityNames)
