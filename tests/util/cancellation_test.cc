#include "util/cancellation.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace sss {
namespace {

TEST(CancellationTokenTest, StartsClearAndSticks) {
  CancellationToken token;
  EXPECT_FALSE(token.IsCancelled());
  token.Cancel();
  EXPECT_TRUE(token.IsCancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.IsCancelled());
  token.Reset();
  EXPECT_FALSE(token.IsCancelled());
}

TEST(CancellationTokenTest, VisibleAcrossThreads) {
  CancellationToken token;
  std::thread other([&token] { token.Cancel(); });
  other.join();
  EXPECT_TRUE(token.IsCancelled());
}

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), Deadline::Clock::duration::max());
  EXPECT_TRUE(Deadline::Infinite().IsInfinite());
}

TEST(DeadlineTest, FarFutureNotExpired) {
  const Deadline d = Deadline::After(std::chrono::hours(24));
  EXPECT_FALSE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.Remaining(), std::chrono::hours(1));
}

TEST(DeadlineTest, PastDeadlineExpired) {
  const Deadline d = Deadline::After(std::chrono::milliseconds(-1));
  EXPECT_FALSE(d.IsInfinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.Remaining(), Deadline::Clock::duration::zero());
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
}

TEST(DeadlineTest, AtWrapsAnInstant) {
  const auto when = Deadline::Clock::now() + std::chrono::hours(1);
  const Deadline d = Deadline::At(when);
  EXPECT_EQ(d.when(), when);
  EXPECT_FALSE(d.Expired());
}

TEST(SearchContextTest, DefaultCannotStop) {
  const SearchContext ctx;
  EXPECT_FALSE(ctx.CanStop());
  EXPECT_FALSE(ctx.StopRequested());
}

TEST(SearchContextTest, TokenDrivesStop) {
  CancellationToken token;
  SearchContext ctx;
  ctx.cancellation = &token;
  EXPECT_TRUE(ctx.CanStop());
  EXPECT_FALSE(ctx.StopRequested());
  token.Cancel();
  EXPECT_TRUE(ctx.StopRequested());
  const Status st = ctx.StopStatus();
  EXPECT_TRUE(st.IsCancelled());
}

TEST(SearchContextTest, DeadlineDrivesStop) {
  SearchContext ctx;
  ctx.deadline = Deadline::After(std::chrono::hours(24));
  EXPECT_TRUE(ctx.CanStop());
  EXPECT_FALSE(ctx.StopRequested());

  ctx.deadline = Deadline::AfterMillis(-5);
  EXPECT_TRUE(ctx.StopRequested());
  EXPECT_TRUE(ctx.StopStatus().IsCancelled());
}

TEST(StopCheckerTest, InactiveContextNeverStops) {
  const SearchContext ctx;
  StopChecker checker(ctx);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_FALSE(checker.ShouldStop());
  }
  EXPECT_FALSE(checker.stopped());
}

TEST(StopCheckerTest, StopsWithinOneInterval) {
  CancellationToken token;
  token.Cancel();
  SearchContext ctx;
  ctx.cancellation = &token;
  ctx.check_interval = 64;
  StopChecker checker(ctx);
  // The pre-cancelled token must be noticed within check_interval calls.
  int calls = 0;
  while (!checker.ShouldStop()) {
    ++calls;
    ASSERT_LE(calls, 64);
  }
  EXPECT_TRUE(checker.stopped());
}

TEST(StopCheckerTest, StickyOnceStopped) {
  CancellationToken token;
  token.Cancel();
  SearchContext ctx;
  ctx.cancellation = &token;
  ctx.check_interval = 1;
  StopChecker checker(ctx);
  EXPECT_TRUE(checker.ShouldStop());
  // Even if the token resets, an observed stop stays observed.
  token.Reset();
  EXPECT_TRUE(checker.ShouldStop());
  EXPECT_TRUE(checker.stopped());
}

TEST(StopCheckerTest, ZeroIntervalPollsEveryCall) {
  CancellationToken token;
  SearchContext ctx;
  ctx.cancellation = &token;
  ctx.check_interval = 0;  // clamped to 1: poll on every call
  StopChecker checker(ctx);
  EXPECT_FALSE(checker.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(checker.ShouldStop());
}

TEST(StopCheckerTest, AmortizedPollingHonorsInterval) {
  CancellationToken token;
  SearchContext ctx;
  ctx.cancellation = &token;
  ctx.check_interval = 100;
  StopChecker checker(ctx);
  // Cancel after construction; nothing stops until a poll boundary.
  for (int i = 0; i < 99; ++i) {
    ASSERT_FALSE(checker.ShouldStop()) << i;
  }
  token.Cancel();
  EXPECT_TRUE(checker.ShouldStop());  // 100th call hits the boundary
}

}  // namespace
}  // namespace sss
