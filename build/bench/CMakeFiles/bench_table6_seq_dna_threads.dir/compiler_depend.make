# Empty compiler generated dependencies file for bench_table6_seq_dna_threads.
# This may be replaced when dependencies are built.
