# Empty compiler generated dependencies file for packed_scan_test.
# This may be replaced when dependencies are built.
