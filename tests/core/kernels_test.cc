#include "core/kernels.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;
using sss::testing::ReferenceEditDistance;

TEST(DiagonalAbortTest, ExactWhenWithinThreshold) {
  Xoshiro256 rng(0xDA);
  for (int t = 0; t < 300; ++t) {
    const std::string x = RandomString(&rng, "abcde", 0, 20);
    const std::string y = RandomString(&rng, "abcde", 0, 20);
    const int expected = ReferenceEditDistance(x, y);
    for (int k : {0, 1, 2, 3, 6}) {
      const int got = internal::EditDistanceDiagonalAbort(x, y, k);
      if (expected <= k) {
        ASSERT_EQ(got, expected) << "x='" << x << "' y='" << y << "'";
      } else {
        ASSERT_GT(got, k) << "x='" << x << "' y='" << y << "'";
      }
    }
  }
}

TEST(DiagonalAbortTest, PaperExampleCondition6Fires) {
  // §3.2's worked example (eq. 8): strings of length 6 and 5, k = 1 — the
  // abort must trigger and report "greater than k".
  EXPECT_GT(internal::EditDistanceDiagonalAbort("AGGCGT", "AGAGT", 1), 1);
  // At k = 2 the true distance (2) is reported.
  EXPECT_EQ(internal::EditDistanceDiagonalAbort("AGGCGT", "AGAGT", 2), 2);
}

TEST(SimpleTypesKernelTest, ExactWhenWithinThreshold) {
  Xoshiro256 rng(0x547);
  EditDistanceWorkspace ws;
  for (int t = 0; t < 300; ++t) {
    const std::string x = RandomString(&rng, "ACGNT", 0, 30);
    const std::string y = RandomString(&rng, "ACGNT", 0, 30);
    const int expected = ReferenceEditDistance(x, y);
    for (int k : {0, 1, 3, 8, 16}) {
      const int got = internal::EditDistanceSimpleTypes(x, y, k, &ws);
      if (expected <= k) {
        ASSERT_EQ(got, expected) << "x='" << x << "' y='" << y << "'";
      } else {
        ASSERT_GT(got, k) << "x='" << x << "' y='" << y << "'";
      }
    }
  }
}

TEST(SimpleTypesKernelTest, AgreesWithDiagonalAbortKernel) {
  Xoshiro256 rng(0x548);
  EditDistanceWorkspace ws;
  for (int t = 0; t < 200; ++t) {
    const std::string x = RandomString(&rng, "ab", 0, 15);
    const std::string y = RandomString(&rng, "ab", 0, 15);
    for (int k : {0, 2, 5}) {
      const int a = internal::EditDistanceDiagonalAbort(x, y, k);
      const int b = internal::EditDistanceSimpleTypes(x, y, k, &ws);
      ASSERT_EQ(a <= k, b <= k) << "x='" << x << "' y='" << y << "' k=" << k;
      if (a <= k) ASSERT_EQ(a, b);
    }
  }
}

TEST(LadderTest, ToStringLabelsMatchPaperRows) {
  EXPECT_EQ(ToString(LadderStep::kBase), "1) Base implementation");
  EXPECT_EQ(ToString(LadderStep::kSimpleTypes),
            "4) Simple data types and program methods");
}

// The paper's correctness gate: every ladder step must return exactly the
// step-1 (reference) results.
class LadderEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(LadderEquivalenceTest, AllStepsReturnReferenceResults) {
  const auto [alphabet, max_k] = GetParam();
  Xoshiro256 rng(0x1AD);
  Dataset d = RandomDataset(&rng, alphabet, 120, 1, 24);
  EditDistanceWorkspace ws;
  for (int t = 0; t < 25; ++t) {
    Query q{RandomString(&rng, alphabet, 1, 24),
            static_cast<int>(rng.Uniform(max_k + 1))};
    const MatchList expected = BruteForceSearch(d, q);
    for (LadderStep step :
         {LadderStep::kBase, LadderStep::kFastEditDistance,
          LadderStep::kReferences, LadderStep::kSimpleTypes}) {
      ASSERT_EQ(RunLadderKernel(d, q, step, &ws), expected)
          << "step " << ToString(step) << " q='" << q.text
          << "' k=" << q.max_distance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, LadderEquivalenceTest,
    ::testing::Values(std::make_tuple("abcdefgh", 3),
                      std::make_tuple("ACGNT", 8),
                      std::make_tuple("ab", 4)));

TEST(LadderTest, MatchesArriveInAscendingIdOrder) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("abc");
  d.Add("zzz");
  d.Add("abd");
  d.Add("abc");
  EditDistanceWorkspace ws;
  const Query q{"abc", 1};
  for (LadderStep step :
       {LadderStep::kBase, LadderStep::kFastEditDistance,
        LadderStep::kReferences, LadderStep::kSimpleTypes}) {
    const MatchList m = RunLadderKernel(d, q, step, &ws);
    ASSERT_EQ(m, (MatchList{0, 2, 3})) << ToString(step);
  }
}

TEST(LadderTest, EmptyDatasetYieldsNoMatches) {
  Dataset d("empty", AlphabetKind::kGeneric);
  EditDistanceWorkspace ws;
  const Query q{"anything", 3};
  for (LadderStep step :
       {LadderStep::kBase, LadderStep::kFastEditDistance,
        LadderStep::kReferences, LadderStep::kSimpleTypes}) {
    EXPECT_TRUE(RunLadderKernel(d, q, step, &ws).empty());
  }
}

TEST(LadderTest, EmptyQueryMatchesShortStrings) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("a");
  d.Add("ab");
  d.Add("abc");
  EditDistanceWorkspace ws;
  const Query q{"", 2};
  for (LadderStep step :
       {LadderStep::kBase, LadderStep::kFastEditDistance,
        LadderStep::kReferences, LadderStep::kSimpleTypes}) {
    EXPECT_EQ(RunLadderKernel(d, q, step, &ws), (MatchList{0, 1}))
        << ToString(step);
  }
}

}  // namespace
}  // namespace sss
