// Reload-path costs: what a zero-downtime dataset swap actually spends, and
// where. A live reload has two phases with wildly different budgets —
// building the next generation's engines (milliseconds to seconds, done off
// the serving path, old generation keeps answering) and publishing the
// finished set (a pointer swap under a lock held for nanoseconds — the only
// window concurrent Acquire() calls can even contend with).
//
//   BM_HostLoad/engines:N — full EngineHost::Load: snapshot -> N engines ->
//                           publish. Wall time is dominated by index builds.
//   BM_PublishSwap        — the swap window alone, measured by the host's
//                           last_publish_nanos counter while a full reload
//                           runs. The zero-downtime claim in one number.
//
// --json writes BENCH_reload.json. The bench-smoke CI job asserts the
// publish-swap p99 stays under 1 ms (1e6 ns) — orders of magnitude of
// headroom over the ~100 ns a shared_ptr assignment costs, but tight enough
// to catch anything heavyweight (an engine build, an I/O read) creeping
// inside the publish window.
#include "bench_common.h"

#include <string>
#include <utility>
#include <vector>

#include "core/engine_host.h"
#include "io/snapshot.h"

namespace sss::bench {
namespace {

std::vector<EngineSpec> SpecsFor(int engines) {
  std::vector<EngineSpec> specs = {
      EngineSpec::For(EngineKind::kSequentialScan)};
  if (engines >= 2) specs.push_back(EngineSpec::For(EngineKind::kTrieIndex));
  if (engines >= 3) specs.push_back(EngineSpec::Auto());
  return specs;
}

// Dataset is move-only (its StringPool does not copy), so an owned snapshot
// per iteration means re-pooling the shared collection's strings.
Dataset CloneDataset(const Dataset& source) {
  Dataset clone(source.name(), source.alphabet());
  clone.Reserve(source.size(), source.pool().total_bytes());
  for (size_t i = 0; i < source.size(); ++i) clone.Add(source[i]);
  return clone;
}

std::string SpecsName(const char* prefix, int engines) {
  switch (engines) {
    case 1:
      return std::string(prefix) + "[scan]";
    case 2:
      return std::string(prefix) + "[scan+trie]";
    default:
      return std::string(prefix) + "[scan+trie+auto]";
  }
}

// One full generation per iteration: copy the shared collection into a
// fresh owned snapshot (outside the timed region), then time Load() end to
// end. Each iteration also contributes one sample of the publish window to
// the swap-latency run.
void BM_HostLoad(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(gen::WorkloadKind::kCityNames);
  const int engines = static_cast<int>(state.range(0));
  StatsSink sink;
  EngineHostOptions options;
  options.stats = &sink;
  EngineHost host(SpecsFor(engines), options);

  BenchJson& json = BenchJson::Instance();
  LatencyHistogram wall_ns;
  LatencyHistogram publish_ns;
  uint64_t iterations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Dataset next = CloneDataset(w.dataset);  // the snapshot owns its copy
    state.ResumeTiming();
    Stopwatch timer;
    const Status st = host.Load(CollectionSnapshot::Create(std::move(next)));
    const uint64_t elapsed = static_cast<uint64_t>(timer.ElapsedNanos());
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
    wall_ns.Record(elapsed);
    publish_ns.Record(
        host.counters().last_publish_nanos.load(std::memory_order_relaxed));
    ++iterations;
  }
  state.counters["engines"] = static_cast<double>(engines);
  state.counters["build_us"] = static_cast<double>(
      host.counters().last_build_micros.load(std::memory_order_relaxed));
  state.counters["publish_ns_max"] = static_cast<double>(publish_ns.max());

  if (json.enabled() && iterations > 0) {
    // Run 1: the full reload (stats carry host_reload_build_micros etc.).
    json.AddRun(SpecsName("host_build", engines), "reload", 1,
                /*queries=*/0, /*k_max=*/0, /*matches=*/0, iterations,
                wall_ns, sink.Collected());
    // Run 2: the publish window alone — wall_ns here IS the swap latency,
    // which the CI smoke bounds below 1 ms.
    json.AddRun(SpecsName("publish_swap", engines), "reload", 1,
                /*queries=*/0, /*k_max=*/0, /*matches=*/0, iterations,
                publish_ns, SearchStats{});
  }
}
BENCHMARK(BM_HostLoad)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("reload", sss::gen::WorkloadKind::kCityNames)
