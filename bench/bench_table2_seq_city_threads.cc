// Table II: "Management of parallelism in the sequential solution on the
// city name data set" — the best serial scan (ladder step 4) on a fixed
// pool of 4 / 8 / 16 / 32 threads, for the 100 / 500 / 1000 query batches.
//
// Paper's finding: 8 threads (≈ core count) is the optimum; 32 threads
// oversubscribe.
//
//   paper (sec):        100q    500q    1000q
//     4 threads         1.29    3.98     7.21
//     8 threads         1.46    3.57     5.93   <- winner at 500/1000
//     16 threads        2.29    3.86     6.17
//     32 threads        4.56    5.48     6.98
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scan.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kCityNames;

const SequentialScanSearcher& Engine() {
  // Paper-faithful step-4 scan (comparable with Table III rows).
  static const auto* engine = [] {
    ScanOptions options;
    options.verify_kernel = VerifyKernel::kPaperStep4;
    return new SequentialScanSearcher(SharedWorkload(kKind).dataset, options);
  }();
  return *engine;
}

void BM_SeqCityThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const int paper_queries = static_cast<int>(state.range(1));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Engine(), w.Batch(paper_queries),
                    {ExecutionStrategy::kFixedPool, threads});
}
BENCHMARK(BM_SeqCityThreads)
    ->ArgNames({"threads", "queries"})
    ->ArgsProduct({{4, 8, 16, 32}, {100, 500, 1000}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN(
    "Table II: parallelism management, sequential solution, city names",
    sss::gen::WorkloadKind::kCityNames)
