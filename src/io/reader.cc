#include "io/reader.h"

#include <charconv>
#include <cstdio>
#include <vector>

#include "util/failpoint.h"

namespace sss {

namespace {

// Reads an entire file into `out`. Uses stdio rather than ifstream to avoid
// per-read locale machinery; dataset files are hundreds of megabytes at the
// paper's full scale.
Status SlurpFile(const std::string& path, std::string* out,
                 const ReaderLimits& limits) {
  SSS_FAILPOINT_STATUS("reader:open");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot determine size of '" + path + "'");
  }
  if (static_cast<unsigned long>(size) > limits.max_file_bytes) {
    std::fclose(f);
    return Status::Invalid("'" + path + "' is " + std::to_string(size) +
                           " bytes, over the " +
                           std::to_string(limits.max_file_bytes) +
                           "-byte limit");
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  const size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::IOError("short read from '" + path + "'");
  }
  SSS_FAILPOINT_STATUS("reader:read");
  return Status::OK();
}

// Invokes fn(line_number, line) for each '\n'-separated line, with trailing
// '\r' removed. Lines are byte spans: embedded NUL bytes are preserved and
// do not terminate a line. Returns the first non-OK status from fn.
template <typename Fn>
Status ForEachLine(std::string_view contents, Fn&& fn) {
  size_t begin = 0;
  size_t line_number = 1;
  while (begin <= contents.size()) {
    size_t end = contents.find('\n', begin);
    if (end == std::string_view::npos) end = contents.size();
    std::string_view line = contents.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    SSS_RETURN_NOT_OK(fn(line_number, line));
    if (end == contents.size()) break;
    begin = end + 1;
    ++line_number;
  }
  return Status::OK();
}

Status LineTooLong(const std::string& path, size_t line_number, size_t size,
                   const ReaderLimits& limits) {
  return Status::Invalid("line " + std::to_string(line_number) + " of '" +
                         path + "' is " + std::to_string(size) +
                         " bytes, over the " +
                         std::to_string(limits.max_line_bytes) +
                         "-byte limit");
}

}  // namespace

Result<Dataset> ReadDatasetFile(const std::string& path, std::string name,
                                AlphabetKind alphabet,
                                const ReaderLimits& limits) {
  std::string contents;
  SSS_RETURN_NOT_OK(SlurpFile(path, &contents, limits));
  Dataset dataset(std::move(name), alphabet);
  SSS_RETURN_NOT_OK(ForEachLine(
      contents, [&](size_t line_number, std::string_view line) -> Status {
        if (line.size() > limits.max_line_bytes) {
          return LineTooLong(path, line_number, line.size(), limits);
        }
        if (!line.empty()) dataset.Add(line);
        return Status::OK();
      }));
  return dataset;
}

Result<Query> ParseQueryLine(std::string_view line, int default_k,
                             const ReaderLimits& limits) {
  const size_t tab = line.find('\t');
  if (tab == std::string_view::npos) {
    if (default_k < 0 || default_k > limits.max_threshold) {
      return Status::Invalid("default threshold " + std::to_string(default_k) +
                             " outside [0, " +
                             std::to_string(limits.max_threshold) + "]");
    }
    return Query{std::string(line), default_k};
  }
  const std::string_view k_field = line.substr(0, tab);
  int k = 0;
  const auto [ptr, ec] =
      std::from_chars(k_field.data(), k_field.data() + k_field.size(), k);
  if (ec != std::errc() || ptr != k_field.data() + k_field.size() || k < 0) {
    return Status::Invalid("bad threshold field '" + std::string(k_field) +
                           "' in query line");
  }
  if (k > limits.max_threshold) {
    return Status::Invalid("threshold " + std::to_string(k) + " over the " +
                           std::to_string(limits.max_threshold) + " limit");
  }
  return Query{std::string(line.substr(tab + 1)), k};
}

Result<QuerySet> ReadQueryFile(const std::string& path, int default_k,
                               const ReaderLimits& limits) {
  std::string contents;
  SSS_RETURN_NOT_OK(SlurpFile(path, &contents, limits));
  QuerySet queries;
  SSS_RETURN_NOT_OK(ForEachLine(
      contents, [&](size_t line_number, std::string_view line) -> Status {
        if (line.empty()) return Status::OK();
        if (line.size() > limits.max_line_bytes) {
          return LineTooLong(path, line_number, line.size(), limits);
        }
        Result<Query> q = ParseQueryLine(line, default_k, limits);
        if (!q.ok()) {
          return Status::Invalid("line " + std::to_string(line_number) +
                                 " of '" + path + "': " +
                                 std::string(q.status().message()));
        }
        queries.push_back(std::move(q).ValueUnsafe());
        return Status::OK();
      }));
  return queries;
}

}  // namespace sss
