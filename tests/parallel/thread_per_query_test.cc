#include "parallel/thread_per_query.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

namespace sss {
namespace {

TEST(ThreadPerQueryTest, RunsEveryItemExactlyOnce) {
  std::vector<std::atomic<int>> hits(200);
  RunThreadPerItem(200, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPerQueryTest, ZeroItemsIsNoop) {
  int calls = 0;
  RunThreadPerItem(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPerQueryTest, SingleItem) {
  std::atomic<int> calls{0};
  RunThreadPerItem(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPerQueryTest, ItemsRunOnDistinctThreads) {
  std::mutex mu;
  std::set<std::thread::id> ids;
  RunThreadPerItem(8, [&](size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(ids.size(), 8u) << "strategy 1 must spawn one thread per item";
}

TEST(ThreadPerQueryTest, MaxLiveBoundsConcurrency) {
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<int> total{0};
  RunThreadPerItem(
      32,
      [&](size_t) {
        const int now = concurrent.fetch_add(1) + 1;
        int old_peak = peak.load();
        while (now > old_peak &&
               !peak.compare_exchange_weak(old_peak, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        concurrent.fetch_sub(1);
        total.fetch_add(1);
      },
      /*max_live=*/4);
  EXPECT_EQ(total.load(), 32);
  EXPECT_LE(peak.load(), 4);
}

TEST(ThreadPerQueryTest, BlocksUntilAllComplete) {
  std::atomic<int> done{0};
  RunThreadPerItem(16, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 16) << "RunThreadPerItem returned before joining";
}

}  // namespace
}  // namespace sss
