file(REMOVE_RECURSE
  "CMakeFiles/city_generator_test.dir/gen/city_generator_test.cc.o"
  "CMakeFiles/city_generator_test.dir/gen/city_generator_test.cc.o.d"
  "city_generator_test"
  "city_generator_test.pdb"
  "city_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
