file(REMOVE_RECURSE
  "CMakeFiles/bktree_test.dir/core/bktree_test.cc.o"
  "CMakeFiles/bktree_test.dir/core/bktree_test.cc.o.d"
  "bktree_test"
  "bktree_test.pdb"
  "bktree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bktree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
