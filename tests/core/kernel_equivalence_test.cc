// Differential kernel-equivalence suite for the many-vs-many verify tiers
// (core/simd_verify): every executable tier — scalar, SWAR, and AVX2 when
// the CPU has it — must return BYTE-IDENTICAL verdicts to the per-pair
// reference on the same (query, candidate, k) triples. The suite drives the
// tiers three ways:
//
//   1. exhaustively over small alphabets (every boundary of the Myers
//      recurrence at tiny sizes, including the packed2 DNA column layout);
//   2. on >= 5000 randomized triples per tier spanning the one-block,
//      two-block and generic multi-block kernels;
//   3. through whole engines, where all KernelTierChoice values must
//      produce identical match lists under serial and sharded execution.
//
// Metamorphic properties of edit distance (symmetry, triangle inequality,
// unit-edit Lipschitz bounds, prefix steps) are checked per tier as well —
// they catch systematic kernel errors that a buggy reference could mask.
//
// CI runs this binary under SSS_FORCE_KERNEL_TIER=scalar|swar|avx2 (and an
// -msse2 baseline build); KernelDispatchTest.EnvForceRespected asserts the
// override actually took effect in those jobs.

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lane_pool.h"
#include "core/packed_scan.h"
#include "core/scan.h"
#include "core/searcher.h"
#include "core/simd_verify.h"
#include "io/dataset.h"
#include "test_util.h"
#include "util/kernel_dispatch.h"
#include "util/random.h"

namespace sss {
namespace {

using testing::BruteForceSearch;
using testing::RandomString;
using testing::ReferenceEditDistance;

/// The tiers this machine can actually execute. kScalar and kSwar always
/// run; kAvx2 joins when CPUID reports AVX2 (on other machines the AVX2
/// rows of the differential matrix are covered by CI's forced-tier jobs on
/// AVX2 runners).
std::vector<KernelTier> ExecutableTiers() {
  std::vector<KernelTier> tiers = {KernelTier::kScalar, KernelTier::kSwar};
  if (DetectCpuKernelTier() == KernelTier::kAvx2) {
    tiers.push_back(KernelTier::kAvx2);
  }
  return tiers;
}

/// What every tier must report for a triple: the exact distance when <= k,
/// else k + 1 (the BoundedMyers contract).
int ClampedReference(const std::string& query, const std::string& candidate,
                     int k) {
  const int d = ReferenceEditDistance(query, candidate);
  return d <= k ? d : k + 1;
}

/// Runs one (query, candidate) pair through the real pool builder and the
/// lane verifier: a one-string dataset yields a pool whose only group holds
/// the candidate in lane 0.
int LaneDistance(LaneVerifier* verifier, const std::string& query,
                 const std::string& candidate, int k, KernelTier tier,
                 AlphabetKind kind = AlphabetKind::kGeneric) {
  Dataset dataset("pair", kind);
  dataset.Add(candidate);
  const LanePool pool = LanePool::Build(dataset);
  for (const LanePool::Bucket& bucket : pool.buckets()) {
    if (bucket.num_candidates == 0) continue;
    verifier->SetQuery(query);
    int out[kLaneWidth];
    verifier->VerifyGroup(pool.Group(bucket, 0), k, tier, out);
    return out[0];
  }
  ADD_FAILURE() << "candidate landed in no bucket";
  return -1;
}

/// All strings of length `len` over `alphabet`, appended to `out`.
void EnumerateStrings(std::string_view alphabet, size_t len,
                      std::vector<std::string>* out) {
  if (len == 0) {
    out->emplace_back();
    return;
  }
  std::vector<std::string> shorter;
  EnumerateStrings(alphabet, len - 1, &shorter);
  for (const std::string& s : shorter) {
    for (char c : alphabet) out->push_back(s + c);
  }
}

TEST(KernelEquivalenceTest, ExhaustiveSmallAlphabet) {
  std::vector<std::string> strings;
  for (size_t len = 0; len <= 4; ++len) EnumerateStrings("ab", len, &strings);
  LaneVerifier verifier;
  const std::vector<KernelTier> tiers = ExecutableTiers();
  for (const std::string& q : strings) {
    for (const std::string& c : strings) {
      for (int k = 0; k <= 4; ++k) {
        const int want = ClampedReference(q, c, k);
        for (KernelTier tier : tiers) {
          EXPECT_EQ(LaneDistance(&verifier, q, c, k, tier), want)
              << "tier=" << ToString(tier) << " q=\"" << q << "\" c=\"" << c
              << "\" k=" << k;
        }
      }
    }
  }
}

// The DNA exhaustive pass goes through the packed2 column layout (pure-ACGT
// candidates pack four 2-bit codes per column byte), exercising the 4-entry
// peq table path the generic test above never touches.
TEST(KernelEquivalenceTest, ExhaustiveDnaPacked2) {
  std::vector<std::string> strings;
  for (size_t len = 0; len <= 3; ++len) {
    EnumerateStrings("ACGT", len, &strings);
  }
  LaneVerifier verifier;
  const std::vector<KernelTier> tiers = ExecutableTiers();
  for (const std::string& q : strings) {
    for (const std::string& c : strings) {
      for (int k : {0, 1, 3}) {
        const int want = ClampedReference(q, c, k);
        for (KernelTier tier : tiers) {
          EXPECT_EQ(LaneDistance(&verifier, q, c, k, tier, AlphabetKind::kDna),
                    want)
              << "tier=" << ToString(tier) << " q=\"" << q << "\" c=\"" << c
              << "\" k=" << k;
        }
      }
    }
  }
}

// The acceptance-criteria workhorse: >= 5000 randomized triples, each
// verified on every executable tier against the clamped reference. The
// three regimes pin all kernel shapes: short generic strings (one-block),
// ~100-symbol DNA (the two-block register specialization, packed2 and
// byte-mode via an occasional 'N'), and long strings crossing 64 and 128
// symbols (the generic multi-block loop).
TEST(KernelEquivalenceTest, RandomizedTriplesAllTiersMatchReference) {
  Xoshiro256 rng(20260810);
  LaneVerifier verifier;
  const std::vector<KernelTier> tiers = ExecutableTiers();
  constexpr int kTriples = 5200;
  for (int iter = 0; iter < kTriples; ++iter) {
    std::string q, c;
    AlphabetKind kind = AlphabetKind::kGeneric;
    switch (iter % 3) {
      case 0:  // one-block generic
        q = RandomString(&rng, "abcdez", 0, 40);
        c = RandomString(&rng, "abcdez", 0, 40);
        break;
      case 1:  // two-block DNA; every 5th candidate carries 'N' (byte mode)
        q = RandomString(&rng, "ACGT", 80, 120);
        c = RandomString(&rng, iter % 15 == 1 ? "ACGTN" : "ACGT", 80, 120);
        kind = AlphabetKind::kDna;
        break;
      default:  // generic multi-block, lengths straddling 64 and 128
        q = RandomString(&rng, "abc", 50, 170);
        c = RandomString(&rng, "abc", 50, 170);
        break;
    }
    const int k = static_cast<int>(rng.Uniform(13));
    const int want = ClampedReference(q, c, k);
    for (KernelTier tier : tiers) {
      ASSERT_EQ(LaneDistance(&verifier, q, c, k, tier, kind), want)
          << "iter=" << iter << " tier=" << ToString(tier) << " q=\"" << q
          << "\" c=\"" << c << "\" k=" << k;
    }
  }
}

// Full groups with mixed lengths inside one bucket: every lane must capture
// its own final score (the per-lane blend at lengths[l] == j + 1), not the
// group's last column.
TEST(KernelEquivalenceTest, MixedLengthGroupsPerLaneCapture) {
  Xoshiro256 rng(99);
  Dataset dataset("groups", AlphabetKind::kDna);
  for (int i = 0; i < 64; ++i) {
    // Lengths 96..103 share the width-8 bucket [96, 104).
    dataset.Add(RandomString(&rng, i % 7 == 0 ? "ACGTN" : "ACGT", 96, 103));
  }
  const LanePool pool = LanePool::Build(dataset);
  LaneVerifier verifier;
  const std::string q = RandomString(&rng, "ACGT", 95, 105);
  verifier.SetQuery(q);
  for (KernelTier tier : ExecutableTiers()) {
    for (const LanePool::Bucket& bucket : pool.buckets()) {
      for (size_t g = 0; g < bucket.num_groups(); ++g) {
        const LaneGroupView group = pool.Group(bucket, g);
        for (int k : {0, 2, 7, 150}) {
          int out[kLaneWidth];
          verifier.VerifyGroup(group, k, tier, out);
          for (uint32_t l = 0; l < group.active; ++l) {
            const std::string c(dataset.View(group.ids[l]));
            EXPECT_EQ(out[l], ClampedReference(q, c, k))
                << "tier=" << ToString(tier) << " id=" << group.ids[l]
                << " k=" << k;
          }
        }
      }
    }
  }
}

// --- Metamorphic properties, checked per tier with k large enough that the
// --- clamp never engages (so the kernels report exact distances).

int ExactDistance(LaneVerifier* verifier, const std::string& x,
                  const std::string& y, KernelTier tier) {
  if (x.empty()) return static_cast<int>(y.size());  // lane path needs m > 0
  const int k = static_cast<int>(x.size() + y.size());
  return LaneDistance(verifier, x, y, k, tier);
}

TEST(KernelEquivalenceTest, PropertySymmetry) {
  Xoshiro256 rng(7);
  LaneVerifier verifier;
  for (KernelTier tier : ExecutableTiers()) {
    for (int iter = 0; iter < 300; ++iter) {
      const std::string x = RandomString(&rng, "abcd", 0, 90);
      const std::string y = RandomString(&rng, "abcd", 0, 90);
      EXPECT_EQ(ExactDistance(&verifier, x, y, tier),
                ExactDistance(&verifier, y, x, tier))
          << "tier=" << ToString(tier);
    }
  }
}

TEST(KernelEquivalenceTest, PropertyTriangleInequality) {
  Xoshiro256 rng(8);
  LaneVerifier verifier;
  for (KernelTier tier : ExecutableTiers()) {
    for (int iter = 0; iter < 300; ++iter) {
      const std::string x = RandomString(&rng, "abc", 0, 70);
      const std::string y = RandomString(&rng, "abc", 0, 70);
      const std::string z = RandomString(&rng, "abc", 0, 70);
      const int xz = ExactDistance(&verifier, x, z, tier);
      const int xy = ExactDistance(&verifier, x, y, tier);
      const int yz = ExactDistance(&verifier, y, z, tier);
      EXPECT_LE(xz, xy + yz) << "tier=" << ToString(tier);
      EXPECT_GE(xz, std::abs(xy - yz)) << "tier=" << ToString(tier);
    }
  }
}

TEST(KernelEquivalenceTest, PropertyUnitEditChangesDistanceByAtMostOne) {
  Xoshiro256 rng(9);
  LaneVerifier verifier;
  const std::string_view alphabet = "ACGT";
  for (KernelTier tier : ExecutableTiers()) {
    for (int iter = 0; iter < 300; ++iter) {
      const std::string x = RandomString(&rng, alphabet, 1, 100);
      std::string y = RandomString(&rng, alphabet, 1, 100);
      const int before = ExactDistance(&verifier, x, y, tier);
      // One random edit on y: substitute, insert, or delete.
      const size_t pos = rng.Uniform(y.size());
      switch (rng.Uniform(3)) {
        case 0:
          y[pos] = alphabet[rng.Uniform(alphabet.size())];
          break;
        case 1:
          y.insert(y.begin() + static_cast<ptrdiff_t>(pos),
                   alphabet[rng.Uniform(alphabet.size())]);
          break;
        default:
          y.erase(y.begin() + static_cast<ptrdiff_t>(pos));
          break;
      }
      const int after = ExactDistance(&verifier, x, y, tier);
      EXPECT_LE(std::abs(before - after), 1) << "tier=" << ToString(tier);
    }
  }
}

TEST(KernelEquivalenceTest, PropertyPrefixStepsAreLipschitz) {
  Xoshiro256 rng(10);
  LaneVerifier verifier;
  for (KernelTier tier : ExecutableTiers()) {
    for (int iter = 0; iter < 60; ++iter) {
      const std::string x = RandomString(&rng, "ab", 1, 80);
      const std::string y = RandomString(&rng, "ab", 1, 80);
      // Appending one symbol to the candidate moves the distance by at most
      // one, and ed(x, eps) == |x| anchors the walk.
      int prev = static_cast<int>(x.size());
      for (size_t j = 1; j <= y.size(); ++j) {
        const int cur = ExactDistance(&verifier, x, y.substr(0, j), tier);
        EXPECT_LE(std::abs(cur - prev), 1)
            << "tier=" << ToString(tier) << " prefix=" << j;
        prev = cur;
      }
    }
  }
}

// --- Engine-level differential: every KernelTierChoice must yield the same
// --- match lists from whole engines, serial and sharded, and match brute
// --- force.

constexpr KernelTierChoice kAllChoices[] = {
    KernelTierChoice::kScalar, KernelTierChoice::kSwar,
    KernelTierChoice::kAvx2, KernelTierChoice::kAuto};

TEST(KernelEquivalenceTest, ScanEngineIdenticalAcrossTierChoices) {
  Xoshiro256 rng(11);
  const Dataset dataset = testing::RandomDataset(&rng, "ACGTN", 400, 3, 90,
                                                 AlphabetKind::kDna);
  SequentialScanSearcher scan(dataset, ScanOptions{});
  QuerySet queries;
  for (int i = 0; i < 25; ++i) {
    queries.push_back(Query{RandomString(&rng, "ACGT", 3, 90),
                            static_cast<int>(rng.Uniform(9))});
  }
  queries.push_back(Query{"", 4});  // empty query: per-pair fallback path
  for (const Query& query : queries) {
    const MatchList want = BruteForceSearch(dataset, query);
    for (KernelTierChoice choice : kAllChoices) {
      SearchContext ctx;
      ctx.kernel_tier = choice;
      MatchList got;
      ASSERT_TRUE(scan.Search(query, ctx, &got).ok());
      EXPECT_EQ(got, want) << "choice=" << ToString(choice) << " q=\""
                           << query.text << "\" k=" << query.max_distance;
    }
  }
}

TEST(KernelEquivalenceTest, PackedEngineIdenticalAcrossTierChoices) {
  Xoshiro256 rng(12);
  const Dataset dataset = testing::RandomDataset(&rng, "ACGTN", 300, 60, 130,
                                                 AlphabetKind::kDna);
  auto packed = PackedDnaScanSearcher::Make(dataset);
  ASSERT_TRUE(packed.ok());
  for (int i = 0; i < 20; ++i) {
    const Query query{RandomString(&rng, "ACGTN", 60, 130),
                      static_cast<int>(rng.Uniform(11))};
    const MatchList want = BruteForceSearch(dataset, query);
    for (KernelTierChoice choice : kAllChoices) {
      SearchContext ctx;
      ctx.kernel_tier = choice;
      MatchList got;
      ASSERT_TRUE((*packed)->Search(query, ctx, &got).ok());
      EXPECT_EQ(got, want) << "choice=" << ToString(choice) << " q=\""
                           << query.text << "\" k=" << query.max_distance;
    }
  }
}

TEST(KernelEquivalenceTest, ShardedExecutionIdenticalAcrossTierChoices) {
  Xoshiro256 rng(13);
  const Dataset dataset = testing::RandomDataset(&rng, "ACGT", 500, 10, 80,
                                                 AlphabetKind::kDna);
  SequentialScanSearcher scan(dataset, ScanOptions{});
  QuerySet queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(Query{RandomString(&rng, "ACGT", 10, 80),
                            static_cast<int>(rng.Uniform(7))});
  }
  ExecutionOptions sharded;
  sharded.strategy = ExecutionStrategy::kSharded;
  sharded.num_threads = 3;
  sharded.shard_size = 64;  // shard boundaries cut through lane groups
  SearchResults want;
  for (const Query& query : queries) {
    want.push_back(BruteForceSearch(dataset, query));
  }
  for (KernelTierChoice choice : kAllChoices) {
    SearchContext ctx;
    ctx.kernel_tier = choice;
    const BatchResult batch = scan.SearchBatch(queries, sharded, ctx);
    ASSERT_EQ(batch.matches.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch.matches[i], want[i])
          << "choice=" << ToString(choice) << " query=" << i;
    }
  }
}

// --- Dispatch plumbing.

TEST(KernelDispatchTest, ParseAndToStringRoundTrip) {
  for (KernelTierChoice choice : kAllChoices) {
    const std::optional<KernelTierChoice> parsed =
        ParseKernelTierChoice(ToString(choice));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, choice);
  }
  EXPECT_FALSE(ParseKernelTierChoice("").has_value());
  EXPECT_FALSE(ParseKernelTierChoice("AVX2").has_value());
  EXPECT_FALSE(ParseKernelTierChoice("sse2").has_value());
}

TEST(KernelDispatchTest, ResolveClampsToDetectedTier) {
  const KernelTier detected = DetectCpuKernelTier();
  EXPECT_GE(detected, KernelTier::kSwar);  // SWAR is plain C++
  if (KernelTierForced()) GTEST_SKIP() << "SSS_FORCE_KERNEL_TIER overrides";
  EXPECT_EQ(ResolveKernelTier(KernelTierChoice::kScalar),
            KernelTier::kScalar);
  EXPECT_EQ(ResolveKernelTier(KernelTierChoice::kSwar), KernelTier::kSwar);
  EXPECT_EQ(ResolveKernelTier(KernelTierChoice::kAuto), detected);
  EXPECT_LE(ResolveKernelTier(KernelTierChoice::kAvx2), detected);
}

// Under CI's forced-tier matrix this asserts the override took effect; in a
// normal run it asserts no override is active and skips.
TEST(KernelDispatchTest, EnvForceRespected) {
  const char* env = std::getenv("SSS_FORCE_KERNEL_TIER");
  if (env == nullptr) {
    EXPECT_FALSE(KernelTierForced());
    GTEST_SKIP() << "SSS_FORCE_KERNEL_TIER not set";
  }
  const std::optional<KernelTierChoice> choice = ParseKernelTierChoice(env);
  if (!choice.has_value()) {
    EXPECT_FALSE(KernelTierForced());
    GTEST_SKIP() << "SSS_FORCE_KERNEL_TIER unparseable: forced tier ignored";
  }
  if (*choice == KernelTierChoice::kAuto) {
    // "auto" force keeps the detected tier active but does not override
    // per-context choices (that is what makes it "auto").
    EXPECT_FALSE(KernelTierForced());
    EXPECT_EQ(ActiveKernelTier(), DetectCpuKernelTier());
    GTEST_SKIP() << "SSS_FORCE_KERNEL_TIER=auto does not force";
  }
  ASSERT_TRUE(KernelTierForced());
  const KernelTier detected = DetectCpuKernelTier();
  KernelTier expected;
  if (*choice == KernelTierChoice::kAuto) {
    expected = detected;
  } else {
    expected = static_cast<KernelTier>(*choice);
    if (expected > detected) expected = detected;  // clamped, never illegal
  }
  EXPECT_EQ(ActiveKernelTier(), expected);
  // A forced tier overrides every per-context choice.
  for (KernelTierChoice c : kAllChoices) {
    EXPECT_EQ(ResolveKernelTier(c), expected) << "choice=" << ToString(c);
  }
}

}  // namespace
}  // namespace sss
