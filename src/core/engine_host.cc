#include "core/engine_host.h"

#include <utility>

#include "core/auto_searcher.h"
#include "io/reader.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"

namespace sss {

Result<EngineSpec> ParseEngineSpec(const std::string& name) {
  if (name == "scan") return EngineSpec::For(EngineKind::kSequentialScan);
  if (name == "trie") return EngineSpec::For(EngineKind::kTrieIndex);
  if (name == "ctrie") {
    return EngineSpec::For(EngineKind::kCompressedTrieIndex);
  }
  if (name == "qgram") return EngineSpec::For(EngineKind::kQGramIndex);
  if (name == "partition") return EngineSpec::For(EngineKind::kPartitionIndex);
  if (name == "packed") return EngineSpec::For(EngineKind::kPackedDnaScan);
  if (name == "bktree") return EngineSpec::For(EngineKind::kBKTree);
  if (name == "auto") return EngineSpec::Auto();
  return Status::Invalid("unknown engine '" + name + "'");
}

EngineHost::EngineHost(std::vector<EngineSpec> specs, EngineHostOptions options)
    : specs_(std::move(specs)), options_(options) {}

Status EngineHost::BuildSet(SnapshotHandle snapshot, const SearchContext& ctx,
                            std::shared_ptr<EngineSet>* out) const {
  if (specs_.empty()) {
    return Status::Invalid("EngineHost: no engine specs");
  }
  auto set = std::make_shared<EngineSet>();
  set->snapshot = snapshot;
  set->generation = snapshot->version();
  for (const EngineSpec& spec : specs_) {
    // Constructors are not interruptible, so between-builds is the
    // cancellation granularity: a stop request takes effect before the next
    // engine starts, and nothing half-built is ever published.
    if (ctx.StopRequested()) return ctx.StopStatus();
    SSS_FAILPOINT_STATUS("engine_host:build");
    if (set->by_id[spec.id] != nullptr) {
      return Status::Invalid("EngineHost: duplicate engine id " +
                             std::to_string(spec.id));
    }
    std::unique_ptr<Searcher> engine;
    if (spec.auto_router) {
      engine = std::make_unique<AutoSearcher>(snapshot);
    } else {
      Result<std::unique_ptr<Searcher>> made = MakeSearcher(spec.kind, snapshot);
      if (!made.ok()) return made.status();
      engine = std::move(*made);
    }
    set->by_id[spec.id] = engine.get();
    if (set->default_engine == nullptr) set->default_engine = engine.get();
    set->engines.push_back(std::move(engine));
  }
  *out = std::move(set);
  return Status::OK();
}

Status EngineHost::Load(SnapshotHandle snapshot, const SearchContext& ctx) {
  if (snapshot == nullptr) {
    return Status::Invalid("EngineHost: null snapshot");
  }
  std::unique_lock<std::mutex> lock(reload_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    counters_.reloads_rejected.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("EngineHost: reload already in progress");
  }

  Stopwatch build_timer;
  std::shared_ptr<EngineSet> set;
  Status built = BuildSet(snapshot, ctx, &set);
  const uint64_t build_micros =
      static_cast<uint64_t>(build_timer.ElapsedNanos() / 1000);
  counters_.last_build_micros.store(build_micros, std::memory_order_relaxed);
  if (!built.ok()) {
    counters_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
    if (options_.stats != nullptr) {
      SearchStats delta;
      delta.host_reloads_failed = 1;
      delta.host_reload_build_micros = build_micros;
      options_.stats->Record(delta);
    }
    return built;
  }

  SSS_FAILPOINT("engine_host:publish");
  // The retired generation leaves the critical section alive and is torn
  // down only after the swap: destruction of a full engine set (tries,
  // indexes, the old collection) takes orders of magnitude longer than the
  // pointer exchange and must block neither Acquire() nor the publish
  // window last_publish_nanos reports.
  EngineSetHandle retired;
  Stopwatch publish_timer;
  {
    std::lock_guard<std::mutex> publish_lock(current_mu_);
    retired = std::move(current_);
    current_ = std::move(set);
  }
  counters_.last_publish_nanos.store(
      static_cast<uint64_t>(publish_timer.ElapsedNanos()),
      std::memory_order_relaxed);
  retired.reset();
  counters_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
  if (!snapshot->source_path().empty()) {
    source_path_ = snapshot->source_path();
  }
  if (options_.stats != nullptr) {
    SearchStats delta;
    delta.host_reloads_ok = 1;
    delta.host_reload_build_micros = build_micros;
    options_.stats->Record(delta);
  }
  return Status::OK();
}

Status EngineHost::LoadFile(const std::string& path, const SearchContext& ctx) {
  // The failpoint evaluates inside the lambda so an injected read fault takes
  // the same accounting path as a real one.
  Result<Dataset> dataset = [&]() -> Result<Dataset> {
    SSS_FAILPOINT_STATUS("engine_host:read");
    return ReadDatasetFile(path, "host_data", options_.alphabet);
  }();
  if (!dataset.ok()) {
    // A failed read never reaches Load, so count it here: the caller sees
    // one failure per attempt either way.
    counters_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
    if (options_.stats != nullptr) {
      SearchStats delta;
      delta.host_reloads_failed = 1;
      options_.stats->Record(delta);
    }
    return dataset.status();
  }
  return Load(CollectionSnapshot::Create(std::move(*dataset), path), ctx);
}

Status EngineHost::Reload(const SearchContext& ctx) {
  std::string path;
  {
    std::unique_lock<std::mutex> lock(reload_mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
      counters_.reloads_rejected.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("EngineHost: reload already in progress");
    }
    path = source_path_;
  }
  if (path.empty()) {
    return Status::Invalid("EngineHost: no source path to reload from");
  }
  return LoadFile(path, ctx);
}

std::string EngineHost::source_path() const {
  std::lock_guard<std::mutex> lock(reload_mu_);
  return source_path_;
}

}  // namespace sss
