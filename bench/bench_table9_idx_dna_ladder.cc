// Table IX: "Evaluation of the index-based solution on the DNA data set" —
// the three-step index ladder on long strings.
//
//   paper (sec):                         100q      500q     1000q
//     1) base implementation (trie)     876.48   4355.42   8686.65
//     2) compression (radix trie)       352.24   1737.44   3450.47
//     3) management of parallelism       71.78    367.95    753.01
//
// Expected shape: compression matters far more here than on city names
// (deep chains of single-child nodes in read data), then parallelism cuts
// the rest.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/compressed_trie.h"
#include "core/trie.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kDnaReads;

const TrieSearcher& BasicTrie() {
  static const auto* engine = new TrieSearcher(SharedWorkload(kKind).dataset, TriePruning::kPaperRule);
  return *engine;
}

const CompressedTrieSearcher& RadixTrie() {
  static const auto* engine =
      new CompressedTrieSearcher(SharedWorkload(kKind).dataset,
                                 TriePruning::kPaperRule);
  return *engine;
}

void BM_IdxDnaLadder_Base(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, BasicTrie(),
                    w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kSerial, 0});
  state.counters["nodes"] = static_cast<double>(BasicTrie().Stats().num_nodes);
}
BENCHMARK(BM_IdxDnaLadder_Base)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

void BM_IdxDnaLadder_Compression(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, RadixTrie(),
                    w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kSerial, 0});
  state.counters["nodes"] = static_cast<double>(RadixTrie().Stats().num_nodes);
}
BENCHMARK(BM_IdxDnaLadder_Compression)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

// Row 3: compressed trie + the paper's DNA optimum (16 threads).
void BM_IdxDnaLadder_ManagedPool(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, RadixTrie(),
                    w.Batch(static_cast<int>(state.range(0))),
                    {ExecutionStrategy::kFixedPool, 16});
}
BENCHMARK(BM_IdxDnaLadder_ManagedPool)
    ->ArgNames({"queries"})
    ->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Table IX: index-based-solution ladder, DNA reads",
               sss::gen::WorkloadKind::kDnaReads)
