// Binary dataset serialization. The text format (reader.h/writer.h) is the
// competition's interchange layout; this one is the library's fast restart
// path: a single read materializes the StringPool buffers directly, no
// line scanning.
//
// Layout (little-endian):
//   magic   "SSSDAT01"                     8 bytes
//   alphabet (uint32: 0 generic, 1 dna)    4 bytes
//   name_len (uint32) + name bytes
//   count    (uint64)
//   offsets  (count + 1) × uint64
//   bytes    offsets[count] string bytes
//   checksum (uint64 FNV-1a over everything above)
#pragma once

#include <string>

#include "io/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace sss {

/// \brief Writes `dataset` in the binary layout.
Status WriteBinaryDataset(const std::string& path, const Dataset& dataset);

/// \brief Reads a binary dataset; fails with Invalid on a bad magic,
/// truncation, or checksum mismatch (corruption is detected, not ignored).
Result<Dataset> ReadBinaryDataset(const std::string& path);

}  // namespace sss
