#include "server/server.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_host.h"
#include "core/searcher.h"
#include "server/client.h"
#include "server/protocol.h"
#include "test_util.h"
#include "util/net.h"
#include "util/random.h"
#include "util/search_stats.h"

namespace sss::server {
namespace {

using testing::RandomDataset;

constexpr std::string_view kAlpha = "abcdefghijklmnopqrstuvwxyz";

// Wraps an engine and stalls inside Search until released (or until the
// context stops it), so tests can hold the admission window open or force a
// deadline deterministically — no timing-sensitive sleeps on the assert
// path.
class SlowSearcher : public Searcher {
 public:
  explicit SlowSearcher(const Searcher* inner) : inner_(inner) {}

  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override {
    entered_.fetch_add(1, std::memory_order_acq_rel);
    while (!released_.load(std::memory_order_acquire)) {
      if (ctx.StopRequested()) {
        out->clear();
        return ctx.StopStatus();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return inner_->Search(query, ctx, out);
  }

  std::string name() const override { return "slow_" + inner_->name(); }

  void Release() { released_.store(true, std::memory_order_release); }
  size_t entered() const { return entered_.load(std::memory_order_acquire); }

  /// Blocks until `n` searches are inside the stall loop.
  void WaitForEntered(size_t n) const {
    while (entered() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

 private:
  const Searcher* inner_;
  mutable std::atomic<size_t> entered_{0};
  std::atomic<bool> released_{false};
};

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Xoshiro256 rng(0x5E12);
    dataset_ = RandomDataset(&rng, kAlpha, 400, 3, 12);
    auto scan = MakeSearcher(EngineKind::kSequentialScan, dataset_);
    ASSERT_TRUE(scan.ok());
    scan_ = std::move(*scan);
  }

  // Starts a server over scan_ (or `engine` if given) on an ephemeral port.
  std::unique_ptr<Server> StartServer(ServerOptions options,
                                      const Searcher* engine = nullptr) {
    options.host = "127.0.0.1";
    options.port = 0;
    auto server = std::make_unique<Server>(options);
    EXPECT_TRUE(
        server
            ->RegisterEngine(
                static_cast<uint8_t>(EngineKind::kSequentialScan),
                engine != nullptr ? engine : scan_.get())
            .ok());
    EXPECT_TRUE(server->Start().ok());
    return server;
  }

  Dataset dataset_{"empty", AlphabetKind::kGeneric};
  std::unique_ptr<Searcher> scan_;
};

TEST_F(ServerTest, StartStopIsClean) {
  auto server = StartServer(ServerOptions());
  EXPECT_TRUE(server->running());
  EXPECT_GT(server->port(), 0);
  server->Stop();
  EXPECT_FALSE(server->running());
  server->Stop();  // idempotent
}

TEST_F(ServerTest, StartWithoutEngineFails) {
  Server server{ServerOptions()};
  EXPECT_TRUE(server.Start().IsInvalid());
}

TEST_F(ServerTest, SingleRequestMatchesInProcessSearch) {
  auto server = StartServer(ServerOptions());
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  const Query q{std::string(dataset_.View(17)), 2};
  Response response;
  ASSERT_TRUE(client->Search(q.text, 2, 0, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_EQ(response.matches, scan_->Search(q));
  EXPECT_FALSE(response.matches.empty());  // the string itself matches
}

TEST_F(ServerTest, UnknownEngineIdIsRejectedNotFatal) {
  auto server = StartServer(ServerOptions());
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  Request request;
  request.engine = 200;  // nothing registered there
  request.k = 1;
  request.query = "abc";
  Response response;
  ASSERT_TRUE(client->Call(request, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kInvalid);

  // The connection (and server) survive the rejection.
  ASSERT_TRUE(client->Search("abc", 1, 0, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
}

// The acceptance-criteria run: concurrent clients, every response matched
// to its request by id, no losses, no duplicates, payloads identical to the
// in-process engine.
TEST_F(ServerTest, Concurrency64ExactIdMatching) {
  constexpr size_t kThreads = 64;
  constexpr size_t kPerThread = 16;
  auto server = StartServer(ServerOptions());

  std::atomic<size_t> failures{0};
  std::vector<std::set<uint64_t>> answered(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < kPerThread; ++i) {
        const size_t string_id = (t * kPerThread + i) % dataset_.size();
        Request request;
        // Globally unique id; Client::Call checks the echo.
        request.request_id = t * 1000 + i + 1;
        request.k = 1;
        request.query = std::string(dataset_.View(string_id));
        Response response;
        if (!client->Call(request, &response).ok() ||
            response.code != StatusCode::kOk ||
            response.matches !=
                scan_->Search(Query{request.query, 1})) {
          failures.fetch_add(1);
          return;
        }
        answered[t].insert(response.request_id);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(answered[t].size(), kPerThread) << "thread " << t;
  }
  EXPECT_EQ(server->counters().requests_ok.load(), kThreads * kPerThread);
}

TEST_F(ServerTest, OverloadShedsWithBoundedInflight) {
  SlowSearcher slow(scan_.get());
  ServerOptions options;
  options.max_inflight = 2;
  auto server = StartServer(options, &slow);

  // Fill the admission window with two stalled searches.
  std::vector<std::thread> stuck;
  std::atomic<size_t> stuck_ok{0};
  for (int i = 0; i < 2; ++i) {
    stuck.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) return;
      Response response;
      if (client->Search("abc", 1, 0, &response).ok() &&
          response.code == StatusCode::kOk) {
        stuck_ok.fetch_add(1);
      }
    });
  }
  slow.WaitForEntered(2);
  EXPECT_EQ(server->inflight(), 2u);

  // Everything above the watermark is shed immediately as kUnavailable.
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 5; ++i) {
    Response response;
    ASSERT_TRUE(client->Search("abc", 1, 0, &response).ok());
    EXPECT_EQ(response.code, StatusCode::kUnavailable);
    EXPECT_LE(server->inflight(), 2u);
  }
  EXPECT_EQ(server->counters().requests_shed.load(), 5u);

  // Release the window; the stalled requests complete normally.
  slow.Release();
  for (std::thread& t : stuck) t.join();
  EXPECT_EQ(stuck_ok.load(), 2u);

  Response response;
  ASSERT_TRUE(client->Search("abc", 1, 0, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
}

TEST_F(ServerTest, DeadlineCancelsLongSearch) {
  SlowSearcher slow(scan_.get());  // never released: only a stop ends it
  auto server = StartServer(ServerOptions(), &slow);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  Response response;
  ASSERT_TRUE(client->Search("abc", 1, /*deadline_ms=*/30, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kCancelled);
  EXPECT_TRUE(response.matches.empty());
  EXPECT_EQ(server->counters().requests_cancelled.load(), 1u);
}

TEST_F(ServerTest, ServerDeadlineCapAppliesWhenRequestHasNone) {
  SlowSearcher slow(scan_.get());
  ServerOptions options;
  options.max_deadline_ms = 30;
  auto server = StartServer(options, &slow);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  Response response;
  ASSERT_TRUE(client->Search("abc", 1, /*deadline_ms=*/0, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kCancelled);
}

TEST_F(ServerTest, GracefulDrainCompletesInflightRequest) {
  SlowSearcher slow(scan_.get());
  auto server = StartServer(ServerOptions(), &slow);

  std::atomic<bool> got_ok{false};
  std::thread inflight([&] {
    auto client = Client::Connect("127.0.0.1", server->port());
    if (!client.ok()) return;
    Response response;
    if (client->Search("abc", 1, 0, &response).ok() &&
        response.code == StatusCode::kOk) {
      got_ok.store(true);
    }
  });
  slow.WaitForEntered(1);

  // Drain while the request is mid-search. Stop() must not return before
  // the handler finished, and the handler must still deliver the response.
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    slow.Release();
  });
  server->Stop();
  releaser.join();
  inflight.join();
  EXPECT_TRUE(got_ok.load());
  EXPECT_EQ(server->counters().requests_ok.load(), 1u);

  // New connections are refused after the drain.
  auto late = Client::Connect("127.0.0.1", server->port());
  EXPECT_FALSE(late.ok());
}

TEST_F(ServerTest, CancelInflightHardStopsSearches) {
  SlowSearcher slow(scan_.get());  // never released
  auto server = StartServer(ServerOptions(), &slow);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  std::thread canceller([&] {
    slow.WaitForEntered(1);
    server->CancelInflight();
  });
  Response response;
  ASSERT_TRUE(client->Search("abc", 1, 0, &response).ok());
  canceller.join();
  EXPECT_EQ(response.code, StatusCode::kCancelled);
}

// ---- Robustness against hostile/broken peers, over real sockets. ----

class RawConnection {
 public:
  explicit RawConnection(uint16_t port) {
    auto sock = net::ConnectTcp("127.0.0.1", port);
    EXPECT_TRUE(sock.ok());
    if (sock.ok()) socket_ = std::move(*sock);
  }

  void Send(std::string_view bytes) {
    ASSERT_TRUE(
        net::WriteFull(socket_.fd(), bytes.data(), bytes.size()).ok());
  }

  /// Reads until EOF; returns everything the server sent. Half-closes the
  /// write side first so a server blocked mid-frame sees EOF instead of
  /// deadlocking against our read.
  std::string Drain() {
    (void)net::ShutdownWrite(socket_.fd());
    std::string out;
    char buf[4096];
    for (;;) {
      auto got = net::ReadFull(socket_.fd(), buf, sizeof(buf));
      if (!got.ok() || *got == 0) break;
      out.append(buf, *got);
      if (*got < sizeof(buf)) break;  // EOF inside this chunk
    }
    return out;
  }

  void Close() { socket_.Close(); }

 private:
  net::Socket socket_;
};

class ServerRobustnessTest : public ServerTest {
 protected:
  // After each hostile exchange the server must still answer a clean
  // request on a fresh connection.
  void ExpectStillServing(const Server& server) {
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    Response response;
    ASSERT_TRUE(client->Search("abc", 1, 0, &response).ok());
    EXPECT_EQ(response.code, StatusCode::kOk);
  }
};

TEST_F(ServerRobustnessTest, GarbageMagicGetsErrorFrameThenClose) {
  auto server = StartServer(ServerOptions());
  RawConnection raw(server->port());
  raw.Send(std::string(kRequestHeaderBytes, 'Z'));
  const std::string reply = raw.Drain();

  // The reply, if any, is a well-formed kInvalid response frame.
  ASSERT_GE(reply.size(), kResponseHeaderBytes);
  Response response;
  ASSERT_TRUE(DecodeResponse(reply, ProtocolLimits(), &response).ok());
  EXPECT_EQ(response.code, StatusCode::kInvalid);
  EXPECT_GE(server->counters().protocol_errors.load(), 1u);
  ExpectStillServing(*server);
}

TEST_F(ServerRobustnessTest, TruncatedHeaderDisconnectIsHandled) {
  auto server = StartServer(ServerOptions());
  {
    RawConnection raw(server->port());
    raw.Send("SS");  // 2 of 32 header bytes, then vanish
    raw.Close();
  }
  // Reconnecting proves the handler thread didn't take the server down.
  ExpectStillServing(*server);
  server->Stop();
  EXPECT_GE(server->counters().protocol_errors.load(), 1u);
}

TEST_F(ServerRobustnessTest, MidFrameDisconnectIsHandled) {
  auto server = StartServer(ServerOptions());
  {
    Request request;
    request.request_id = 5;
    request.k = 1;
    request.query = "this query never fully arrives";
    std::string frame;
    EncodeRequest(request, &frame);
    RawConnection raw(server->port());
    raw.Send(std::string_view(frame).substr(0, kRequestHeaderBytes + 4));
    raw.Close();
  }
  ExpectStillServing(*server);
  server->Stop();
  EXPECT_GE(server->counters().protocol_errors.load(), 1u);
}

TEST_F(ServerRobustnessTest, HugeAnnouncedQueryIsRejectedBeforeAllocation) {
  auto server = StartServer(ServerOptions());
  RawConnection raw(server->port());
  Request request;
  request.request_id = 6;
  request.k = 1;
  std::string frame;
  EncodeRequest(request, &frame);
  // Announce a 4 GiB query without sending it.
  frame[24] = static_cast<char>(0xFF);
  frame[25] = static_cast<char>(0xFF);
  frame[26] = static_cast<char>(0xFF);
  frame[27] = static_cast<char>(0xFF);
  raw.Send(frame);
  const std::string reply = raw.Drain();
  ASSERT_GE(reply.size(), kResponseHeaderBytes);
  Response response;
  ASSERT_TRUE(DecodeResponse(reply, ProtocolLimits(), &response).ok());
  EXPECT_EQ(response.code, StatusCode::kInvalid);
  EXPECT_EQ(response.request_id, 6u);  // id recovered from the bad header
  ExpectStillServing(*server);
}

// ---------------------------------------------------------------------------
// EngineHost-backed serving: generation ids in responses, admin frames, and
// zero-downtime reload under concurrent load.

class ServerHostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sss_server_host_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    data_path_ = (dir_ / "data.txt").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Writes `n` copies of "aaaa": a k=0 "aaaa" query matches all n, so the
  // match count identifies the generation that answered.
  void WriteUniformDataset(size_t n) {
    std::ofstream out(data_path_, std::ios::trunc);
    for (size_t i = 0; i < n; ++i) out << "aaaa\n";
  }

  std::filesystem::path dir_;
  std::string data_path_;
};

TEST_F(ServerHostTest, RegistrationAfterStartIsRejectedEvenOnceStopped) {
  WriteUniformDataset(10);
  EngineHost host({EngineSpec::For(EngineKind::kSequentialScan)});
  ASSERT_TRUE(host.LoadFile(data_path_).ok());

  ServerOptions options;
  options.host = "127.0.0.1";
  Server server(options);
  ASSERT_TRUE(server.RegisterHost(&host).ok());
  ASSERT_TRUE(server.Start().ok());

  // The engine table is read lock-free by handler threads: once the server
  // has ever started, registration stays closed — including after Stop(),
  // when handlers may still be draining.
  Dataset extra("x", AlphabetKind::kGeneric);
  extra.Add("zz");
  auto other = MakeSearcher(EngineKind::kSequentialScan, extra);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(server.RegisterEngine(7, other->get()).IsInvalid());
  EXPECT_TRUE(server.RegisterHost(&host).IsInvalid());
  server.Stop();
  EXPECT_TRUE(server.RegisterEngine(7, other->get()).IsInvalid());
  EXPECT_TRUE(server.RegisterHost(&host).IsInvalid());
}

TEST_F(ServerHostTest, ResponsesCarryTheGenerationAndAdminReadsIt) {
  WriteUniformDataset(12);
  EngineHost host({EngineSpec::For(EngineKind::kSequentialScan)});
  ASSERT_TRUE(host.LoadFile(data_path_).ok());
  const uint64_t generation = host.generation();
  ASSERT_NE(generation, 0u);

  ServerOptions options;
  options.host = "127.0.0.1";
  Server server(options);
  ASSERT_TRUE(server.RegisterHost(&host).ok());
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Response response;
  ASSERT_TRUE(client->Search("aaaa", 0, 0, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_EQ(response.matches.size(), 12u);
  EXPECT_EQ(response.generation, generation);

  ASSERT_TRUE(client->GetGeneration(&response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_EQ(response.generation, generation);
  server.Stop();
}

TEST_F(ServerHostTest, AdminReloadPublishesANewGenerationAndNewAnswers) {
  WriteUniformDataset(5);
  EngineHost host({EngineSpec::For(EngineKind::kSequentialScan)});
  ASSERT_TRUE(host.LoadFile(data_path_).ok());
  const uint64_t first = host.generation();

  ServerOptions options;
  options.host = "127.0.0.1";
  Server server(options);
  ASSERT_TRUE(server.RegisterHost(&host).ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  WriteUniformDataset(9);
  Response response;
  ASSERT_TRUE(client->Reload("", &response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_GT(response.generation, first);
  EXPECT_EQ(server.counters().reloads_ok.load(), 1u);

  ASSERT_TRUE(client->Search("aaaa", 0, 0, &response).ok());
  EXPECT_EQ(response.matches.size(), 9u);
  EXPECT_EQ(response.generation, host.generation());

  // A failed admin reload reports the error and keeps the old generation.
  const uint64_t current = host.generation();
  ASSERT_TRUE(client->Reload("/nonexistent/sss.txt", &response).ok());
  EXPECT_NE(response.code, StatusCode::kOk);
  EXPECT_EQ(response.generation, current);
  EXPECT_EQ(server.counters().reloads_failed.load(), 1u);
  ASSERT_TRUE(client->Search("aaaa", 0, 0, &response).ok());
  EXPECT_EQ(response.matches.size(), 9u);
  server.Stop();
}

TEST_F(ServerHostTest, AdminFramesWithoutAHostAreRejectedNotFatal) {
  Xoshiro256 rng(0x05E1);
  Dataset dataset = RandomDataset(&rng, kAlpha, 50, 3, 8);
  auto scan = MakeSearcher(EngineKind::kSequentialScan, dataset);
  ASSERT_TRUE(scan.ok());

  ServerOptions options;
  options.host = "127.0.0.1";
  Server server(options);
  ASSERT_TRUE(server
                  .RegisterEngine(
                      static_cast<uint8_t>(EngineKind::kSequentialScan),
                      scan->get())
                  .ok());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  Response response;
  ASSERT_TRUE(client->Reload("", &response).ok());
  EXPECT_EQ(response.code, StatusCode::kInvalid);
  // Statically registered engines still report their snapshot's version.
  ASSERT_TRUE(client->Search("abc", 1, 0, &response).ok());
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_NE(response.generation, 0u);
  server.Stop();
}

// The zero-downtime acceptance run, in-process: clients hammer the server
// while the dataset file is rewritten and reloaded mid-flight. Required:
// zero transport errors, every response OK, every answer consistent with
// exactly one generation (old count or new count, never a mix), and both
// generations observed across the run.
TEST_F(ServerHostTest, ReloadUnderLoadLosesNoRequestsAndMixesNoGenerations) {
  constexpr size_t kOldSize = 40;
  constexpr size_t kNewSize = 70;
  WriteUniformDataset(kOldSize);
  EngineHost host({EngineSpec::For(EngineKind::kSequentialScan)});
  ASSERT_TRUE(host.LoadFile(data_path_).ok());
  const uint64_t old_generation = host.generation();

  ServerOptions options;
  options.host = "127.0.0.1";
  options.max_inflight = 256;  // shedding would hide lost requests
  Server server(options);
  ASSERT_TRUE(server.RegisterHost(&host).ok());
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 8;
  constexpr size_t kRequestsPerClient = 150;
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> wrong_answers{0};
  std::atomic<uint64_t> non_ok{0};
  std::mutex gen_mu;
  std::set<uint64_t> generations;

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        transport_errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (size_t i = 0; i < kRequestsPerClient; ++i) {
        Response response;
        if (!client->Search("aaaa", 0, 0, &response).ok()) {
          transport_errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (response.code != StatusCode::kOk) {
          non_ok.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        // The response's generation id determines the only answer sizes a
        // pinned search may produce.
        const size_t expected =
            response.generation == old_generation ? kOldSize : kNewSize;
        if (response.matches.size() != expected) {
          wrong_answers.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(gen_mu);
        generations.insert(response.generation);
      }
    });
  }

  // Swap the collection once the run is underway.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  WriteUniformDataset(kNewSize);
  ASSERT_TRUE(server.Reload().ok());
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(transport_errors.load(), 0u);
  EXPECT_EQ(non_ok.load(), 0u);
  EXPECT_EQ(wrong_answers.load(), 0u);
  EXPECT_EQ(generations.size(), 2u) << "expected both generations observed";
  EXPECT_TRUE(generations.count(old_generation));
  EXPECT_TRUE(generations.count(host.generation()));
  server.Stop();
}

TEST_F(ServerRobustnessTest, RandomGarbageStreamsNeverKillTheServer) {
  auto server = StartServer(ServerOptions());
  Xoshiro256 rng(0xBAD5EED);
  for (int iter = 0; iter < 25; ++iter) {
    RawConnection raw(server->port());
    const size_t len = 1 + rng.Uniform(200);
    std::string garbage;
    garbage.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    raw.Send(garbage);
    if (rng.Uniform(2) == 0) raw.Drain();
    raw.Close();
  }
  ExpectStillServing(*server);
}

}  // namespace
}  // namespace sss::server
