// Table III: "Evaluation of the sequential solution on the city name data
// set" — the paper's six-step optimization ladder.
//
//   paper (sec):                         100q     500q    1000q
//     1) base implementation            16.92    84.80   166.22
//     2) edit-distance calculation       3.71    17.81    34.20
//     3) value or reference              2.88    15.13    29.31
//     4) simple data types               2.20    11.54    21.64
//     5) parallelism (thread/query)     13.13    64.95   129.35  <- regression!
//     6) management of parallelism       1.46     3.57     5.93
//
// Expected shape: monotone improvement 1→4, step 5 regresses below step 4
// (thread create/join swamps short queries), step 6 is the overall best.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scan.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kCityNames;

const SequentialScanSearcher& EngineForStep(int step) {
  static const SequentialScanSearcher* engines[5] = {};
  if (engines[step - 1] == nullptr) {
    ScanOptions options;
    options.step = static_cast<LadderStep>(step);
    // Paper-faithful ladder: step 4 uses the paper's own kernel. The
    // banded and bit-parallel kernels are this library's extensions and
    // are measured in bench_ablation_kernels instead.
    options.verify_kernel = VerifyKernel::kPaperStep4;
    engines[step - 1] =
        new SequentialScanSearcher(SharedWorkload(kKind).dataset, options);
  }
  return *engines[step - 1];
}

// Rows 1–4: the serial kernels.
void BM_Ladder(benchmark::State& state) {
  const int step = static_cast<int>(state.range(0));
  const int paper_queries = static_cast<int>(state.range(1));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, EngineForStep(step), w.Batch(paper_queries),
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_Ladder)
    ->ArgNames({"step", "queries"})
    ->ArgsProduct({{1, 2, 3, 4}, {100, 500, 1000}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

// Row 5: parallelism done naively — one thread per query.
void BM_Ladder_Step5_ThreadPerQuery(benchmark::State& state) {
  const int paper_queries = static_cast<int>(state.range(0));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, EngineForStep(4), w.Batch(paper_queries),
                    {ExecutionStrategy::kThreadPerQuery, 0});
}
BENCHMARK(BM_Ladder_Step5_ThreadPerQuery)
    ->ArgNames({"queries"})
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

// Row 6: managed parallelism — fixed pool at the paper's city optimum (8).
void BM_Ladder_Step6_ManagedPool(benchmark::State& state) {
  const int paper_queries = static_cast<int>(state.range(0));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, EngineForStep(4), w.Batch(paper_queries),
                    {ExecutionStrategy::kFixedPool, 8});
}
BENCHMARK(BM_Ladder_Step6_ManagedPool)
    ->ArgNames({"queries"})
    ->Arg(100)
    ->Arg(500)
    ->Arg(1000)
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Table III: sequential-solution ladder, city names",
               sss::gen::WorkloadKind::kCityNames)
