#include "util/bitpack.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace sss {
namespace {

TEST(DnaCodecTest, EncodeDecodeAllSymbols) {
  for (int i = 0; i < DnaCodec::kAlphabetSize; ++i) {
    const char c = DnaCodec::kAlphabet[i];
    EXPECT_EQ(DnaCodec::Encode(c), i);
    EXPECT_EQ(DnaCodec::Decode(static_cast<uint8_t>(i)), c);
  }
}

TEST(DnaCodecTest, RejectsForeignSymbols) {
  EXPECT_EQ(DnaCodec::Encode('a'), DnaCodec::kInvalidCode);  // lowercase
  EXPECT_EQ(DnaCodec::Encode('X'), DnaCodec::kInvalidCode);
  EXPECT_EQ(DnaCodec::Encode(' '), DnaCodec::kInvalidCode);
  EXPECT_EQ(DnaCodec::Encode('\0'), DnaCodec::kInvalidCode);
}

TEST(DnaCodecTest, IsValidChecksWholeString) {
  EXPECT_TRUE(DnaCodec::IsValid("ACGTN"));
  EXPECT_TRUE(DnaCodec::IsValid(""));
  EXPECT_FALSE(DnaCodec::IsValid("ACGTX"));
  EXPECT_FALSE(DnaCodec::IsValid("acgt"));
}

TEST(PackedDnaTest, EmptyString) {
  auto packed = PackedDna::Pack("");
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->size(), 0u);
  EXPECT_EQ(packed->Unpack(), "");
}

TEST(PackedDnaTest, RoundTripsShortString) {
  auto packed = PackedDna::Pack("AGGCGT");
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->size(), 6u);
  EXPECT_EQ(packed->Unpack(), "AGGCGT");
  EXPECT_EQ(packed->At(0), 'A');
  EXPECT_EQ(packed->At(5), 'T');
}

TEST(PackedDnaTest, RoundTripsAcrossWordBoundary) {
  // 21 symbols per word; use lengths around multiples of 21.
  for (size_t len : {20u, 21u, 22u, 41u, 42u, 43u, 100u}) {
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(DnaCodec::kAlphabet[i % 5]);
    }
    auto packed = PackedDna::Pack(s);
    ASSERT_TRUE(packed.ok()) << "len " << len;
    EXPECT_EQ(packed->Unpack(), s) << "len " << len;
  }
}

TEST(PackedDnaTest, RejectsInvalidSymbol) {
  auto packed = PackedDna::Pack("ACGTZ");
  EXPECT_FALSE(packed.ok());
  EXPECT_TRUE(packed.status().IsInvalid());
}

TEST(PackedDnaTest, CompressionRatioIsThreeEighths) {
  std::string s(168, 'A');  // 168 symbols = exactly 8 words = 64 bytes
  auto packed = PackedDna::Pack(s);
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->packed_bytes(), 64u);
  // 64 / 168 ≈ 0.381 ≈ 3/8, the paper's dictionary-compression claim.
  EXPECT_LT(static_cast<double>(packed->packed_bytes()) / s.size(), 0.4);
}

TEST(PackedDnaTest, RandomRoundTripSweep) {
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    const size_t len = rng.Uniform(300);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(DnaCodec::kAlphabet[rng.Uniform(5)]);
    }
    auto packed = PackedDna::Pack(s);
    ASSERT_TRUE(packed.ok());
    ASSERT_EQ(packed->Unpack(), s) << "trial " << trial;
    for (size_t i = 0; i < len; ++i) {
      ASSERT_EQ(packed->At(i), s[i]) << "trial " << trial << " pos " << i;
    }
  }
}

TEST(PackedDnaPoolTest, AddAndUnpackMany) {
  Xoshiro256 rng(66);
  PackedDnaPool pool;
  std::vector<std::string> truth;
  for (int i = 0; i < 500; ++i) {
    std::string s;
    const size_t len = 80 + rng.Uniform(40);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(DnaCodec::kAlphabet[rng.Uniform(5)]);
    }
    auto id = pool.Add(s);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<uint32_t>(i));
    truth.push_back(s);
  }
  ASSERT_EQ(pool.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    ASSERT_EQ(pool.Unpack(i), truth[i]) << "id " << i;
    ASSERT_EQ(pool.Length(i), truth[i].size());
  }
}

TEST(PackedDnaPoolTest, CodeAtMatchesSource) {
  PackedDnaPool pool;
  ASSERT_TRUE(pool.Add("ACGNT").ok());
  ASSERT_TRUE(pool.Add("TTTAA").ok());
  EXPECT_EQ(pool.CodeAt(0, 0), DnaCodec::Encode('A'));
  EXPECT_EQ(pool.CodeAt(0, 3), DnaCodec::Encode('N'));
  EXPECT_EQ(pool.CodeAt(1, 0), DnaCodec::Encode('T'));
  EXPECT_EQ(pool.CodeAt(1, 4), DnaCodec::Encode('A'));
}

TEST(PackedDnaPoolTest, InvalidAddRollsBack) {
  PackedDnaPool pool;
  ASSERT_TRUE(pool.Add("ACGT").ok());
  const size_t bytes_before = pool.packed_bytes();
  EXPECT_FALSE(pool.Add("ACGTQ").ok());
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.packed_bytes(), bytes_before);
  EXPECT_EQ(pool.Unpack(0), "ACGT");  // earlier entry intact
}

TEST(PackedDnaPoolTest, DecodeCodesMatchesUnpack) {
  PackedDnaPool pool;
  ASSERT_TRUE(pool.Add("GATTACANNNGATTACAGATTACAGG").ok());
  std::vector<uint8_t> codes;
  pool.DecodeCodes(0, &codes);
  const std::string text = pool.Unpack(0);
  ASSERT_EQ(codes.size(), text.size());
  for (size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(DnaCodec::Decode(codes[i]), text[i]);
  }
}

TEST(PackedDnaPoolTest, TotalSymbolsAccumulates) {
  PackedDnaPool pool;
  ASSERT_TRUE(pool.Add("ACG").ok());
  ASSERT_TRUE(pool.Add("TTTT").ok());
  EXPECT_EQ(pool.total_symbols(), 7u);
}

// --- 2-bit codec (the lane kernels' packed2 column encoding).

TEST(Dna2CodecTest, EncodeDecodeAllSymbols) {
  for (int i = 0; i < Dna2Codec::kAlphabetSize; ++i) {
    const char c = Dna2Codec::kAlphabet[i];
    EXPECT_EQ(Dna2Codec::Encode(c), i);
    EXPECT_EQ(Dna2Codec::Decode(static_cast<uint8_t>(i)), c);
  }
}

TEST(Dna2CodecTest, RejectsEverythingOutsideAcgt) {
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    if (c == 'A' || c == 'C' || c == 'G' || c == 'T') continue;
    EXPECT_EQ(Dna2Codec::Encode(c), Dna2Codec::kInvalidCode) << "byte " << b;
  }
  EXPECT_EQ(Dna2Codec::Encode('N'), Dna2Codec::kInvalidCode);  // no 'N' here
  EXPECT_TRUE(Dna2Codec::IsValid("GATTACA"));
  EXPECT_FALSE(Dna2Codec::IsValid("GATTACAN"));
  EXPECT_TRUE(Dna2Codec::IsValid(""));
}

TEST(Dna2PackTest, KnownLayout) {
  // LSB-first: "ACGT" -> codes 0,1,2,3 -> 0b11'10'01'00 = 0xE4.
  std::vector<uint8_t> packed;
  ASSERT_TRUE(PackDna2Into("ACGT", &packed).ok());
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0xE4);
  // Odd tail is zero-padded: "TG" -> 0b00'00'10'11 = 0x0B.
  packed.clear();
  ASSERT_TRUE(PackDna2Into("TG", &packed).ok());
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0x0B);
}

TEST(Dna2PackTest, EmptyStringPacksToNothing) {
  std::vector<uint8_t> packed;
  ASSERT_TRUE(PackDna2Into("", &packed).ok());
  EXPECT_TRUE(packed.empty());
  EXPECT_EQ(UnpackDna2(packed.data(), 0), "");
}

TEST(Dna2PackTest, InvalidSymbolFailsAndRollsBack) {
  std::vector<uint8_t> packed;
  ASSERT_TRUE(PackDna2Into("GATTACA", &packed).ok());
  const std::vector<uint8_t> before = packed;
  // Invalid symbol in every position of the appended string, including past
  // the first full byte (a partially-written tail must be rolled back too).
  for (const char* bad : {"NACGT", "ACNGT", "ACGTN", "ACGTACGTX"}) {
    EXPECT_FALSE(PackDna2Into(bad, &packed).ok()) << bad;
    EXPECT_EQ(packed, before) << "rollback failed for " << bad;
  }
  EXPECT_EQ(UnpackDna2(packed.data(), 7), "GATTACA");
}

TEST(Dna2PackTest, FuzzRoundTrip) {
  Xoshiro256 rng(0xD2D2D2);
  const char alphabet[] = {'A', 'C', 'G', 'T'};
  for (int iter = 0; iter < 5000; ++iter) {
    // Lengths 0..67 cover empty, every mod-4 remainder, and multi-word runs.
    const size_t len = rng.Uniform(68);
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng.Uniform(4)]);
    }
    std::vector<uint8_t> packed;
    ASSERT_TRUE(PackDna2Into(s, &packed).ok());
    ASSERT_EQ(packed.size(), (len + 3) / 4);
    EXPECT_EQ(UnpackDna2(packed.data(), len), s) << "len=" << len;
  }
}

TEST(Dna2PackTest, FuzzUnpackOfArbitraryBytesRepacks) {
  // UnpackDna2 is total: any byte content decodes to some ACGT string, and
  // packing that string reproduces the bits the symbols occupied.
  Xoshiro256 rng(0xBEEF);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t n = rng.Uniform(40);
    std::vector<uint8_t> raw((n + 3) / 4);
    for (uint8_t& b : raw) b = static_cast<uint8_t>(rng.Uniform(256));
    const std::string text = UnpackDna2(raw.data(), n);
    ASSERT_EQ(text.size(), n);
    EXPECT_TRUE(Dna2Codec::IsValid(text));
    std::vector<uint8_t> repacked;
    ASSERT_TRUE(PackDna2Into(text, &repacked).ok());
    ASSERT_EQ(repacked.size(), raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      // Compare only the bits the n symbols occupy; the final partial
      // byte's padding bits are zeroed by the packer.
      const size_t sym_in_byte = std::min(n - i * 4, size_t{4});
      const uint8_t mask =
          sym_in_byte == 4 ? 0xFF
                           : static_cast<uint8_t>((1u << (2 * sym_in_byte)) - 1);
      EXPECT_EQ(repacked[i], raw[i] & mask) << "iter=" << iter << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace sss
