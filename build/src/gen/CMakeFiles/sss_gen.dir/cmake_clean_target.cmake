file(REMOVE_RECURSE
  "libsss_gen.a"
)
