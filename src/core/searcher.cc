#include "core/searcher.h"

#include <algorithm>
#include <cstring>

#include "core/batch_planner.h"
#include "core/bktree.h"
#include "core/compressed_trie.h"
#include "core/packed_scan.h"
#include "core/partition_index.h"
#include "core/qgram_index.h"
#include "core/scan.h"
#include "core/trie.h"
#include "parallel/adaptive_pool.h"
#include "parallel/partitioner.h"
#include "parallel/sharded_executor.h"
#include "parallel/thread_per_query.h"
#include "parallel/thread_pool.h"
#include "util/failpoint.h"
#include "util/kernel_dispatch.h"
#include "util/search_stats.h"

namespace sss {

MatchList Searcher::Search(const Query& query) const {
  MatchList out;
  const Status st = Search(query, SearchContext{}, &out);
  // An inactive context can never stop a search.
  SSS_DCHECK(st.ok());
  (void)st;
  return out;
}

BatchResult Searcher::SearchBatch(const QuerySet& queries,
                                  const ExecutionOptions& exec,
                                  const SearchContext& ctx) const {
  return RunBatch(queries, exec, ctx);
}

SearchResults Searcher::SearchBatch(const QuerySet& queries,
                                    const ExecutionOptions& exec) const {
  return SearchBatch(queries, exec, SearchContext{}).matches;
}

BatchResult Searcher::RunBatch(const QuerySet& queries,
                               const ExecutionOptions& exec,
                               const SearchContext& ctx) const {
  if (exec.strategy == ExecutionStrategy::kSharded) {
    return RunShardedBatch(queries, exec, ctx);
  }

  BatchResult result;
  result.matches.resize(queries.size());
  // Pre-mark every query as "never ran"; run_one overwrites with the real
  // outcome. Work an executor skips after a stop is thereby already tagged.
  result.statuses.assign(queries.size(), ctx.StopStatus());

  const bool active = ctx.CanStop();
  const SearchContext* stop = active ? &ctx : nullptr;
  const auto run_one = [&](size_t i) {
    SSS_FAILPOINT("searcher:run_query");
    Status st = Search(queries[i], ctx, &result.matches[i]);
    if (!st.ok()) result.matches[i].clear();
    result.statuses[i] = std::move(st);
  };

  // Executor-level counters: thread open/close and task-scheduling totals
  // land in the sink once per batch, next to whatever the engines recorded.
  // dispatch_tier is a once-per-batch label (0=scalar 1=swar 2=avx2), not a
  // count: recording it here, not per engine call, keeps it identical
  // across execution strategies.
  SearchStats exec_stats;
  exec_stats.dispatch_tier =
      static_cast<uint64_t>(ResolveKernelTier(ctx.kernel_tier));

  switch (exec.strategy) {
    case ExecutionStrategy::kSerial: {
      size_t ran = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        if (active && ctx.StopRequested()) break;
        run_one(i);
        ++ran;
      }
      exec_stats.tasks_executed = ran;
      break;
    }
    case ExecutionStrategy::kThreadPerQuery: {
      const size_t spawned =
          RunThreadPerItem(queries.size(), run_one, /*max_live=*/0, stop);
      // Strategy 1 opens and closes one thread per query by design.
      exec_stats.pool_opens = spawned;
      exec_stats.pool_closes = spawned;
      exec_stats.tasks_executed = spawned;
      break;
    }
    case ExecutionStrategy::kFixedPool: {
      ThreadPool pool(exec.num_threads);
      // Dynamic scheduling: query costs are highly skewed (they depend on k
      // and result size), so static partitioning would leave cores idle.
      PoolRunStats run_stats;
      pool.DynamicParallelFor(queries.size(), run_one, /*chunk=*/1, stop,
                              &run_stats);
      exec_stats.pool_opens = pool.num_threads();
      exec_stats.pool_closes = pool.num_threads();
      exec_stats.tasks_executed = run_stats.chunks_executed;
      exec_stats.tasks_stolen = run_stats.chunks_stolen;
      break;
    }
    case ExecutionStrategy::kAdaptive: {
      AdaptivePoolOptions options;
      options.max_threads = exec.num_threads;
      AdaptivePool pool(options);
      pool.ParallelFor(queries.size(), run_one, /*chunk=*/1, stop);
      exec_stats.pool_opens = pool.total_opens();
      exec_stats.pool_closes = pool.total_closes();
      break;
    }
    case ExecutionStrategy::kSharded:
      break;  // handled above
  }

  for (const Status& st : result.statuses) result.completed += st.ok();
  result.truncated = result.completed < queries.size();
  if (exec.strategy == ExecutionStrategy::kAdaptive) {
    // The adaptive master closes workers after ParallelFor returns; by the
    // time the pool is destroyed, every open has a matching close.
    exec_stats.pool_closes = exec_stats.pool_opens;
    exec_stats.tasks_executed = result.completed;
  }
  if (ctx.stats != nullptr) ctx.stats->Record(exec_stats);
  return result;
}

Status Searcher::SearchRange(const Query& query, uint32_t begin, uint32_t end,
                             const SearchContext& ctx, MatchList* out) const {
  MatchList all;
  const Status st = Search(query, ctx, &all);
  if (!st.ok()) {
    out->clear();
    return st;
  }
  for (uint32_t id : all) {
    if (id >= begin && id < end) out->push_back(id);
  }
  return Status::OK();
}

namespace {

// One task of the sharded driver: a query sub-range of one plan group,
// scanned over one contiguous id shard of the collection.
struct ShardTask {
  uint32_t group = 0;
  Range ids;      // dataset shard (whole collection for non-range engines)
  Range queries;  // sub-range of the group's query-index array
};

// Matches one task produced for one query: a span into a worker arena.
struct MatchSpan {
  uint32_t query = 0;  // index into the original QuerySet
  uint32_t count = 0;
  const uint32_t* data = nullptr;
};

}  // namespace

BatchResult Searcher::RunShardedBatch(const QuerySet& queries,
                                      const ExecutionOptions& exec,
                                      const SearchContext& ctx) const {
  BatchResult result;
  result.matches.resize(queries.size());
  result.statuses.assign(queries.size(), Status::OK());
  result.completed = queries.size();
  if (queries.empty()) return result;

  const bool active = ctx.CanStop();
  const auto mark_all_cancelled = [&] {
    const Status st = ctx.StopStatus();
    for (Status& s : result.statuses) s = st;
    result.completed = 0;
    result.truncated = true;
  };
  if (active && ctx.StopRequested()) {
    mark_all_cancelled();
    return result;
  }

  // Pin the snapshot for the whole batch: the planner's length bounds and
  // the shard geometry below must describe the same collection every task
  // searches, even if the engine's owner republishes mid-batch.
  const SnapshotHandle snapshot = SearchedSnapshot();
  const Dataset* dataset =
      snapshot == nullptr ? nullptr : &snapshot->dataset();
  if (dataset != nullptr && dataset->empty()) return result;

  // Plan: group by (threshold, length bucket), length-filter once per group.
  // Without a dataset the bounds are unbounded — nothing skips, everything
  // else still holds.
  BatchPlannerOptions planner_options;
  planner_options.length_bucket_width = exec.length_bucket_width;
  BatchPlanner planner(planner_options);
  const size_t ds_min = dataset ? dataset->pool().min_length() : 0;
  const size_t ds_max = dataset ? dataset->pool().max_length() : SIZE_MAX;
  const BatchPlan& plan = planner.Plan(queries, ds_min, ds_max);

  // Queries the planner answered without running any engine code (their
  // group's length bucket cannot intersect the dataset's length range).
  SearchStats exec_stats;
  exec_stats.dispatch_tier =
      static_cast<uint64_t>(ResolveKernelTier(ctx.kernel_tier));
  for (const QueryGroup& g : plan.groups) {
    if (g.skip) exec_stats.planner_skipped_queries += g.num_queries;
  }

  size_t active_groups = 0;
  for (const QueryGroup& g : plan.groups) active_groups += g.skip ? 0 : 1;
  if (active_groups == 0) {
    if (ctx.stats != nullptr) ctx.stats->Record(exec_stats);
    return result;
  }

  ShardedExecutorOptions executor_options;
  executor_options.num_threads = exec.num_threads;
  ShardedExecutor executor(executor_options);
  const size_t workers = executor.num_threads();

  // Task geometry. Range-capable engines split the collection into
  // contiguous id shards; the rest split each group's query list. Either
  // way we aim for enough tasks that the dynamic scheduler can rebalance
  // skewed cells (~4 per worker), but no finer.
  const bool shard_dataset = SupportsRangeSearch() && dataset != nullptr;
  const size_t target_tasks = std::max(workers * 4, active_groups);
  std::vector<ShardTask> tasks;
  if (shard_dataset) {
    size_t num_shards;
    if (exec.shard_size > 0) {
      num_shards = (dataset->size() + exec.shard_size - 1) / exec.shard_size;
    } else {
      num_shards = (target_tasks + active_groups - 1) / active_groups;
      // Shards below ~1k strings pay more in bookkeeping than they win in
      // balance.
      const size_t max_shards =
          std::max<size_t>(1, dataset->size() / 1024);
      num_shards = std::min(num_shards, max_shards);
    }
    num_shards = std::max<size_t>(1, std::min(num_shards, dataset->size()));
    const std::vector<Range> shards =
        PartitionEvenly(dataset->size(), num_shards);
    tasks.reserve(active_groups * num_shards);
    for (uint32_t g = 0; g < plan.groups.size(); ++g) {
      if (plan.groups[g].skip) continue;
      for (const Range& shard : shards) {
        if (shard.empty()) continue;
        tasks.push_back(
            {g, shard, Range{0, plan.groups[g].num_queries}});
      }
    }
  } else {
    const size_t full = dataset ? dataset->size() : 0;
    for (uint32_t g = 0; g < plan.groups.size(); ++g) {
      const QueryGroup& group = plan.groups[g];
      if (group.skip) continue;
      const size_t chunks = std::min<size_t>(
          group.num_queries,
          std::max<size_t>(1, target_tasks / active_groups));
      for (const Range& r : PartitionEvenly(group.num_queries, chunks)) {
        if (r.empty()) continue;
        tasks.push_back({g, Range{0, full}, r});
      }
    }
  }

  // Execute. Each task appends its per-query match spans (arena-backed) to
  // its own slot, so tasks never synchronize with each other. Per-task
  // completion marks the prefix of its query sub-range it fully answered;
  // a stop leaves the suffix (and every unclaimed task's whole range)
  // unanswered, which the merge below turns into per-query kCancelled.
  std::vector<std::vector<MatchSpan>> task_spans(tasks.size());
  std::vector<size_t> task_done(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) task_done[t] = tasks[t].queries.begin;
  const size_t helpers_spawned = executor.Run(
      tasks.size(),
      [&](size_t t, ShardScratch* scratch) {
        const ShardTask& task = tasks[t];
        const QueryGroup& group = plan.groups[task.group];
        std::vector<MatchSpan>& spans = task_spans[t];
        spans.reserve(task.queries.size());
        for (size_t qi = task.queries.begin; qi < task.queries.end; ++qi) {
          if (active && ctx.StopRequested()) break;
          SSS_FAILPOINT("searcher:run_query");
          const uint32_t query_index = group.queries[qi];
          const Query& query = queries[query_index];
          MatchList& buffer = scratch->match_buffer;
          buffer.clear();
          Status st;
          if (shard_dataset) {
            st = SearchRange(query, static_cast<uint32_t>(task.ids.begin),
                             static_cast<uint32_t>(task.ids.end), ctx,
                             &buffer);
          } else {
            // Whole-collection task: one task owns this query outright.
            st = Search(query, ctx, &buffer);
          }
          if (!st.ok()) break;
          task_done[t] = qi + 1;
          if (buffer.empty()) continue;
          auto* copy = scratch->arena.NewArray<uint32_t>(buffer.size());
          std::memcpy(copy, buffer.data(), buffer.size() * sizeof(uint32_t));
          spans.push_back({query_index, static_cast<uint32_t>(buffer.size()),
                           copy});
        }
      },
      active ? &ctx : nullptr);

  // A query's answer is complete iff every task covering it got through it.
  // Queries in skipped groups are covered by no task and stay complete
  // (their correct answer is empty).
  std::vector<char> query_ok(queries.size(), 1);
  for (size_t t = 0; t < tasks.size(); ++t) {
    const QueryGroup& group = plan.groups[tasks[t].group];
    for (size_t qi = task_done[t]; qi < tasks[t].queries.end; ++qi) {
      query_ok[group.queries[qi]] = 0;
    }
  }

  // Merge. Tasks were built group-major with ascending shards, and each
  // query lives in exactly one group, so appending spans in task order
  // yields ascending ids — byte-identical to the serial answer. Spans of
  // cut-off queries (complete in one shard, stopped in another) are
  // dropped: a returned answer is always a whole answer.
  std::vector<uint32_t> totals(queries.size(), 0);
  for (const auto& spans : task_spans) {
    for (const MatchSpan& s : spans) totals[s.query] += s.count;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    if (query_ok[i]) result.matches[i].reserve(totals[i]);
  }
  for (const auto& spans : task_spans) {
    for (const MatchSpan& s : spans) {
      if (!query_ok[s.query]) continue;
      result.matches[s.query].insert(result.matches[s.query].end(), s.data,
                                     s.data + s.count);
    }
  }

  result.completed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (query_ok[i]) {
      ++result.completed;
    } else {
      result.statuses[i] = ctx.StopStatus();
    }
  }
  result.truncated = result.completed < queries.size();

  if (ctx.stats != nullptr) {
    exec_stats.pool_opens = helpers_spawned;
    exec_stats.pool_closes = helpers_spawned;
    uint64_t total_tasks = 0;
    for (size_t w = 0; w < workers; ++w) {
      total_tasks += executor.scratch(w).tasks_run;
    }
    exec_stats.tasks_executed = total_tasks;
    // Tasks a worker ran beyond its fair share (⌈tasks/active workers⌉)
    // were dynamically drained from slower workers.
    const size_t active_workers = std::min(workers, tasks.size());
    const uint64_t fair =
        active_workers == 0
            ? total_tasks
            : (total_tasks + active_workers - 1) / active_workers;
    for (size_t w = 0; w < workers; ++w) {
      const uint64_t ran = executor.scratch(w).tasks_run;
      if (ran > fair) exec_stats.tasks_stolen += ran - fair;
    }
    ctx.stats->Record(exec_stats);
  }
  return result;
}

std::string ToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSequentialScan:
      return "sequential_scan";
    case EngineKind::kTrieIndex:
      return "trie_index";
    case EngineKind::kCompressedTrieIndex:
      return "compressed_trie_index";
    case EngineKind::kQGramIndex:
      return "qgram_index";
    case EngineKind::kPartitionIndex:
      return "partition_index";
    case EngineKind::kPackedDnaScan:
      return "packed_dna_scan";
    case EngineKind::kBKTree:
      return "bk_tree";
  }
  return "?";
}

std::string ToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kSerial:
      return "serial";
    case ExecutionStrategy::kThreadPerQuery:
      return "thread_per_query";
    case ExecutionStrategy::kFixedPool:
      return "fixed_pool";
    case ExecutionStrategy::kAdaptive:
      return "adaptive";
    case ExecutionStrategy::kSharded:
      return "sharded";
  }
  return "?";
}

Result<std::unique_ptr<Searcher>> MakeSearcher(EngineKind kind,
                                               SnapshotHandle snapshot) {
  if (snapshot == nullptr) {
    return Status::Invalid("MakeSearcher: null snapshot");
  }
  const Dataset& dataset = snapshot->dataset();
  switch (kind) {
    case EngineKind::kSequentialScan:
      return std::unique_ptr<Searcher>(
          new SequentialScanSearcher(std::move(snapshot), ScanOptions{}));
    case EngineKind::kTrieIndex: {
      auto trie = std::make_unique<TrieSearcher>(std::move(snapshot));
      return std::unique_ptr<Searcher>(std::move(trie));
    }
    case EngineKind::kCompressedTrieIndex: {
      auto trie = std::make_unique<CompressedTrieSearcher>(std::move(snapshot));
      return std::unique_ptr<Searcher>(std::move(trie));
    }
    case EngineKind::kQGramIndex: {
      QGramIndexOptions options;
      // Longer grams pay off on long low-entropy strings.
      options.q = dataset.alphabet() == AlphabetKind::kDna ? 6 : 3;
      return std::unique_ptr<Searcher>(
          new QGramIndexSearcher(std::move(snapshot), options));
    }
    case EngineKind::kPartitionIndex: {
      PartitionIndexOptions options;
      // Cover the workload's Table-I threshold ladder.
      options.max_k = dataset.alphabet() == AlphabetKind::kDna ? 16 : 3;
      return std::unique_ptr<Searcher>(
          new PartitionIndexSearcher(std::move(snapshot), options));
    }
    case EngineKind::kPackedDnaScan: {
      SSS_ASSIGN_OR_RETURN(std::unique_ptr<PackedDnaScanSearcher> packed,
                           PackedDnaScanSearcher::Make(std::move(snapshot)));
      return std::unique_ptr<Searcher>(std::move(packed));
    }
    case EngineKind::kBKTree:
      return std::unique_ptr<Searcher>(
          new BKTreeSearcher(std::move(snapshot)));
  }
  return Status::Invalid("unknown engine kind");
}

Result<std::unique_ptr<Searcher>> MakeSearcher(EngineKind kind,
                                               const Dataset& dataset) {
  return MakeSearcher(kind, CollectionSnapshot::Borrow(dataset));
}

}  // namespace sss
