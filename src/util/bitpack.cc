#include "util/bitpack.h"

namespace sss {

namespace {

// Packs s into `out` (appending), returning false on an invalid symbol.
bool PackInto(std::string_view s, std::vector<uint64_t>* out) {
  uint64_t word = 0;
  unsigned filled = 0;
  for (char c : s) {
    const uint8_t code = DnaCodec::Encode(c);
    if (code == DnaCodec::kInvalidCode) return false;
    word |= static_cast<uint64_t>(code)
            << (filled * DnaCodec::kBitsPerSymbol);
    if (++filled == PackedDna::kSymbolsPerWord) {
      out->push_back(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) out->push_back(word);
  return true;
}

size_t WordsFor(size_t symbols) {
  return (symbols + PackedDna::kSymbolsPerWord - 1) /
         PackedDna::kSymbolsPerWord;
}

}  // namespace

Result<PackedDna> PackedDna::Pack(std::string_view s) {
  PackedDna packed;
  packed.words_.reserve(WordsFor(s.size()));
  if (!PackInto(s, &packed.words_)) {
    return Status::Invalid("PackedDna::Pack: symbol outside {A,C,G,N,T}");
  }
  packed.size_ = s.size();
  return packed;
}

std::string PackedDna::Unpack() const {
  std::string out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(At(i));
  return out;
}

Status PackDna2Into(std::string_view s, std::vector<uint8_t>* out) {
  const size_t before = out->size();
  uint8_t byte = 0;
  unsigned filled = 0;
  for (char c : s) {
    const uint8_t code = Dna2Codec::Encode(c);
    if (code == Dna2Codec::kInvalidCode) {
      out->resize(before);  // roll back a partial append
      return Status::Invalid("PackDna2Into: symbol outside {A,C,G,T}");
    }
    byte |= static_cast<uint8_t>(code << (filled * Dna2Codec::kBitsPerSymbol));
    if (++filled == Dna2Codec::kSymbolsPerByte) {
      out->push_back(byte);
      byte = 0;
      filled = 0;
    }
  }
  if (filled > 0) out->push_back(byte);
  return Status::OK();
}

std::string UnpackDna2(const uint8_t* packed, size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const unsigned shift = static_cast<unsigned>(i % Dna2Codec::kSymbolsPerByte) *
                           Dna2Codec::kBitsPerSymbol;
    out.push_back(Dna2Codec::Decode(
        static_cast<uint8_t>((packed[i / Dna2Codec::kSymbolsPerByte] >> shift) &
                             0x3u)));
  }
  return out;
}

Result<uint32_t> PackedDnaPool::Add(std::string_view s) {
  const size_t before = words_.size();
  if (!PackInto(s, &words_)) {
    words_.resize(before);  // roll back a partial append
    return Status::Invalid("PackedDnaPool::Add: symbol outside {A,C,G,N,T}");
  }
  word_offsets_.push_back(before);
  lengths_.push_back(static_cast<uint32_t>(s.size()));
  total_symbols_ += s.size();
  return static_cast<uint32_t>(lengths_.size() - 1);
}

std::string PackedDnaPool::Unpack(size_t id) const {
  std::string out;
  const size_t len = lengths_[id];
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(DnaCodec::Decode(CodeAt(id, i)));
  }
  return out;
}

void PackedDnaPool::DecodeCodes(size_t id, std::vector<uint8_t>* out) const {
  const size_t len = lengths_[id];
  out->resize(len);
  const uint64_t base = word_offsets_[id];
  size_t i = 0;
  for (size_t w = base; i < len; ++w) {
    uint64_t word = words_[w];
    for (unsigned k = 0; k < PackedDna::kSymbolsPerWord && i < len; ++k) {
      (*out)[i++] = static_cast<uint8_t>(word & 0x7u);
      word >>= DnaCodec::kBitsPerSymbol;
    }
  }
}

}  // namespace sss
