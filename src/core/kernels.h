// The paper's sequential-solution optimization ladder (§3, Table III), as
// four genuinely distinct verify kernels. The ladder benches measure these
// implementations against each other exactly the way the paper iterated;
// SequentialScanSearcher uses the best one (step 4) by default.
//
//   step 1  base implementation   value semantics everywhere: every dataset
//                                 string is copied, the full DP matrix is a
//                                 fresh vector<vector<int>>, std::min via
//                                 the standard library (§3.1)
//   step 2  faster edit distance  + length filter (eq. 5) and the
//                                 main-diagonal early abort of conditions
//                                 (6)/(7); matrix still allocated per pair
//                                 (§3.2)
//   step 3  values and references + reference semantics: string_view
//                                 operands, DP rows reused across the whole
//                                 scan, zero copies on the hot path (§3.3)
//   step 4  simple data types     + flat int buffers, hand-inlined min,
//                                 banded row walk over the contiguous
//                                 StringPool (§3.4)
//
// All four return identical match lists; integration tests enforce it, which
// is the paper's own correctness gate (step 1 is the reference).
#pragma once

#include <string_view>

#include "core/edit_distance.h"
#include "io/dataset.h"

namespace sss {

/// \brief One rung of the paper's sequential ladder.
enum class LadderStep : int {
  kBase = 1,
  kFastEditDistance = 2,
  kReferences = 3,
  kSimpleTypes = 4,
};

/// \brief Human-readable label matching the paper's table rows.
std::string_view ToString(LadderStep step);

/// \brief Runs one query against the whole dataset with the given ladder
/// step's implementation. Matches are returned in ascending id order.
/// `ws` is only used by steps 3 and 4 (earlier steps allocate per pair, by
/// design).
MatchList RunLadderKernel(const Dataset& dataset, const Query& query,
                          LadderStep step, EditDistanceWorkspace* ws);

namespace internal {

/// \brief Step-2 edit distance: full matrix with the paper's abort
/// conditions (6)/(7) checked on the main diagonal. Returns a value > k when
/// the distance exceeds k. Exposed for unit tests.
int EditDistanceDiagonalAbort(const std::string& x, const std::string& y,
                              int k);

/// \brief Step-4 edit distance, faithful to §3.4: flat int rows out of the
/// workspace, raw pointers, hand-inlined min/compare — but still full-width
/// rows with only the paper's filters (length + diagonal abort). The
/// Ukkonen band and the bit-parallel kernels are this library's extensions
/// and are NOT part of the paper's ladder. Returns a value > k when the
/// distance exceeds k.
int EditDistanceSimpleTypes(std::string_view x, std::string_view y, int k,
                            EditDistanceWorkspace* ws);

}  // namespace internal
}  // namespace sss
