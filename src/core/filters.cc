#include "core/filters.h"

#include <algorithm>
#include <cctype>

namespace sss {

SymbolBuckets::SymbolBuckets(AlphabetKind kind) {
  bucket_of_.fill(5);  // "other"
  const bool dna = kind == AlphabetKind::kDna;
  const char* tracked = dna ? "ACGNT" : "AEIOU";
  for (int i = 0; i < 5; ++i) {
    const char c = tracked[i];
    bucket_of_[static_cast<unsigned char>(c)] = static_cast<int8_t>(i);
    if (!dna) {
      // Vowel tracking is case-insensitive for natural-language data.
      bucket_of_[static_cast<unsigned char>(std::tolower(c))] =
          static_cast<int8_t>(i);
    }
  }
}

FrequencyVectorFilter::FrequencyVectorFilter(const Dataset& dataset)
    : buckets_(dataset.alphabet()) {
  vectors_.resize(dataset.size() * 6);
  for (size_t id = 0; id < dataset.size(); ++id) {
    const FrequencyVector v = Compute(dataset.View(id));
    std::copy(v.begin(), v.end(), vectors_.begin() + id * 6);
  }
}

namespace {

// FNV-1a over the q bytes starting at p. Collisions only make the filter
// *more* permissive (two distinct grams may count as common), which keeps it
// sound.
uint32_t HashGram(const char* p, int q) {
  uint32_t h = 2166136261u;
  for (int i = 0; i < q; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 16777619u;
  }
  return h;
}

}  // namespace

QGramFilter::QGramFilter(const Dataset& dataset, int q) : q_(q) {
  offsets_.reserve(dataset.size() + 1);
  offsets_.push_back(0);
  std::vector<uint32_t> profile;
  for (size_t id = 0; id < dataset.size(); ++id) {
    const std::string_view s = dataset.View(id);
    profile.clear();
    if (s.size() >= static_cast<size_t>(q_)) {
      for (size_t i = 0; i + q_ <= s.size(); ++i) {
        profile.push_back(HashGram(s.data() + i, q_));
      }
      std::sort(profile.begin(), profile.end());
    }
    grams_.insert(grams_.end(), profile.begin(), profile.end());
    offsets_.push_back(grams_.size());
  }
}

std::vector<uint32_t> QGramFilter::Profile(std::string_view s) const {
  std::vector<uint32_t> profile;
  if (s.size() >= static_cast<size_t>(q_)) {
    profile.reserve(s.size() - q_ + 1);
    for (size_t i = 0; i + q_ <= s.size(); ++i) {
      profile.push_back(HashGram(s.data() + i, q_));
    }
    std::sort(profile.begin(), profile.end());
  }
  return profile;
}

bool QGramFilter::MayMatch(const std::vector<uint32_t>& query_profile,
                           size_t query_len, size_t id, int k) const noexcept {
  if (query_len < static_cast<size_t>(q_)) return true;  // bound is vacuous
  const int64_t required = static_cast<int64_t>(query_len) - q_ + 1 -
                           static_cast<int64_t>(k) * q_;
  if (required <= 0) return true;

  // Bag intersection size of two sorted multisets.
  const uint32_t* a = grams_.data() + offsets_[id];
  const uint32_t* a_end = grams_.data() + offsets_[id + 1];
  const uint32_t* b = query_profile.data();
  const uint32_t* b_end = b + query_profile.size();
  int64_t common = 0;
  while (a < a_end && b < b_end) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++common;
      ++a;
      ++b;
    }
    if (common >= required) return true;
  }
  return common >= required;
}

}  // namespace sss
