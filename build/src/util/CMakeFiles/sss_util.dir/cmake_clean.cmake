file(REMOVE_RECURSE
  "CMakeFiles/sss_util.dir/arena.cc.o"
  "CMakeFiles/sss_util.dir/arena.cc.o.d"
  "CMakeFiles/sss_util.dir/bitpack.cc.o"
  "CMakeFiles/sss_util.dir/bitpack.cc.o.d"
  "CMakeFiles/sss_util.dir/env.cc.o"
  "CMakeFiles/sss_util.dir/env.cc.o.d"
  "CMakeFiles/sss_util.dir/flags.cc.o"
  "CMakeFiles/sss_util.dir/flags.cc.o.d"
  "CMakeFiles/sss_util.dir/histogram.cc.o"
  "CMakeFiles/sss_util.dir/histogram.cc.o.d"
  "CMakeFiles/sss_util.dir/logging.cc.o"
  "CMakeFiles/sss_util.dir/logging.cc.o.d"
  "CMakeFiles/sss_util.dir/random.cc.o"
  "CMakeFiles/sss_util.dir/random.cc.o.d"
  "CMakeFiles/sss_util.dir/status.cc.o"
  "CMakeFiles/sss_util.dir/status.cc.o.d"
  "CMakeFiles/sss_util.dir/string_pool.cc.o"
  "CMakeFiles/sss_util.dir/string_pool.cc.o.d"
  "libsss_util.a"
  "libsss_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
