// Query workload generator.
//
// The competition issued queries drawn from the same domain as the data,
// each with a threshold from the dataset's ladder (city: k ∈ {0,1,2,3};
// DNA: k ∈ {0,4,8,16}, Table I). We reproduce that: a query is a dataset
// string perturbed by up to `k` random edit operations, so that every query
// is guaranteed at least one match at its threshold and result sets are
// non-empty the way competition runs were.
#pragma once

#include <cstdint>
#include <vector>

#include "io/dataset.h"
#include "util/random.h"

namespace sss::gen {

/// \brief Tuning knobs for MakeQuerySet.
struct QueryGeneratorOptions {
  /// Number of queries to produce (paper runs: 100, 500, 1000).
  size_t num_queries = 100;
  /// Threshold ladder, cycled across queries (Table I values).
  std::vector<int> thresholds = {0, 1, 2, 3};
  /// When true, each query is perturbed by exactly its threshold k edits;
  /// when false, by a uniform number in [0, k].
  bool exact_edits = false;
  /// Alphabet the perturbation draws replacement/insert symbols from. When
  /// empty, symbols are drawn from the sampled string itself.
  std::string alphabet;
};

/// \brief Applies exactly `edits` random insert/delete/replace operations.
/// Exposed for tests (the result is within edit distance `edits` of `base`).
std::string Perturb(std::string_view base, int edits,
                    std::string_view alphabet, Xoshiro256* rng);

/// \brief Builds a QuerySet against `dataset` per `options`.
QuerySet MakeQuerySet(const Dataset& dataset,
                      const QueryGeneratorOptions& options,
                      uint64_t seed = Xoshiro256::kDefaultSeed);

}  // namespace sss::gen
