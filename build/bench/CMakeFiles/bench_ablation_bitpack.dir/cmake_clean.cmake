file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bitpack.dir/bench_ablation_bitpack.cc.o"
  "CMakeFiles/bench_ablation_bitpack.dir/bench_ablation_bitpack.cc.o.d"
  "bench_ablation_bitpack"
  "bench_ablation_bitpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bitpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
