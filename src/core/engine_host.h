// EngineHost — snapshot-owned engine lifecycle. The host turns the static
// "build engines in main(), borrow them forever" wiring into a replaceable
// generation: every Load builds a complete engine set against one immutable
// CollectionSnapshot and publishes it with a single pointer swap under a
// lock held only for the swap itself.
// Readers pin a generation with Acquire() and keep searching it for as long
// as they hold the handle — a concurrent reload never invalidates an
// in-flight query, it only makes the *next* Acquire() return the new set.
//
// Ownership diagram (see DESIGN.md §9):
//
//   CollectionSnapshot (refcounted, immutable, versioned)
//        ▲  one handle per engine + one in the set
//   EngineSet {snapshot, engines[], by_id[256], default}  (immutable)
//        ▲  pointer swap on publish (lock held for the swap only)
//   EngineHost ──Acquire()──▶ request handlers (one pin per request)
//
// Reload semantics:
//   * serialized — a second Load/Reload while one is running returns
//     kUnavailable instead of queueing (the caller retries; the admission
//     philosophy of the server applies to control operations too);
//   * cancellable — the SearchContext's token/deadline is polled between
//     per-engine builds (constructors are not interruptible, so that is the
//     granularity); a cancelled build publishes nothing;
//   * fail-safe — any build error leaves the previous generation serving.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "io/dataset.h"
#include "io/snapshot.h"
#include "util/cancellation.h"
#include "util/result.h"
#include "util/search_stats.h"
#include "util/status.h"

namespace sss {

/// \brief Wire id under which the auto-routing engine (AutoSearcher) is
/// served. EngineKind values occupy the low ids; this sits far above them.
inline constexpr uint8_t kAutoEngineId = 0xF0;

/// \brief One engine to build per generation: a wire id plus what to build.
struct EngineSpec {
  /// Id the engine is served under — conventionally uint8_t(EngineKind),
  /// kAutoEngineId for the auto router.
  uint8_t id = 0;
  /// What MakeSearcher builds; ignored when auto_router is set.
  EngineKind kind = EngineKind::kSequentialScan;
  /// Build AutoSearcher (dataset-profiled scan/trie routing) instead.
  bool auto_router = false;

  static EngineSpec For(EngineKind kind) {
    return EngineSpec{static_cast<uint8_t>(kind), kind, false};
  }
  static EngineSpec Auto() {
    return EngineSpec{kAutoEngineId, EngineKind::kSequentialScan, true};
  }
};

/// \brief Parses an engine name as used by the tools (sss_server --engine):
/// scan, trie, ctrie, qgram, partition, packed, bktree, auto.
Result<EngineSpec> ParseEngineSpec(const std::string& name);

/// \brief One published generation: a snapshot and every engine built over
/// it. Immutable after construction; destroyed when the last pin drops.
struct EngineSet {
  SnapshotHandle snapshot;
  /// == snapshot->version(); echoed in server responses.
  uint64_t generation = 0;
  /// Owners, in spec order. Engines hold their own snapshot handles, so the
  /// set keeps exactly one collection alive.
  std::vector<std::unique_ptr<Searcher>> engines;
  /// Wire id → engine (nullptr where nothing is registered).
  std::array<const Searcher*, 256> by_id = {};
  /// Answers requests that do not pin an engine (first spec).
  const Searcher* default_engine = nullptr;

  const Searcher* Find(uint8_t id) const noexcept { return by_id[id]; }
};

using EngineSetHandle = std::shared_ptr<const EngineSet>;

struct EngineHostOptions {
  /// Alphabet LoadFile/Reload parse dataset files with.
  AlphabetKind alphabet = AlphabetKind::kGeneric;
  /// Optional sink for host_reloads_ok / host_reloads_failed /
  /// host_reload_build_micros. Borrowed; must outlive the host.
  StatsSink* stats = nullptr;
};

/// \brief Reload/publish observability, readable while the host runs.
/// Relaxed atomics: these count, they do not synchronize.
struct EngineHostCounters {
  std::atomic<uint64_t> reloads_ok{0};
  std::atomic<uint64_t> reloads_failed{0};     // build errors + cancellations
  std::atomic<uint64_t> reloads_rejected{0};   // concurrent-reload kUnavailable
  /// Wall time building the last attempted engine set (µs).
  std::atomic<uint64_t> last_build_micros{0};
  /// Wall time of the last publish swap itself (ns) — the window competing
  /// Acquire() calls can even observe. The reload acceptance bar
  /// (BENCH_reload.json) requires this < 1 ms.
  std::atomic<uint64_t> last_publish_nanos{0};
};

/// \brief Builds and atomically publishes engine generations. Thread-safe:
/// Acquire()/generation() from any thread, Load/LoadFile/Reload serialized
/// by rejection (not queueing).
class EngineHost {
 public:
  /// `specs` lists the engines every generation builds; the first is the
  /// default. Invalid specs (empty list, duplicate ids) surface on Load.
  explicit EngineHost(std::vector<EngineSpec> specs,
                      EngineHostOptions options = {});
  SSS_DISALLOW_COPY_AND_ASSIGN(EngineHost);

  /// \brief Builds every spec'd engine over `snapshot` and publishes the set.
  /// `ctx` is polled between engine builds: a cancelled/over-deadline build
  /// returns kCancelled and publishes nothing. On any failure the previous
  /// generation (if one exists) keeps serving.
  Status Load(SnapshotHandle snapshot, const SearchContext& ctx = {});

  /// \brief Reads `path` (options.alphabet), wraps it in a new owned
  /// snapshot, and Load()s it. The path is remembered for Reload().
  Status LoadFile(const std::string& path, const SearchContext& ctx = {});

  /// \brief Re-reads the last LoadFile path (kInvalid if there is none) and
  /// publishes a fresh generation — the SIGHUP / admin-frame entry point.
  Status Reload(const SearchContext& ctx = {});

  /// \brief Pins the current generation: the returned set (snapshot, version
  /// id, engines) stays valid for as long as the handle lives, regardless of
  /// concurrent reloads. nullptr before the first successful Load.
  EngineSetHandle Acquire() const {
    std::lock_guard<std::mutex> lock(current_mu_);
    return current_;
  }

  /// \brief The published generation id (0 = nothing published yet).
  uint64_t generation() const noexcept {
    const EngineSetHandle set = Acquire();
    return set == nullptr ? 0 : set->generation;
  }

  const EngineHostCounters& counters() const noexcept { return counters_; }

  /// \brief The path Reload() would re-read ("" = none). Racy snapshot.
  std::string source_path() const;

 private:
  Status BuildSet(SnapshotHandle snapshot, const SearchContext& ctx,
                  std::shared_ptr<EngineSet>* out) const;

  std::vector<EngineSpec> specs_;
  EngineHostOptions options_;

  /// Serializes reloads; try-locked so a competing reload is rejected, never
  /// queued behind a slow build.
  mutable std::mutex reload_mu_;
  std::string source_path_;  // guarded by reload_mu_

  /// Guards only the handle itself — the critical section is a shared_ptr
  /// copy (one refcount bump), never a build or a search, so readers contend
  /// for nanoseconds. libstdc++ 12's lock-free atomic<shared_ptr> would do
  /// the same job but its internal lock-bit protocol is invisible to TSan;
  /// a real mutex keeps the sanitized CI suites clean.
  mutable std::mutex current_mu_;
  EngineSetHandle current_;  // guarded by current_mu_
  EngineHostCounters counters_;
};

}  // namespace sss
