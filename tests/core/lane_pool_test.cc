// LanePool structural tests: the half-open length-bucket predicate (the
// bucket-boundary double-scan regression), group geometry and padding, and
// the packed2 / byte column-layout selection.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/lane_pool.h"
#include "core/scan.h"
#include "io/dataset.h"
#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

/// Collects every non-padding id in the pool, failing on duplicates.
std::vector<uint32_t> AllIds(const LanePool& pool) {
  std::vector<uint32_t> ids;
  std::set<uint32_t> seen;
  for (const LanePool::Bucket& bucket : pool.buckets()) {
    for (uint32_t i = 0; i < bucket.num_candidates; ++i) {
      const uint32_t id = bucket.ids[i];
      EXPECT_TRUE(seen.insert(id).second) << "id " << id << " in two buckets";
      ids.push_back(id);
    }
  }
  return ids;
}

// The regression this PR fixes: a candidate whose length sits exactly on a
// bucket boundary (a multiple of the bucket width) must belong to exactly
// ONE bucket. The earlier closed-interval bucketing placed boundary lengths
// in both adjacent buckets, so boundary candidates were verified — and
// reported — twice.
TEST(LanePoolTest, BucketBoundaryCandidatesAppearExactlyOnce) {
  Dataset dataset("boundary", AlphabetKind::kGeneric);
  // Lengths 8, 16, 24: each a multiple of the default width 8, plus
  // neighbours one off the boundary on both sides.
  for (size_t len : {7, 8, 9, 15, 16, 17, 23, 24, 25, 8, 16, 8}) {
    dataset.Add(std::string(len, 'x'));
  }
  const LanePool pool = LanePool::Build(dataset);
  const std::vector<uint32_t> ids = AllIds(pool);
  EXPECT_EQ(ids.size(), dataset.size());
  for (const LanePool::Bucket& bucket : pool.buckets()) {
    EXPECT_EQ(bucket.max_len, bucket.min_len + kDefaultLengthBucketWidth);
    for (uint32_t i = 0; i < bucket.num_candidates; ++i) {
      const uint32_t len = bucket.lengths[i];
      EXPECT_GE(len, bucket.min_len);
      EXPECT_LT(len, bucket.max_len) << "len " << len
                                     << " leaked past the half-open bound";
    }
  }
}

// End-to-end shape of the same regression: a query whose window spans a
// bucket boundary must report each boundary-length match once.
TEST(LanePoolTest, EngineReportsBoundaryMatchesOnce) {
  Dataset dataset("dup", AlphabetKind::kGeneric);
  dataset.Add(std::string(8, 'a'));   // length exactly on the 8-boundary
  dataset.Add(std::string(16, 'a'));  // and on the 16-boundary
  dataset.Add(std::string(9, 'a'));
  SequentialScanSearcher scan(dataset, ScanOptions{});
  SearchContext ctx;
  ctx.kernel_tier = KernelTierChoice::kSwar;  // force the lane path
  const Query query{std::string(12, 'a'), 8};
  MatchList out;
  ASSERT_TRUE(scan.Search(query, ctx, &out).ok());
  EXPECT_EQ(out, (MatchList{0, 1, 2}));  // each id once, ascending
}

TEST(LanePoolTest, GroupGeometryAndPadding) {
  Xoshiro256 rng(42);
  // 10 candidates of lengths 3..7 share the [0, 8) bucket: three groups,
  // the last with 2 live lanes + 2 padding lanes.
  Dataset dataset("geom", AlphabetKind::kGeneric);
  for (int i = 0; i < 10; ++i) {
    dataset.Add(testing::RandomString(&rng, "xyz", 3, 7));
  }
  const LanePool pool = LanePool::Build(dataset);
  EXPECT_EQ(pool.size(), 10u);
  ASSERT_EQ(pool.buckets().size(), 1u);
  const LanePool::Bucket& bucket = pool.buckets()[0];
  EXPECT_EQ(bucket.num_candidates, 10u);
  ASSERT_EQ(bucket.num_groups(), 3u);
  // Ids ascend across the bucket (shard intersection relies on this).
  for (uint32_t i = 1; i < bucket.num_candidates; ++i) {
    EXPECT_LT(bucket.ids[i - 1], bucket.ids[i]);
  }
  const LaneGroupView g0 = pool.Group(bucket, 0);
  const LaneGroupView g2 = pool.Group(bucket, 2);
  EXPECT_EQ(g0.active, kLaneWidth);
  EXPECT_EQ(g2.active, 2u);
  // Padding lanes: sentinel id, zero length, verdicts ignored by callers.
  EXPECT_EQ(g2.ids[2], UINT32_MAX);
  EXPECT_EQ(g2.ids[3], UINT32_MAX);
  EXPECT_EQ(g2.lengths[2], 0u);
  EXPECT_EQ(g2.lengths[3], 0u);
  // num_cols covers the longest live lane of the group.
  for (size_t g = 0; g < bucket.num_groups(); ++g) {
    const LaneGroupView view = pool.Group(bucket, g);
    uint32_t max_len = 0;
    for (uint32_t l = 0; l < kLaneWidth; ++l) {
      max_len = std::max(max_len, view.lengths[l]);
    }
    EXPECT_EQ(view.num_cols, max_len);
  }
}

TEST(LanePoolTest, Packed2OnlyForPureAcgtGroups) {
  Dataset dataset("mix", AlphabetKind::kDna);
  // Group 0: four pure-ACGT reads -> packed2. Group 1: one read carries an
  // 'N' -> the whole group falls back to byte columns.
  for (int i = 0; i < 4; ++i) dataset.Add("ACGTACGT");
  dataset.Add("ACGNACGT");
  for (int i = 0; i < 3; ++i) dataset.Add("TTTTACGT");
  const LanePool pool = LanePool::Build(dataset);
  ASSERT_EQ(pool.buckets().size(), 1u);
  const LanePool::Bucket& bucket = pool.buckets()[0];
  ASSERT_EQ(bucket.num_groups(), 2u);
  EXPECT_TRUE(pool.Group(bucket, 0).packed2);
  EXPECT_FALSE(pool.Group(bucket, 1).packed2);
  // packed2 column bytes hold one column of four 2-bit codes.
  const LaneGroupView g0 = pool.Group(bucket, 0);
  EXPECT_EQ(g0.num_cols, 8u);
  // All four lanes store "ACGTACGT": column 0 is 'A' (code 0) in every
  // lane, column 1 'C' (code 1) in every lane -> 0b01010101.
  EXPECT_EQ(g0.data[0], 0x00);
  EXPECT_EQ(g0.data[1], 0x55);

  const LanePoolOptions no_pack{.length_bucket_width = 8,
                                .allow_packed2 = false};
  const LanePool byte_pool = LanePool::Build(dataset, no_pack);
  for (const LanePool::Bucket& b : byte_pool.buckets()) {
    for (size_t g = 0; g < b.num_groups(); ++g) {
      EXPECT_FALSE(byte_pool.Group(b, g).packed2);
    }
  }
}

TEST(LanePoolTest, EmptyAndSingletonDatasets) {
  Dataset empty("empty", AlphabetKind::kGeneric);
  const LanePool none = LanePool::Build(empty);
  EXPECT_EQ(none.size(), 0u);
  EXPECT_TRUE(AllIds(none).empty());

  Dataset one("one", AlphabetKind::kGeneric);
  one.Add("hello");
  const LanePool single = LanePool::Build(one);
  EXPECT_EQ(single.size(), 1u);
  EXPECT_EQ(AllIds(single), (std::vector<uint32_t>{0}));
  EXPECT_GT(single.memory_bytes(), 0u);
}

TEST(LanePoolTest, RandomDatasetCoversEveryIdOnce) {
  Xoshiro256 rng(7);
  const Dataset dataset =
      testing::RandomDataset(&rng, "ACGTN", 333, 0, 64, AlphabetKind::kDna);
  const LanePool pool = LanePool::Build(dataset);
  std::vector<uint32_t> ids = AllIds(pool);
  EXPECT_EQ(ids.size(), dataset.size());
  std::sort(ids.begin(), ids.end());
  for (uint32_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
  // Lengths recorded in the pool match the dataset's.
  for (const LanePool::Bucket& bucket : pool.buckets()) {
    for (uint32_t i = 0; i < bucket.num_candidates; ++i) {
      EXPECT_EQ(bucket.lengths[i], dataset.Length(bucket.ids[i]));
    }
  }
}

}  // namespace
}  // namespace sss
