// Internal: the banded DP-row machinery both trie engines descend with.
// Row i holds ed(<prefix of length i>, q_0..j) for j in the Ukkonen band
// [i − k, i + k]; values outside the band are saturated to inf = k+1, which
// is sound because a cell (i, j) with |i − j| > k is at least |i − j| > k.
#pragma once

#include <algorithm>
#include <string_view>
#include <vector>

namespace sss::internal {

/// \brief Per-query descent scratch. `rows` has `stride` ints per depth.
struct BandedRows {
  std::string_view q;
  int k = 0;
  int lq = 0;
  int inf = 1;
  int stride = 1;
  std::vector<int> rows;

  /// \brief Sizes the buffers and fills the depth-0 row (ed(ε, q_0..j) = j).
  void Init(std::string_view query, int threshold) {
    q = query;
    k = threshold;
    lq = static_cast<int>(query.size());
    inf = k + 1;
    stride = lq + 1;
    const size_t depths = static_cast<size_t>(lq + k) + 2;
    rows.assign(depths * static_cast<size_t>(stride), 0);
    int* row0 = rows.data();
    for (int j = 0; j <= std::min(lq, k); ++j) row0[j] = j;
    if (k < lq) row0[k + 1] = inf;
  }

  const int* Row(int depth) const { return rows.data() + depth * stride; }

  /// \brief Computes the row for depth i (prefix extended by `c`) from the
  /// row at depth i−1. Returns the band minimum (inf when the band is
  /// empty) — the subtree is dead once this exceeds k.
  int Advance(int i, unsigned char c) {
    const int* parent = rows.data() + (i - 1) * stride;
    int* cur = rows.data() + i * stride;
    const int jlo = std::max(0, i - k);
    const int jhi = std::min(lq, i + k);
    if (jlo > jhi) return inf;
    if (jlo > 0) cur[jlo - 1] = inf;  // left sentinel for cur[j−1] reads

    int band_min = inf;
    for (int j = jlo; j <= jhi; ++j) {
      int v;
      if (j == 0) {
        v = i <= k ? i : inf;
      } else if (c == static_cast<unsigned char>(q[j - 1])) {
        v = parent[j - 1];  // condition (3) of the paper
      } else {
        const int a = parent[j];
        const int b = cur[j - 1];
        const int d = parent[j - 1];
        int m = a < b ? a : b;
        if (d < m) m = d;
        v = m + 1;
        if (v > inf) v = inf;
      }
      cur[j] = v;
      if (v < band_min) band_min = v;
    }
    if (jhi < lq) cur[jhi + 1] = inf;  // right sentinel for the next depth
    return band_min;
  }

  /// \brief ed(<prefix of length depth>, q) if inside the band, else "no".
  bool TerminalWithin(int depth) const {
    if (lq > depth + k || lq < depth - k) return false;
    return Row(depth)[lq] <= k;
  }
};

/// \brief Full-width DP rows for the paper-faithful descent (§4.1): no band,
/// every cell exact. Row i holds ed(<prefix of length i>, q_0..j) for all j.
struct FullRows {
  std::string_view q;
  int k = 0;
  int lq = 0;
  int stride = 1;
  std::vector<int> rows;

  /// \param max_depth deepest prefix length that may be advanced to
  ///        (the trie's maximum string length).
  void Init(std::string_view query, int threshold, size_t max_depth) {
    q = query;
    k = threshold;
    lq = static_cast<int>(query.size());
    stride = lq + 1;
    rows.assign((max_depth + 2) * static_cast<size_t>(stride), 0);
    int* row0 = rows.data();
    for (int j = 0; j <= lq; ++j) row0[j] = j;
  }

  const int* Row(int depth) const { return rows.data() + depth * stride; }

  /// \brief Computes the full row for depth i; returns its minimum.
  int Advance(int i, unsigned char c) {
    const int* parent = rows.data() + (i - 1) * stride;
    int* cur = rows.data() + i * stride;
    cur[0] = i;
    int row_min = i;
    for (int j = 1; j <= lq; ++j) {
      int v;
      if (c == static_cast<unsigned char>(q[j - 1])) {
        v = parent[j - 1];
      } else {
        const int a = parent[j];
        const int b = cur[j - 1];
        const int d = parent[j - 1];
        int m = a < b ? a : b;
        if (d < m) m = d;
        v = m + 1;
      }
      cur[j] = v;
      if (v < row_min) row_min = v;
    }
    return row_min;
  }

  /// \brief ed(x_0..i, y_0..i) of the paper's condition (9): the prefix
  /// distance at equal lengths (the whole query once the prefix is longer).
  int PrefixDistance(int depth) const {
    return Row(depth)[depth < lq ? depth : lq];
  }

  bool TerminalWithin(int depth) const { return Row(depth)[lq] <= k; }
};

/// \brief The paper's d_m length slack (eq. 10) for a subtree with string
/// lengths in [min_len, max_len] and a query of length lq.
inline int PaperLengthSlack(int lq, int min_len, int max_len) {
  const int a = lq - min_len;
  const int b = max_len - lq;
  int d = a > b ? a : b;
  return d > 0 ? d : 0;
}

}  // namespace sss::internal
