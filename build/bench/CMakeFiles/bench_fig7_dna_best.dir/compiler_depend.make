# Empty compiler generated dependencies file for bench_fig7_dna_best.
# This may be replaced when dependencies are built.
