#include "core/packed_scan.h"

#include "core/edit_distance.h"
#include "core/filters.h"
#include "core/simd_verify.h"
#include "util/kernel_dispatch.h"
#include "util/search_stats.h"

namespace sss {

Result<std::unique_ptr<PackedDnaScanSearcher>> PackedDnaScanSearcher::Make(
    SnapshotHandle snapshot) {
  if (snapshot == nullptr) {
    return Status::Invalid("PackedDnaScanSearcher: null snapshot");
  }
  std::unique_ptr<PackedDnaScanSearcher> searcher(
      new PackedDnaScanSearcher(std::move(snapshot)));
  const Dataset& dataset = searcher->dataset_;
  for (size_t id = 0; id < dataset.size(); ++id) {
    Result<uint32_t> added = searcher->pool_.Add(dataset.View(id));
    if (!added.ok()) {
      return Status::Invalid("PackedDnaScanSearcher: string " +
                             std::to_string(id) + ": " +
                             added.status().message());
    }
  }
  return searcher;
}

const LanePool& PackedDnaScanSearcher::EnsureLanePool() const {
  const LanePool* lanes = lane_pool_.load(std::memory_order_acquire);
  if (lanes != nullptr) return *lanes;
  std::call_once(lane_pool_once_, [this] {
    lane_pool_storage_ =
        std::make_unique<LanePool>(LanePool::Build(dataset_));
    lane_pool_.store(lane_pool_storage_.get(), std::memory_order_release);
  });
  return *lane_pool_.load(std::memory_order_acquire);
}

size_t PackedDnaScanSearcher::memory_bytes() const {
  size_t bytes = pool_.packed_bytes();
  if (const LanePool* lanes = lane_pool_.load(std::memory_order_acquire)) {
    bytes += lanes->memory_bytes();
  }
  return bytes;
}

Status PackedDnaScanSearcher::Search(const Query& query,
                                     const SearchContext& ctx,
                                     MatchList* out) const {
  return SearchRange(query, 0, static_cast<uint32_t>(pool_.size()), ctx, out);
}

Status PackedDnaScanSearcher::SearchRange(const Query& query, uint32_t begin,
                                          uint32_t end,
                                          const SearchContext& ctx,
                                          MatchList* out) const {
  const int k = query.max_distance;

  // Lane verdicts on raw text equal the code-space verdicts below: the
  // encoding is injective on the alphabet and the sentinel (like any
  // non-alphabet query byte) matches no candidate symbol either way.
  const KernelTier tier = ResolveKernelTier(ctx.kernel_tier);
  if (tier != KernelTier::kScalar && !query.text.empty() && k >= 0) {
    return LaneVerifyRange(EnsureLanePool(), query, ctx, tier, begin, end,
                           out);
  }

  // Encode the query once. Symbols outside the alphabet get a sentinel that
  // matches no data code, which preserves exact semantics (such positions
  // always cost an edit).
  thread_local std::vector<uint8_t> query_codes;
  query_codes.resize(query.text.size());
  for (size_t i = 0; i < query.text.size(); ++i) {
    const uint8_t code = DnaCodec::Encode(query.text[i]);
    query_codes[i] = code == DnaCodec::kInvalidCode ? 0x7F : code;
  }
  const std::string_view q_view(
      reinterpret_cast<const char*>(query_codes.data()), query_codes.size());

  thread_local std::vector<uint8_t> candidate_codes;
  thread_local EditDistanceWorkspace ws;
  StatsScope stats(ctx.stats);
  const KernelCounters kernel_before = ws.kernel;
  const size_t out_before = out->size();
  StopChecker stopper(ctx);
  for (uint32_t id = begin; id < end; ++id) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    if (!LengthFilterPasses(query.text.size(), pool_.Length(id), k)) {
      ++stats->length_filter_rejects;
      continue;
    }
    pool_.DecodeCodes(id, &candidate_codes);
    const std::string_view c_view(
        reinterpret_cast<const char*>(candidate_codes.data()),
        candidate_codes.size());
    if (WithinDistance(q_view, c_view, k, &ws)) {
      out->push_back(id);
    }
  }
  stats->candidates_considered += end - begin;
  const uint64_t verified = (end - begin) - stats->length_filter_rejects;
  stats->verify_calls += verified;
  if (tier != KernelTier::kScalar) stats->simd_fallback_pairs += verified;
  stats->matches_found += out->size() - out_before;
  stats.AddKernelDelta(ws.kernel, kernel_before);
  return Status::OK();
}

}  // namespace sss
