// Serialization of the compressed trie (declared in compressed_trie.h).
//
// Layout (little-endian), checksummed like io/binary_format.cc:
//   magic "SSSIDX01"
//   dataset fingerprint: uint64 count + uint64 FNV over the pool bytes
//   pruning (uint8), frequency_bounds (uint8)
//   node count (uint64), then per node:
//     label_offset u64 (into the pool buffer), label_len u32,
//     min_len u16, max_len u16, freq_min[6] u16, freq_max[6] u16,
//     child count u32 + (label byte u8, node index u32) pairs,
//     terminal count u32 + ids u32
//   checksum u64 (FNV over everything above)
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/compressed_trie.h"
#include "util/macros.h"

namespace sss {

namespace {

constexpr char kIndexMagic[8] = {'S', 'S', 'S', 'I', 'D', 'X', '0', '1'};

uint64_t Fnv1a(const char* data, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}
constexpr uint64_t kFnvSeed = 1469598103934665603ULL;

uint64_t DatasetFingerprint(const Dataset& dataset) {
  return Fnv1a(dataset.pool().data(), dataset.pool().total_bytes(),
               kFnvSeed);
}

// Append-to-string writer; the whole image is built in memory (index files
// are a few MB at paper scale), checksummed once, and written once.
class ImageWriter {
 public:
  void Write(const void* data, size_t len) {
    image_.append(static_cast<const char*>(data), len);
  }
  template <typename T>
  void WriteScalar(T value) {
    Write(&value, sizeof(T));
  }
  std::string Finish() {
    const uint64_t checksum = Fnv1a(image_.data(), image_.size(), kFnvSeed);
    Write(&checksum, sizeof(checksum));
    return std::move(image_);
  }

 private:
  std::string image_;
};

class ImageReader {
 public:
  explicit ImageReader(std::string_view body) : body_(body) {}

  Status Read(void* out, size_t len) {
    if (pos_ + len > body_.size()) {
      return Status::Invalid("index file truncated");
    }
    std::memcpy(out, body_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }
  template <typename T>
  Result<T> ReadScalar() {
    T value;
    SSS_RETURN_NOT_OK(Read(&value, sizeof(T)));
    return value;
  }
  size_t Remaining() const { return body_.size() - pos_; }

 private:
  std::string_view body_;
  size_t pos_ = 0;
};

}  // namespace

Status CompressedTrieSearcher::SaveIndex(const std::string& path) const {
  ImageWriter writer;
  writer.Write(kIndexMagic, sizeof(kIndexMagic));
  writer.WriteScalar<uint64_t>(static_cast<uint64_t>(dataset_.size()));
  writer.WriteScalar<uint64_t>(DatasetFingerprint(dataset_));
  writer.WriteScalar<uint8_t>(
      pruning_ == TriePruning::kPaperRule ? 1 : 0);
  writer.WriteScalar<uint8_t>(frequency_bounds_ ? 1 : 0);
  writer.WriteScalar<uint64_t>(static_cast<uint64_t>(nodes_.size()));

  const char* pool_base = dataset_.pool().data();
  for (const Node& node : nodes_) {
    const uint64_t offset =
        node.label == nullptr
            ? 0
            : static_cast<uint64_t>(node.label - pool_base);
    writer.WriteScalar<uint64_t>(offset);
    writer.WriteScalar<uint32_t>(node.label_len);
    writer.WriteScalar<uint16_t>(node.min_len);
    writer.WriteScalar<uint16_t>(node.max_len);
    for (uint16_t v : node.freq_min) writer.WriteScalar<uint16_t>(v);
    for (uint16_t v : node.freq_max) writer.WriteScalar<uint16_t>(v);
    writer.WriteScalar<uint32_t>(
        static_cast<uint32_t>(node.children.size()));
    for (const auto& [byte, child] : node.children) {
      writer.WriteScalar<uint8_t>(byte);
      writer.WriteScalar<uint32_t>(child);
    }
    writer.WriteScalar<uint32_t>(
        static_cast<uint32_t>(node.terminal_ids.size()));
    for (uint32_t id : node.terminal_ids) writer.WriteScalar<uint32_t>(id);
  }

  const std::string image = writer.Finish();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const bool ok =
      std::fwrite(image.data(), 1, image.size(), f) == image.size();
  std::fclose(f);
  if (!ok) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<CompressedTrieSearcher>>
CompressedTrieSearcher::LoadIndex(const std::string& path,
                                  const Dataset& dataset) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string contents(size > 0 ? static_cast<size_t>(size) : 0, '\0');
  const bool read_ok =
      contents.empty() ||
      std::fread(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  if (!read_ok) return Status::IOError("short read from '" + path + "'");

  if (contents.size() < sizeof(kIndexMagic) + sizeof(uint64_t)) {
    return Status::Invalid("index file too small");
  }
  const std::string_view body(contents.data(),
                              contents.size() - sizeof(uint64_t));
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, contents.data() + body.size(),
              sizeof(uint64_t));
  if (Fnv1a(body.data(), body.size(), kFnvSeed) != stored_checksum) {
    return Status::Invalid("index checksum mismatch (corrupt file)");
  }

  ImageReader reader(body);
  char magic[sizeof(kIndexMagic)];
  SSS_RETURN_NOT_OK(reader.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kIndexMagic, sizeof(magic)) != 0) {
    return Status::Invalid("bad magic: not an sss index file");
  }
  SSS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadScalar<uint64_t>());
  SSS_ASSIGN_OR_RETURN(uint64_t fingerprint, reader.ReadScalar<uint64_t>());
  if (count != dataset.size() ||
      fingerprint != DatasetFingerprint(dataset)) {
    return Status::Invalid(
        "index was built over a different dataset (fingerprint mismatch)");
  }
  SSS_ASSIGN_OR_RETURN(uint8_t pruning_raw, reader.ReadScalar<uint8_t>());
  if (pruning_raw > 1) return Status::Invalid("unknown pruning tag");
  SSS_ASSIGN_OR_RETURN(uint8_t freq_raw, reader.ReadScalar<uint8_t>());
  if (freq_raw > 1) return Status::Invalid("unknown frequency-bounds tag");
  SSS_ASSIGN_OR_RETURN(uint64_t node_count, reader.ReadScalar<uint64_t>());
  // Each node needs ≥ 24 bytes; overflow-safe sanity bound.
  if (node_count > reader.Remaining() / 24) {
    return Status::Invalid("index file truncated (nodes)");
  }

  std::unique_ptr<CompressedTrieSearcher> searcher(
      new CompressedTrieSearcher(
          CollectionSnapshot::Borrow(dataset),
          pruning_raw == 1 ? TriePruning::kPaperRule
                           : TriePruning::kBandedRows,
          freq_raw == 1, SkipBuild{}));
  searcher->nodes_.resize(node_count);

  const char* pool_base = dataset.pool().data();
  const uint64_t pool_bytes = dataset.pool().total_bytes();
  for (Node& node : searcher->nodes_) {
    SSS_ASSIGN_OR_RETURN(uint64_t offset, reader.ReadScalar<uint64_t>());
    SSS_ASSIGN_OR_RETURN(node.label_len, reader.ReadScalar<uint32_t>());
    if (offset > pool_bytes || offset + node.label_len > pool_bytes) {
      return Status::Invalid("index label points outside the dataset pool");
    }
    node.label = node.label_len == 0 ? nullptr : pool_base + offset;
    SSS_ASSIGN_OR_RETURN(node.min_len, reader.ReadScalar<uint16_t>());
    SSS_ASSIGN_OR_RETURN(node.max_len, reader.ReadScalar<uint16_t>());
    for (uint16_t& v : node.freq_min) {
      SSS_ASSIGN_OR_RETURN(v, reader.ReadScalar<uint16_t>());
    }
    for (uint16_t& v : node.freq_max) {
      SSS_ASSIGN_OR_RETURN(v, reader.ReadScalar<uint16_t>());
    }
    SSS_ASSIGN_OR_RETURN(uint32_t child_count,
                         reader.ReadScalar<uint32_t>());
    if (child_count > reader.Remaining() / 5) {
      return Status::Invalid("index file truncated (children)");
    }
    node.children.resize(child_count);
    for (auto& [byte, child] : node.children) {
      SSS_ASSIGN_OR_RETURN(byte, reader.ReadScalar<uint8_t>());
      SSS_ASSIGN_OR_RETURN(child, reader.ReadScalar<uint32_t>());
      if (child == 0 || child >= node_count) {
        return Status::Invalid("index child reference out of range");
      }
    }
    SSS_ASSIGN_OR_RETURN(uint32_t terminal_count,
                         reader.ReadScalar<uint32_t>());
    if (terminal_count > reader.Remaining() / 4) {
      return Status::Invalid("index file truncated (terminals)");
    }
    node.terminal_ids.resize(terminal_count);
    for (uint32_t& id : node.terminal_ids) {
      SSS_ASSIGN_OR_RETURN(id, reader.ReadScalar<uint32_t>());
      if (id >= dataset.size()) {
        return Status::Invalid("index terminal id out of range");
      }
    }
  }
  if (reader.Remaining() != 0) {
    return Status::Invalid("index file has trailing bytes");
  }
  return searcher;
}

}  // namespace sss
