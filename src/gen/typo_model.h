// Realistic typo model for natural-language query workloads. The plain
// query generator (query_generator.h) applies uniform random edits; real
// users make *keyboard* mistakes — neighbouring-key substitutions, doubled
// letters, dropped letters, and adjacent-letter swaps. This model produces
// those, for examples and workloads that should look like actual misspelled
// input (the paper's §1 motivation: "the user could make typing errors").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/random.h"

namespace sss::gen {

/// \brief Relative frequency of each typo class (normalized internally;
/// defaults follow the classic typo-distribution observation that
/// substitutions and omissions dominate).
struct TypoModelOptions {
  double neighbor_substitution = 0.35;  // g → f/h/t/b/v (QWERTY neighbors)
  double omission = 0.25;               // drop a letter
  double insertion = 0.15;              // double a letter / stray neighbor
  double transposition = 0.25;          // swap adjacent letters
};

/// \brief Generates keyboard-plausible misspellings.
class TypoModel {
 public:
  explicit TypoModel(TypoModelOptions options = {});

  /// \brief Applies exactly `typos` mistakes to `word` using `rng`.
  /// A single typo leaves the result within OSA distance 1 (a transposition
  /// is one OSA operation); in general the result is within plain edit
  /// distance 2·typos (each mistake is at most two Levenshtein operations;
  /// stacked mistakes may overlap, so the OSA bound does not compose).
  std::string Corrupt(std::string_view word, int typos,
                      Xoshiro256* rng) const;

  /// \brief The QWERTY neighbours of `c` (letters only; empty view for
  /// non-letters). Exposed for tests.
  static std::string_view NeighborsOf(char c);

 private:
  double cumulative_[4];
};

}  // namespace sss::gen
