#include "util/kernel_dispatch.h"

#include "util/env.h"
#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define SSS_KERNEL_DISPATCH_X86 1
#else
#define SSS_KERNEL_DISPATCH_X86 0
#endif

namespace sss {

namespace {

struct DispatchDecision {
  KernelTier detected = KernelTier::kSwar;
  KernelTier active = KernelTier::kSwar;
  bool forced = false;
};

KernelTier ProbeCpu() noexcept {
  // The SWAR tier is plain C++ and always executable; AVX2 needs a runtime
  // CPUID probe because the lane kernel is compiled per-function
  // (__attribute__((target))) even in baseline -msse2 builds.
#if SSS_KERNEL_DISPATCH_X86 && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return KernelTier::kAvx2;
#endif
  return KernelTier::kSwar;
}

const DispatchDecision& Decision() noexcept {
  // Decided once per process, on first use, and never re-read: engines and
  // stats may cache the answer, so it must not change under them.
  static const DispatchDecision decision = [] {
    DispatchDecision d;
    d.detected = ProbeCpu();
    d.active = d.detected;
    if (const std::optional<std::string> force =
            GetEnv("SSS_FORCE_KERNEL_TIER")) {
      const std::optional<KernelTierChoice> choice =
          ParseKernelTierChoice(*force);
      if (!choice.has_value()) {
        SSS_LOG(Warning) << "SSS_FORCE_KERNEL_TIER=" << *force
                         << " is not scalar|swar|avx2|auto; ignored";
      } else if (*choice != KernelTierChoice::kAuto) {
        d.forced = true;
        const auto requested = static_cast<KernelTier>(*choice);
        if (static_cast<int>(requested) > static_cast<int>(d.detected)) {
          SSS_LOG(Warning)
              << "SSS_FORCE_KERNEL_TIER=" << *force
              << " exceeds this CPU's capability; clamping to "
              << ToString(d.detected);
          d.active = d.detected;
        } else {
          d.active = requested;
        }
      }
      // "auto" force keeps the detected tier but is still an override in
      // spirit; leave forced=false so per-context choices keep working.
    }
    return d;
  }();
  return decision;
}

}  // namespace

std::string_view ToString(KernelTier tier) noexcept {
  switch (tier) {
    case KernelTier::kScalar: return "scalar";
    case KernelTier::kSwar: return "swar";
    case KernelTier::kAvx2: return "avx2";
  }
  return "?";
}

std::string_view ToString(KernelTierChoice choice) noexcept {
  switch (choice) {
    case KernelTierChoice::kScalar: return "scalar";
    case KernelTierChoice::kSwar: return "swar";
    case KernelTierChoice::kAvx2: return "avx2";
    case KernelTierChoice::kAuto: return "auto";
  }
  return "?";
}

std::optional<KernelTierChoice> ParseKernelTierChoice(
    std::string_view name) noexcept {
  if (name == "scalar") return KernelTierChoice::kScalar;
  if (name == "swar") return KernelTierChoice::kSwar;
  if (name == "avx2") return KernelTierChoice::kAvx2;
  if (name == "auto") return KernelTierChoice::kAuto;
  return std::nullopt;
}

KernelTier DetectCpuKernelTier() noexcept { return Decision().detected; }

KernelTier ActiveKernelTier() noexcept { return Decision().active; }

bool KernelTierForced() noexcept { return Decision().forced; }

KernelTier ResolveKernelTier(KernelTierChoice choice) noexcept {
  const DispatchDecision& d = Decision();
  if (d.forced) return d.active;
  if (choice == KernelTierChoice::kAuto) return d.active;
  const auto requested = static_cast<KernelTier>(choice);
  return static_cast<int>(requested) <= static_cast<int>(d.detected)
             ? requested
             : d.detected;
}

}  // namespace sss
