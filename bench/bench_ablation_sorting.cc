// Ablation: pre-sorting by length (paper §6 "Sorting": "Can a pre-sorting
// by length or alphabet reduce the execution time?").
//
// The sorted engine visits only ids whose length lies in [l_q−k, l_q+k].
// Expected shape: large wins on city names (wide length distribution, tiny
// k) and little effect on DNA (every read is ≈100 long, so the window
// covers nearly everything).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scan.h"

namespace sss::bench {
namespace {

gen::WorkloadKind KindOf(int64_t arg) {
  return arg == 0 ? gen::WorkloadKind::kCityNames
                  : gen::WorkloadKind::kDnaReads;
}

const SequentialScanSearcher& Engine(gen::WorkloadKind kind, bool sorted) {
  static const SequentialScanSearcher* engines[2][2] = {};
  const int ki = kind == gen::WorkloadKind::kCityNames ? 0 : 1;
  if (engines[ki][sorted] == nullptr) {
    ScanOptions options;
    options.sort_by_length = sorted;
    engines[ki][sorted] =
        new SequentialScanSearcher(SharedWorkload(kind).dataset, options);
  }
  return *engines[ki][sorted];
}

void BM_Sorting(benchmark::State& state) {
  const gen::WorkloadKind kind = KindOf(state.range(0));
  const bool sorted = state.range(1) != 0;
  const int paper_queries = static_cast<int>(state.range(2));
  const BenchWorkload& w = SharedWorkload(kind);
  RunBatchBenchmark(state, Engine(kind, sorted), w.Batch(paper_queries),
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_Sorting)
    ->ArgNames({"workload", "sorted", "queries"})
    ->ArgsProduct({{0, 1}, {0, 1}, {100, 500}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Ablation: pre-sorting by length (workload 0=city, 1=dna)",
               sss::gen::WorkloadKind::kCityNames)
