// A/B: many-vs-many lane verification vs the per-pair scalar scan.
//
// The tentpole claim this bench gates (EXPERIMENTS.md): on the DNA
// workload — where the length filter passes almost everything and the batch
// is verify-bound — the lane tiers (core/simd_verify) beat the per-pair
// scalar pipeline by >= 1.5x, because the query's peq table is built once
// instead of per candidate and four candidates advance per pass. Rows:
//
//   verify_scalar  per-pair BoundedMyers (the PR 3 baseline)
//   verify_swar    4-lane portable C++ tier
//   verify_avx2    4 x 64-bit lanes in one __m256i (registered only when
//                  CPUID reports AVX2)
//
// City names ride along as the unfavourable case: short strings and k <= 3
// reject most candidates in the length filter, so lane wins there are
// bounded — the honest control for the headline number.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scan.h"
#include "util/kernel_dispatch.h"

namespace sss::bench {
namespace {

const SequentialScanSearcher& ScanEngine(gen::WorkloadKind kind) {
  static const SequentialScanSearcher* city = nullptr;
  static const SequentialScanSearcher* dna = nullptr;
  const SequentialScanSearcher*& slot =
      kind == gen::WorkloadKind::kCityNames ? city : dna;
  if (slot == nullptr) {
    slot = new SequentialScanSearcher(SharedWorkload(kind).dataset,
                                      ScanOptions{});
  }
  return *slot;
}

gen::WorkloadKind KindOf(int64_t arg) {
  return arg == 0 ? gen::WorkloadKind::kCityNames
                  : gen::WorkloadKind::kDnaReads;
}

const char* KindLabel(gen::WorkloadKind kind) {
  return kind == gen::WorkloadKind::kCityNames ? "city" : "dna";
}

void RunTier(benchmark::State& state, KernelTierChoice choice,
             const char* tier_label) {
  const gen::WorkloadKind kind = KindOf(state.range(0));
  const BenchWorkload& w = SharedWorkload(kind);
  const QuerySet& queries = w.Batch(static_cast<int>(state.range(1)));
  ExecutionOptions exec;
  exec.strategy = ExecutionStrategy::kSerial;  // isolate kernel cost
  RunBatchBenchmark(state, ScanEngine(kind), queries, exec, choice,
                    std::string("verify_") + tier_label + "_" +
                        KindLabel(kind));
}

void BM_Verify_Scalar(benchmark::State& state) {
  RunTier(state, KernelTierChoice::kScalar, "scalar");
}
void BM_Verify_Swar(benchmark::State& state) {
  RunTier(state, KernelTierChoice::kSwar, "swar");
}
void BM_Verify_Avx2(benchmark::State& state) {
  RunTier(state, KernelTierChoice::kAvx2, "avx2");
}

void RegisterAll() {
  const auto args = [](benchmark::internal::Benchmark* b) {
    b->ArgNames({"workload", "batch"})
        ->Args({0, 100})
        ->Args({0, 500})
        ->Args({1, 100})
        ->Args({1, 500})
        ->Unit(benchmark::kMillisecond);
  };
  args(benchmark::RegisterBenchmark("BM_Verify_Scalar", BM_Verify_Scalar));
  args(benchmark::RegisterBenchmark("BM_Verify_Swar", BM_Verify_Swar));
  // The AVX2 rows exist only where they can actually run; on other hosts
  // the JSON simply lacks them (the A/B table notes the tier set).
  if (DetectCpuKernelTier() == KernelTier::kAvx2) {
    args(benchmark::RegisterBenchmark("BM_Verify_Avx2", BM_Verify_Avx2));
  }
}

}  // namespace
}  // namespace sss::bench

int main(int argc, char** argv) {
  ::sss::bench::BenchJson::Instance().StripFlag(&argc, argv);
  const ::sss::bench::BenchWorkload& w = ::sss::bench::SharedWorkload(
      ::sss::gen::WorkloadKind::kDnaReads);
  ::sss::bench::PrintBanner(
      "A/B: many-vs-many verify tiers (workload 0=city, 1=dna)", w);
  ::sss::bench::SetBenchJsonContext(
      "A/B: many-vs-many verify tiers (workload 0=city, 1=dna)", w);
  ::sss::bench::RegisterAll();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!::sss::bench::BenchJson::Instance().Write()) return 1;
  return 0;
}
