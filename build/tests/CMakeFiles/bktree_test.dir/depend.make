# Empty dependencies file for bktree_test.
# This may be replaced when dependencies are built.
