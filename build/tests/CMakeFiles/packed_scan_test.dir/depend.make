# Empty dependencies file for packed_scan_test.
# This may be replaced when dependencies are built.
