#include "parallel/sharded_executor.h"

#include <atomic>
#include <thread>

#include "util/failpoint.h"

namespace sss {

ShardedExecutor::ShardedExecutor(ShardedExecutorOptions options) {
  size_t n = options.num_threads;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw == 0 ? 4 : hw;
  }
  scratches_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scratches_.push_back(std::make_unique<ShardScratch>());
    scratches_.back()->worker_index = i;
  }
}

size_t ShardedExecutor::Run(size_t num_tasks, const TaskFn& fn,
                            const SearchContext* stop) {
  if (num_tasks == 0) return 0;

  std::atomic<size_t> cursor{0};
  const auto drain = [&](ShardScratch* scratch) {
    for (;;) {
      if (stop != nullptr && stop->StopRequested()) return;
      const size_t task = cursor.fetch_add(1, std::memory_order_relaxed);
      if (task >= num_tasks) return;
      SSS_FAILPOINT("sharded_executor:task");
      fn(task, scratch);
      ++scratch->tasks_run;
    }
  };

  // Never more threads than tasks; the calling thread is worker 0, so a
  // single-worker run (or a single-task batch) spawns nothing.
  const size_t workers = std::min(num_threads(), num_tasks);
  std::vector<std::thread> helpers;
  helpers.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    helpers.emplace_back(drain, scratches_[w].get());
  }
  drain(scratches_[0].get());
  for (std::thread& t : helpers) t.join();
  return helpers.size();
}

void ShardedExecutor::ResetScratch() {
  for (auto& s : scratches_) {
    s->arena.Rewind();
    s->match_buffer.clear();
    s->tasks_run = 0;
  }
}

}  // namespace sss
