#include "util/flags.h"

#include <charconv>

namespace sss {

Result<FlagSet> FlagSet::Parse(int argc, const char* const* argv) {
  FlagSet set;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      set.positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      // --key=value
      Value v;
      v.text = std::string(body.substr(eq + 1));
      v.has_text = true;
      set.flags_[std::string(body.substr(0, eq))] = std::move(v);
      continue;
    }
    // --key value  or boolean --key. A following token that does not start
    // with "--" is consumed as the value.
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      Value v;
      v.text = argv[i + 1];
      v.has_text = true;
      set.flags_[std::string(body)] = std::move(v);
      ++i;
    } else {
      set.flags_[std::string(body)] = Value{};
    }
  }
  return set;
}

bool FlagSet::Has(std::string_view name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  it->second.read = true;
  return true;
}

std::string FlagSet::GetString(std::string_view name,
                               std::string fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || !it->second.has_text) return fallback;
  it->second.read = true;
  return it->second.text;
}

Result<int64_t> FlagSet::GetInt(std::string_view name,
                                int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  it->second.read = true;
  if (!it->second.has_text) {
    return Status::Invalid("flag --" + std::string(name) +
                           " requires an integer value");
  }
  const std::string& text = it->second.text;
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::Invalid("flag --" + std::string(name) +
                           ": cannot parse integer from '" + text + "'");
  }
  return value;
}

Result<double> FlagSet::GetDouble(std::string_view name,
                                  double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  it->second.read = true;
  if (!it->second.has_text) {
    return Status::Invalid("flag --" + std::string(name) +
                           " requires a numeric value");
  }
  const std::string& text = it->second.text;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::Invalid("flag --" + std::string(name) +
                           ": cannot parse number from '" + text + "'");
  }
  return value;
}

Result<bool> FlagSet::GetBool(std::string_view name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  it->second.read = true;
  if (!it->second.has_text) return true;  // bare --switch
  const std::string& text = it->second.text;
  if (text == "true" || text == "1") return true;
  if (text == "false" || text == "0") return false;
  return Status::Invalid("flag --" + std::string(name) +
                         ": expected boolean, got '" + text + "'");
}

std::vector<std::string> FlagSet::UnreadFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    if (!value.read) out.push_back(name);
  }
  return out;
}

}  // namespace sss
