#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sss {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ASSERT_EQ(setenv(name, value, /*overwrite=*/1), 0);
    set_.push_back(name);
  }
  void TearDown() override {
    for (const char* name : set_) unsetenv(name);
  }
  std::vector<const char*> set_;
};

TEST_F(EnvTest, GetEnvReturnsValue) {
  SetEnv("SSS_TEST_STR", "hello");
  auto v = GetEnv("SSS_TEST_STR");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello");
}

TEST_F(EnvTest, GetEnvMissingIsNullopt) {
  unsetenv("SSS_TEST_MISSING");
  EXPECT_FALSE(GetEnv("SSS_TEST_MISSING").has_value());
}

TEST_F(EnvTest, GetEnvIntParses) {
  SetEnv("SSS_TEST_INT", "1234");
  EXPECT_EQ(GetEnvInt("SSS_TEST_INT", 0), 1234);
  SetEnv("SSS_TEST_NEG", "-7");
  EXPECT_EQ(GetEnvInt("SSS_TEST_NEG", 0), -7);
}

TEST_F(EnvTest, GetEnvIntFallsBackOnGarbage) {
  SetEnv("SSS_TEST_BADINT", "12abc");
  EXPECT_EQ(GetEnvInt("SSS_TEST_BADINT", 42), 42);
  SetEnv("SSS_TEST_EMPTYINT", "");
  EXPECT_EQ(GetEnvInt("SSS_TEST_EMPTYINT", 9), 9);
  unsetenv("SSS_TEST_NOINT");
  EXPECT_EQ(GetEnvInt("SSS_TEST_NOINT", -3), -3);
}

TEST_F(EnvTest, GetEnvDoubleParses) {
  SetEnv("SSS_TEST_DBL", "0.25");
  EXPECT_DOUBLE_EQ(GetEnvDouble("SSS_TEST_DBL", 1.0), 0.25);
  SetEnv("SSS_TEST_BADDBL", "zero");
  EXPECT_DOUBLE_EQ(GetEnvDouble("SSS_TEST_BADDBL", 1.5), 1.5);
}

TEST_F(EnvTest, GetEnvBoolRecognizesTruthyForms) {
  for (const char* truthy : {"1", "true", "TRUE", "on", "Yes"}) {
    SetEnv("SSS_TEST_BOOL", truthy);
    EXPECT_TRUE(GetEnvBool("SSS_TEST_BOOL", false)) << truthy;
  }
  for (const char* falsy : {"0", "false", "off", "NO"}) {
    SetEnv("SSS_TEST_BOOL", falsy);
    EXPECT_FALSE(GetEnvBool("SSS_TEST_BOOL", true)) << falsy;
  }
}

TEST_F(EnvTest, GetEnvBoolFallsBackOnUnknown) {
  SetEnv("SSS_TEST_BOOL2", "maybe");
  EXPECT_TRUE(GetEnvBool("SSS_TEST_BOOL2", true));
  EXPECT_FALSE(GetEnvBool("SSS_TEST_BOOL2", false));
}

}  // namespace
}  // namespace sss
