// Table IV: "Management of parallelism in the index-based solution on the
// city name data set" — the compressed trie on a fixed pool of 4 / 8 / 16 /
// 32 threads.
//
//   paper (sec):        100q    500q    1000q
//     4 threads         2.39   11.79    20.99
//     8 threads         1.70    8.17    14.78
//     16 threads        1.50    7.93    14.31
//     32 threads        1.53    7.58    14.19   <- paper's pick
//
// Paper's finding: the curve flattens past the core count; 32 threads is
// picked as "optimal" by a whisker.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/compressed_trie.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kCityNames;

const CompressedTrieSearcher& Engine() {
  static const auto* engine =
      new CompressedTrieSearcher(SharedWorkload(kKind).dataset,
                                 TriePruning::kPaperRule);
  return *engine;
}

void BM_IdxCityThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const int paper_queries = static_cast<int>(state.range(1));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Engine(), w.Batch(paper_queries),
                    {ExecutionStrategy::kFixedPool, threads});
}
BENCHMARK(BM_IdxCityThreads)
    ->ArgNames({"threads", "queries"})
    ->ArgsProduct({{4, 8, 16, 32}, {100, 500, 1000}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN(
    "Table IV: parallelism management, index-based solution, city names",
    sss::gen::WorkloadKind::kCityNames)
