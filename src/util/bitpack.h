// 3-bit packing for DNA alphabets — the paper's "Dictionary Compression"
// future-work item (§6): an alphabet of five symbols {A,C,G,N,T} fits in
// three bits per symbol, shrinking a read to 3/8 of its byte size and letting
// the edit-distance inner loop compare packed words.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace sss {

/// \brief Codec mapping a small alphabet to dense 3-bit codes.
class DnaCodec {
 public:
  /// The canonical read alphabet in code order: code(A)=0 … code(T)=4.
  static constexpr const char kAlphabet[6] = "ACGNT";
  static constexpr int kAlphabetSize = 5;
  static constexpr int kBitsPerSymbol = 3;
  static constexpr uint8_t kInvalidCode = 0xFF;

  /// \brief Code for `c`, or kInvalidCode when c is outside the alphabet.
  static uint8_t Encode(char c) noexcept {
    switch (c) {
      case 'A': return 0;
      case 'C': return 1;
      case 'G': return 2;
      case 'N': return 3;
      case 'T': return 4;
      default:  return kInvalidCode;
    }
  }

  /// \brief Symbol for code 0..4. Precondition: code < kAlphabetSize.
  static char Decode(uint8_t code) noexcept { return kAlphabet[code]; }

  /// \brief True iff every character of `s` is in the alphabet.
  static bool IsValid(std::string_view s) noexcept {
    for (char c : s) {
      if (Encode(c) == kInvalidCode) return false;
    }
    return true;
  }
};

/// \brief A DNA string packed at 3 bits/symbol into little-endian 64-bit
/// words (21 symbols + 1 spare bit per word).
class PackedDna {
 public:
  PackedDna() = default;

  /// \brief Packs `s`; fails with Invalid if `s` contains a symbol outside
  /// {A,C,G,N,T}.
  static Result<PackedDna> Pack(std::string_view s);

  /// \brief Number of symbols.
  size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// \brief Code of the symbol at position i (0..4).
  uint8_t CodeAt(size_t i) const noexcept {
    const size_t word = i / kSymbolsPerWord;
    const unsigned shift =
        static_cast<unsigned>(i % kSymbolsPerWord) * DnaCodec::kBitsPerSymbol;
    return static_cast<uint8_t>((words_[word] >> shift) & 0x7u);
  }

  /// \brief Character at position i.
  char At(size_t i) const noexcept { return DnaCodec::Decode(CodeAt(i)); }

  /// \brief Unpacks back to text.
  std::string Unpack() const;

  /// \brief Bytes of packed storage held (for compression-ratio reporting).
  size_t packed_bytes() const noexcept { return words_.size() * 8; }

  /// \brief Backing words (each holds up to 21 symbols, LSB-first).
  const std::vector<uint64_t>& words() const noexcept { return words_; }

  static constexpr size_t kSymbolsPerWord = 21;

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

/// \brief Codec mapping the pure read alphabet {A,C,G,T} to dense 2-bit
/// codes — the densest encoding the lane kernels (core/simd_verify) can
/// exploit: four symbols per byte, so one candidate-pool column byte carries
/// one symbol from each of four lanes. 'N' has no code here on purpose;
/// reads containing it fall back to the byte layout (see core/lane_pool).
class Dna2Codec {
 public:
  /// The alphabet in code order: code(A)=0, code(C)=1, code(G)=2, code(T)=3.
  static constexpr const char kAlphabet[5] = "ACGT";
  static constexpr int kAlphabetSize = 4;
  static constexpr int kBitsPerSymbol = 2;
  static constexpr size_t kSymbolsPerByte = 4;
  static constexpr uint8_t kInvalidCode = 0xFF;

  /// \brief Code for `c`, or kInvalidCode when c is outside {A,C,G,T}.
  static uint8_t Encode(char c) noexcept {
    switch (c) {
      case 'A': return 0;
      case 'C': return 1;
      case 'G': return 2;
      case 'T': return 3;
      default:  return kInvalidCode;
    }
  }

  /// \brief Symbol for code 0..3. Precondition: code < kAlphabetSize.
  static char Decode(uint8_t code) noexcept { return kAlphabet[code]; }

  /// \brief True iff every character of `s` is in the alphabet.
  static bool IsValid(std::string_view s) noexcept {
    for (char c : s) {
      if (Encode(c) == kInvalidCode) return false;
    }
    return true;
  }
};

/// \brief Packs `s` at 2 bits/symbol, LSB-first within each byte (symbol i
/// occupies bits [2·(i mod 4), 2·(i mod 4)+1] of byte i/4; a final partial
/// byte is zero-padded). Appends ⌈|s|/4⌉ bytes to `out`. Fails with Invalid
/// — and leaves `out` exactly as it was — if `s` contains a symbol outside
/// {A,C,G,T}.
Status PackDna2Into(std::string_view s, std::vector<uint8_t>* out);

/// \brief Decodes `n` symbols from `packed` (the layout PackDna2Into
/// writes; `packed` must hold at least ⌈n/4⌉ bytes). Total inverse of
/// PackDna2Into: any byte content round-trips through Unpack→Pack over the
/// 2·n bits it occupies.
std::string UnpackDna2(const uint8_t* packed, size_t n);

/// \brief A pool of packed DNA strings with contiguous word storage,
/// mirroring StringPool for the packed representation.
class PackedDnaPool {
 public:
  /// \brief Packs and appends `s`; returns its id or Invalid on bad symbols.
  Result<uint32_t> Add(std::string_view s);

  size_t size() const noexcept { return lengths_.size(); }

  /// \brief Symbol count of entry `id`.
  size_t Length(size_t id) const noexcept { return lengths_[id]; }

  /// \brief Code of symbol `i` of entry `id`.
  uint8_t CodeAt(size_t id, size_t i) const noexcept {
    const uint64_t base = word_offsets_[id];
    const size_t word = i / PackedDna::kSymbolsPerWord;
    const unsigned shift = static_cast<unsigned>(
        (i % PackedDna::kSymbolsPerWord) * DnaCodec::kBitsPerSymbol);
    return static_cast<uint8_t>((words_[base + word] >> shift) & 0x7u);
  }

  /// \brief Unpacks entry `id` to text.
  std::string Unpack(size_t id) const;

  /// \brief Decodes entry `id` into `out` as 0..4 codes (resized to fit).
  /// Decoding into a reusable buffer keeps the verify loop allocation-free.
  void DecodeCodes(size_t id, std::vector<uint8_t>* out) const;

  /// \brief Total packed bytes held.
  size_t packed_bytes() const noexcept { return words_.size() * 8; }

  /// \brief Total unpacked symbol count (for ratio reporting).
  size_t total_symbols() const noexcept { return total_symbols_; }

 private:
  std::vector<uint64_t> words_;
  std::vector<uint64_t> word_offsets_;  // first word of each entry
  std::vector<uint32_t> lengths_;
  size_t total_symbols_ = 0;
};

}  // namespace sss
