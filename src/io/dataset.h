// Dataset and query representations shared by the generators, the file
// readers, and both search engines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/string_pool.h"

namespace sss {

/// \brief What alphabet a dataset is drawn from. Engines use this to pick
/// specialized layouts (e.g. 5-way trie fanout and 3-bit packing for DNA).
enum class AlphabetKind {
  kGeneric,  // arbitrary single-byte symbols (city names: Latin-1)
  kDna,      // {A, C, G, N, T}
};

/// \brief Summary statistics in the shape of the paper's Table I.
struct DatasetStats {
  size_t num_strings = 0;
  size_t alphabet_size = 0;     // distinct byte values observed
  size_t min_length = 0;
  size_t max_length = 0;
  double avg_length = 0.0;
  size_t total_bytes = 0;
};

/// \brief An immutable string collection to search, backed by a StringPool.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, AlphabetKind alphabet)
      : name_(std::move(name)), alphabet_(alphabet) {}

  /// \brief Appends a string; returns its dense id.
  uint32_t Add(std::string_view s) { return pool_.Add(s); }

  void Reserve(size_t count, size_t bytes) { pool_.Reserve(count, bytes); }

  size_t size() const noexcept { return pool_.size(); }
  bool empty() const noexcept { return pool_.empty(); }

  /// \brief Zero-copy view of string `id`.
  std::string_view View(size_t id) const noexcept { return pool_.View(id); }
  std::string_view operator[](size_t id) const noexcept {
    return pool_.View(id);
  }
  size_t Length(size_t id) const noexcept { return pool_.Length(id); }

  const StringPool& pool() const noexcept { return pool_; }
  const std::string& name() const noexcept { return name_; }
  AlphabetKind alphabet() const noexcept { return alphabet_; }

  /// \brief Scans the pool and computes Table-I style statistics.
  DatasetStats ComputeStats() const;

 private:
  std::string name_;
  AlphabetKind alphabet_ = AlphabetKind::kGeneric;
  StringPool pool_;
};

/// \brief One similarity query: find all strings within edit distance
/// `max_distance` of `text`.
struct Query {
  std::string text;
  int max_distance = 0;
};

/// \brief An ordered batch of queries, executed together as in the
/// competition setup (100 / 500 / 1000 queries per run).
using QuerySet = std::vector<Query>;

/// \brief Ids of matching dataset strings for one query, ascending.
using MatchList = std::vector<uint32_t>;

/// \brief Per-query match lists, parallel to the QuerySet.
using SearchResults = std::vector<MatchList>;

}  // namespace sss
