file(REMOVE_RECURSE
  "CMakeFiles/sss_parallel.dir/adaptive_pool.cc.o"
  "CMakeFiles/sss_parallel.dir/adaptive_pool.cc.o.d"
  "CMakeFiles/sss_parallel.dir/thread_per_query.cc.o"
  "CMakeFiles/sss_parallel.dir/thread_per_query.cc.o.d"
  "CMakeFiles/sss_parallel.dir/thread_pool.cc.o"
  "CMakeFiles/sss_parallel.dir/thread_pool.cc.o.d"
  "libsss_parallel.a"
  "libsss_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
