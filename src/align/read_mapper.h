// ReadMapper — approximate substring search of reads against a reference
// genome, the application behind the paper's DNA workload ([1] in its
// bibliography is a read-mapping paper). Combines the repository's two
// related-work ideas: Navarro-style *query splitting over a suffix array*
// for candidate generation, and banded DP verification.
//
// Pipeline per read:
//   1. split the read into k+1 seeds (pigeonhole: ≤ k errors leave at
//      least one seed exact);
//   2. find each seed's exact occurrences via the suffix array;
//   3. each occurrence implies a candidate genome window; verify the read
//      against the window with a semi-global (infix) banded DP that allows
//      the read to start/end anywhere inside the window;
//   4. optionally repeat on the reverse complement; report the best hits.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "align/suffix_array.h"

namespace sss::align {

/// \brief One mapping of a read onto the reference.
struct Mapping {
  /// Genome position the read's best alignment starts at (approximate to
  /// within the window placement; exact for error-free reads).
  uint32_t position = 0;
  /// Edit distance of the best alignment (substitutions + indels).
  int distance = 0;
  /// True if the read aligned as its reverse complement.
  bool reverse_strand = false;

  bool operator==(const Mapping&) const = default;
  bool operator<(const Mapping& other) const {
    return distance < other.distance ||
           (distance == other.distance && position < other.position);
  }
};

/// \brief Mapper configuration.
struct ReadMapperOptions {
  /// Maximum edit distance of a reported mapping.
  int max_distance = 4;
  /// Also try the reverse complement of each read.
  bool map_reverse_strand = true;
  /// Report at most this many mappings per read (best first).
  size_t max_mappings = 4;
  /// Seeds whose occurrence count exceeds this are skipped as repeats
  /// (classic mapper heuristic; 0 = no limit). Skipping can only lose
  /// candidates that other seeds usually re-find — accuracy is measured in
  /// the example/bench, not assumed.
  size_t max_seed_hits = 256;
};

/// \brief Semi-global ("infix") bounded edit distance: the minimum edit
/// distance between `read` and any substring of `window`. Returns a value
/// > k when every placement exceeds k. Exposed for tests.
int InfixEditDistance(std::string_view read, std::string_view window, int k);

/// \brief Reverse complement of a DNA string (N maps to N).
std::string ReverseComplement(std::string_view dna);

/// \brief Maps reads against one reference sequence.
class ReadMapper {
 public:
  /// Builds the suffix array over `genome` (copied).
  ReadMapper(std::string genome, ReadMapperOptions options = {});

  /// \brief Best mappings for `read`, ordered by (distance, position).
  std::vector<Mapping> Map(std::string_view read) const;

  const SuffixArray& index() const noexcept { return sa_; }
  const ReadMapperOptions& options() const noexcept { return options_; }

 private:
  /// Collects candidate window start positions for one strand.
  void CollectCandidates(std::string_view read,
                         std::vector<uint32_t>* starts) const;

  /// Verifies candidates of one strand and appends mappings.
  void VerifyStrand(std::string_view read, bool reverse,
                    std::vector<Mapping>* out) const;

  SuffixArray sa_;
  ReadMapperOptions options_;
};

}  // namespace sss::align
