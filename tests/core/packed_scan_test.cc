#include "core/packed_scan.h"

#include <gtest/gtest.h>

#include "core/scan.h"
#include "gen/dna_generator.h"
#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

TEST(PackedScanTest, RejectsNonDnaData) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("ACGT");
  d.Add("hello");
  auto searcher = PackedDnaScanSearcher::Make(d);
  ASSERT_FALSE(searcher.ok());
  EXPECT_TRUE(searcher.status().IsInvalid());
}

TEST(PackedScanTest, FindsMatches) {
  Dataset d("x", AlphabetKind::kDna);
  d.Add("ACGTACGT");
  d.Add("ACGTACGA");
  d.Add("TTTTTTTT");
  auto searcher = PackedDnaScanSearcher::Make(d);
  ASSERT_TRUE(searcher.ok());
  EXPECT_EQ((*searcher)->Search({"ACGTACGT", 0}), (MatchList{0}));
  EXPECT_EQ((*searcher)->Search({"ACGTACGT", 1}), (MatchList{0, 1}));
  EXPECT_EQ((*searcher)->Search({"TTTTTTTA", 1}), (MatchList{2}));
  EXPECT_EQ((*searcher)->name(), "packed_dna_scan");
}

TEST(PackedScanTest, QueryWithForeignSymbolsNeverMatchesThem) {
  Dataset d("x", AlphabetKind::kDna);
  d.Add("ACGT");
  auto searcher = PackedDnaScanSearcher::Make(d);
  ASSERT_TRUE(searcher.ok());
  // 'X' is outside the alphabet: it costs one edit against any base.
  EXPECT_TRUE((*searcher)->Search({"XCGT", 0}).empty());
  EXPECT_EQ((*searcher)->Search({"XCGT", 1}), (MatchList{0}));
}

TEST(PackedScanTest, CompressionRatioNearEightThirds) {
  Xoshiro256 rng(0xDA7);
  Dataset d = RandomDataset(&rng, "ACGT", 500, 100, 100, AlphabetKind::kDna);
  auto searcher = PackedDnaScanSearcher::Make(d);
  ASSERT_TRUE(searcher.ok());
  EXPECT_GT((*searcher)->compression_ratio(), 2.3);
  EXPECT_LT((*searcher)->memory_bytes(), d.pool().total_bytes() / 2);
}

class PackedScanEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedScanEquivalenceTest, MatchesBruteForceAndPlainScan) {
  const int k = GetParam();
  Xoshiro256 rng(0xDA8 + k);
  Dataset d = RandomDataset(&rng, "ACGNT", 150, 80, 110, AlphabetKind::kDna);
  auto packed = PackedDnaScanSearcher::Make(d);
  ASSERT_TRUE(packed.ok());
  SequentialScanSearcher plain(d, {});
  for (int t = 0; t < 20; ++t) {
    std::string text(d.View(rng.Uniform(d.size())));
    for (int e = 0; e < k && !text.empty(); ++e) {
      text[rng.Uniform(text.size())] = "ACGNT"[rng.Uniform(5)];
    }
    const Query q{text, k};
    const MatchList expected = BruteForceSearch(d, q);
    ASSERT_EQ((*packed)->Search(q), expected) << "k=" << k;
    ASSERT_EQ(plain.Search(q), expected) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PackedScanEquivalenceTest,
                         ::testing::Values(0, 4, 8, 16));

TEST(PackedScanTest, WorksOnGeneratedReads) {
  gen::DnaGeneratorOptions options;
  options.num_reads = 300;
  options.genome_length = 20000;
  Dataset d = gen::DnaReadGenerator(options, 5).Generate();
  auto searcher = PackedDnaScanSearcher::Make(d);
  ASSERT_TRUE(searcher.ok()) << searcher.status().ToString();
  // Every read matches itself at k=0.
  for (size_t id = 0; id < 20; ++id) {
    const MatchList m =
        (*searcher)->Search({std::string(d.View(id)), 0});
    ASSERT_FALSE(m.empty());
    EXPECT_TRUE(std::find(m.begin(), m.end(), static_cast<uint32_t>(id)) !=
                m.end());
  }
}

TEST(PackedScanTest, BatchStrategiesAgree) {
  Xoshiro256 rng(0xDA9);
  Dataset d = RandomDataset(&rng, "ACGT", 200, 50, 70, AlphabetKind::kDna);
  auto searcher = PackedDnaScanSearcher::Make(d);
  ASSERT_TRUE(searcher.ok());
  QuerySet queries;
  for (int i = 0; i < 24; ++i) {
    queries.push_back(
        {RandomString(&rng, "ACGT", 50, 70), (i % 2) == 0 ? 4 : 8});
  }
  const SearchResults serial =
      (*searcher)->SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  EXPECT_EQ(
      (*searcher)->SearchBatch(queries, {ExecutionStrategy::kFixedPool, 4}),
      serial);
}

}  // namespace
}  // namespace sss
