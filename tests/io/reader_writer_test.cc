#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/dataset.h"
#include "io/reader.h"
#include "io/writer.h"

namespace sss {
namespace {

class ReaderWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sss_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteRaw(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }

  std::string ReadRaw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  std::filesystem::path dir_;
};

TEST_F(ReaderWriterTest, DatasetRoundTrip) {
  Dataset original("cities", AlphabetKind::kGeneric);
  original.Add("Berlin");
  original.Add("Bern");
  original.Add("Ulm");
  ASSERT_TRUE(WriteDatasetFile(Path("d.txt"), original).ok());

  auto loaded = ReadDatasetFile(Path("d.txt"), "cities",
                                AlphabetKind::kGeneric);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->View(0), "Berlin");
  EXPECT_EQ(loaded->View(1), "Bern");
  EXPECT_EQ(loaded->View(2), "Ulm");
  EXPECT_EQ(loaded->name(), "cities");
}

TEST_F(ReaderWriterTest, ReadDatasetSkipsEmptyLines) {
  WriteRaw(Path("gaps.txt"), "a\n\n\nb\n\nc\n");
  auto loaded =
      ReadDatasetFile(Path("gaps.txt"), "g", AlphabetKind::kGeneric);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->View(1), "b");
}

TEST_F(ReaderWriterTest, ReadDatasetStripsCarriageReturns) {
  WriteRaw(Path("crlf.txt"), "alpha\r\nbeta\r\n");
  auto loaded =
      ReadDatasetFile(Path("crlf.txt"), "c", AlphabetKind::kGeneric);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->View(0), "alpha");
  EXPECT_EQ(loaded->View(1), "beta");
}

TEST_F(ReaderWriterTest, ReadDatasetHandlesMissingTrailingNewline) {
  WriteRaw(Path("notrail.txt"), "one\ntwo");
  auto loaded =
      ReadDatasetFile(Path("notrail.txt"), "n", AlphabetKind::kGeneric);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->View(1), "two");
}

TEST_F(ReaderWriterTest, ReadDatasetMissingFileIsIOError) {
  auto loaded = ReadDatasetFile(Path("missing.txt"), "m",
                                AlphabetKind::kGeneric);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(ReaderWriterTest, EmptyDatasetFileLoadsEmpty) {
  WriteRaw(Path("empty.txt"), "");
  auto loaded =
      ReadDatasetFile(Path("empty.txt"), "e", AlphabetKind::kGeneric);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST_F(ReaderWriterTest, QueryFileRoundTrip) {
  QuerySet queries = {{"Magdeburg", 2}, {"AGGCGT", 0}, {"x y z", 3}};
  ASSERT_TRUE(WriteQueryFile(Path("q.txt"), queries).ok());
  auto loaded = ReadQueryFile(Path("q.txt"), /*default_k=*/9);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[0].text, "Magdeburg");
  EXPECT_EQ((*loaded)[0].max_distance, 2);
  EXPECT_EQ((*loaded)[1].max_distance, 0);
  EXPECT_EQ((*loaded)[2].text, "x y z");
}

TEST_F(ReaderWriterTest, BareQueryLinesUseDefaultThreshold) {
  WriteRaw(Path("bare.txt"), "plainquery\nanother\n");
  auto loaded = ReadQueryFile(Path("bare.txt"), /*default_k=*/4);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].max_distance, 4);
  EXPECT_EQ((*loaded)[1].text, "another");
}

TEST_F(ReaderWriterTest, MalformedThresholdIsInvalid) {
  WriteRaw(Path("bad.txt"), "notanumber\tquery\n");
  auto loaded = ReadQueryFile(Path("bad.txt"), 0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalid());
}

TEST_F(ReaderWriterTest, NegativeThresholdIsInvalid) {
  WriteRaw(Path("neg.txt"), "-1\tquery\n");
  auto loaded = ReadQueryFile(Path("neg.txt"), 0);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalid());
}

TEST(ParseQueryLineTest, TabbedAndBareForms) {
  auto tabbed = ParseQueryLine("3\tBerlin", 0);
  ASSERT_TRUE(tabbed.ok());
  EXPECT_EQ(tabbed->max_distance, 3);
  EXPECT_EQ(tabbed->text, "Berlin");

  auto bare = ParseQueryLine("Berlin", 7);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->max_distance, 7);
  EXPECT_EQ(bare->text, "Berlin");
}

TEST(ParseQueryLineTest, QueryTextMayContainLaterTabs) {
  auto q = ParseQueryLine("2\ta\tb", 0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->text, "a\tb");
}

TEST_F(ReaderWriterTest, ResultFileFormat) {
  SearchResults results = {{1, 5, 9}, {}, {42}};
  ASSERT_TRUE(WriteResultFile(Path("r.txt"), results).ok());
  EXPECT_EQ(ReadRaw(Path("r.txt")), "0: 1 5 9\n1:\n2: 42\n");
}

TEST_F(ReaderWriterTest, WriteToUnwritablePathIsIOError) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("a");
  EXPECT_TRUE(
      WriteDatasetFile("/nonexistent_dir_zzz/out.txt", d).IsIOError());
  EXPECT_TRUE(WriteQueryFile("/nonexistent_dir_zzz/q.txt", {}).IsIOError());
  EXPECT_TRUE(WriteResultFile("/nonexistent_dir_zzz/r.txt", {}).IsIOError());
}

TEST_F(ReaderWriterTest, LargeRoundTripPreservesEverything) {
  Dataset original("big", AlphabetKind::kGeneric);
  for (int i = 0; i < 2000; ++i) {
    original.Add("string_" + std::to_string(i * 7919 % 1000));
  }
  ASSERT_TRUE(WriteDatasetFile(Path("big.txt"), original).ok());
  auto loaded =
      ReadDatasetFile(Path("big.txt"), "big", AlphabetKind::kGeneric);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded->View(i), original.View(i)) << "id " << i;
  }
}

}  // namespace
}  // namespace sss
