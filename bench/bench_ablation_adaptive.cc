// Ablation: adaptive (master/slave) pool vs. fixed pool (paper §3.6
// strategy 3 vs. strategy 2, and §6 "Management of parallelism").
//
// Expected shape: for steady batch workloads the fixed pool wins slightly
// (no ramp-up, no master overhead); the adaptive pool's value is not peak
// throughput but not wasting threads when idle — its peak_threads counter
// shows it scaling to, and not past, the load.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scan.h"
#include "parallel/adaptive_pool.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kCityNames;

const SequentialScanSearcher& Engine() {
  static const auto* engine =
      new SequentialScanSearcher(SharedWorkload(kKind).dataset, ScanOptions{});
  return *engine;
}

void BM_FixedPool(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Engine(), w.Batch(500),
                    {ExecutionStrategy::kFixedPool, threads});
}
BENCHMARK(BM_FixedPool)
    ->ArgNames({"threads"})
    ->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

void BM_AdaptivePool(benchmark::State& state) {
  const size_t max_threads = static_cast<size_t>(state.range(0));
  const BenchWorkload& w = SharedWorkload(kKind);
  const QuerySet& queries = w.Batch(500);
  size_t peak = 0, opens = 0;
  for (auto _ : state) {
    AdaptivePoolOptions options;
    options.max_threads = max_threads;
    AdaptivePool pool(options);
    SearchResults results(queries.size());
    pool.ParallelFor(
        queries.size(),
        [&](size_t i) { results[i] = Engine().Search(queries[i]); },
        /*chunk=*/1);
    peak = pool.peak_threads();
    opens = pool.total_opens();
    benchmark::DoNotOptimize(results.size());
  }
  state.counters["peak_threads"] = static_cast<double>(peak);
  state.counters["opens"] = static_cast<double>(opens);
}
BENCHMARK(BM_AdaptivePool)
    ->ArgNames({"max_threads"})
    ->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

// Strategy 1 for reference: thread-per-query on the same batch.
void BM_ThreadPerQuery(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Engine(), w.Batch(500),
                    {ExecutionStrategy::kThreadPerQuery, 0});
}
BENCHMARK(BM_ThreadPerQuery)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Ablation: parallelism strategies (fixed vs adaptive pool)",
               sss::gen::WorkloadKind::kCityNames)
