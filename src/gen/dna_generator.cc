#include "gen/dna_generator.h"

#include <algorithm>

#include "util/macros.h"

namespace sss::gen {

namespace {

constexpr char kBases[4] = {'A', 'C', 'G', 'T'};

char Complement(char base) {
  switch (base) {
    case 'A': return 'T';
    case 'T': return 'A';
    case 'C': return 'G';
    case 'G': return 'C';
    default:  return 'N';
  }
}

}  // namespace

DnaReadGenerator::DnaReadGenerator(DnaGeneratorOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  SSS_CHECK(options_.read_length > options_.read_length_jitter);
  SSS_CHECK(options_.genome_length >=
            options_.read_length + options_.read_length_jitter);
  BuildGenome();
}

void DnaReadGenerator::BuildGenome() {
  genome_.resize(options_.genome_length);
  // Real genomes are not i.i.d.: GC content drifts in long-range "isochore"
  // blocks and short repeats abound. A two-state composition model (GC-rich /
  // AT-rich segments) plus occasional tandem repeat copies approximates both,
  // which gives the trie realistic shared-prefix structure.
  size_t i = 0;
  bool gc_rich = false;
  while (i < genome_.size()) {
    const size_t segment = 1000 + rng_.Uniform(9000);
    const double gc = gc_rich ? 0.62 : 0.38;
    const size_t end = std::min(genome_.size(), i + segment);
    for (; i < end; ++i) {
      const bool is_gc = rng_.Bernoulli(gc);
      const bool second = rng_.Bernoulli(0.5);
      genome_[i] = is_gc ? (second ? 'G' : 'C') : (second ? 'A' : 'T');
    }
    // Occasionally copy a recent block forward (tandem-repeat-like).
    if (i < genome_.size() && rng_.Bernoulli(0.3)) {
      const size_t repeat_len = 50 + rng_.Uniform(450);
      const size_t available = genome_.size() - i;
      const size_t len = std::min(repeat_len, available);
      const size_t src = i >= repeat_len ? i - repeat_len : 0;
      for (size_t j = 0; j < len; ++j) genome_[i + j] = genome_[src + j];
      i += len;
    }
    gc_rich = !gc_rich;
  }
}

std::string DnaReadGenerator::Next() {
  const size_t jitter = options_.read_length_jitter;
  const size_t target_len =
      options_.read_length - jitter + rng_.Uniform(2 * jitter + 1);
  // Leave room for deletions consuming extra template bases.
  const size_t template_len = target_len + 8;
  const size_t max_start = genome_.size() - template_len;
  const size_t start = rng_.Uniform(max_start + 1);

  std::string read;
  read.reserve(target_len + 4);
  const bool reverse = rng_.Bernoulli(options_.reverse_strand_prob);

  size_t pos = 0;  // offset into the template
  while (read.size() < target_len && pos < template_len) {
    if (rng_.Bernoulli(options_.insertion_rate)) {
      read.push_back(kBases[rng_.Uniform(4)]);
      continue;  // insertion does not consume a template base
    }
    if (rng_.Bernoulli(options_.deletion_rate)) {
      ++pos;  // deletion consumes a template base, emits nothing
      continue;
    }
    char base = reverse ? Complement(genome_[start + template_len - 1 - pos])
                        : genome_[start + pos];
    ++pos;
    if (rng_.Bernoulli(options_.n_rate)) {
      base = 'N';
    } else if (rng_.Bernoulli(options_.substitution_rate)) {
      // Substitute with a different base.
      char sub;
      do {
        sub = kBases[rng_.Uniform(4)];
      } while (sub == base);
      base = sub;
    }
    read.push_back(base);
  }
  // If errors left the read short, pad from random bases (adapter noise).
  while (read.size() < target_len) read.push_back(kBases[rng_.Uniform(4)]);
  return read;
}

Dataset DnaReadGenerator::Generate() {
  Dataset dataset("dna_reads", AlphabetKind::kDna);
  dataset.Reserve(options_.num_reads,
                  options_.num_reads * (options_.read_length + 2));
  for (size_t i = 0; i < options_.num_reads; ++i) {
    dataset.Add(Next());
  }
  return dataset;
}

}  // namespace sss::gen
