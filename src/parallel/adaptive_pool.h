// Adaptive master/slave pool — the paper's parallelism strategy 3 (§3.6):
// a dedicated master thread opens and closes workers "only when needed",
// following watermark rules, with the master owning all open/close decisions
// so workers never race on them (the paper's locking-problem solution).
//
// Substitution note (see DESIGN.md §2): the paper's rules trigger on average
// CPU usage (>70% open, <30% close). Inside containers CPU accounting is
// unreliable, so our rules trigger on the equivalent observable the CPU rule
// is a proxy for — queue pressure: pending work per live worker above the
// high watermark opens a worker, pressure below the low watermark closes
// one. The resulting behaviour (ramp up while busy, shrink when idle) is the
// same.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>

#include "util/cancellation.h"
#include "util/macros.h"

namespace sss {

/// \brief Tuning knobs for AdaptivePool.
struct AdaptivePoolOptions {
  /// Workers the master starts with.
  size_t initial_threads = 1;
  /// Lower bound the master never closes below.
  size_t min_threads = 1;
  /// Upper bound the master never opens above (0 = hardware concurrency).
  size_t max_threads = 0;
  /// Open a worker when pending tasks per live worker exceeds this.
  double high_watermark = 4.0;
  /// Close a worker when pending tasks per live worker falls below this.
  double low_watermark = 0.5;
  /// How often the master re-evaluates the rules.
  std::chrono::microseconds master_interval = std::chrono::microseconds(200);
};

/// \brief A pool whose worker count is managed at runtime by a master
/// thread.
class AdaptivePool {
 public:
  explicit AdaptivePool(AdaptivePoolOptions options = {});
  ~AdaptivePool();

  SSS_DISALLOW_COPY_AND_ASSIGN(AdaptivePool);

  /// \brief Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished.
  void Wait();

  /// \brief Convenience: submit fn(i) for i in [0, n) in chunks and Wait().
  /// When `stop` requests a stop, chunks not yet started complete
  /// immediately without invoking fn.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t chunk = 8, const SearchContext* stop = nullptr);

  /// \brief Discards every queued-but-not-started task and returns how many
  /// were dropped. Running tasks are unaffected. Wakes Wait() callers once
  /// in-flight work reaches zero.
  size_t CancelPending();

  /// \brief Current live worker count (racy snapshot, for tests/stats).
  size_t live_threads() const noexcept { return live_threads_.load(); }

  /// \brief Highest worker count the master ever opened (for reporting).
  size_t peak_threads() const noexcept { return peak_threads_.load(); }

  /// \brief Total open events the master performed (for tests: proves the
  /// pool actually scaled up under load).
  size_t total_opens() const noexcept { return total_opens_.load(); }

  /// \brief Total close events the master performed.
  size_t total_closes() const noexcept { return total_closes_.load(); }

 private:
  struct WorkerState {
    // Set by the master to retire this worker; checked between tasks.
    std::atomic<bool> retire{false};
    // Set by the worker just before it exits; tells the master the thread
    // can be joined without blocking.
    std::atomic<bool> exited{false};
  };
  struct Worker {
    std::thread thread;
    std::shared_ptr<WorkerState> state;
  };

  void MasterLoop();
  void WorkerLoop(std::shared_ptr<WorkerState> state);
  void OpenWorkerLocked();
  // Joins retired workers that have already exited (non-blocking).
  void ReapExitedLocked();

  AdaptivePoolOptions options_;

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;

  std::list<Worker> workers_;  // guarded by mu_
  std::list<Worker> retired_;  // awaiting join by the master; guarded by mu_

  std::atomic<size_t> live_threads_{0};
  std::atomic<size_t> peak_threads_{0};
  std::atomic<size_t> total_opens_{0};
  std::atomic<size_t> total_closes_{0};

  std::thread master_;
};

}  // namespace sss
