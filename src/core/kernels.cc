#include "core/kernels.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/macros.h"

namespace sss {

std::string_view ToString(LadderStep step) {
  switch (step) {
    case LadderStep::kBase:
      return "1) Base implementation";
    case LadderStep::kFastEditDistance:
      return "2) Calculation of the edit distance";
    case LadderStep::kReferences:
      return "3) Value or reference";
    case LadderStep::kSimpleTypes:
      return "4) Simple data types and program methods";
  }
  return "?";
}

namespace internal {

int EditDistanceDiagonalAbort(const std::string& x, const std::string& y,
                              int k) {
  const size_t lx = x.size();
  const size_t ly = y.size();
  // The paper's step 2 still fills the full matrix; it just stops as soon as
  // the diagonal that ends in M[l_x][l_y] exceeds k — values along a
  // diagonal never decrease, so the final cell cannot recover (conditions
  // (6) and (7)).
  std::vector<std::vector<int>> m(lx + 1, std::vector<int>(ly + 1, 0));
  for (size_t i = 0; i <= lx; ++i) m[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= ly; ++j) m[0][j] = static_cast<int>(j);
  const size_t d = lx >= ly ? lx - ly : ly - lx;
  for (size_t i = 1; i <= lx; ++i) {
    for (size_t j = 1; j <= ly; ++j) {
      if (x[i - 1] == y[j - 1]) {
        m[i][j] = m[i - 1][j - 1];
      } else {
        m[i][j] =
            1 + std::min({m[i - 1][j], m[i][j - 1], m[i - 1][j - 1]});
      }
      const bool on_final_diagonal =
          lx >= ly ? (i >= d && i - d == j) : (j >= d && i == j - d);
      if (on_final_diagonal && m[i][j] > k) {
        return k + 1;  // conditions (6)/(7)
      }
    }
  }
  return m[lx][ly];
}

namespace {

// Step 3: reference semantics. Same recurrence and aborts as step 2, but
// operands are views and the two DP rows live in the caller's workspace, so
// a whole scan allocates nothing per comparison.
int EditDistanceReferences(std::string_view x, std::string_view y, int k,
                           EditDistanceWorkspace* ws) {
  const size_t lx = x.size();
  const size_t ly = y.size();
  const size_t d = lx >= ly ? lx - ly : ly - lx;
  if (d > static_cast<size_t>(k)) return k + 1;  // length filter (eq. 5)

  ws->row0.resize(ly + 1);
  ws->row1.resize(ly + 1);
  std::vector<int>& prev_storage = ws->row0;
  std::vector<int>& cur_storage = ws->row1;
  int* prev = prev_storage.data();
  int* cur = cur_storage.data();
  for (size_t j = 0; j <= ly; ++j) prev[j] = static_cast<int>(j);

  for (size_t i = 1; i <= lx; ++i) {
    cur[0] = static_cast<int>(i);
    const char xi = x[i - 1];
    for (size_t j = 1; j <= ly; ++j) {
      cur[j] = xi == y[j - 1]
                   ? prev[j - 1]
                   : 1 + std::min({prev[j], cur[j - 1], prev[j - 1]});
    }
    const bool check_lower = lx >= ly;
    const size_t diag_j = check_lower ? (i >= d ? i - d : 0) : i + d;
    if (diag_j >= 1 && diag_j <= ly && (check_lower ? i >= d : true) &&
        cur[diag_j] > k) {
      return k + 1;
    }
    std::swap(prev, cur);
  }
  return prev[ly];
}

}  // namespace

int EditDistanceSimpleTypes(std::string_view x, std::string_view y, int k,
                            EditDistanceWorkspace* ws) {
  const size_t lx = x.size();
  const size_t ly = y.size();
  const size_t d = lx >= ly ? lx - ly : ly - lx;
  if (d > static_cast<size_t>(k)) return k + 1;  // eq. (5)

  ws->row0.resize(ly + 1);
  ws->row1.resize(ly + 1);
  int* prev = ws->row0.data();
  int* cur = ws->row1.data();
  for (size_t j = 0; j <= ly; ++j) prev[j] = static_cast<int>(j);

  const char* xp = x.data();
  const char* yp = y.data();
  const bool x_longer = lx >= ly;
  for (size_t i = 1; i <= lx; ++i) {
    cur[0] = static_cast<int>(i);
    const char xi = xp[i - 1];
    for (size_t j = 1; j <= ly; ++j) {
      if (xi == yp[j - 1]) {
        cur[j] = prev[j - 1];
      } else {
        // Hand-inlined three-way min (§3.4 "simple program methods").
        int m = prev[j] < cur[j - 1] ? prev[j] : cur[j - 1];
        if (prev[j - 1] < m) m = prev[j - 1];
        cur[j] = m + 1;
      }
    }
    // Conditions (6)/(7) on the diagonal that ends in M[l_x][l_y].
    if (x_longer) {
      if (i >= d + 1 && cur[i - d] > k) {
        if (i < lx) ++ws->kernel.early_aborts;
        return k + 1;
      }
    } else {
      if (i + d <= ly && cur[i + d] > k) {
        if (i < lx) ++ws->kernel.early_aborts;
        return k + 1;
      }
    }
    int* tmp = prev;
    prev = cur;
    cur = tmp;
  }
  return prev[ly];
}

}  // namespace internal

MatchList RunLadderKernel(const Dataset& dataset, const Query& query,
                          LadderStep step, EditDistanceWorkspace* ws) {
  MatchList matches;
  const int k = query.max_distance;

  switch (step) {
    case LadderStep::kBase: {
      // Deliberately naive: copies both operands for every comparison and
      // computes the full matrix unconditionally (§3.1).
      const std::string q = query.text;
      for (size_t id = 0; id < dataset.size(); ++id) {
        const std::string candidate(dataset.View(id));  // value semantics
        if (EditDistanceFullMatrix(q, candidate) <= k) {
          matches.push_back(static_cast<uint32_t>(id));
        }
      }
      break;
    }
    case LadderStep::kFastEditDistance: {
      const std::string q = query.text;
      for (size_t id = 0; id < dataset.size(); ++id) {
        const std::string candidate(dataset.View(id));  // still copying
        const size_t d = q.size() >= candidate.size()
                             ? q.size() - candidate.size()
                             : candidate.size() - q.size();
        if (d > static_cast<size_t>(k)) continue;  // eq. (5)
        if (internal::EditDistanceDiagonalAbort(q, candidate, k) <= k) {
          matches.push_back(static_cast<uint32_t>(id));
        }
      }
      break;
    }
    case LadderStep::kReferences: {
      const std::string_view q = query.text;
      for (size_t id = 0; id < dataset.size(); ++id) {
        if (internal::EditDistanceReferences(q, dataset.View(id), k, ws) <=
            k) {
          matches.push_back(static_cast<uint32_t>(id));
        }
      }
      break;
    }
    case LadderStep::kSimpleTypes: {
      const std::string_view q = query.text;
      for (size_t id = 0; id < dataset.size(); ++id) {
        if (internal::EditDistanceSimpleTypes(q, dataset.View(id), k, ws) <=
            k) {
          matches.push_back(static_cast<uint32_t>(id));
        }
      }
      break;
    }
  }
  return matches;
}

}  // namespace sss
