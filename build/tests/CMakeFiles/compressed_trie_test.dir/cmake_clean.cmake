file(REMOVE_RECURSE
  "CMakeFiles/compressed_trie_test.dir/core/compressed_trie_test.cc.o"
  "CMakeFiles/compressed_trie_test.dir/core/compressed_trie_test.cc.o.d"
  "compressed_trie_test"
  "compressed_trie_test.pdb"
  "compressed_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
