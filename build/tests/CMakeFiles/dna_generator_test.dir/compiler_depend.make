# Empty compiler generated dependencies file for dna_generator_test.
# This may be replaced when dependencies are built.
