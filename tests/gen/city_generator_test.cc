#include "gen/city_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/city_corpus.h"

namespace sss::gen {
namespace {

TEST(CityCorpusTest, CorpusIsNonTrivial) {
  EXPECT_GT(kCityCorpusSize, 500u);
  for (size_t i = 0; i < kCityCorpusSize; ++i) {
    ASSERT_NE(kCityCorpus[i], nullptr);
    ASSERT_GT(std::string_view(kCityCorpus[i]).size(), 1u);
  }
}

TEST(CityGeneratorTest, DeterministicForSeed) {
  CityGeneratorOptions options;
  options.num_strings = 200;
  CityNameGenerator a(options, 42), b(options, 42);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(CityGeneratorTest, DifferentSeedsDiffer) {
  CityGeneratorOptions options;
  CityNameGenerator a(options, 1), b(options, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 20);
}

TEST(CityGeneratorTest, RespectsLengthBounds) {
  CityGeneratorOptions options;
  options.min_length = 3;
  options.max_length = 20;
  CityNameGenerator gen(options, 7);
  for (int i = 0; i < 2000; ++i) {
    const std::string name = gen.Next();
    EXPECT_GE(name.size(), 3u);
    EXPECT_LE(name.size(), 20u);
  }
}

TEST(CityGeneratorTest, GenerateProducesRequestedCount) {
  CityGeneratorOptions options;
  options.num_strings = 1234;
  Dataset d = CityNameGenerator(options, 3).Generate();
  EXPECT_EQ(d.size(), 1234u);
  EXPECT_EQ(d.name(), "city_names");
  EXPECT_EQ(d.alphabet(), AlphabetKind::kGeneric);
}

TEST(CityGeneratorTest, MatchesTableOneShape) {
  // Table I: length ≤ 64, alphabet approaching 255 symbols at scale.
  CityGeneratorOptions options;
  options.num_strings = 20000;
  Dataset d = CityNameGenerator(options, 11).Generate();
  const DatasetStats stats = d.ComputeStats();
  EXPECT_LE(stats.max_length, 64u);
  EXPECT_GT(stats.alphabet_size, 100u)
      << "accents + transcription noise should widen the alphabet well "
         "beyond ASCII letters";
  EXPECT_GT(stats.avg_length, 4.0);
  EXPECT_LT(stats.avg_length, 20.0);
}

TEST(CityGeneratorTest, NamesLookNatural) {
  // The Markov chain should produce mostly letters/spaces, with variety.
  CityGeneratorOptions options;
  options.accent_prob = 0;
  options.exotic_string_prob = 0;
  CityNameGenerator gen(options, 13);
  std::set<std::string> distinct;
  size_t letters = 0, total = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string name = gen.Next();
    distinct.insert(name);
    for (char c : name) {
      ++total;
      if (std::isalpha(static_cast<unsigned char>(c))) ++letters;
    }
  }
  EXPECT_GT(distinct.size(), 700u) << "generator collapsed to few outputs";
  EXPECT_GT(static_cast<double>(letters) / total, 0.85);
}

TEST(CityGeneratorTest, AccentsOffKeepsAscii) {
  CityGeneratorOptions options;
  options.accent_prob = 0;
  options.exotic_string_prob = 0;
  CityNameGenerator gen(options, 17);
  for (int i = 0; i < 500; ++i) {
    for (char c : gen.Next()) {
      EXPECT_LT(static_cast<unsigned char>(c), 128)
          << "non-ASCII byte with accents disabled";
    }
  }
}

TEST(CityGeneratorTest, AccentsOnIntroducesLatin1) {
  CityGeneratorOptions options;
  options.accent_prob = 0.5;
  options.exotic_string_prob = 0;
  CityNameGenerator gen(options, 19);
  bool saw_high_byte = false;
  for (int i = 0; i < 500 && !saw_high_byte; ++i) {
    for (char c : gen.Next()) {
      if (static_cast<unsigned char>(c) >= 0xC0) saw_high_byte = true;
    }
  }
  EXPECT_TRUE(saw_high_byte);
}

TEST(CityGeneratorTest, MarkovOrdersProduceValidOutput) {
  for (int order : {1, 2, 3}) {
    CityGeneratorOptions options;
    options.order = order;
    CityNameGenerator gen(options, 23);
    for (int i = 0; i < 100; ++i) {
      const std::string name = gen.Next();
      EXPECT_GE(name.size(), options.min_length) << "order " << order;
      EXPECT_LE(name.size(), options.max_length) << "order " << order;
    }
  }
}

}  // namespace
}  // namespace sss::gen
