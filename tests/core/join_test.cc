#include "core/join.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::RandomDataset;
using sss::testing::ReferenceEditDistance;

std::vector<JoinPair> BruteForceJoin(const Dataset& d, int k,
                                     bool include_exact) {
  std::vector<JoinPair> out;
  for (uint32_t i = 0; i < d.size(); ++i) {
    for (uint32_t j = i + 1; j < d.size(); ++j) {
      const int dist = ReferenceEditDistance(d.View(i), d.View(j));
      if (dist <= k && (include_exact || d.View(i) != d.View(j))) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;
}

TEST(JoinTest, FindsNearDuplicatePairs) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Magdeburg");   // 0
  d.Add("Magdeburq");   // 1: ed 1 to 0
  d.Add("Hamburg");     // 2
  d.Add("Magdeburg");   // 3: exact dup of 0
  JoinOptions options;
  options.max_distance = 1;
  const auto pairs = SimilaritySelfJoin(d, options);
  EXPECT_EQ(pairs, (std::vector<JoinPair>{{0, 1}, {0, 3}, {1, 3}}));
}

TEST(JoinTest, ExcludeExactDuplicates) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("same");
  d.Add("same");
  d.Add("sane");
  JoinOptions options;
  options.max_distance = 1;
  options.include_exact_duplicates = false;
  const auto pairs = SimilaritySelfJoin(d, options);
  EXPECT_EQ(pairs, (std::vector<JoinPair>{{0, 2}, {1, 2}}));
}

TEST(JoinTest, ZeroThresholdFindsOnlyDuplicates) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("aa");
  d.Add("ab");
  d.Add("aa");
  JoinOptions options;
  options.max_distance = 0;
  const auto pairs = SimilaritySelfJoin(d, options);
  EXPECT_EQ(pairs, (std::vector<JoinPair>{{0, 2}}));
}

TEST(JoinTest, EmptyAndSingletonDatasets) {
  Dataset empty("e", AlphabetKind::kGeneric);
  EXPECT_TRUE(SimilaritySelfJoin(empty, {}).empty());
  Dataset one("o", AlphabetKind::kGeneric);
  one.Add("only");
  EXPECT_TRUE(SimilaritySelfJoin(one, {}).empty());
}

class JoinEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalenceTest, MatchesBruteForce) {
  const int k = GetParam();
  Xoshiro256 rng(0x701 + k);
  Dataset d = RandomDataset(&rng, "abc", 120, 1, 8);
  JoinOptions options;
  options.max_distance = k;
  EXPECT_EQ(SimilaritySelfJoin(d, options), BruteForceJoin(d, k, true));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, JoinEquivalenceTest,
                         ::testing::Values(0, 1, 2, 3));

class JoinAlgorithmTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinAlgorithmTest, TrieProbeMatchesBruteForce) {
  const int k = GetParam();
  Xoshiro256 rng(0x711 + k);
  Dataset d = RandomDataset(&rng, "abc", 120, 1, 8);
  JoinOptions options;
  options.max_distance = k;
  options.algorithm = JoinAlgorithm::kTrieProbe;
  EXPECT_EQ(SimilaritySelfJoin(d, options), BruteForceJoin(d, k, true));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, JoinAlgorithmTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(JoinTest, TrieProbeRespectsExactDuplicateFlag) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("same");
  d.Add("same");
  d.Add("sane");
  JoinOptions options;
  options.max_distance = 1;
  options.include_exact_duplicates = false;
  options.algorithm = JoinAlgorithm::kTrieProbe;
  EXPECT_EQ(SimilaritySelfJoin(d, options),
            (std::vector<JoinPair>{{0, 2}, {1, 2}}));
}

TEST(JoinTest, TrieProbeParallelMatchesSerial) {
  Xoshiro256 rng(0x712);
  Dataset d = RandomDataset(&rng, "abcd", 250, 2, 10);
  JoinOptions serial;
  serial.max_distance = 2;
  serial.algorithm = JoinAlgorithm::kTrieProbe;
  JoinOptions parallel = serial;
  parallel.exec = {ExecutionStrategy::kFixedPool, 4};
  EXPECT_EQ(SimilaritySelfJoin(d, parallel), SimilaritySelfJoin(d, serial));
}

TEST(JoinTest, BothAlgorithmsAgreeOnLargerData) {
  Xoshiro256 rng(0x713);
  Dataset d = RandomDataset(&rng, "abcdef", 500, 2, 14);
  JoinOptions scan;
  scan.max_distance = 2;
  JoinOptions trie = scan;
  trie.algorithm = JoinAlgorithm::kTrieProbe;
  EXPECT_EQ(SimilaritySelfJoin(d, trie), SimilaritySelfJoin(d, scan));
}

TEST(JoinTest, ParallelMatchesSerial) {
  Xoshiro256 rng(0x702);
  Dataset d = RandomDataset(&rng, "abcd", 300, 2, 10);
  JoinOptions serial;
  serial.max_distance = 2;
  JoinOptions parallel = serial;
  parallel.exec = {ExecutionStrategy::kFixedPool, 4};
  EXPECT_EQ(SimilaritySelfJoin(d, parallel), SimilaritySelfJoin(d, serial));
}

}  // namespace
}  // namespace sss
