#include "gen/workload.h"

#include <algorithm>

#include "util/macros.h"

namespace sss::gen {

namespace {

size_t Scaled(size_t full, double scale) {
  const auto scaled = static_cast<size_t>(static_cast<double>(full) * scale);
  return std::max<size_t>(1, scaled);
}

QuerySet MakeBatch(const Dataset& dataset, WorkloadKind kind, size_t count,
                   uint64_t seed) {
  QueryGeneratorOptions options;
  options.num_queries = count;
  options.thresholds = ThresholdsFor(kind);
  return MakeQuerySet(dataset, options, seed);
}

}  // namespace

std::string ToString(WorkloadKind kind) {
  return kind == WorkloadKind::kCityNames ? "city_names" : "dna_reads";
}

const std::vector<int>& ThresholdsFor(WorkloadKind kind) {
  static const std::vector<int> kCity = {0, 1, 2, 3};
  static const std::vector<int> kDna = {0, 4, 8, 16};
  return kind == WorkloadKind::kCityNames ? kCity : kDna;
}

const QuerySet& Workload::QueriesFor(int paper_count) const {
  switch (paper_count) {
    case 100:
      return queries_100;
    case 500:
      return queries_500;
    case 1000:
      return queries_1000;
    default:
      SSS_CHECK(false && "paper query counts are 100, 500, 1000");
      return queries_100;
  }
}

Workload MakeWorkload(WorkloadKind kind, double scale, uint64_t seed) {
  SSS_CHECK(scale > 0.0 && scale <= 1.0);
  Workload w{kind, scale, seed, Dataset{}, {}, {}, {}};

  if (kind == WorkloadKind::kCityNames) {
    CityGeneratorOptions options;
    options.num_strings = Scaled(400000, scale);
    w.dataset = CityNameGenerator(options, seed).Generate();
  } else {
    DnaGeneratorOptions options;
    options.num_reads = Scaled(750000, scale);
    // Shrink the genome with the read count so coverage (reads per genome
    // base) stays at the full-scale level and near-duplicate density is
    // preserved.
    options.genome_length = std::max<size_t>(
        options.read_length + options.read_length_jitter + 16,
        Scaled(1 << 20, scale));
    w.dataset = DnaReadGenerator(options, seed).Generate();
  }

  // Distinct derived seeds per batch so batches are independent samples.
  w.queries_100 = MakeBatch(w.dataset, kind, Scaled(100, scale), seed ^ 0x64);
  w.queries_500 = MakeBatch(w.dataset, kind, Scaled(500, scale), seed ^ 0x1F4);
  w.queries_1000 = MakeBatch(w.dataset, kind, Scaled(1000, scale), seed ^ 0x3E8);
  return w;
}

}  // namespace sss::gen
