#include "core/bktree.h"

#include <algorithm>

#include "core/edit_distance.h"
#include "util/macros.h"
#include "util/search_stats.h"

namespace sss {

namespace {

// Exact distance for tree construction and descent. The tree needs true
// distances (not bounded verdicts), so this uses the unbounded bit-parallel
// kernel.
int ExactDistance(std::string_view a, std::string_view b,
                  EditDistanceWorkspace* ws) {
  if (a.empty()) return static_cast<int>(b.size());
  return MyersEditDistanceBlocked(a, b, ws);
}

}  // namespace

BKTreeSearcher::BKTreeSearcher(SnapshotHandle snapshot)
    : snapshot_(std::move(snapshot)), dataset_(snapshot_->dataset()) {
  for (size_t id = 0; id < dataset_.size(); ++id) {
    Insert(static_cast<uint32_t>(id));
  }
}

size_t BKTreeSearcher::EdgeSlot(const Node& node, uint16_t d) const {
  const auto it = std::lower_bound(
      node.children.begin(), node.children.end(), d,
      [](const auto& edge, uint16_t key) { return edge.first < key; });
  if (it == node.children.end() || it->first != d) {
    return static_cast<size_t>(-1);
  }
  return static_cast<size_t>(it - node.children.begin());
}

void BKTreeSearcher::Insert(uint32_t id) {
  thread_local EditDistanceWorkspace ws;
  if (nodes_.empty()) {
    nodes_.push_back(Node{id, {}, {}});
    return;
  }
  const std::string_view s = dataset_.View(id);
  uint32_t cur = 0;
  for (;;) {
    const int d = ExactDistance(dataset_.View(nodes_[cur].pivot_id), s, &ws);
    if (d == 0) {
      nodes_[cur].dup_ids.push_back(id);  // identical text
      return;
    }
    const size_t slot = EdgeSlot(nodes_[cur], static_cast<uint16_t>(d));
    if (slot == static_cast<size_t>(-1)) {
      const uint32_t fresh = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{id, {}, {}});
      Node& parent = nodes_[cur];
      const auto it = std::lower_bound(
          parent.children.begin(), parent.children.end(),
          static_cast<uint16_t>(d),
          [](const auto& edge, uint16_t key) { return edge.first < key; });
      parent.children.insert(it, {static_cast<uint16_t>(d), fresh});
      return;
    }
    cur = nodes_[cur].children[slot].second;
  }
}

Status BKTreeSearcher::Search(const Query& query, const SearchContext& ctx,
                              MatchList* out) const {
  if (nodes_.empty()) return Status::OK();
  const int k = query.max_distance;
  thread_local EditDistanceWorkspace ws;

  StatsScope stats(ctx.stats);
  const size_t out_before = out->size();

  StopChecker stopper(ctx);
  std::vector<uint32_t> stack;
  stack.push_back(0);
  while (!stack.empty()) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    ++stats->bktree_distance_calls;
    const int d =
        ExactDistance(query.text, dataset_.View(node.pivot_id), &ws);
    if (d <= k) {
      out->push_back(node.pivot_id);
      out->insert(out->end(), node.dup_ids.begin(), node.dup_ids.end());
    }
    // Triangle inequality: a match at distance ≤ k from q lies at distance
    // within [d − k, d + k] of the pivot.
    const int lo = d - k;
    const int hi = d + k;
    const auto begin = std::lower_bound(
        node.children.begin(), node.children.end(),
        static_cast<uint16_t>(std::max(0, lo)),
        [](const auto& edge, uint16_t key) { return edge.first < key; });
    for (auto it = begin;
         it != node.children.end() && static_cast<int>(it->first) <= hi;
         ++it) {
      stack.push_back(it->second);
    }
  }
  stats->matches_found += out->size() - out_before;
  std::sort(out->begin(), out->end());
  return Status::OK();
}

size_t BKTreeSearcher::memory_bytes() const {
  size_t bytes = nodes_.size() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.children.capacity() * sizeof(n.children[0]) +
             n.dup_ids.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

size_t BKTreeSearcher::MaxDepth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over (node, depth).
  size_t max_depth = 1;
  std::vector<std::pair<uint32_t, size_t>> stack = {{0, 1}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    for (const auto& [dist, child] : nodes_[idx].children) {
      stack.push_back({child, depth + 1});
    }
  }
  return max_depth;
}

}  // namespace sss
