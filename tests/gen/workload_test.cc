#include "gen/workload.h"

#include <gtest/gtest.h>

namespace sss::gen {
namespace {

TEST(WorkloadTest, CityScaleProducesScaledSizes) {
  const Workload w = MakeWorkload(WorkloadKind::kCityNames, 0.01, 1);
  EXPECT_EQ(w.dataset.size(), 4000u);
  EXPECT_EQ(w.queries_100.size(), 1u);
  EXPECT_EQ(w.queries_500.size(), 5u);
  EXPECT_EQ(w.queries_1000.size(), 10u);
}

TEST(WorkloadTest, DnaScaleProducesScaledSizes) {
  const Workload w = MakeWorkload(WorkloadKind::kDnaReads, 0.002, 2);
  EXPECT_EQ(w.dataset.size(), 1500u);
  EXPECT_EQ(w.dataset.alphabet(), AlphabetKind::kDna);
}

TEST(WorkloadTest, ThresholdLaddersMatchTableOne) {
  EXPECT_EQ(ThresholdsFor(WorkloadKind::kCityNames),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ThresholdsFor(WorkloadKind::kDnaReads),
            (std::vector<int>{0, 4, 8, 16}));
}

TEST(WorkloadTest, QueriesUseTheLadder) {
  const Workload w = MakeWorkload(WorkloadKind::kDnaReads, 0.002, 3);
  for (const Query& q : w.queries_1000) {
    EXPECT_TRUE(q.max_distance == 0 || q.max_distance == 4 ||
                q.max_distance == 8 || q.max_distance == 16);
  }
}

TEST(WorkloadTest, QueriesForSelectsBatch) {
  const Workload w = MakeWorkload(WorkloadKind::kCityNames, 0.01, 4);
  EXPECT_EQ(&w.QueriesFor(100), &w.queries_100);
  EXPECT_EQ(&w.QueriesFor(500), &w.queries_500);
  EXPECT_EQ(&w.QueriesFor(1000), &w.queries_1000);
  EXPECT_EQ(w.ScaledCount(1000), 10u);
}

TEST(WorkloadTest, DeterministicForSeed) {
  const Workload a = MakeWorkload(WorkloadKind::kCityNames, 0.005, 77);
  const Workload b = MakeWorkload(WorkloadKind::kCityNames, 0.005, 77);
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (size_t i = 0; i < a.dataset.size(); ++i) {
    ASSERT_EQ(a.dataset.View(i), b.dataset.View(i));
  }
  ASSERT_EQ(a.queries_500.size(), b.queries_500.size());
  for (size_t i = 0; i < a.queries_500.size(); ++i) {
    EXPECT_EQ(a.queries_500[i].text, b.queries_500[i].text);
  }
}

TEST(WorkloadTest, BatchesAreIndependentSamples) {
  const Workload w = MakeWorkload(WorkloadKind::kCityNames, 0.01, 5);
  // The 100-batch is not a prefix of the 500-batch (distinct derived seeds).
  ASSERT_FALSE(w.queries_100.empty());
  ASSERT_FALSE(w.queries_500.empty());
  bool identical_prefix = true;
  for (size_t i = 0; i < w.queries_100.size() && identical_prefix; ++i) {
    identical_prefix = w.queries_100[i].text == w.queries_500[i].text;
  }
  EXPECT_FALSE(identical_prefix);
}

TEST(WorkloadTest, ToStringNames) {
  EXPECT_EQ(ToString(WorkloadKind::kCityNames), "city_names");
  EXPECT_EQ(ToString(WorkloadKind::kDnaReads), "dna_reads");
}

}  // namespace
}  // namespace sss::gen
