# Empty dependencies file for bench_ablation_hamming.
# This may be replaced when dependencies are built.
