#include "gen/query_generator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sss::gen {
namespace {

using sss::testing::ReferenceEditDistance;

TEST(PerturbTest, ZeroEditsIsIdentity) {
  Xoshiro256 rng(1);
  EXPECT_EQ(Perturb("Magdeburg", 0, "", &rng), "Magdeburg");
}

// Property: Perturb(s, e) is within edit distance e of s, across edit
// counts and base lengths.
class PerturbPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PerturbPropertyTest, StaysWithinEditBudget) {
  const int edits = GetParam();
  Xoshiro256 rng(100 + edits);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string base =
        sss::testing::RandomString(&rng, "abcdefgh", 0, 30);
    const std::string out = Perturb(base, edits, "abcdefgh", &rng);
    EXPECT_LE(ReferenceEditDistance(base, out), edits)
        << "base='" << base << "' out='" << out << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(EditCounts, PerturbPropertyTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 16));

TEST(PerturbTest, UsesProvidedAlphabet) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::string out = Perturb("AAAA", 4, "Z", &rng);
    for (char c : out) EXPECT_TRUE(c == 'A' || c == 'Z') << out;
  }
}

TEST(PerturbTest, EmptyBaseSurvives) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::string out = Perturb("", 3, "xy", &rng);
    EXPECT_LE(out.size(), 3u);
  }
}

TEST(MakeQuerySetTest, ProducesRequestedCount) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("alpha");
  d.Add("beta");
  QueryGeneratorOptions options;
  options.num_queries = 57;
  const QuerySet queries = MakeQuerySet(d, options, 9);
  EXPECT_EQ(queries.size(), 57u);
}

TEST(MakeQuerySetTest, CyclesThresholdLadder) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("someword");
  QueryGeneratorOptions options;
  options.num_queries = 8;
  options.thresholds = {0, 4, 8, 16};
  const QuerySet queries = MakeQuerySet(d, options, 5);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].max_distance,
              options.thresholds[i % options.thresholds.size()]);
  }
}

TEST(MakeQuerySetTest, EveryQueryHasAMatchAtItsThreshold) {
  // The generator's guarantee: queries are ≤ k edits from some dataset
  // string, so result sets are non-empty, as in the competition.
  Xoshiro256 rng(7);
  Dataset d =
      sss::testing::RandomDataset(&rng, "abcdefghij", 50, 5, 20);
  QueryGeneratorOptions options;
  options.num_queries = 40;
  options.thresholds = {0, 1, 2, 3};
  const QuerySet queries = MakeQuerySet(d, options, 11);
  for (const Query& q : queries) {
    EXPECT_FALSE(
        sss::testing::BruteForceSearch(d, q).empty())
        << "query '" << q.text << "' k=" << q.max_distance;
  }
}

TEST(MakeQuerySetTest, DeterministicForSeed) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("one");
  d.Add("two");
  d.Add("three");
  QueryGeneratorOptions options;
  options.num_queries = 30;
  const QuerySet a = MakeQuerySet(d, options, 31);
  const QuerySet b = MakeQuerySet(d, options, 31);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_EQ(a[i].max_distance, b[i].max_distance);
  }
}

TEST(MakeQuerySetTest, ExactEditsAppliesFullBudget) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("aaaaaaaaaaaaaaaaaaaa");  // single base string, 20 chars
  QueryGeneratorOptions options;
  options.num_queries = 50;
  options.thresholds = {3};
  options.exact_edits = true;
  options.alphabet = "z";  // every edit hits a distinct symbol
  const QuerySet queries = MakeQuerySet(d, options, 13);
  size_t changed = 0;
  for (const Query& q : queries) {
    if (q.text != d.View(0)) ++changed;
    EXPECT_LE(ReferenceEditDistance(std::string(d.View(0)), q.text), 3);
  }
  EXPECT_GT(changed, 40u) << "exact_edits should nearly always change text";
}

}  // namespace
}  // namespace sss::gen
