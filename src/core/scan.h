// SequentialScanSearcher — the paper's contribution: a sequential scan tuned
// until it beats the index on short-string workloads (§3, §5.3).
//
// The default configuration is the paper's best serial implementation
// (ladder step 4: banded, allocation-free verification over the contiguous
// StringPool) plus the dispatch to Myers' bit-parallel kernel for large k.
// Optional extras implement the paper's future-work items:
//   * sort_by_length  — pre-sorting by length so only candidate lengths in
//     [l_q − k, l_q + k] are visited at all ("Sorting", §6);
//   * frequency_filter — the five-symbol count filter ("Frequency vectors");
//   * qgram_filter     — a q-gram count filter from the related literature.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/edit_distance.h"
#include "core/filters.h"
#include "core/kernels.h"
#include "core/lane_pool.h"
#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief Which kernel verifies surviving candidates at ladder step 4.
enum class VerifyKernel {
  /// The paper's own step 4 (§3.4): full-width rolling rows, length filter,
  /// diagonal abort. Reproduction benches use this.
  kPaperStep4,
  /// This library's banded (Ukkonen) kernel — an extension over the paper.
  kBanded,
  /// Banded for small k, Myers bit-parallel for large k — the library's
  /// best configuration and the default.
  kMyersAuto,
};

/// \brief Configuration of the sequential scan.
struct ScanOptions {
  /// Which ladder rung verifies candidates. kSimpleTypes is the paper's
  /// best; earlier rungs exist for the ladder benches.
  LadderStep step = LadderStep::kSimpleTypes;
  /// Verification kernel used at step 4 (earlier rungs always reproduce
  /// the paper exactly and ignore this).
  VerifyKernel verify_kernel = VerifyKernel::kMyersAuto;
  /// "Sorting" future-work item: visit only ids whose length can match.
  bool sort_by_length = false;
  /// "Frequency vectors" future-work item: count-filter before verifying.
  bool frequency_filter = false;
  /// q-gram count filter (0 = off; otherwise the gram size, e.g. 2 or 3).
  int qgram_filter_q = 0;
};

/// \brief The sequential scan engine.
///
/// Search() is const and thread-safe: per-thread DP workspaces are handled
/// internally, so any ExecutionStrategy may drive it.
class SequentialScanSearcher final : public Searcher {
 public:
  /// Builds the (cheap) scan-side auxiliary structures over `snapshot`,
  /// which the searcher pins for its lifetime.
  SequentialScanSearcher(SnapshotHandle snapshot, ScanOptions options);

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  SequentialScanSearcher(const Dataset& dataset, ScanOptions options)
      : SequentialScanSearcher(CollectionSnapshot::Borrow(dataset),
                               std::move(options)) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "sequential_scan"; }
  size_t memory_bytes() const override;

  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

  /// The scan's data layout is the id order itself, so an id shard is just
  /// a sub-scan. Historical ladder rungs (step != kSimpleTypes) run their
  /// own full-collection loops and keep the base fallback.
  bool SupportsRangeSearch() const override {
    return options_.step == LadderStep::kSimpleTypes;
  }
  Status SearchRange(const Query& query, uint32_t begin, uint32_t end,
                     const SearchContext& ctx, MatchList* out) const override;

  const ScanOptions& options() const noexcept { return options_; }

 private:
  /// Verifies candidate `id` against the query at the configured rung.
  bool Verify(std::string_view q, uint32_t id, int k,
              EditDistanceWorkspace* ws) const;

  /// Scan over ids in [begin, end) (default layout). Returns kCancelled
  /// (with `out` cleared) if `ctx` stops the scan. `count_simd_fallback` is
  /// set when a non-scalar kernel tier routed this query per-pair anyway
  /// (empty query, filters on, non-default verify kernel): the verified
  /// candidates are then also counted as simd_fallback_pairs, keeping
  /// simd_lanes_verified + simd_fallback_pairs == verify_calls.
  Status ScanIdRange(const Query& query, const SearchContext& ctx,
                     EditDistanceWorkspace* ws, uint32_t begin, uint32_t end,
                     bool count_simd_fallback, MatchList* out) const;

  /// Scan restricted to matching lengths via the sorted-by-length order.
  Status ScanByLength(const Query& query, const SearchContext& ctx,
                      EditDistanceWorkspace* ws, bool count_simd_fallback,
                      MatchList* out) const;

  /// True when `query` can run through the many-vs-many lane path under
  /// `tier` (resolved from ctx.kernel_tier): default verify kernel, no
  /// extra filters, non-empty text, k >= 0.
  bool LaneEligible(const Query& query, KernelTier tier) const;

  /// The transposed candidate pool for the lane tiers, built lazily on
  /// first use so the default scalar configuration pays nothing.
  const LanePool& EnsureLanePool() const;

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset(), for terse hot loops
  ScanOptions options_;

  // sort_by_length: ids grouped by string length.
  std::vector<uint32_t> ids_by_length_;
  std::vector<uint32_t> length_starts_;  // first position of each length

  std::optional<FrequencyVectorFilter> frequency_filter_;
  std::optional<QGramFilter> qgram_filter_;

  // Lane-tier state (see EnsureLanePool). The atomic publishes the built
  // pool so readers (and memory_bytes) never race the call_once body.
  mutable std::once_flag lane_pool_once_;
  mutable std::unique_ptr<LanePool> lane_pool_storage_;
  mutable std::atomic<const LanePool*> lane_pool_{nullptr};
};

}  // namespace sss
