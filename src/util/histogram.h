// Log-bucketed latency histogram (HdrHistogram-flavoured, much smaller):
// fixed memory, lock-free-ish recording via plain counters, percentile
// queries. Used by the CLI and benches to report per-query latency
// distributions instead of just totals — batch means hide the tail that
// similarity queries (whose cost varies with k and result size) produce.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sss {

/// \brief Histogram over positive values (e.g. nanoseconds) with
/// logarithmic buckets: each power of two is split into `kSubBuckets`
/// linear sub-buckets, giving ≤ ~3% relative error on percentiles.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// \brief Records one value (clamped to ≥ 1). Thread-safe.
  void Record(uint64_t value) noexcept;

  /// \brief Number of recorded values.
  uint64_t count() const noexcept;

  /// \brief Smallest / largest recorded value (0 when empty).
  uint64_t min() const noexcept { return count() == 0 ? 0 : min_.load(); }
  uint64_t max() const noexcept { return max_.load(); }

  /// \brief Arithmetic mean of recorded values (0 when empty).
  double Mean() const noexcept;

  /// \brief Upper bound of the bucket containing the q-quantile
  /// (q in [0, 1]); 0 when empty.
  uint64_t Percentile(double q) const noexcept;

  /// \brief "p50=… p90=… p99=… max=…" with a unit suffix.
  std::string Summary(const char* unit) const;

  /// \brief Like Summary but with every value divided by `divisor` and
  /// printed with two decimals — record in nanoseconds, report in the unit
  /// the reader expects (e.g. divisor 1e3 and unit "us") without the
  /// sub-unit truncation an integer Record would bake in.
  std::string ScaledSummary(double divisor, const char* unit) const;

  /// \brief Forgets every recorded value.
  void Reset();

 private:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 48;       // values up to ~2^48

  /// Bucket index of a value.
  static size_t BucketOf(uint64_t value) noexcept;
  /// Representative (upper bound) value of a bucket.
  static uint64_t BucketUpperBound(size_t bucket) noexcept;

  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace sss
