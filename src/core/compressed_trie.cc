#include "core/compressed_trie.h"

#include <algorithm>

#include "core/internal/banded_row.h"
#include "util/macros.h"
#include "util/search_stats.h"

namespace sss {

CompressedTrieSearcher::CompressedTrieSearcher(SnapshotHandle snapshot,
                                               TriePruning pruning,
                                               bool frequency_bounds)
    : snapshot_(std::move(snapshot)),
      dataset_(snapshot_->dataset()),
      pruning_(pruning),
      frequency_bounds_(frequency_bounds),
      buckets_(dataset_.alphabet()) {
  nodes_.emplace_back();  // root (empty label)
  nodes_[0].freq_min.fill(UINT16_MAX);
  for (size_t id = 0; id < dataset_.size(); ++id) {
    Insert(dataset_.View(id), static_cast<uint32_t>(id));
  }
}

bool CompressedTrieSearcher::FrequencyCompatible(const Node& node,
                                                 const FrequencyVector& qv,
                                                 int k) const noexcept {
  // Per-bucket deviation between the query's counts and the subtree's
  // attainable count interval; one edit moves the bucketed L1 by ≤ 2, so
  // ed ≥ ⌈Σ dev / 2⌉ for every string below this node.
  unsigned total_dev = 0;
  for (int b = 0; b < 6; ++b) {
    if (qv[b] > node.freq_max[b]) {
      total_dev += qv[b] - node.freq_max[b];
    } else if (qv[b] < node.freq_min[b]) {
      total_dev += node.freq_min[b] - qv[b];
    }
  }
  return (total_dev + 1) / 2 <= static_cast<unsigned>(k);
}

size_t CompressedTrieSearcher::EdgeSlot(const Node& node, unsigned char c) {
  const auto it = std::lower_bound(
      node.children.begin(), node.children.end(), c,
      [](const auto& edge, unsigned char key) { return edge.first < key; });
  if (it == node.children.end() || it->first != c) {
    return static_cast<size_t>(-1);
  }
  return static_cast<size_t>(it - node.children.begin());
}

void CompressedTrieSearcher::Insert(std::string_view s, uint32_t id) {
  const auto len = static_cast<uint16_t>(s.size());
  const FrequencyVector sv = buckets_.Compute(s);
  uint32_t cur = 0;
  size_t pos = 0;  // consumed characters of s
  for (;;) {
    {
      Node& node = nodes_[cur];
      node.min_len = std::min(node.min_len, len);
      node.max_len = std::max(node.max_len, len);
      for (int b = 0; b < 6; ++b) {
        node.freq_min[b] = std::min(node.freq_min[b], sv[b]);
        node.freq_max[b] = std::max(node.freq_max[b], sv[b]);
      }
    }
    if (pos == s.size()) {
      nodes_[cur].terminal_ids.push_back(id);
      return;
    }
    const unsigned char next_byte = static_cast<unsigned char>(s[pos]);
    const size_t slot = EdgeSlot(nodes_[cur], next_byte);

    if (slot == static_cast<size_t>(-1)) {
      // No edge: attach a fresh leaf holding the whole remaining suffix.
      const uint32_t leaf = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();  // may reallocate; re-index below
      Node& leaf_node = nodes_[leaf];
      leaf_node.label = s.data() + pos;
      leaf_node.label_len = static_cast<uint32_t>(s.size() - pos);
      leaf_node.min_len = leaf_node.max_len = len;
      leaf_node.freq_min = leaf_node.freq_max = sv;
      leaf_node.terminal_ids.push_back(id);
      Node& parent = nodes_[cur];
      const auto it = std::lower_bound(
          parent.children.begin(), parent.children.end(), next_byte,
          [](const auto& edge, unsigned char key) {
            return edge.first < key;
          });
      parent.children.insert(it, {next_byte, leaf});
      return;
    }

    const uint32_t child = nodes_[cur].children[slot].second;
    const std::string_view label = nodes_[child].label_view();
    // Longest common prefix of the child's label and the remaining suffix.
    size_t m = 0;
    const size_t limit = std::min(label.size(), s.size() - pos);
    while (m < limit && label[m] == s[pos + m]) ++m;

    if (m == label.size()) {
      // Full label consumed: walk into the child.
      cur = child;
      pos += m;
      continue;
    }

    // Partial match: split the child's edge at m. A new intermediate node
    // takes the first m label bytes; the child keeps the remainder.
    const uint32_t mid = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();  // may reallocate; take references after this
    Node& mid_node = nodes_[mid];
    Node& child_node = nodes_[child];
    mid_node.label = child_node.label;
    mid_node.label_len = static_cast<uint32_t>(m);
    mid_node.min_len = child_node.min_len;
    mid_node.max_len = child_node.max_len;
    mid_node.freq_min = child_node.freq_min;
    mid_node.freq_max = child_node.freq_max;
    child_node.label += m;
    child_node.label_len -= static_cast<uint32_t>(m);
    mid_node.children.push_back(
        {static_cast<unsigned char>(child_node.label[0]), child});
    nodes_[cur].children[slot].second = mid;
    cur = mid;
    pos += m;
  }
}

TrieStats CompressedTrieSearcher::Stats() const {
  TrieStats stats;
  stats.num_nodes = nodes_.size();
  for (const Node& n : nodes_) {
    if (!n.terminal_ids.empty()) ++stats.num_terminal_nodes;
    stats.memory_bytes += sizeof(Node) +
                          n.children.capacity() * sizeof(n.children[0]) +
                          n.terminal_ids.capacity() * sizeof(uint32_t);
  }
  stats.max_depth = nodes_.empty() ? 0 : nodes_[0].max_len;
  return stats;
}

Status CompressedTrieSearcher::Search(const Query& query,
                                      const SearchContext& ctx,
                                      MatchList* out) const {
  return pruning_ == TriePruning::kBandedRows
             ? SearchBanded(query, ctx, out)
             : SearchPaperRule(query, ctx, out);
}

Status CompressedTrieSearcher::SearchBanded(const Query& query,
                                            const SearchContext& ctx,
                                            MatchList* out) const {
  const int k = query.max_distance;
  const int lq = static_cast<int>(query.text.size());

  thread_local internal::BandedRows rows;
  rows.Init(query.text, k);
  const FrequencyVector qv =
      frequency_bounds_ ? buckets_.Compute(query.text) : FrequencyVector{};

  // DFS frames: `consumed` label bytes of this node's edge already applied
  // to the rows, `depth` the total prefix length at that point.
  struct Frame {
    uint32_t node;
    int depth;
    uint32_t consumed;
    size_t next_child;
    bool label_dead;  // band died somewhere inside this node's label
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, 0, 0, 0, false});

  StatsScope stats(ctx.stats);
  ++stats->trie_nodes_visited;  // root
  const size_t out_before = out->size();

  StopChecker stopper(ctx);
  while (!stack.empty()) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    Frame& frame = stack.back();
    const Node& node = nodes_[frame.node];

    if (frame.next_child == 0 && !frame.label_dead) {
      // First visit: consume the node's remaining label bytes.
      bool dead = false;
      while (frame.consumed < node.label_len) {
        const unsigned char c =
            static_cast<unsigned char>(node.label[frame.consumed]);
        ++frame.consumed;
        ++frame.depth;
        if (rows.Advance(frame.depth, c) > k) {
          dead = true;
          break;
        }
      }
      if (dead) {
        // The band died inside this node's edge label: the subtree below is
        // cut off, which counts as a prune of this (already visited) node.
        ++stats->trie_nodes_pruned;
        stack.pop_back();
        continue;
      }
      if (!node.terminal_ids.empty() && rows.TerminalWithin(frame.depth)) {
        out->insert(out->end(), node.terminal_ids.begin(),
                    node.terminal_ids.end());
      }
    }

    bool descended = false;
    while (frame.next_child < node.children.size()) {
      const uint32_t child_idx = node.children[frame.next_child++].second;
      const Node& child = nodes_[child_idx];
      if (static_cast<int>(child.min_len) > lq + k ||
          static_cast<int>(child.max_len) < lq - k) {
        ++stats->trie_nodes_pruned;
        continue;
      }
      if (frequency_bounds_ && !FrequencyCompatible(child, qv, k)) {
        ++stats->trie_nodes_pruned;
        continue;  // PETER-style early filtering
      }
      stack.push_back(Frame{child_idx, frame.depth, 0, 0, false});
      ++stats->trie_nodes_visited;
      descended = true;
      break;
    }
    if (!descended) stack.pop_back();
  }

  stats->matches_found += out->size() - out_before;
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status CompressedTrieSearcher::SearchPaperRule(const Query& query,
                                               const SearchContext& ctx,
                                               MatchList* out) const {
  const int k = query.max_distance;
  const int lq = static_cast<int>(query.text.size());

  thread_local internal::FullRows rows;
  rows.Init(query.text, k, nodes_[0].max_len);
  const FrequencyVector qv =
      frequency_bounds_ ? buckets_.Compute(query.text) : FrequencyVector{};

  struct Frame {
    uint32_t node;
    int depth;
    uint32_t consumed;
    size_t next_child;
    bool label_dead;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, 0, 0, 0, false});

  StatsScope stats(ctx.stats);
  ++stats->trie_nodes_visited;  // root
  const size_t out_before = out->size();

  StopChecker stopper(ctx);
  while (!stack.empty()) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    Frame& frame = stack.back();
    const Node& node = nodes_[frame.node];

    if (frame.next_child == 0 && !frame.label_dead) {
      // Consume the edge label under the paper's rule: re-check condition
      // (9) after every character, with this node's own length range.
      const int d_m =
          internal::PaperLengthSlack(lq, node.min_len, node.max_len);
      bool dead = false;
      while (frame.consumed < node.label_len) {
        const unsigned char c =
            static_cast<unsigned char>(node.label[frame.consumed]);
        ++frame.consumed;
        ++frame.depth;
        const int row_min = rows.Advance(frame.depth, c);
        if (rows.PrefixDistance(frame.depth) > k + d_m && row_min > k) {
          dead = true;
          break;
        }
      }
      if (dead) {
        ++stats->trie_nodes_pruned;
        stack.pop_back();
        continue;
      }
      if (!node.terminal_ids.empty() && rows.TerminalWithin(frame.depth)) {
        out->insert(out->end(), node.terminal_ids.begin(),
                    node.terminal_ids.end());
      }
    }

    bool descended = false;
    while (frame.next_child < node.children.size()) {
      const uint32_t child_idx = node.children[frame.next_child++].second;
      if (frequency_bounds_ &&
          !FrequencyCompatible(nodes_[child_idx], qv, k)) {
        ++stats->trie_nodes_pruned;
        continue;
      }
      stack.push_back(Frame{child_idx, frame.depth, 0, 0, false});
      ++stats->trie_nodes_visited;
      descended = true;
      break;
    }
    if (!descended) stack.pop_back();
  }

  stats->matches_found += out->size() - out_before;
  std::sort(out->begin(), out->end());
  return Status::OK();
}

}  // namespace sss
