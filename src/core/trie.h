// TrieSearcher — the paper's "well-known index" (§4.1): a character prefix
// trie whose nodes carry the minimal and maximal length of the strings
// reachable below them (after Rheinländer et al.'s PETER), descended with an
// incremental banded DP row per query.
//
// Branch pruning combines two sound bounds, which together subsume the
// paper's ed(x_0..i, y_0..i) ≤ k + d_m test (eq. 9/10):
//   * row bound    — the minimum DP entry in the band never decreases as the
//     prefix grows, so a band minimum > k kills the whole subtree;
//   * length bound — a subtree whose [min_len, max_len] range lies outside
//     [l_q − k, l_q + k] cannot contain a match (the d_m slack, eq. 10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief Shape statistics of a built trie (for the compression ablation).
struct TrieStats {
  size_t num_nodes = 0;
  size_t num_terminal_nodes = 0;
  size_t max_depth = 0;
  size_t memory_bytes = 0;
};

/// \brief Which branch-pruning rule a trie search descends with.
///
/// kPaperRule is the faithful reproduction of §4.1: full DP rows and the
/// weak ed(x_0..i, y_0..i) ≤ k + d_m test. On workloads with a wide length
/// spread (city names) d_m is large near the root, so the rule barely
/// prunes — which is precisely why the paper's index loses to the scan
/// there. kBandedRows is this library's stronger rule (Ukkonen band +
/// band-minimum cutoff); the pruning ablation bench compares the two.
/// Reproduction benches use kPaperRule; MakeSearcher defaults to
/// kBandedRows. Both are exact (results are identical; only work differs).
enum class TriePruning {
  kPaperRule,
  kBandedRows,
};

/// \brief The uncompressed prefix-trie engine (paper §4.1).
class TrieSearcher final : public Searcher {
 public:
  /// Builds the trie over `snapshot`, pinned for the searcher's lifetime.
  explicit TrieSearcher(SnapshotHandle snapshot,
                        TriePruning pruning = TriePruning::kBandedRows);

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  explicit TrieSearcher(const Dataset& dataset,
                        TriePruning pruning = TriePruning::kBandedRows)
      : TrieSearcher(CollectionSnapshot::Borrow(dataset), pruning) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "trie_index"; }
  size_t memory_bytes() const override { return Stats().memory_bytes; }
  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

  /// \brief Node counts and sizes.
  TrieStats Stats() const;

  TriePruning pruning() const noexcept { return pruning_; }

 private:
  Status SearchBanded(const Query& query, const SearchContext& ctx,
                      MatchList* out) const;
  Status SearchPaperRule(const Query& query, const SearchContext& ctx,
                         MatchList* out) const;

  struct Node {
    // Sorted (label byte → node index) edges.
    std::vector<std::pair<unsigned char, uint32_t>> children;
    // Ids of dataset strings ending exactly here (ascending; duplicates of
    // the same string all appear).
    std::vector<uint32_t> terminal_ids;
    // Length range of every string in this subtree (PETER-style metadata).
    uint16_t min_len = UINT16_MAX;
    uint16_t max_len = 0;
  };

  void Insert(std::string_view s, uint32_t id);
  uint32_t ChildOrNull(const Node& node, unsigned char c) const;

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
  TriePruning pruning_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace sss
