// PartitionIndexSearcher — the pigeonhole-partitioning index family the
// paper's related work describes (Navarro et al.: "splitting the query
// string and later integrating the particular results" to tame the
// exponential k-dependence).
//
// Principle: partition every data string into (k_max + 1) contiguous
// pieces. k ≤ k_max edit operations can corrupt at most k pieces, so at
// least one piece of any true match survives EXACTLY in the query, shifted
// by at most k positions. The index maps (piece bytes, string length,
// piece number) → string ids; a query probes every piece/shift combination,
// unions the candidates, and verifies them with the edit-distance kernel.
//
// Known trade-off (and why this is an honest baseline, not a strictly
// better engine): probe count grows ~O(k²·pieces), so the approach shines
// at small k (city names) and drowns in probes at k = 16 (DNA).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief Configuration of the partition index.
struct PartitionIndexOptions {
  /// Largest threshold the index supports; queries with
  /// max_distance > max_k fall back to a filtered scan. Data strings are
  /// split into max_k + 1 pieces.
  int max_k = 3;
};

/// \brief Pigeonhole partition index engine.
class PartitionIndexSearcher final : public Searcher {
 public:
  /// Builds the piece tables over `snapshot` (pinned for the searcher's
  /// lifetime).
  PartitionIndexSearcher(SnapshotHandle snapshot,
                         PartitionIndexOptions options = {});

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  PartitionIndexSearcher(const Dataset& dataset,
                         PartitionIndexOptions options = {})
      : PartitionIndexSearcher(CollectionSnapshot::Borrow(dataset), options) {
  }

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "partition_index"; }
  size_t memory_bytes() const override;
  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

  int max_k() const noexcept { return options_.max_k; }

  /// \brief Piece boundaries for a string of length `len` split into
  /// `pieces` parts (exposed for tests): piece j spans
  /// [bounds[j], bounds[j+1]).
  static std::vector<size_t> PieceBounds(size_t len, int pieces);

 private:
  struct Entry {
    uint64_t key;  // hash(piece bytes) mixed with (length, piece index)
    uint32_t id;
    bool operator<(const Entry& other) const {
      return key < other.key || (key == other.key && id < other.id);
    }
  };

  static uint64_t MakeKey(std::string_view piece, size_t len, int piece_idx);

  Status ScanFallback(const Query& query, const SearchContext& ctx,
                      MatchList* out) const;

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
  PartitionIndexOptions options_;
  std::vector<Entry> entries_;  // sorted by (key, id)
  // Strings shorter than max_k + 1 (empty pieces make the pigeonhole
  // argument unusable for them); always verified directly.
  std::vector<uint32_t> short_ids_;
};

}  // namespace sss
