# Empty dependencies file for thread_per_query_test.
# This may be replaced when dependencies are built.
