// Near-duplicate detection via similarity self-join.
//
// The motivating application from the paper's introduction: tolerate typos
// and spelling variants in natural-language data. This example plants
// misspelled variants in a city-name collection and uses
// SimilaritySelfJoin to recover every (original, variant) cluster.
//
// Usage: near_dedupe [num_strings] [k]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/join.h"
#include "gen/city_generator.h"
#include "gen/query_generator.h"
#include "util/random.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  const size_t num_strings =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 1;

  // Base collection plus planted near-duplicates.
  sss::gen::CityGeneratorOptions gen_options;
  gen_options.num_strings = num_strings;
  sss::Dataset cities =
      sss::gen::CityNameGenerator(gen_options, /*seed=*/99).Generate();

  sss::Xoshiro256 rng(1234);
  const size_t planted = num_strings / 20;
  for (size_t i = 0; i < planted; ++i) {
    const std::string_view base = cities.View(rng.Uniform(num_strings));
    cities.Add(sss::gen::Perturb(base, /*edits=*/k, /*alphabet=*/"", &rng));
  }
  std::printf("%zu strings (%zu planted near-duplicates), k = %d\n",
              cities.size(), planted, k);

  sss::JoinOptions options;
  options.max_distance = k;
  options.exec = {sss::ExecutionStrategy::kFixedPool, 8};

  sss::Stopwatch timer;
  const std::vector<sss::JoinPair> pairs =
      sss::SimilaritySelfJoin(cities, options);
  std::printf("self-join found %zu pairs in %.3f s\n", pairs.size(),
              timer.ElapsedSeconds());

  // Cluster sizes (union-find over the pair graph).
  std::vector<uint32_t> parent(cities.size());
  for (uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const auto find = [&](uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& [a, b] : pairs) parent[find(a)] = find(b);
  std::map<uint32_t, size_t> cluster_sizes;
  for (uint32_t i = 0; i < parent.size(); ++i) ++cluster_sizes[find(i)];
  std::map<size_t, size_t> histogram;  // cluster size -> count
  for (const auto& [root, size] : cluster_sizes) {
    if (size > 1) ++histogram[size];
  }
  std::printf("duplicate clusters by size:\n");
  for (const auto& [size, count] : histogram) {
    std::printf("  %zu members: %zu cluster(s)\n", size, count);
  }

  // Show a few example pairs.
  std::printf("sample near-duplicate pairs:\n");
  for (size_t i = 0; i < pairs.size() && i < 8; ++i) {
    const auto a = cities.View(pairs[i].first);
    const auto b = cities.View(pairs[i].second);
    std::printf("  \"%.*s\"  ~  \"%.*s\"\n", static_cast<int>(a.size()),
                a.data(), static_cast<int>(b.size()), b.data());
  }
  return 0;
}
