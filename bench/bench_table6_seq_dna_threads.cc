// Table VI: "Management of parallelism in the sequential solution on the
// DNA data set" — fixed-pool thread sweep for the scan on the long-string,
// small-alphabet workload (k up to 16).
//
//   paper (sec):        100q     500q     1000q
//     4 threads       126.17   573.94   1136.40
//     8 threads        88.94   476.01    841.55
//     16 threads       83.73   415.25    848.47   <- paper's pick
//     32 threads       89.53   413.98    827.32
//
// Expected shape: improvement up to ≈ core count, flat afterwards.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scan.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kDnaReads;

const SequentialScanSearcher& Engine() {
  // The paper's step-4 configuration, so rows are comparable with Table
  // VII; the faster library kernels are ablated separately.
  static const auto* engine = [] {
    ScanOptions options;
    options.verify_kernel = VerifyKernel::kPaperStep4;
    return new SequentialScanSearcher(SharedWorkload(kKind).dataset, options);
  }();
  return *engine;
}

void BM_SeqDnaThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const int paper_queries = static_cast<int>(state.range(1));
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, Engine(), w.Batch(paper_queries),
                    {ExecutionStrategy::kFixedPool, threads});
}
BENCHMARK(BM_SeqDnaThreads)
    ->ArgNames({"threads", "queries"})
    ->ArgsProduct({{4, 8, 16, 32}, {100, 500, 1000}})
    ->Unit(benchmark::kSecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN(
    "Table VI: parallelism management, sequential solution, DNA reads",
    sss::gen::WorkloadKind::kDnaReads)
