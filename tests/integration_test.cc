// End-to-end tests mirroring the paper's evaluation pipeline (§5.2): build a
// workload (generator → dataset + query batches), run both competitors under
// every parallelism strategy, verify all engines agree and results survive
// the competition file formats.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "core/scan.h"
#include "core/searcher.h"
#include "gen/workload.h"
#include "io/reader.h"
#include "io/writer.h"
#include "test_util.h"

namespace sss {
namespace {

class WorkloadIntegrationTest
    : public ::testing::TestWithParam<gen::WorkloadKind> {};

TEST_P(WorkloadIntegrationTest, AllEnginesAgreeOnGeneratedWorkload) {
  const gen::Workload w = gen::MakeWorkload(GetParam(), 0.004, 0xFEED);
  std::vector<std::unique_ptr<Searcher>> engines;
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex}) {
    engines.push_back(std::move(MakeSearcher(kind, w.dataset)).ValueOrDie());
  }
  const SearchResults reference = engines[0]->SearchBatch(
      w.queries_1000, {ExecutionStrategy::kSerial, 0});
  for (size_t e = 1; e < engines.size(); ++e) {
    ASSERT_EQ(engines[e]->SearchBatch(w.queries_1000,
                                      {ExecutionStrategy::kSerial, 0}),
              reference)
        << engines[e]->name();
  }
  // Workload guarantee: perturbed queries have non-empty results.
  size_t nonempty = 0;
  for (const MatchList& m : reference) nonempty += m.empty() ? 0 : 1;
  EXPECT_EQ(nonempty, reference.size());
}

TEST_P(WorkloadIntegrationTest, ParallelStrategiesAgreeEndToEnd) {
  const gen::Workload w = gen::MakeWorkload(GetParam(), 0.003, 0xBEEF);
  auto scan = std::move(MakeSearcher(EngineKind::kSequentialScan, w.dataset))
                  .ValueOrDie();
  const SearchResults serial =
      scan->SearchBatch(w.queries_500, {ExecutionStrategy::kSerial, 0});
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kThreadPerQuery, ExecutionStrategy::kFixedPool,
        ExecutionStrategy::kAdaptive}) {
    for (size_t threads : {2u, 8u}) {
      ASSERT_EQ(scan->SearchBatch(w.queries_500, {strategy, threads}),
                serial)
          << "strategy " << static_cast<int>(strategy) << " threads "
          << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadIntegrationTest,
                         ::testing::Values(gen::WorkloadKind::kCityNames,
                                           gen::WorkloadKind::kDnaReads),
                         [](const auto& info) {
                           return gen::ToString(info.param);
                         });

TEST(PipelineIntegrationTest, FileRoundTripPreservesResults) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sss_integration_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  const gen::Workload w =
      gen::MakeWorkload(gen::WorkloadKind::kCityNames, 0.003, 0xABCD);
  const std::string data_path = (dir / "data.txt").string();
  const std::string query_path = (dir / "queries.txt").string();
  ASSERT_TRUE(WriteDatasetFile(data_path, w.dataset).ok());
  ASSERT_TRUE(WriteQueryFile(query_path, w.queries_100).ok());

  auto loaded_data =
      ReadDatasetFile(data_path, "city_names", AlphabetKind::kGeneric);
  ASSERT_TRUE(loaded_data.ok());
  auto loaded_queries = ReadQueryFile(query_path, 0);
  ASSERT_TRUE(loaded_queries.ok());
  // Note: generated city names never contain '\n' or '\r', so line-based
  // round-tripping is lossless.
  ASSERT_EQ(loaded_data->size(), w.dataset.size());

  auto direct = std::move(MakeSearcher(EngineKind::kTrieIndex, w.dataset))
                    .ValueOrDie();
  auto via_files =
      std::move(MakeSearcher(EngineKind::kTrieIndex, *loaded_data))
          .ValueOrDie();
  const SearchResults expected =
      direct->SearchBatch(w.queries_100, {ExecutionStrategy::kSerial, 0});
  EXPECT_EQ(via_files->SearchBatch(*loaded_queries,
                                   {ExecutionStrategy::kSerial, 0}),
            expected);

  const std::string result_path = (dir / "results.txt").string();
  EXPECT_TRUE(WriteResultFile(result_path, expected).ok());
  EXPECT_TRUE(std::filesystem::exists(result_path));

  std::filesystem::remove_all(dir);
}

TEST(PipelineIntegrationTest, ScanVariantsAgreeOnDnaWorkload) {
  // The future-work features (sorting, filters, bit-parallel kernel) all
  // run on the real DNA workload and agree with the plain configuration.
  const gen::Workload w =
      gen::MakeWorkload(gen::WorkloadKind::kDnaReads, 0.0015, 0xD7A);
  SequentialScanSearcher plain(w.dataset, {});
  ScanOptions tuned;
  tuned.sort_by_length = true;
  tuned.frequency_filter = true;
  tuned.qgram_filter_q = 3;
  SequentialScanSearcher fancy(w.dataset, tuned);
  const SearchResults expected =
      plain.SearchBatch(w.queries_100, {ExecutionStrategy::kSerial, 0});
  EXPECT_EQ(fancy.SearchBatch(w.queries_100, {ExecutionStrategy::kSerial, 0}),
            expected);
}

TEST(PipelineIntegrationTest, StatsMatchTableOneAtScale) {
  const gen::Workload city =
      gen::MakeWorkload(gen::WorkloadKind::kCityNames, 0.02, 0x7AB1);
  const DatasetStats cs = city.dataset.ComputeStats();
  EXPECT_EQ(cs.num_strings, 8000u);
  EXPECT_LE(cs.max_length, 64u);
  EXPECT_GT(cs.alphabet_size, 100u);

  const gen::Workload dna =
      gen::MakeWorkload(gen::WorkloadKind::kDnaReads, 0.002, 0x7AB2);
  const DatasetStats ds = dna.dataset.ComputeStats();
  EXPECT_EQ(ds.num_strings, 1500u);
  EXPECT_LE(ds.alphabet_size, 5u);
  EXPECT_NEAR(ds.avg_length, 100.0, 5.0);
}

}  // namespace
}  // namespace sss
