#include "core/join.h"

#include <algorithm>
#include <mutex>

#include "core/compressed_trie.h"
#include "core/edit_distance.h"
#include "core/filters.h"
#include "parallel/thread_pool.h"

namespace sss {

namespace {

// Index-flavoured join: one trie build, then each string queries it; every
// reported id j > i yields the pair (i, j) exactly once.
std::vector<JoinPair> TrieProbeJoin(const Dataset& dataset,
                                    const JoinOptions& options) {
  const CompressedTrieSearcher trie(dataset);
  std::mutex out_mu;
  std::vector<JoinPair> out;
  const auto probe = [&](size_t i) {
    const Query q{std::string(dataset.View(i)), options.max_distance};
    const MatchList matches = trie.Search(q);
    std::vector<JoinPair> local;
    for (uint32_t j : matches) {
      if (j <= i) continue;  // each unordered pair reported once
      if (!options.include_exact_duplicates &&
          dataset.View(i) == dataset.View(j)) {
        continue;
      }
      local.emplace_back(static_cast<uint32_t>(i), j);
    }
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(out_mu);
      out.insert(out.end(), local.begin(), local.end());
    }
  };
  switch (options.exec.strategy) {
    case ExecutionStrategy::kSerial:
    case ExecutionStrategy::kThreadPerQuery:
      for (size_t i = 0; i < dataset.size(); ++i) probe(i);
      break;
    case ExecutionStrategy::kFixedPool:
    case ExecutionStrategy::kAdaptive:
    case ExecutionStrategy::kSharded: {  // a join probe has no query batch
                                         // to plan; pool semantics apply
      ThreadPool pool(options.exec.num_threads);
      pool.DynamicParallelFor(dataset.size(), probe, /*chunk=*/16);
      break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<JoinPair> SimilaritySelfJoin(const Dataset& dataset,
                                         const JoinOptions& options) {
  if (options.algorithm == JoinAlgorithm::kTrieProbe) {
    return TrieProbeJoin(dataset, options);
  }
  const int k = options.max_distance;
  const size_t n = dataset.size();

  // Length-ordered ids: string i is only compared against later-ordered
  // strings whose length is within k — a sliding window in this order.
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return dataset.Length(a) < dataset.Length(b);
                   });

  std::mutex out_mu;
  std::vector<JoinPair> out;

  const auto process = [&](size_t oi) {
    thread_local EditDistanceWorkspace ws;
    const uint32_t a = order[oi];
    const std::string_view sa = dataset.View(a);
    std::vector<JoinPair> local;
    for (size_t oj = oi + 1; oj < n; ++oj) {
      const uint32_t b = order[oj];
      const size_t lb = dataset.Length(b);
      if (lb > sa.size() + static_cast<size_t>(k)) break;  // window end
      if (!WithinDistance(sa, dataset.View(b), k, &ws)) continue;
      if (!options.include_exact_duplicates && sa == dataset.View(b)) {
        continue;
      }
      local.emplace_back(std::min(a, b), std::max(a, b));
    }
    if (!local.empty()) {
      std::lock_guard<std::mutex> lock(out_mu);
      out.insert(out.end(), local.begin(), local.end());
    }
  };

  switch (options.exec.strategy) {
    case ExecutionStrategy::kSerial:
    case ExecutionStrategy::kThreadPerQuery:  // one thread per row is absurd
                                              // for a join; treat as serial
      for (size_t i = 0; i < n; ++i) process(i);
      break;
    case ExecutionStrategy::kFixedPool:
    case ExecutionStrategy::kAdaptive:
    case ExecutionStrategy::kSharded: {  // row windows are already shards;
                                         // dynamic pool scheduling fits
      ThreadPool pool(options.exec.num_threads);
      pool.DynamicParallelFor(n, process, /*chunk=*/16);
      break;
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace sss
