file(REMOVE_RECURSE
  "CMakeFiles/packed_scan_test.dir/core/packed_scan_test.cc.o"
  "CMakeFiles/packed_scan_test.dir/core/packed_scan_test.cc.o.d"
  "packed_scan_test"
  "packed_scan_test.pdb"
  "packed_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
