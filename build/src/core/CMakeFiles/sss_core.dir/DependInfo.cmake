
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/auto_searcher.cc" "src/core/CMakeFiles/sss_core.dir/auto_searcher.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/auto_searcher.cc.o.d"
  "/root/repo/src/core/bktree.cc" "src/core/CMakeFiles/sss_core.dir/bktree.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/bktree.cc.o.d"
  "/root/repo/src/core/cached.cc" "src/core/CMakeFiles/sss_core.dir/cached.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/cached.cc.o.d"
  "/root/repo/src/core/compressed_trie.cc" "src/core/CMakeFiles/sss_core.dir/compressed_trie.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/compressed_trie.cc.o.d"
  "/root/repo/src/core/edit_distance.cc" "src/core/CMakeFiles/sss_core.dir/edit_distance.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/edit_distance.cc.o.d"
  "/root/repo/src/core/filters.cc" "src/core/CMakeFiles/sss_core.dir/filters.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/filters.cc.o.d"
  "/root/repo/src/core/hamming.cc" "src/core/CMakeFiles/sss_core.dir/hamming.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/hamming.cc.o.d"
  "/root/repo/src/core/join.cc" "src/core/CMakeFiles/sss_core.dir/join.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/join.cc.o.d"
  "/root/repo/src/core/kernels.cc" "src/core/CMakeFiles/sss_core.dir/kernels.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/kernels.cc.o.d"
  "/root/repo/src/core/packed_scan.cc" "src/core/CMakeFiles/sss_core.dir/packed_scan.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/packed_scan.cc.o.d"
  "/root/repo/src/core/partition_index.cc" "src/core/CMakeFiles/sss_core.dir/partition_index.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/partition_index.cc.o.d"
  "/root/repo/src/core/qgram_index.cc" "src/core/CMakeFiles/sss_core.dir/qgram_index.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/qgram_index.cc.o.d"
  "/root/repo/src/core/ranked.cc" "src/core/CMakeFiles/sss_core.dir/ranked.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/ranked.cc.o.d"
  "/root/repo/src/core/scan.cc" "src/core/CMakeFiles/sss_core.dir/scan.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/scan.cc.o.d"
  "/root/repo/src/core/searcher.cc" "src/core/CMakeFiles/sss_core.dir/searcher.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/searcher.cc.o.d"
  "/root/repo/src/core/trie.cc" "src/core/CMakeFiles/sss_core.dir/trie.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/trie.cc.o.d"
  "/root/repo/src/core/trie_serialization.cc" "src/core/CMakeFiles/sss_core.dir/trie_serialization.cc.o" "gcc" "src/core/CMakeFiles/sss_core.dir/trie_serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sss_io.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/sss_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
