#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

namespace sss {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ZeroThreadsUsesHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int old_peak = peak.load();
      while (now > old_peak &&
             !peak.compare_exchange_weak(old_peak, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2) << "no overlap observed across 16 x 20ms tasks";
}

TEST(ThreadPoolTest, StaticParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.StaticParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, DynamicParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.DynamicParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); },
                          /*chunk=*/7);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForWithZeroItems) {
  ThreadPool pool(4);
  int calls = 0;
  pool.StaticParallelFor(0, [&](size_t) { ++calls; });
  pool.DynamicParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForWithFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.StaticParallelFor(3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, SequentialBatchesReusePool) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    pool.DynamicParallelFor(50, [&](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    pool.Wait();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SubmitFromWithinTaskWorks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace sss
