// Shared bench harness: workload construction at a configurable fraction of
// the paper's scale, batch timing, and paper-style reporting.
//
// Every bench binary prints its seed and scales up front, so any row can be
// reproduced exactly. Knobs (environment variables):
//
//   SSS_BENCH_SCALE        dataset size as a fraction of Table I
//                          (default: 0.05 for city names, 0.01 for DNA;
//                          1.0 = the paper's 400k / 750k strings)
//   SSS_BENCH_QUERY_SCALE  query-batch size as a fraction of the paper's
//                          100/500/1000 (default: 0.5 city, 0.1 DNA)
//   SSS_BENCH_SEED         generator seed (default: the library default)
//
// Full paper scale: SSS_BENCH_SCALE=1 SSS_BENCH_QUERY_SCALE=1 <bench>.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/searcher.h"
#include "gen/city_generator.h"
#include "gen/dna_generator.h"
#include "gen/query_generator.h"
#include "gen/workload.h"
#include "io/dataset.h"
#include "util/env.h"
#include "util/histogram.h"
#include "util/kernel_dispatch.h"
#include "util/random.h"
#include "util/search_stats.h"
#include "util/stopwatch.h"

namespace sss::bench {

/// \brief Scales and seed resolved from the environment for one workload.
struct BenchConfig {
  gen::WorkloadKind kind;
  double data_scale;
  double query_scale;
  uint64_t seed;

  size_t DatasetSize() const {
    const size_t full =
        kind == gen::WorkloadKind::kCityNames ? 400000 : 750000;
    const auto n = static_cast<size_t>(static_cast<double>(full) * data_scale);
    return n == 0 ? 1 : n;
  }
  size_t BatchSize(int paper_count) const {
    const auto n = static_cast<size_t>(paper_count * query_scale);
    return n == 0 ? 1 : n;
  }
};

inline BenchConfig GetBenchConfig(gen::WorkloadKind kind) {
  const bool city = kind == gen::WorkloadKind::kCityNames;
  BenchConfig cfg;
  cfg.kind = kind;
  cfg.data_scale = GetEnvDouble("SSS_BENCH_SCALE", city ? 0.05 : 0.01);
  cfg.query_scale = GetEnvDouble("SSS_BENCH_QUERY_SCALE", city ? 0.5 : 0.1);
  cfg.seed = static_cast<uint64_t>(
      GetEnvInt("SSS_BENCH_SEED",
                static_cast<int64_t>(Xoshiro256::kDefaultSeed)));
  return cfg;
}

/// \brief A dataset plus the paper's three query batches, built once per
/// process and shared by every benchmark in the binary.
struct BenchWorkload {
  BenchConfig config;
  Dataset dataset;
  QuerySet batch_100;
  QuerySet batch_500;
  QuerySet batch_1000;

  const QuerySet& Batch(int paper_count) const {
    switch (paper_count) {
      case 100:
        return batch_100;
      case 500:
        return batch_500;
      default:
        return batch_1000;
    }
  }
};

inline BenchWorkload BuildBenchWorkload(gen::WorkloadKind kind) {
  const BenchConfig cfg = GetBenchConfig(kind);
  BenchWorkload w;
  w.config = cfg;
  if (kind == gen::WorkloadKind::kCityNames) {
    gen::CityGeneratorOptions options;
    options.num_strings = cfg.DatasetSize();
    w.dataset = gen::CityNameGenerator(options, cfg.seed).Generate();
  } else {
    gen::DnaGeneratorOptions options;
    options.num_reads = cfg.DatasetSize();
    // Keep coverage constant so near-duplicate density matches full scale.
    options.genome_length = std::max<size_t>(
        options.read_length + options.read_length_jitter + 16,
        static_cast<size_t>((1 << 20) * cfg.data_scale));
    w.dataset = gen::DnaReadGenerator(options, cfg.seed).Generate();
  }
  gen::QueryGeneratorOptions q;
  q.thresholds = gen::ThresholdsFor(kind);
  q.num_queries = cfg.BatchSize(100);
  w.batch_100 = gen::MakeQuerySet(w.dataset, q, cfg.seed ^ 0x64);
  q.num_queries = cfg.BatchSize(500);
  w.batch_500 = gen::MakeQuerySet(w.dataset, q, cfg.seed ^ 0x1F4);
  q.num_queries = cfg.BatchSize(1000);
  w.batch_1000 = gen::MakeQuerySet(w.dataset, q, cfg.seed ^ 0x3E8);
  return w;
}

/// \brief Lazily built, process-wide workload (benchmarks registered at
/// static-init time must not build datasets eagerly).
inline const BenchWorkload& SharedWorkload(gen::WorkloadKind kind) {
  // One lazily-built slot per workload. (The previous two-static version
  // initialized BOTH statics on the first call, leaving the other workload's
  // pointer permanently null — any binary touching both workloads crashed on
  // the second kind.)
  static const BenchWorkload* workloads[2] = {nullptr, nullptr};
  const size_t idx = kind == gen::WorkloadKind::kCityNames ? 0 : 1;
  if (workloads[idx] == nullptr) {
    workloads[idx] = new BenchWorkload(BuildBenchWorkload(kind));
  }
  return *workloads[idx];
}

/// \brief Prints the reproducibility banner every bench binary starts with.
inline void PrintBanner(const char* table, const BenchWorkload& w) {
  const DatasetStats stats = w.dataset.ComputeStats();
  std::printf("# %s\n", table);
  std::printf(
      "# workload=%s scale=%.4g query_scale=%.4g seed=%llu\n"
      "# dataset: %zu strings, alphabet %zu, length %zu..%zu (avg %.1f)\n"
      "# batches: %zu / %zu / %zu queries (paper: 100 / 500 / 1000)\n",
      gen::ToString(w.config.kind).c_str(), w.config.data_scale,
      w.config.query_scale,
      static_cast<unsigned long long>(w.config.seed), stats.num_strings,
      stats.alphabet_size, stats.min_length, stats.max_length,
      stats.avg_length, w.batch_100.size(), w.batch_500.size(),
      w.batch_1000.size());
}

/// \brief Times one batch execution and reports matches as a counter.
/// The measured time covers only result computation, as in the paper (§5.2:
/// "the time frame between reading the files have finished and the end of
/// calculating all results").
inline void RunBatchBenchmark(benchmark::State& state,
                              const Searcher& searcher,
                              const QuerySet& queries,
                              const ExecutionOptions& exec,
                              KernelTierChoice kernel_tier,
                              const std::string& engine_label) {
  BenchJson& json = BenchJson::Instance();
  StatsSink sink;
  LatencyHistogram wall_ns;
  SearchContext ctx;
  ctx.kernel_tier = kernel_tier;
  if (json.enabled()) ctx.stats = &sink;

  size_t total_matches = 0;
  uint64_t iterations = 0;
  for (auto _ : state) {
    Stopwatch timer;
    const BatchResult result = searcher.SearchBatch(queries, exec, ctx);
    if (json.enabled()) {
      wall_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
    }
    ++iterations;
    total_matches = 0;
    for (const auto& m : result.matches) total_matches += m.size();
    benchmark::DoNotOptimize(total_matches);
  }
  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["matches"] = static_cast<double>(total_matches);

  if (json.enabled()) {
    int k_max = 0;
    for (const Query& q : queries) {
      if (q.max_distance > k_max) k_max = q.max_distance;
    }
    json.AddRun(engine_label, ToString(exec.strategy), exec.num_threads,
                queries.size(), k_max, total_matches, iterations, wall_ns,
                sink.Collected());
  }
}

/// \brief Scalar-tier batch timing under the engine's own name (the
/// historical default; tier ablations use the overload above).
inline void RunBatchBenchmark(benchmark::State& state,
                              const Searcher& searcher,
                              const QuerySet& queries,
                              const ExecutionOptions& exec) {
  RunBatchBenchmark(state, searcher, queries, exec,
                    KernelTierChoice::kScalar, searcher.name());
}

/// \brief Records the bench name and workload header for --json output.
inline void SetBenchJsonContext(const char* table, const BenchWorkload& w) {
  BenchJson::Instance().SetContext(table, gen::ToString(w.config.kind),
                                   w.config.data_scale, w.config.query_scale,
                                   w.config.seed, w.dataset.size());
}

/// \brief Standard main body: banner, then google-benchmark. --json[=path]
/// additionally writes a BENCH_<binary>.json document (see bench_json.h).
#define SSS_BENCH_MAIN(table_name, workload_kind)                           \
  int main(int argc, char** argv) {                                        \
    ::sss::bench::BenchJson::Instance().StripFlag(&argc, argv);             \
    const ::sss::bench::BenchWorkload& w =                                  \
        ::sss::bench::SharedWorkload(workload_kind);                        \
    ::sss::bench::PrintBanner(table_name, w);                               \
    ::sss::bench::SetBenchJsonContext(table_name, w);                       \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    ::benchmark::RunSpecifiedBenchmarks();                                  \
    ::benchmark::Shutdown();                                                \
    if (!::sss::bench::BenchJson::Instance().Write()) return 1;             \
    return 0;                                                               \
  }

}  // namespace sss::bench
