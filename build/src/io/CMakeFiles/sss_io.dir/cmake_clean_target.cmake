file(REMOVE_RECURSE
  "libsss_io.a"
)
