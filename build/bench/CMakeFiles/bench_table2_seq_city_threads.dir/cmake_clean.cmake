file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_seq_city_threads.dir/bench_table2_seq_city_threads.cc.o"
  "CMakeFiles/bench_table2_seq_city_threads.dir/bench_table2_seq_city_threads.cc.o.d"
  "bench_table2_seq_city_threads"
  "bench_table2_seq_city_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_seq_city_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
