file(REMOVE_RECURSE
  "CMakeFiles/city_search.dir/city_search.cpp.o"
  "CMakeFiles/city_search.dir/city_search.cpp.o.d"
  "city_search"
  "city_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
