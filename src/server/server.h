// The sss serving layer: a TCP front-end that answers protocol.h request
// frames using the in-process engines. Design points, in the order they
// matter for correctness:
//
//   * Thread-per-connection: one accept-loop thread plus one handler thread
//     per live connection, each processing its connection's requests
//     sequentially. Parallelism across connections is the concurrency model
//     (the loadgen and the CI smoke drive 32–64 connections); within a
//     request the engines' own executors still apply.
//   * Bounded admission: at most `max_inflight` searches execute at once.
//     A request arriving above the watermark is answered immediately with
//     kUnavailable — shed, not queued — so queue depth is bounded by the
//     kernel's accept backlog and overload degrades to cheap rejections
//     instead of unbounded memory growth and deadline blowouts.
//   * Deadlines: a request's deadline_ms (clamped by the server-side
//     max_deadline_ms cap) becomes a SearchContext Deadline, so the PR 2
//     cancellation machinery terminates over-deadline work inside the
//     engine hot loops; the response then carries kCancelled. A
//     server-wide CancellationToken rides in the same context so
//     CancelInflight() (hard stop) can cut every running search at once.
//   * Graceful drain: Stop() first wakes the accept loop (no new
//     connections), then half-closes every connection's read side — blocked
//     handlers see EOF and exit, handlers mid-search finish and still write
//     their response — and finally joins every thread. In-flight requests
//     always complete.
//
// Failure handling mirrors the protocol split: kInvalid/kCorruption frames
// get a best-effort error response and the connection closes (framing is
// unrecoverable on a byte stream); transport errors just close. The server
// never aborts on peer input.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <mutex>

#include "core/engine_host.h"
#include "core/searcher.h"
#include "server/protocol.h"
#include "util/cancellation.h"
#include "util/net.h"
#include "util/search_stats.h"
#include "util/status.h"

namespace sss::server {

struct ServerOptions {
  /// Numeric IPv4 address to bind; loopback by default.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  uint16_t port = 0;
  int backlog = 128;
  /// Admission watermark: searches allowed in flight before shedding.
  size_t max_inflight = 64;
  /// Server-side cap on per-request deadlines (0 = uncapped). A request
  /// asking for more gets the cap; a request asking for none gets the cap.
  uint32_t max_deadline_ms = 0;
  ProtocolLimits limits;
  /// Optional sink: engine SearchStats flow through each request's
  /// SearchContext, server_* counters are recorded per request. Borrowed;
  /// must outlive the server.
  StatsSink* stats = nullptr;
};

/// \brief Monotonic counters, readable while the server runs. Relaxed
/// ordering everywhere: these count, they do not synchronize.
struct ServerCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_shed{0};       // kUnavailable (admission)
  std::atomic<uint64_t> requests_cancelled{0};  // deadline / hard stop
  std::atomic<uint64_t> requests_rejected{0};   // kInvalid / engine errors
  std::atomic<uint64_t> protocol_errors{0};     // malformed frames
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> reloads_ok{0};          // published generations
  std::atomic<uint64_t> reloads_failed{0};      // failed/rejected reloads
};

class Server {
 public:
  explicit Server(ServerOptions options) : options_(std::move(options)) {}
  ~Server() { Stop(); }

  SSS_DISALLOW_COPY_AND_ASSIGN(Server);

  /// \brief Registers `searcher` (borrowed) under `engine_id` —
  /// conventionally uint8_t(EngineKind). The first registered engine also
  /// answers kAnyEngine requests.
  ///
  /// Lifetime rules, enforced and assumed in that order:
  ///   * must be called before the first Start() — handler threads read the
  ///     engine table without locks, so it is immutable once the server has
  ///     ever run (registration after Start() returns kInvalid, even once
  ///     the server is stopped again);
  ///   * `searcher` — and the collection snapshot it pins via
  ///     SearchedSnapshot() — must outlive the server. Statically registered
  ///     engines never change generation; for a collection that can be
  ///     republished at runtime, register an EngineHost instead, whose
  ///     Acquire() pins a snapshot per request.
  Status RegisterEngine(uint8_t engine_id, const Searcher* searcher);

  /// \brief Registers `host` (borrowed; must outlive the server) as the
  /// source of engines. Each request pins the host's current EngineSet for
  /// its whole search, so a concurrent Reload never invalidates in-flight
  /// work — old generations drain, new requests see the new set. A host
  /// takes precedence over statically registered engines and answers both
  /// engine dispatch and kAdmin frames. Same before-first-Start() rule as
  /// RegisterEngine.
  Status RegisterHost(EngineHost* host);

  /// \brief Publishes a fresh generation via the registered host: from
  /// `path` when non-empty, else by re-reading the host's current source.
  /// kInvalid without a host; kUnavailable while another reload runs. Safe
  /// while serving — this is the SIGHUP / kAdmin entry point.
  Status Reload(const std::string& path = "");

  /// \brief Binds, listens, and starts the accept loop.
  Status Start();

  /// \brief The bound port (valid after Start; useful with port 0).
  uint16_t port() const noexcept { return port_; }

  /// \brief Graceful drain: stop accepting, let in-flight requests finish
  /// and respond, join every thread. Idempotent; safe if Start failed.
  void Stop();

  /// \brief Hard stop signal for in-flight searches: cancels the server
  /// token, so running engine calls return kCancelled at their next poll.
  /// Does not tear down connections — pair with Stop().
  void CancelInflight() noexcept { cancel_.Cancel(); }

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  const ServerCounters& counters() const noexcept { return counters_; }

  /// \brief Searches currently executing (post-admission). Bounded by
  /// max_inflight; exposed for the overload tests.
  size_t inflight() const noexcept {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  struct Connection {
    net::Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Reads one request; *clean_close distinguishes EOF-at-frame-boundary
  /// (normal disconnect) from every other failure.
  Status ReadRequest(int fd, Request* request, bool* clean_close);
  Status WriteResponse(int fd, const Response& response);
  /// Admission + engine dispatch + stats for one decoded request.
  Response HandleRequest(const Request& request);
  /// kAdmin dispatch: reload / get-generation. No admission slot — admin
  /// ops must succeed exactly when the server sheds search load.
  Response HandleAdmin(const Request& request);
  /// Joins and frees connections whose handler has finished.
  void ReapFinishedLocked();

  ServerOptions options_;
  const Searcher* engines_[256] = {};
  const Searcher* default_engine_ = nullptr;
  EngineHost* host_ = nullptr;

  net::Socket listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  /// Latches true at the first Start() and never resets: the engine table
  /// and host pointer are read lock-free by handler threads, so they are
  /// frozen from that point on (even across Stop()/Start() cycles).
  std::atomic<bool> started_{false};

  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<size_t> inflight_{0};
  CancellationToken cancel_;
  ServerCounters counters_;
};

}  // namespace sss::server
