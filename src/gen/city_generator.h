// Synthetic "city names" dataset generator.
//
// Stand-in for the EDBT/ICDT 2013 competition's geographical-names file
// (Table I: 400,000 strings, alphabet ≈255 symbols, length ≤64). A
// character-level order-2 Markov model is trained on an embedded corpus of
// real city names (city_corpus.h) and sampled to produce realistic
// natural-language strings. Two post-processing passes widen the alphabet
// toward the paper's ≈255 symbols:
//   * accent substitution: ASCII vowels/consonants are replaced by Latin-1
//     accented forms with a configurable probability (Sao Paulo→São Paulo);
//   * transcription noise: rare injection of upper Latin-1/supplement bytes,
//     simulating the competition data's multi-script entries.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/dataset.h"
#include "util/random.h"

namespace sss::gen {

/// \brief Tuning knobs for CityNameGenerator.
struct CityGeneratorOptions {
  /// Number of strings to generate.
  size_t num_strings = 400000;
  /// Hard maximum length (Table I: max 64); longer samples are resampled.
  size_t max_length = 64;
  /// Minimum length; shorter samples are resampled.
  size_t min_length = 2;
  /// Per-character probability of substituting an accented Latin-1 variant.
  double accent_prob = 0.04;
  /// Per-string probability of containing transcription-noise bytes.
  double exotic_string_prob = 0.05;
  /// Per-character probability of a noise byte inside an exotic string.
  double exotic_char_prob = 0.15;
  /// Markov model order (1..3). 2 reproduces name-like digram statistics.
  int order = 2;
};

/// \brief Generates city-name-like strings from a Markov model.
///
/// Deterministic for a given (options, seed) pair. Not thread-safe; create
/// one generator per thread.
class CityNameGenerator {
 public:
  explicit CityNameGenerator(CityGeneratorOptions options = {},
                             uint64_t seed = Xoshiro256::kDefaultSeed);

  /// \brief Generates one name.
  std::string Next();

  /// \brief Generates options.num_strings names into a Dataset tagged
  /// AlphabetKind::kGeneric.
  Dataset Generate();

  const CityGeneratorOptions& options() const noexcept { return options_; }

 private:
  // Sampling table for one Markov context: the possible next bytes (0 =
  // end-of-string) and their cumulative weights.
  struct Transition {
    std::vector<unsigned char> symbols;
    std::vector<double> cumulative;
  };

  void TrainModel();
  std::string SampleRaw();
  void ApplyAccents(std::string* s);
  void ApplyTranscriptionNoise(std::string* s);

  CityGeneratorOptions options_;
  Xoshiro256 rng_;
  // Context key: low `order` bytes of recent history, 0-padded at start.
  std::unordered_map<uint32_t, Transition> model_;
};

}  // namespace sss::gen
