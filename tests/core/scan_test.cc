#include "core/scan.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

Dataset SmallCities() {
  Dataset d("cities", AlphabetKind::kGeneric);
  d.Add("Magdeburg");
  d.Add("Marburg");
  d.Add("Hamburg");
  d.Add("Berlin");
  d.Add("Bern");
  return d;
}

TEST(ScanTest, DefaultOptionsFindMatches) {
  Dataset d = SmallCities();
  SequentialScanSearcher scan(d, {});
  EXPECT_EQ(scan.Search({"Magdeburg", 0}), (MatchList{0}));
  EXPECT_EQ(scan.Search({"Magdeburg", 3}), (MatchList{0, 1}));
  EXPECT_TRUE(scan.Search({"Leipzig", 1}).empty());
  EXPECT_EQ(scan.name(), "sequential_scan");
}

TEST(ScanTest, EveryLadderStepAgrees) {
  Xoshiro256 rng(0x5CA);
  Dataset d = RandomDataset(&rng, "abcdefgh -", 150, 1, 25);
  std::vector<std::unique_ptr<SequentialScanSearcher>> engines;
  for (LadderStep step :
       {LadderStep::kBase, LadderStep::kFastEditDistance,
        LadderStep::kReferences, LadderStep::kSimpleTypes}) {
    ScanOptions options;
    options.step = step;
    engines.push_back(std::make_unique<SequentialScanSearcher>(d, options));
  }
  for (int t = 0; t < 30; ++t) {
    const Query q{RandomString(&rng, "abcdefgh -", 1, 25),
                  static_cast<int>(rng.Uniform(4))};
    const MatchList expected = BruteForceSearch(d, q);
    for (const auto& engine : engines) {
      ASSERT_EQ(engine->Search(q), expected)
          << "step " << static_cast<int>(engine->options().step) << " q='"
          << q.text << "' k=" << q.max_distance;
    }
  }
}

// Every optional feature combination must return identical results.
struct ScanConfig {
  const char* label;
  VerifyKernel kernel;
  bool sort_by_length;
  bool frequency_filter;
  int qgram_q;
};

class ScanConfigTest : public ::testing::TestWithParam<ScanConfig> {};

TEST_P(ScanConfigTest, OptionsNeverChangeResults) {
  const ScanConfig& cfg = GetParam();
  ScanOptions options;
  options.verify_kernel = cfg.kernel;
  options.sort_by_length = cfg.sort_by_length;
  options.frequency_filter = cfg.frequency_filter;
  options.qgram_filter_q = cfg.qgram_q;

  Xoshiro256 rng(0x5CB);
  Dataset d = RandomDataset(&rng, "ACGNT", 200, 20, 60, AlphabetKind::kDna);
  SequentialScanSearcher scan(d, options);
  for (int t = 0; t < 25; ++t) {
    std::string text(d.View(rng.Uniform(d.size())));
    for (int e = 0; e < static_cast<int>(rng.Uniform(6)); ++e) {
      text[rng.Uniform(text.size())] = "ACGNT"[rng.Uniform(5)];
    }
    for (int k : {0, 4, 8, 16}) {
      const Query q{text, k};
      ASSERT_EQ(scan.Search(q), BruteForceSearch(d, q))
          << cfg.label << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ScanConfigTest,
    ::testing::Values(
        ScanConfig{"paper_step4", VerifyKernel::kPaperStep4, false, false, 0},
        ScanConfig{"banded_only", VerifyKernel::kBanded, false, false, 0},
        ScanConfig{"myers", VerifyKernel::kMyersAuto, false, false, 0},
        ScanConfig{"sorted", VerifyKernel::kMyersAuto, true, false, 0},
        ScanConfig{"freq_filter", VerifyKernel::kMyersAuto, false, true, 0},
        ScanConfig{"qgram2", VerifyKernel::kMyersAuto, false, false, 2},
        ScanConfig{"qgram3_sorted", VerifyKernel::kMyersAuto, true, false, 3},
        ScanConfig{"everything", VerifyKernel::kMyersAuto, true, true, 2},
        ScanConfig{"paper_everything", VerifyKernel::kPaperStep4, true, true,
                   2}),
    [](const ::testing::TestParamInfo<ScanConfig>& info) {
      return info.param.label;
    });

TEST(ScanTest, SortByLengthHandlesExtremeQueryLengths) {
  Dataset d = SmallCities();
  ScanOptions options;
  options.sort_by_length = true;
  SequentialScanSearcher scan(d, options);
  // Much longer than any dataset string.
  EXPECT_TRUE(scan.Search({std::string(100, 'x'), 3}).empty());
  // Empty query: matches nothing at k=3 (shortest string has length 4).
  EXPECT_TRUE(scan.Search({"", 3}).empty());
  EXPECT_EQ(scan.Search({"", 4}), (MatchList{4}));  // "Bern"
}

TEST(ScanTest, MemoryBytesGrowsWithFeatures) {
  Dataset d = SmallCities();
  SequentialScanSearcher bare(d, {});
  ScanOptions options;
  options.sort_by_length = true;
  options.frequency_filter = true;
  options.qgram_filter_q = 2;
  SequentialScanSearcher loaded(d, options);
  EXPECT_GT(loaded.memory_bytes(), bare.memory_bytes());
}

TEST(ScanTest, BatchStrategiesAgree) {
  Xoshiro256 rng(0x5CC);
  Dataset d = RandomDataset(&rng, "abcdef", 200, 2, 20);
  SequentialScanSearcher scan(d, {});
  QuerySet queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back(
        {RandomString(&rng, "abcdef", 2, 20), static_cast<int>(i % 4)});
  }
  const SearchResults serial =
      scan.SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  EXPECT_EQ(scan.SearchBatch(queries,
                             {ExecutionStrategy::kThreadPerQuery, 0}),
            serial);
  EXPECT_EQ(scan.SearchBatch(queries, {ExecutionStrategy::kFixedPool, 4}),
            serial);
  EXPECT_EQ(scan.SearchBatch(queries, {ExecutionStrategy::kAdaptive, 4}),
            serial);
}

TEST(ScanTest, HighBytesInDataAreHandled) {
  Dataset d("latin1", AlphabetKind::kGeneric);
  d.Add("S\xE3o Paulo");   // São Paulo in Latin-1
  d.Add("Sao Paulo");
  d.Add("M\xFCnchen");     // München
  SequentialScanSearcher scan(d, {});
  EXPECT_EQ(scan.Search({"Sao Paulo", 1}), (MatchList{0, 1}));
  EXPECT_EQ(scan.Search({"M\xFCnchen", 0}), (MatchList{2}));
}

}  // namespace
}  // namespace sss
