#include "server/server.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace sss::server {

Status Server::RegisterEngine(uint8_t engine_id, const Searcher* searcher) {
  if (searcher == nullptr) {
    return Status::Invalid("RegisterEngine: null searcher");
  }
  if (started_.load(std::memory_order_acquire)) {
    return Status::Invalid("RegisterEngine: server already started");
  }
  engines_[engine_id] = searcher;
  if (default_engine_ == nullptr) default_engine_ = searcher;
  return Status::OK();
}

Status Server::RegisterHost(EngineHost* host) {
  if (host == nullptr) return Status::Invalid("RegisterHost: null host");
  if (started_.load(std::memory_order_acquire)) {
    return Status::Invalid("RegisterHost: server already started");
  }
  host_ = host;
  return Status::OK();
}

Status Server::Reload(const std::string& path) {
  if (host_ == nullptr) {
    return Status::Invalid("Reload: no EngineHost registered");
  }
  // The server-wide token rides along so Stop()+CancelInflight() can also
  // abandon a build in progress.
  SearchContext ctx;
  ctx.cancellation = &cancel_;
  const Status st =
      path.empty() ? host_->Reload(ctx) : host_->LoadFile(path, ctx);
  if (st.ok()) {
    counters_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

Status Server::Start() {
  if (running()) return Status::Invalid("Start: already running");
  if (default_engine_ == nullptr && host_ == nullptr) {
    return Status::Invalid("Start: no engine registered");
  }
  started_.store(true, std::memory_order_release);
  SSS_ASSIGN_OR_RETURN(
      listener_,
      net::ListenTcp(options_.host, options_.port, options_.backlog));
  SSS_ASSIGN_OR_RETURN(port_, net::LocalPort(listener_.fd()));
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);
  // Wake the blocked accept(); close the listener only after the accept
  // thread is gone so no new connection can slip past the drain.
  (void)net::ShutdownBoth(listener_.fd());
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Half-close every connection: handlers blocked waiting for the next
  // request see EOF and exit; a handler mid-search keeps its write side and
  // still delivers the in-flight response.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) {
      (void)net::ShutdownRead(conn->socket.fd());
    }
  }
  // Threads remove nothing themselves; join them all, then drop them.
  std::vector<std::unique_ptr<Connection>> drained;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    drained.swap(connections_);
  }
  for (const auto& conn : drained) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void Server::ReapFinishedLocked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  for (;;) {
    SSS_FAILPOINT("server:accept");
    auto accepted = net::Accept(listener_.fd());
    if (!accepted.ok()) {
      if (draining_.load(std::memory_order_acquire) ||
          accepted.status().IsUnavailable()) {
        return;
      }
      // Transient accept failure (e.g. EMFILE under fd pressure): keep
      // serving existing connections and try again.
      SSS_LOG(Warning) << "accept failed: " << accepted.status().ToString();
      continue;
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*accepted);
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(conn_mu_);
    // Bound the registry: every finished handler is joined here, so a
    // long-lived server does not accumulate dead thread records.
    ReapFinishedLocked();
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

Status Server::ReadRequest(int fd, Request* request, bool* clean_close) {
  *clean_close = false;
  SSS_FAILPOINT_STATUS("server:read");
  uint8_t header[kRequestHeaderBytes];
  SSS_ASSIGN_OR_RETURN(size_t got,
                       net::ReadFull(fd, header, sizeof(header)));
  if (got == 0) {
    *clean_close = true;
    return Status::OK();
  }
  counters_.bytes_in.fetch_add(got, std::memory_order_relaxed);
  if (got < sizeof(header)) {
    return Status::Corruption("disconnect mid-header (" +
                              std::to_string(got) + " bytes)");
  }
  uint32_t query_len = 0;
  SSS_RETURN_NOT_OK(
      DecodeRequestHeader(header, options_.limits, request, &query_len));
  request->query.resize(query_len);
  if (query_len > 0) {
    SSS_ASSIGN_OR_RETURN(got,
                         net::ReadFull(fd, request->query.data(), query_len));
    counters_.bytes_in.fetch_add(got, std::memory_order_relaxed);
    if (got < query_len) {
      return Status::Corruption("disconnect mid-query (" +
                                std::to_string(got) + " of " +
                                std::to_string(query_len) + " bytes)");
    }
  }
  return Status::OK();
}

Status Server::WriteResponse(int fd, const Response& response) {
  SSS_FAILPOINT_STATUS("server:write");
  std::string frame;
  EncodeResponse(response, &frame);
  SSS_RETURN_NOT_OK(net::WriteFull(fd, frame.data(), frame.size()));
  counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  return Status::OK();
}

Response Server::HandleAdmin(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  if (host_ == nullptr) {
    response.code = StatusCode::kInvalid;
    response.message = "admin frame: no EngineHost registered";
    counters_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  switch (request.k) {
    case kAdminOpReload: {
      const Status st = Reload(request.query);
      if (!st.ok()) {
        response.code = st.code();
        response.message = st.message();
      }
      break;
    }
    case kAdminOpGetGeneration:
      break;  // generation is filled below for every admin response
    default:
      // Unknown ops are rejected by the decoder; belt and braces here.
      response.code = StatusCode::kInvalid;
      response.message = "unknown admin op " + std::to_string(request.k);
      break;
  }
  response.generation = host_->generation();
  if (response.code == StatusCode::kOk) {
    counters_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

Response Server::HandleRequest(const Request& request) {
  // Admin frames bypass admission: a reload must get through exactly when
  // the server is shedding search load, and ops touch no engine slot.
  if (request.type == FrameType::kAdmin) return HandleAdmin(request);

  Response response;
  response.request_id = request.request_id;

  SearchStats delta;
  delta.server_bytes_in =
      kRequestHeaderBytes + static_cast<uint64_t>(request.query.size());

  // Admission control: claim a slot; over the watermark, release and shed.
  // fetch_add-then-check keeps the claim race-free without a lock.
  const size_t claimed = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (claimed >= options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
    response.code = StatusCode::kUnavailable;
    response.message = "server overloaded (" +
                       std::to_string(options_.max_inflight) +
                       " requests in flight)";
    delta.server_requests_shed = 1;
    if (options_.stats != nullptr) options_.stats->Record(delta);
    return response;
  }

  // Pin the host's current generation for the whole request: `pinned` keeps
  // the snapshot and every engine built over it alive even if a reload
  // publishes a successor mid-search. Static engines (no host) have no
  // generation to pin.
  EngineSetHandle pinned;
  const Searcher* engine = nullptr;
  if (host_ != nullptr) {
    pinned = host_->Acquire();
    if (pinned == nullptr) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      counters_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
      response.code = StatusCode::kUnavailable;
      response.message = "no engine generation published yet";
      if (options_.stats != nullptr) options_.stats->Record(delta);
      return response;
    }
    response.generation = pinned->generation;
    engine = request.engine == kAnyEngine ? pinned->default_engine
                                          : pinned->Find(request.engine);
  } else {
    engine = request.engine == kAnyEngine ? default_engine_
                                          : engines_[request.engine];
  }
  if (engine == nullptr) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    counters_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    response.code = StatusCode::kInvalid;
    response.message =
        "no engine registered under id " + std::to_string(request.engine);
    if (options_.stats != nullptr) options_.stats->Record(delta);
    return response;
  }
  if (pinned == nullptr) {
    // Static engines still serve a versioned collection; report it so
    // clients can tell generations apart however the engines were wired.
    const SnapshotHandle snapshot = engine->SearchedSnapshot();
    if (snapshot != nullptr) response.generation = snapshot->version();
  }

  SearchContext ctx;
  ctx.cancellation = &cancel_;
  ctx.stats = options_.stats;
  uint32_t deadline_ms = request.deadline_ms;
  if (options_.max_deadline_ms > 0) {
    deadline_ms = deadline_ms == 0
                      ? options_.max_deadline_ms
                      : std::min(deadline_ms, options_.max_deadline_ms);
  }
  if (deadline_ms > 0) ctx.deadline = Deadline::AfterMillis(deadline_ms);

  Query query;
  query.text = request.query;
  query.max_distance = static_cast<int>(request.k);

  MatchList matches;
  const Status st = engine->Search(query, ctx, &matches);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);

  if (st.ok()) {
    counters_.requests_ok.fetch_add(1, std::memory_order_relaxed);
    delta.server_requests_accepted = 1;
    response.matches = std::move(matches);
  } else {
    response.code = st.code();
    response.message = st.message();
    if (st.IsCancelled()) {
      counters_.requests_cancelled.fetch_add(1, std::memory_order_relaxed);
      delta.server_requests_cancelled = 1;
    } else {
      counters_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    }
  }
  delta.server_bytes_out =
      kResponseHeaderBytes +
      (response.code == StatusCode::kOk ? 4 * response.matches.size()
                                        : response.message.size());
  if (options_.stats != nullptr) options_.stats->Record(delta);
  return response;
}

void Server::ServeConnection(Connection* conn) {
  const int fd = conn->socket.fd();
  for (;;) {
    Request request;
    bool clean_close = false;
    const Status read_st = ReadRequest(fd, &request, &clean_close);
    if (clean_close) break;
    if (!read_st.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      // Malformed frame: answer with an error frame when the stream is
      // still writable, then close — framing can't be resynchronized on a
      // byte stream. Transport errors skip the courtesy reply.
      if (read_st.IsInvalid() || read_st.IsCorruption()) {
        Response err;
        err.request_id = request.request_id;
        err.code = read_st.code();
        err.message = read_st.message();
        (void)WriteResponse(fd, err);
      }
      break;
    }
    const Response response = HandleRequest(request);
    if (!WriteResponse(fd, response).ok()) break;
  }
  // Shutdown, not close: Stop() may concurrently read this socket's fd to
  // half-close it, so the descriptor must stay valid until the Connection
  // record is reaped (accept loop) or drained (Stop), where the destructor
  // closes it after the handler thread is joined.
  (void)net::ShutdownBoth(fd);
  conn->done.store(true, std::memory_order_release);
}

}  // namespace sss::server
