file(REMOVE_RECURSE
  "libsss_parallel.a"
)
