#include "io/binary_format.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "util/random.h"

namespace sss {
namespace {

class BinaryFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sss_bin_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string ReadRaw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }
  void WriteRaw(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  std::filesystem::path dir_;
};

Dataset SampleDataset() {
  Dataset d("sample_set", AlphabetKind::kDna);
  d.Add("ACGT");
  d.Add("");
  d.Add("GATTACA");
  d.Add("ACGT");  // duplicate
  return d;
}

TEST_F(BinaryFormatTest, RoundTripPreservesEverything) {
  const Dataset original = SampleDataset();
  ASSERT_TRUE(WriteBinaryDataset(Path("d.bin"), original).ok());
  auto loaded = ReadBinaryDataset(Path("d.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "sample_set");
  EXPECT_EQ(loaded->alphabet(), AlphabetKind::kDna);
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->View(i), original.View(i)) << "id " << i;
  }
}

TEST_F(BinaryFormatTest, EmptyDatasetRoundTrips) {
  Dataset empty("nothing", AlphabetKind::kGeneric);
  ASSERT_TRUE(WriteBinaryDataset(Path("e.bin"), empty).ok());
  auto loaded = ReadBinaryDataset(Path("e.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->name(), "nothing");
}

TEST_F(BinaryFormatTest, LargeRandomRoundTrip) {
  Xoshiro256 rng(0xB14);
  Dataset original("big", AlphabetKind::kGeneric);
  for (int i = 0; i < 5000; ++i) {
    std::string s;
    const size_t len = rng.Uniform(60);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng.Uniform(256)));
    }
    original.Add(s);  // arbitrary bytes, including '\n' and '\0'
  }
  ASSERT_TRUE(WriteBinaryDataset(Path("big.bin"), original).ok());
  auto loaded = ReadBinaryDataset(Path("big.bin"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded->View(i), original.View(i)) << "id " << i;
  }
}

TEST_F(BinaryFormatTest, MissingFileIsIOError) {
  auto loaded = ReadBinaryDataset(Path("missing.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(BinaryFormatTest, BadMagicRejected) {
  WriteRaw(Path("junk.bin"), "definitely not a dataset file ......");
  auto loaded = ReadBinaryDataset(Path("junk.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(BinaryFormatTest, TooSmallFileRejected) {
  WriteRaw(Path("tiny.bin"), "SSS");
  auto loaded = ReadBinaryDataset(Path("tiny.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(BinaryFormatTest, TruncationDetected) {
  ASSERT_TRUE(WriteBinaryDataset(Path("t.bin"), SampleDataset()).ok());
  const std::string full = ReadRaw(Path("t.bin"));
  // Chop bytes off at several points; every truncation must be rejected.
  for (size_t keep :
       {full.size() - 1, full.size() - 9, full.size() / 2, size_t{12}}) {
    WriteRaw(Path("t.bin"), full.substr(0, keep));
    auto loaded = ReadBinaryDataset(Path("t.bin"));
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " of " << full.size();
    EXPECT_TRUE(loaded.status().IsCorruption());
  }
}

TEST_F(BinaryFormatTest, TruncationMidHeaderDetected) {
  ASSERT_TRUE(WriteBinaryDataset(Path("th.bin"), SampleDataset()).ok());
  const std::string full = ReadRaw(Path("th.bin"));
  // Header = magic(8) + alphabet(4) + name_len(4) + name(10) + count(8).
  // Every cut inside it must fail as corruption, never parse.
  for (size_t keep = 0; keep < 8 + 4 + 4 + 10 + 8; ++keep) {
    WriteRaw(Path("th.bin"), full.substr(0, keep));
    auto loaded = ReadBinaryDataset(Path("th.bin"));
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " header bytes";
    EXPECT_TRUE(loaded.status().IsCorruption()) << "kept " << keep;
  }
}

TEST_F(BinaryFormatTest, TruncationMidRecordDetected) {
  ASSERT_TRUE(WriteBinaryDataset(Path("tr.bin"), SampleDataset()).ok());
  const std::string full = ReadRaw(Path("tr.bin"));
  const size_t header_end = 8 + 4 + 4 + 10 + 8;
  ASSERT_GT(full.size(), header_end + 8);
  // Cut inside the offsets/string-bytes region (past the header, before the
  // trailing checksum).
  for (size_t keep = header_end + 1; keep < full.size() - 8; keep += 3) {
    WriteRaw(Path("tr.bin"), full.substr(0, keep));
    auto loaded = ReadBinaryDataset(Path("tr.bin"));
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " of " << full.size();
    EXPECT_TRUE(loaded.status().IsCorruption()) << "kept " << keep;
  }
}

TEST_F(BinaryFormatTest, BitFlipCorruptionDetected) {
  ASSERT_TRUE(WriteBinaryDataset(Path("c.bin"), SampleDataset()).ok());
  const std::string full = ReadRaw(Path("c.bin"));
  // Flip one bit at assorted positions; either a structural check or the
  // checksum must catch every one.
  Xoshiro256 rng(0xB15);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupted = full;
    const size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] = static_cast<char>(
        corrupted[pos] ^ static_cast<char>(1 << rng.Uniform(8)));
    WriteRaw(Path("c.bin"), corrupted);
    auto loaded = ReadBinaryDataset(Path("c.bin"));
    ASSERT_FALSE(loaded.ok())
        << "bit flip at byte " << pos << " went undetected";
  }
}

TEST_F(BinaryFormatTest, ChecksumTamperDetected) {
  ASSERT_TRUE(WriteBinaryDataset(Path("k.bin"), SampleDataset()).ok());
  std::string full = ReadRaw(Path("k.bin"));
  full.back() = static_cast<char>(full.back() ^ 0x01);  // corrupt checksum
  WriteRaw(Path("k.bin"), full);
  auto loaded = ReadBinaryDataset(Path("k.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(BinaryFormatTest, ChecksumRegionBitFlipsDetected) {
  ASSERT_TRUE(WriteBinaryDataset(Path("kb.bin"), SampleDataset()).ok());
  const std::string full = ReadRaw(Path("kb.bin"));
  ASSERT_GE(full.size(), 8u);
  // Flip every bit of the trailing 8-byte checksum; each must be caught as
  // a checksum mismatch (the payload itself is intact).
  for (size_t bit = 0; bit < 64; ++bit) {
    std::string corrupted = full;
    const size_t pos = corrupted.size() - 8 + bit / 8;
    corrupted[pos] =
        static_cast<char>(corrupted[pos] ^ static_cast<char>(1 << (bit % 8)));
    WriteRaw(Path("kb.bin"), corrupted);
    auto loaded = ReadBinaryDataset(Path("kb.bin"));
    ASSERT_FALSE(loaded.ok()) << "checksum bit " << bit << " undetected";
    EXPECT_TRUE(loaded.status().IsCorruption()) << "bit " << bit;
  }
}

TEST_F(BinaryFormatTest, HugeCountFieldRejectedSafely) {
  ASSERT_TRUE(WriteBinaryDataset(Path("h.bin"), SampleDataset()).ok());
  std::string full = ReadRaw(Path("h.bin"));
  // The count lives after magic(8) + alphabet(4) + name_len(4) + name(10).
  const size_t count_pos = 8 + 4 + 4 + std::string("sample_set").size();
  for (size_t b = 0; b < 8; ++b) full[count_pos + b] = '\xFF';
  WriteRaw(Path("h.bin"), full);
  auto loaded = ReadBinaryDataset(Path("h.bin"));  // must not crash/OOM
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

}  // namespace
}  // namespace sss
