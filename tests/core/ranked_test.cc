#include "core/ranked.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::RandomDataset;
using sss::testing::RandomString;
using sss::testing::ReferenceEditDistance;

Dataset Cities() {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Magdeburg");   // 0
  d.Add("Marburg");     // 1  ed(Magdeburg, Marburg) = 3
  d.Add("Maqdeburg");   // 2  ed = 1
  d.Add("Magdeburg");   // 3  ed = 0
  d.Add("Hamburg");     // 4  ed = 4
  return d;
}

TEST(RankedSearchTest, OrdersByDistanceThenId) {
  Dataset d = Cities();
  const auto matches = RankedSearch(d, "Magdeburg", 4);
  ASSERT_EQ(matches.size(), 5u);
  EXPECT_EQ(matches[0], (RankedMatch{0, 0}));
  EXPECT_EQ(matches[1], (RankedMatch{3, 0}));
  EXPECT_EQ(matches[2], (RankedMatch{2, 1}));
  EXPECT_EQ(matches[3], (RankedMatch{1, 3}));
  EXPECT_EQ(matches[4], (RankedMatch{4, 4}));
}

TEST(RankedSearchTest, RespectsThreshold) {
  Dataset d = Cities();
  const auto matches = RankedSearch(d, "Magdeburg", 1);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[2].distance, 1);
}

TEST(RankedSearchTest, CapsResults) {
  Dataset d = Cities();
  const auto matches = RankedSearch(d, "Magdeburg", 4, /*max_results=*/2);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].id, 0u);
  EXPECT_EQ(matches[1].id, 3u);
}

TEST(RankedSearchTest, EmptyDatasetAndNoMatches) {
  Dataset empty("e", AlphabetKind::kGeneric);
  EXPECT_TRUE(RankedSearch(empty, "x", 3).empty());
  Dataset d = Cities();
  EXPECT_TRUE(RankedSearch(d, "zzzzzzzzz", 2).empty());
}

TEST(RankedSearchTest, DistancesAreExactAcrossThresholds) {
  Xoshiro256 rng(0x4A4);
  Dataset d = RandomDataset(&rng, "abcdef", 150, 1, 20);
  for (int t = 0; t < 20; ++t) {
    const std::string q = RandomString(&rng, "abcdef", 1, 20);
    for (int k : {0, 2, 5, 9}) {
      for (const RankedMatch& m : RankedSearch(d, q, k)) {
        ASSERT_EQ(m.distance,
                  ReferenceEditDistance(q, d.View(m.id)))
            << "q='" << q << "' id=" << m.id;
        ASSERT_LE(m.distance, k);
      }
    }
  }
}

TEST(NearestNeighborsTest, FindsExactMatchFirst) {
  Dataset d = Cities();
  CompressedTrieSearcher index(d);
  const auto nn = NearestNeighbors(index, d, "Magdeburg", 1, 10);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0], (RankedMatch{0, 0}));
}

TEST(NearestNeighborsTest, ReturnsNClosest) {
  Dataset d = Cities();
  CompressedTrieSearcher index(d);
  const auto nn = NearestNeighbors(index, d, "Magdeburg", 3, 10);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0], (RankedMatch{0, 0}));
  EXPECT_EQ(nn[1], (RankedMatch{3, 0}));
  EXPECT_EQ(nn[2], (RankedMatch{2, 1}));
}

TEST(NearestNeighborsTest, RadiusCapLimitsResults) {
  Dataset d = Cities();
  CompressedTrieSearcher index(d);
  // Query far from everything, radius too small to reach any string.
  const auto nn = NearestNeighbors(index, d, "zzz", 5, /*max_radius=*/1);
  EXPECT_TRUE(nn.empty());
}

TEST(NearestNeighborsTest, ZeroNAndEmptyDataset) {
  Dataset d = Cities();
  CompressedTrieSearcher index(d);
  EXPECT_TRUE(NearestNeighbors(index, d, "Magdeburg", 0, 10).empty());

  Dataset empty("e", AlphabetKind::kGeneric);
  CompressedTrieSearcher empty_index(empty);
  EXPECT_TRUE(NearestNeighbors(empty_index, empty, "x", 3, 10).empty());
}

TEST(NearestNeighborsTest, MatchesBruteForceRanking) {
  Xoshiro256 rng(0x4A5);
  Dataset d = RandomDataset(&rng, "abcd", 120, 1, 12);
  CompressedTrieSearcher index(d);
  for (int t = 0; t < 15; ++t) {
    const std::string q = RandomString(&rng, "abcd", 1, 12);
    const size_t n = 1 + rng.Uniform(5);
    const auto nn = NearestNeighbors(index, d, q, n, 24);

    // Brute-force ranking.
    std::vector<RankedMatch> all;
    for (uint32_t id = 0; id < d.size(); ++id) {
      all.push_back(
          RankedMatch{id, ReferenceEditDistance(q, d.View(id))});
    }
    std::sort(all.begin(), all.end());
    all.resize(std::min(n, all.size()));
    ASSERT_EQ(nn, all) << "q='" << q << "' n=" << n;
  }
}

}  // namespace
}  // namespace sss
