#include "server/client.h"

namespace sss::server {

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const ProtocolLimits& limits) {
  Client client;
  SSS_ASSIGN_OR_RETURN(client.socket_, net::ConnectTcp(host, port));
  client.limits_ = limits;
  return client;
}

Status Client::Call(Request request, Response* out) {
  if (!connected()) return Status::Invalid("Call: not connected");
  if (request.request_id == 0) request.request_id = next_id_++;

  std::string frame;
  EncodeRequest(request, &frame);
  SSS_RETURN_NOT_OK(net::WriteFull(socket_.fd(), frame.data(), frame.size()));
  bytes_sent_ += frame.size();

  uint8_t header[kResponseHeaderBytes];
  SSS_ASSIGN_OR_RETURN(size_t got,
                       net::ReadFull(socket_.fd(), header, sizeof(header)));
  bytes_received_ += got;
  if (got < sizeof(header)) {
    return Status::IOError("server closed the connection mid-response (" +
                           std::to_string(got) + " header bytes)");
  }
  uint32_t payload_len = 0;
  SSS_RETURN_NOT_OK(DecodeResponseHeader(header, limits_, out, &payload_len));
  std::string payload(payload_len, '\0');
  if (payload_len > 0) {
    SSS_ASSIGN_OR_RETURN(got, net::ReadFull(socket_.fd(), payload.data(),
                                            payload_len));
    bytes_received_ += got;
    if (got < payload_len) {
      return Status::IOError("server closed the connection mid-payload (" +
                             std::to_string(got) + " of " +
                             std::to_string(payload_len) + " bytes)");
    }
  }
  SSS_RETURN_NOT_OK(DecodeResponsePayload(payload, out));
  if (out->request_id != request.request_id) {
    return Status::Corruption(
        "response id " + std::to_string(out->request_id) +
        " does not match request id " + std::to_string(request.request_id));
  }
  return Status::OK();
}

Status Client::Search(std::string_view query, uint32_t k,
                      uint32_t deadline_ms, Response* out) {
  Request request;
  request.engine = kAnyEngine;
  request.k = k;
  request.deadline_ms = deadline_ms;
  request.query.assign(query);
  return Call(std::move(request), out);
}

Status Client::Reload(std::string_view path, Response* out) {
  Request request;
  request.type = FrameType::kAdmin;
  request.k = kAdminOpReload;
  request.query.assign(path);
  return Call(std::move(request), out);
}

Status Client::GetGeneration(Response* out) {
  Request request;
  request.type = FrameType::kAdmin;
  request.k = kAdminOpGetGeneration;
  return Call(std::move(request), out);
}

}  // namespace sss::server
