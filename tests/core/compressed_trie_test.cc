#include "core/compressed_trie.h"

#include <gtest/gtest.h>

#include "core/trie.h"
#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

TEST(CompressedTrieTest, PaperFigureFourNodeCount) {
  // Fig. 4: "Berlin", "Bern", "Ulm" compress to root + "Ber" + "lin" + "n"
  // + "Ulm" = 5 nodes (the paper counts ~half of the 11 uncompressed ones).
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Berlin");
  d.Add("Bern");
  d.Add("Ulm");
  CompressedTrieSearcher radix(d);
  EXPECT_EQ(radix.Stats().num_nodes, 5u);

  TrieSearcher basic(d);
  EXPECT_LT(radix.Stats().num_nodes, basic.Stats().num_nodes / 2 + 1);
}

TEST(CompressedTrieTest, FindsExactAndApproximate) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Berlin");
  d.Add("Bern");
  d.Add("Ulm");
  CompressedTrieSearcher radix(d);
  EXPECT_EQ(radix.Search({"Berlin", 0}), (MatchList{0}));
  EXPECT_EQ(radix.Search({"Berlin", 3}), (MatchList{0, 1}));
  EXPECT_EQ(radix.Search({"Alm", 1}), (MatchList{2}));
  EXPECT_TRUE(radix.Search({"Hamburg", 1}).empty());
}

TEST(CompressedTrieTest, HandlesDuplicates) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("dup");
  d.Add("dup");
  d.Add("du");
  CompressedTrieSearcher radix(d);
  EXPECT_EQ(radix.Search({"dup", 0}), (MatchList{0, 1}));
  EXPECT_EQ(radix.Search({"dup", 1}), (MatchList{0, 1, 2}));
}

TEST(CompressedTrieTest, SplitsEdgesCorrectly) {
  // Insert order forces splits: long string first, then prefixes.
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("abcdef");
  d.Add("abc");
  d.Add("abq");
  d.Add("ab");
  CompressedTrieSearcher radix(d);
  EXPECT_EQ(radix.Search({"abcdef", 0}), (MatchList{0}));
  EXPECT_EQ(radix.Search({"abc", 0}), (MatchList{1}));
  EXPECT_EQ(radix.Search({"abq", 0}), (MatchList{2}));
  EXPECT_EQ(radix.Search({"ab", 0}), (MatchList{3}));
  EXPECT_EQ(radix.Search({"ab", 1}), (MatchList{1, 2, 3}));
}

TEST(CompressedTrieTest, EmptyStringAndEmptyQuery) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("");
  d.Add("a");
  d.Add("ab");
  CompressedTrieSearcher radix(d);
  EXPECT_EQ(radix.Search({"", 0}), (MatchList{0}));
  EXPECT_EQ(radix.Search({"", 1}), (MatchList{0, 1}));
}

TEST(CompressedTrieTest, EmptyDataset) {
  Dataset d("empty", AlphabetKind::kGeneric);
  CompressedTrieSearcher radix(d);
  EXPECT_TRUE(radix.Search({"x", 3}).empty());
}

struct RadixSweep {
  const char* label;
  const char* alphabet;
  size_t n;
  size_t min_len;
  size_t max_len;
  std::vector<int> ks;
};

class CompressedTrieEquivalenceTest
    : public ::testing::TestWithParam<RadixSweep> {};

TEST_P(CompressedTrieEquivalenceTest, MatchesBruteForceAndBasicTrie) {
  const RadixSweep& cfg = GetParam();
  Xoshiro256 rng(0xC0DE);
  Dataset d = RandomDataset(&rng, cfg.alphabet, cfg.n, cfg.min_len,
                            cfg.max_len);
  CompressedTrieSearcher radix(d);
  TrieSearcher basic(d);
  for (int t = 0; t < 40; ++t) {
    for (int k : cfg.ks) {
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        if (!text.empty() && k > 0) text[rng.Uniform(text.size())] = 'z';
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      const MatchList expected = BruteForceSearch(d, q);
      ASSERT_EQ(radix.Search(q), expected)
          << cfg.label << " q='" << q.text << "' k=" << k;
      ASSERT_EQ(basic.Search(q), expected)
          << cfg.label << " (basic) q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, CompressedTrieEquivalenceTest,
    ::testing::Values(
        RadixSweep{"city_like", "abcdefghij -", 200, 2, 30, {0, 1, 2, 3}},
        RadixSweep{"dna_like", "ACGNT", 150, 40, 60, {0, 4, 8, 16}},
        RadixSweep{"prefix_heavy", "ab", 250, 0, 14, {0, 1, 2}},
        RadixSweep{"single_char", "a", 100, 0, 20, {0, 1, 3}}),
    [](const ::testing::TestParamInfo<RadixSweep>& info) {
      return info.param.label;
    });

class CompressedPaperRuleTest : public ::testing::TestWithParam<RadixSweep> {
};

TEST_P(CompressedPaperRuleTest, PaperRuleMatchesBruteForce) {
  const RadixSweep& cfg = GetParam();
  Xoshiro256 rng(0x9A9F);
  Dataset d = RandomDataset(&rng, cfg.alphabet, cfg.n, cfg.min_len,
                            cfg.max_len);
  CompressedTrieSearcher paper(d, TriePruning::kPaperRule);
  for (int t = 0; t < 30; ++t) {
    for (int k : cfg.ks) {
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        if (!text.empty() && k > 0) text[rng.Uniform(text.size())] = 'z';
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      ASSERT_EQ(paper.Search(q), BruteForceSearch(d, q))
          << cfg.label << " (paper rule) q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, CompressedPaperRuleTest,
    ::testing::Values(
        RadixSweep{"city_like", "abcdefghij -", 150, 2, 30, {0, 1, 2, 3}},
        RadixSweep{"dna_like", "ACGNT", 100, 40, 60, {0, 4, 8, 16}},
        RadixSweep{"length_spread", "abc", 150, 0, 40, {0, 1, 2, 3}}),
    [](const ::testing::TestParamInfo<RadixSweep>& info) {
      return info.param.label;
    });

// PETER-style frequency bounds are a pure filter: results must be
// identical with them on, under both pruning rules.
class FrequencyBoundsTest : public ::testing::TestWithParam<RadixSweep> {};

TEST_P(FrequencyBoundsTest, BoundsNeverChangeResults) {
  const RadixSweep& cfg = GetParam();
  Xoshiro256 rng(0x9AA0);
  Dataset d = RandomDataset(&rng, cfg.alphabet, cfg.n, cfg.min_len,
                            cfg.max_len);
  CompressedTrieSearcher plain(d, TriePruning::kBandedRows, false);
  CompressedTrieSearcher banded_fb(d, TriePruning::kBandedRows, true);
  CompressedTrieSearcher paper_fb(d, TriePruning::kPaperRule, true);
  for (int t = 0; t < 25; ++t) {
    for (int k : cfg.ks) {
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        if (!text.empty() && k > 0) text[rng.Uniform(text.size())] = 'z';
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      const MatchList expected = plain.Search(q);
      ASSERT_EQ(banded_fb.Search(q), expected)
          << cfg.label << " (banded+fb) q='" << q.text << "' k=" << k;
      ASSERT_EQ(paper_fb.Search(q), expected)
          << cfg.label << " (paper+fb) q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, FrequencyBoundsTest,
    ::testing::Values(
        RadixSweep{"dna_like", "ACGNT", 150, 40, 60, {0, 4, 8, 16}},
        RadixSweep{"vowel_rich", "aeioubcd", 200, 2, 25, {0, 1, 2, 3}},
        RadixSweep{"no_tracked_symbols", "xyz", 150, 1, 15, {0, 1, 2}}),
    [](const ::testing::TestParamInfo<RadixSweep>& info) {
      return info.param.label;
    });

TEST(FrequencyBoundsTest, DirectedDnaCase) {
  Dataset d("dna", AlphabetKind::kDna);
  d.Add("AAAAAAAAAA");  // 0
  d.Add("TTTTTTTTTT");  // 1
  d.Add("AAAAATTTTT");  // 2
  CompressedTrieSearcher trie(d, TriePruning::kBandedRows, true);
  EXPECT_EQ(trie.Search({"AAAAAAAAAA", 2}), (MatchList{0}));
  EXPECT_EQ(trie.Search({"AAAAATTTTT", 0}), (MatchList{2}));
  EXPECT_EQ(trie.Search({"AAAAATTTTA", 1}), (MatchList{2}));
}

TEST(CompressedTrieTest, CompressionReducesNodesOnRealisticData) {
  Xoshiro256 rng(0xC0DF);
  Dataset d = RandomDataset(&rng, "abcd", 2000, 4, 20);
  TrieSearcher basic(d);
  CompressedTrieSearcher radix(d);
  EXPECT_LT(radix.Stats().num_nodes, basic.Stats().num_nodes)
      << "compression must reduce node count";
}

TEST(CompressedTrieTest, SearchIsThreadSafe) {
  Xoshiro256 rng(0xC0E0);
  Dataset d = RandomDataset(&rng, "abcdef", 300, 2, 15);
  CompressedTrieSearcher radix(d);
  QuerySet queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(
        {RandomString(&rng, "abcdef", 2, 15), static_cast<int>(i % 4)});
  }
  SearchResults serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    serial[i] = radix.Search(queries[i]);
  }
  const SearchResults parallel = radix.SearchBatch(
      queries, {ExecutionStrategy::kFixedPool, /*num_threads=*/8});
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace sss
