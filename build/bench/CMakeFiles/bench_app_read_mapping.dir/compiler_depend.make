# Empty compiler generated dependencies file for bench_app_read_mapping.
# This may be replaced when dependencies are built.
