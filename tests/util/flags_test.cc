#include "util/flags.h"

#include <gtest/gtest.h>

namespace sss {
namespace {

FlagSet MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto parsed =
      FlagSet::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).ValueOrDie();
}

TEST(FlagsTest, EmptyCommandLine) {
  FlagSet flags = MustParse({});
  EXPECT_FALSE(flags.Has("anything"));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagsTest, SpaceSeparatedValue) {
  FlagSet flags = MustParse({"--name", "value"});
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name", ""), "value");
}

TEST(FlagsTest, EqualsSeparatedValue) {
  FlagSet flags = MustParse({"--key=some=thing"});
  EXPECT_EQ(flags.GetString("key", ""), "some=thing");
}

TEST(FlagsTest, BooleanSwitch) {
  FlagSet flags = MustParse({"--verbose", "--count", "3"});
  EXPECT_TRUE(flags.Has("verbose"));
  auto b = flags.GetBool("verbose", false);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*b);
  EXPECT_FALSE(*flags.GetBool("missing", false));
}

TEST(FlagsTest, BooleanExplicitValues) {
  FlagSet flags = MustParse({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(*flags.GetBool("a", false));
  EXPECT_FALSE(*flags.GetBool("b", true));
  EXPECT_TRUE(*flags.GetBool("c", false));
  EXPECT_FALSE(*flags.GetBool("d", true));
}

TEST(FlagsTest, BooleanGarbageIsInvalid) {
  FlagSet flags = MustParse({"--flag=maybe"});
  EXPECT_FALSE(flags.GetBool("flag", false).ok());
}

TEST(FlagsTest, IntegerValues) {
  FlagSet flags = MustParse({"--n", "42", "--neg=-7"});
  EXPECT_EQ(*flags.GetInt("n", 0), 42);
  EXPECT_EQ(*flags.GetInt("neg", 0), -7);
  EXPECT_EQ(*flags.GetInt("missing", 99), 99);
}

TEST(FlagsTest, IntegerGarbageIsInvalid) {
  FlagSet flags = MustParse({"--n", "4x2"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
}

TEST(FlagsTest, DanglingValueFlagIsInvalidWhenQueriedAsInt) {
  FlagSet flags = MustParse({"--n"});
  EXPECT_FALSE(flags.GetInt("n", 0).ok());
}

TEST(FlagsTest, DoubleValues) {
  FlagSet flags = MustParse({"--scale=0.25"});
  EXPECT_DOUBLE_EQ(*flags.GetDouble("scale", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("missing", 1.5), 1.5);
}

TEST(FlagsTest, PositionalArguments) {
  FlagSet flags = MustParse({"first", "--k", "3", "second"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(*flags.GetInt("k", 0), 3);
}

TEST(FlagsTest, NegativeNumberConsumedAsValue) {
  // "-7" does not start with "--", so it is a value, not a flag.
  FlagSet flags = MustParse({"--offset", "-7"});
  EXPECT_EQ(*flags.GetInt("offset", 0), -7);
}

TEST(FlagsTest, LastOccurrenceWins) {
  FlagSet flags = MustParse({"--k=1", "--k=2"});
  EXPECT_EQ(*flags.GetInt("k", 0), 2);
}

TEST(FlagsTest, UnreadFlagsReported) {
  FlagSet flags = MustParse({"--used=1", "--typo=2"});
  (void)flags.GetInt("used", 0);
  EXPECT_EQ(flags.UnreadFlags(), (std::vector<std::string>{"typo"}));
}

}  // namespace
}  // namespace sss
