#include "parallel/thread_per_query.h"

#include <thread>
#include <vector>

#include "util/failpoint.h"

namespace sss {

size_t RunThreadPerItem(size_t n, const std::function<void(size_t)>& fn,
                        size_t max_live, const SearchContext* stop) {
  if (max_live == 0) max_live = n;
  std::vector<std::thread> live;
  live.reserve(max_live);
  size_t next = 0;
  size_t spawned = 0;
  while (next < n) {
    if (stop != nullptr && stop->StopRequested()) break;
    while (live.size() < max_live && next < n) {
      if (stop != nullptr && stop->StopRequested()) break;
      const size_t i = next++;
      live.emplace_back([&fn, i] {
        SSS_FAILPOINT("thread_per_query:task");
        fn(i);
      });
      ++spawned;
    }
    // Strategy 1 joins in spawn order — deliberately naive, as in the paper.
    for (std::thread& t : live) t.join();
    live.clear();
  }
  return spawned;
}

}  // namespace sss
