# Empty dependencies file for city_generator_test.
# This may be replaced when dependencies are built.
