file(REMOVE_RECURSE
  "CMakeFiles/sss_align.dir/read_mapper.cc.o"
  "CMakeFiles/sss_align.dir/read_mapper.cc.o.d"
  "CMakeFiles/sss_align.dir/suffix_array.cc.o"
  "CMakeFiles/sss_align.dir/suffix_array.cc.o.d"
  "libsss_align.a"
  "libsss_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sss_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
