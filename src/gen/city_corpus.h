// Seed corpus for the city-name generator: a few hundred real city names
// from many countries, used to train the character-level Markov model that
// synthesizes the 400,000-string "city names" dataset (our stand-in for the
// EDBT/ICDT 2013 competition file, which is no longer distributed).
#pragma once

#include <cstddef>

namespace sss::gen {

/// \brief Pointer to the seed corpus (ASCII, one name per entry).
extern const char* const kCityCorpus[];

/// \brief Number of entries in kCityCorpus.
extern const size_t kCityCorpusSize;

}  // namespace sss::gen
