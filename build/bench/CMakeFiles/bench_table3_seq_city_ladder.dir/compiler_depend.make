# Empty compiler generated dependencies file for bench_table3_seq_city_ladder.
# This may be replaced when dependencies are built.
