#include "core/searcher.h"

#include "core/bktree.h"
#include "core/compressed_trie.h"
#include "core/packed_scan.h"
#include "core/partition_index.h"
#include "core/qgram_index.h"
#include "core/scan.h"
#include "core/trie.h"
#include "parallel/adaptive_pool.h"
#include "parallel/thread_per_query.h"
#include "parallel/thread_pool.h"

namespace sss {

SearchResults Searcher::SearchBatch(const QuerySet& queries,
                                    const ExecutionOptions& exec) const {
  return RunBatch(queries, exec);
}

SearchResults Searcher::RunBatch(const QuerySet& queries,
                                 const ExecutionOptions& exec) const {
  SearchResults results(queries.size());
  const auto run_one = [&](size_t i) {
    results[i] = Search(queries[i]);
  };

  switch (exec.strategy) {
    case ExecutionStrategy::kSerial: {
      for (size_t i = 0; i < queries.size(); ++i) run_one(i);
      break;
    }
    case ExecutionStrategy::kThreadPerQuery: {
      RunThreadPerItem(queries.size(), run_one);
      break;
    }
    case ExecutionStrategy::kFixedPool: {
      ThreadPool pool(exec.num_threads);
      // Dynamic scheduling: query costs are highly skewed (they depend on k
      // and result size), so static partitioning would leave cores idle.
      pool.DynamicParallelFor(queries.size(), run_one);
      break;
    }
    case ExecutionStrategy::kAdaptive: {
      AdaptivePoolOptions options;
      options.max_threads = exec.num_threads;
      AdaptivePool pool(options);
      pool.ParallelFor(queries.size(), run_one, /*chunk=*/1);
      break;
    }
  }
  return results;
}

std::string ToString(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSequentialScan:
      return "sequential_scan";
    case EngineKind::kTrieIndex:
      return "trie_index";
    case EngineKind::kCompressedTrieIndex:
      return "compressed_trie_index";
    case EngineKind::kQGramIndex:
      return "qgram_index";
    case EngineKind::kPartitionIndex:
      return "partition_index";
    case EngineKind::kPackedDnaScan:
      return "packed_dna_scan";
    case EngineKind::kBKTree:
      return "bk_tree";
  }
  return "?";
}

Result<std::unique_ptr<Searcher>> MakeSearcher(EngineKind kind,
                                               const Dataset& dataset) {
  switch (kind) {
    case EngineKind::kSequentialScan:
      return std::unique_ptr<Searcher>(
          new SequentialScanSearcher(dataset, ScanOptions{}));
    case EngineKind::kTrieIndex: {
      auto trie = std::make_unique<TrieSearcher>(dataset);
      return std::unique_ptr<Searcher>(std::move(trie));
    }
    case EngineKind::kCompressedTrieIndex: {
      auto trie = std::make_unique<CompressedTrieSearcher>(dataset);
      return std::unique_ptr<Searcher>(std::move(trie));
    }
    case EngineKind::kQGramIndex: {
      QGramIndexOptions options;
      // Longer grams pay off on long low-entropy strings.
      options.q = dataset.alphabet() == AlphabetKind::kDna ? 6 : 3;
      return std::unique_ptr<Searcher>(
          new QGramIndexSearcher(dataset, options));
    }
    case EngineKind::kPartitionIndex: {
      PartitionIndexOptions options;
      // Cover the workload's Table-I threshold ladder.
      options.max_k = dataset.alphabet() == AlphabetKind::kDna ? 16 : 3;
      return std::unique_ptr<Searcher>(
          new PartitionIndexSearcher(dataset, options));
    }
    case EngineKind::kPackedDnaScan: {
      SSS_ASSIGN_OR_RETURN(std::unique_ptr<PackedDnaScanSearcher> packed,
                           PackedDnaScanSearcher::Make(dataset));
      return std::unique_ptr<Searcher>(std::move(packed));
    }
    case EngineKind::kBKTree:
      return std::unique_ptr<Searcher>(new BKTreeSearcher(dataset));
  }
  return Status::Invalid("unknown engine kind");
}

}  // namespace sss
