// StringPool: the collection representation used by the fast engines
// (paper §3.4 "simple data types"). All string bytes live in one contiguous
// buffer; per-string metadata is an offset array. A sequential scan then
// walks memory strictly forward (hardware-prefetch friendly) and performs
// zero per-string allocations, in contrast to a std::vector<std::string>.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/macros.h"

namespace sss {

/// \brief An append-only pool of immutable strings with contiguous storage.
///
/// Strings are addressed by dense ids in insertion order. Access is
/// zero-copy via std::string_view into the pool's buffer; views are
/// invalidated only by destruction of the pool (appends never reallocate the
/// id space a view was taken from — the byte buffer may grow, so take views
/// after loading is complete, which is how all engines use it).
class StringPool {
 public:
  StringPool() { offsets_.push_back(0); }

  SSS_DEFAULT_MOVE_AND_ASSIGN(StringPool);
  SSS_DISALLOW_COPY_AND_ASSIGN(StringPool);

  /// \brief Appends a string and returns its id.
  uint32_t Add(std::string_view s) {
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    offsets_.push_back(static_cast<uint64_t>(bytes_.size()));
    if (s.size() > max_length_) max_length_ = s.size();
    if (s.size() < min_length_) min_length_ = s.size();
    return static_cast<uint32_t>(offsets_.size() - 2);
  }

  /// \brief Pre-reserves space for `count` strings totalling `bytes` bytes.
  void Reserve(size_t count, size_t bytes) {
    offsets_.reserve(count + 1);
    bytes_.reserve(bytes);
  }

  /// \brief Number of strings in the pool.
  size_t size() const noexcept { return offsets_.size() - 1; }
  bool empty() const noexcept { return size() == 0; }

  /// \brief Zero-copy view of string `id`. Precondition: id < size().
  std::string_view View(size_t id) const noexcept {
    SSS_DCHECK(id < size());
    const uint64_t begin = offsets_[id];
    return std::string_view(bytes_.data() + begin,
                            offsets_[id + 1] - begin);
  }
  std::string_view operator[](size_t id) const noexcept { return View(id); }

  /// \brief Length of string `id` without materializing a view.
  size_t Length(size_t id) const noexcept {
    SSS_DCHECK(id < size());
    return static_cast<size_t>(offsets_[id + 1] - offsets_[id]);
  }

  /// \brief Longest / shortest string length in the pool (0 when empty).
  size_t max_length() const noexcept { return empty() ? 0 : max_length_; }
  size_t min_length() const noexcept { return empty() ? 0 : min_length_; }

  /// \brief Total string bytes stored.
  size_t total_bytes() const noexcept { return bytes_.size(); }

  /// \brief Raw byte buffer (for bit-packing and serialization).
  const char* data() const noexcept { return bytes_.data(); }

  /// \brief Materializes all strings (test/diagnostic convenience).
  std::vector<std::string> ToVector() const {
    std::vector<std::string> out;
    out.reserve(size());
    for (size_t i = 0; i < size(); ++i) out.emplace_back(View(i));
    return out;
  }

 private:
  std::vector<char> bytes_;
  std::vector<uint64_t> offsets_;  // size() + 1 entries; offsets_[0] == 0
  size_t max_length_ = 0;
  size_t min_length_ = SIZE_MAX;
};

}  // namespace sss
