// BatchPlanner — the planning half of ExecutionStrategy::kSharded.
//
// The paper's execution-management chapters (§3.5/§3.6) argue that how a
// batch is driven decides who wins, yet every strategy there still fires
// Search(queries[i]) independently. This planner takes the next step the
// related join literature motivates (PASS-JOIN's partition dispatch,
// EmbedJoin's grouping by length/threshold): an incoming QuerySet is sorted
// into *groups* of queries sharing a threshold and a length bucket, and the
// paper's length filter (eq. 5) is applied once per group — the group's
// candidate-length window [min_len − k, max_len + k] is intersected with the
// dataset's observed length range, and a group whose window is empty is
// marked `skip`: its queries are answered with empty results without
// touching a single string.
//
// The planner owns an Arena that is rewound (not freed) between Plan()
// calls, so steady-state planning performs no heap allocation: group index
// arrays are bump-allocated, and the sort buffer is a reused vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "io/dataset.h"
#include "util/arena.h"

namespace sss {

/// \brief Default width of the half-open length buckets [i·w, (i+1)·w) used
/// both for the planner's query grouping and for the lane pool's candidate
/// bucketing (core/lane_pool) — keeping the two aligned means a planned
/// group's candidate window typically touches O(1) candidate buckets.
inline constexpr size_t kDefaultLengthBucketWidth = 8;

/// \brief Planner tuning knobs.
struct BatchPlannerOptions {
  /// Queries whose lengths land in the same bucket of this width (and share
  /// a threshold) are planned as one group. Wider buckets mean fewer, larger
  /// groups (better amortization, looser candidate windows).
  size_t length_bucket_width = kDefaultLengthBucketWidth;
};

/// \brief A planned group: queries sharing a threshold and a length bucket.
struct QueryGroup {
  /// Indices into the planned QuerySet, ascending. Owned by the planner's
  /// arena; valid until the next Plan() call.
  const uint32_t* queries = nullptr;
  uint32_t num_queries = 0;

  int max_distance = 0;          ///< The group's common threshold k.
  uint32_t min_query_len = 0;    ///< Shortest query text in the group.
  uint32_t max_query_len = 0;    ///< Longest query text in the group.

  /// The group-level length filter (eq. 5 applied once per group): only
  /// dataset strings with length in [candidate_min_len, candidate_max_len]
  /// can match any query of this group.
  uint32_t candidate_min_len = 0;
  uint32_t candidate_max_len = 0;

  /// True when the candidate window misses the dataset's length range
  /// entirely — every query in the group has an empty answer.
  bool skip = false;

  const uint32_t* begin() const noexcept { return queries; }
  const uint32_t* end() const noexcept { return queries + num_queries; }
};

/// \brief The plan for one batch: groups covering every query exactly once.
struct BatchPlan {
  std::vector<QueryGroup> groups;
  size_t num_queries = 0;
  /// Queries answered at plan time (members of skipped groups).
  size_t num_skipped_queries = 0;
};

/// \brief Groups a QuerySet for sharded execution. Reusable: each Plan()
/// call rewinds the internal arena and overwrites the previous plan.
class BatchPlanner {
 public:
  explicit BatchPlanner(BatchPlannerOptions options = {});

  /// \brief Plans `queries` against a dataset whose string lengths span
  /// [dataset_min_len, dataset_max_len]. The returned plan (and the group
  /// spans inside it) stays valid until the next Plan() call or planner
  /// destruction.
  const BatchPlan& Plan(const QuerySet& queries, size_t dataset_min_len,
                        size_t dataset_max_len);

  const BatchPlannerOptions& options() const noexcept { return options_; }

 private:
  BatchPlannerOptions options_;
  Arena arena_;
  std::vector<std::pair<uint64_t, uint32_t>> sort_buffer_;  // (key, index)
  BatchPlan plan_;
};

}  // namespace sss
