// QGramIndexSearcher — an inverted q-gram index, the classic alternative
// index family from the literature the paper builds on (its related work
// discusses filter-based approaches; the count filter of filters.h is the
// same bound turned into an index).
//
// Build: for every dataset string, hash each overlapping q-gram and append
// the string id to that gram's posting list.
// Query: merge the posting lists of the query's q-grams, counting hits per
// candidate id; any string within distance k must share at least
//   T = (l_q − q + 1) − k·q
// grams with the query, so ids below the threshold are never verified.
// When T ≤ 0 (short query or large k) the bound is vacuous and the engine
// degrades to a filtered scan — the known weakness of q-gram indexes that
// keeps them honest as a baseline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief Configuration of the q-gram index.
struct QGramIndexOptions {
  /// Gram size. 2–3 suits short natural-language strings; larger grams
  /// sharpen the bound for long reads but empty it faster as k grows.
  int q = 3;
};

/// \brief Inverted q-gram index engine.
class QGramIndexSearcher final : public Searcher {
 public:
  /// Builds posting lists over `snapshot` (pinned for the searcher's
  /// lifetime).
  QGramIndexSearcher(SnapshotHandle snapshot, QGramIndexOptions options = {});

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  QGramIndexSearcher(const Dataset& dataset, QGramIndexOptions options = {})
      : QGramIndexSearcher(CollectionSnapshot::Borrow(dataset), options) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "qgram_index"; }
  size_t memory_bytes() const override;
  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

  int q() const noexcept { return options_.q; }

  /// \brief Number of distinct gram buckets (hash-sharded).
  size_t num_buckets() const noexcept { return bucket_offsets_.size() - 1; }

 private:
  /// Bucket index for a gram hash.
  size_t BucketOf(uint32_t hash) const noexcept {
    return hash & bucket_mask_;
  }

  /// Verifies candidates whose shared-gram count reaches the threshold.
  Status VerifyCandidates(const Query& query, const SearchContext& ctx,
                          const std::vector<uint32_t>& candidates,
                          MatchList* out) const;

  /// Fallback when the count bound is vacuous: verify every id that passes
  /// the length filter.
  Status ScanFallback(const Query& query, const SearchContext& ctx,
                      MatchList* out) const;

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
  QGramIndexOptions options_;

  // Postings, bucketed by hashed gram: ids of strings containing at least
  // one gram hashing into the bucket (with multiplicity).
  std::vector<uint32_t> postings_;
  std::vector<uint64_t> bucket_offsets_;  // num_buckets()+1 entries
  size_t bucket_mask_ = 0;
};

}  // namespace sss
