#include "core/bktree.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

TEST(BKTreeTest, FindsExactAndApproximate) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Magdeburg");
  d.Add("Hamburg");
  d.Add("Marburg");
  BKTreeSearcher tree(d);
  EXPECT_EQ(tree.Search({"Magdeburg", 0}), (MatchList{0}));
  EXPECT_EQ(tree.Search({"Maqdeburg", 1}), (MatchList{0}));
  EXPECT_EQ(tree.Search({"Magdeburg", 3}), (MatchList{0, 2}));
  EXPECT_TRUE(tree.Search({"Leipzig", 2}).empty());
  EXPECT_EQ(tree.name(), "bk_tree");
}

TEST(BKTreeTest, DuplicatesChainOntoOneNode) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("dup");
  d.Add("dup");
  d.Add("other");
  d.Add("dup");
  BKTreeSearcher tree(d);
  EXPECT_EQ(tree.num_nodes(), 2u);  // "dup" once, "other" once
  EXPECT_EQ(tree.Search({"dup", 0}), (MatchList{0, 1, 3}));
}

TEST(BKTreeTest, EmptyDatasetAndEmptyQuery) {
  Dataset empty("e", AlphabetKind::kGeneric);
  BKTreeSearcher tree(empty);
  EXPECT_TRUE(tree.Search({"x", 3}).empty());

  Dataset d("d", AlphabetKind::kGeneric);
  d.Add("");
  d.Add("ab");
  BKTreeSearcher tree2(d);
  EXPECT_EQ(tree2.Search({"", 0}), (MatchList{0}));
  EXPECT_EQ(tree2.Search({"", 2}), (MatchList{0, 1}));
}

TEST(BKTreeTest, DepthStaysLogarithmicOnVariedData) {
  Xoshiro256 rng(0xBC);
  Dataset d = RandomDataset(&rng, "abcdefghijkl", 2000, 4, 24);
  BKTreeSearcher tree(d);
  EXPECT_GT(tree.num_nodes(), 1900u);
  // Random strings give a bushy tree; depth far below node count.
  EXPECT_LT(tree.MaxDepth(), 64u);
  EXPECT_GT(tree.memory_bytes(), 0u);
}

struct BKSweep {
  const char* label;
  const char* alphabet;
  size_t min_len;
  size_t max_len;
  std::vector<int> ks;
};

class BKTreeEquivalenceTest : public ::testing::TestWithParam<BKSweep> {};

TEST_P(BKTreeEquivalenceTest, MatchesBruteForce) {
  const BKSweep& cfg = GetParam();
  Xoshiro256 rng(0xBC1);
  Dataset d =
      RandomDataset(&rng, cfg.alphabet, 200, cfg.min_len, cfg.max_len);
  BKTreeSearcher tree(d);
  for (int t = 0; t < 30; ++t) {
    for (int k : cfg.ks) {
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        if (!text.empty() && k > 0) text[rng.Uniform(text.size())] = 'z';
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      ASSERT_EQ(tree.Search(q), BruteForceSearch(d, q))
          << cfg.label << " q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, BKTreeEquivalenceTest,
    ::testing::Values(
        BKSweep{"city_like", "abcdefghij -", 2, 30, {0, 1, 2, 3}},
        BKSweep{"dna_like", "ACGNT", 40, 60, {0, 4, 8, 16}},
        BKSweep{"with_duplicates", "ab", 1, 6, {0, 1, 2}}),
    [](const ::testing::TestParamInfo<BKSweep>& info) {
      return info.param.label;
    });

TEST(BKTreeTest, SearchIsThreadSafe) {
  Xoshiro256 rng(0xBC2);
  Dataset d = RandomDataset(&rng, "abcdef", 300, 2, 15);
  BKTreeSearcher tree(d);
  QuerySet queries;
  for (int i = 0; i < 48; ++i) {
    queries.push_back(
        {RandomString(&rng, "abcdef", 2, 15), static_cast<int>(i % 4)});
  }
  const SearchResults serial =
      tree.SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  EXPECT_EQ(tree.SearchBatch(queries, {ExecutionStrategy::kFixedPool, 8}),
            serial);
}

}  // namespace
}  // namespace sss
