# Empty dependencies file for compressed_trie_test.
# This may be replaced when dependencies are built.
