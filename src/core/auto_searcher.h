// AutoSearcher — the paper's conclusion, executable: "the index-based
// solution takes less time on the DNA data set, but more time on the city
// name data set". This engine inspects the dataset's shape once at build
// time (average length, alphabet size — the exact properties §2.4's
// hypotheses are stated over) and routes every query to the predicted
// winner: the optimized sequential scan for short/wide-alphabet data, the
// compressed trie for long/narrow-alphabet data.
//
// Both engines are built lazily on first use, so the loser costs nothing
// unless the heuristic ever flips (it can, per query: very large k favors
// the scan even on long strings).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/compressed_trie.h"
#include "core/scan.h"
#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief Routing thresholds, defaulted from the paper's two workloads.
struct AutoSearcherOptions {
  /// Average string length above which the trie is predicted to win
  /// (city names avg ≈ 8, DNA ≈ 100; the crossover sits well between).
  double long_string_threshold = 48.0;
  /// Alphabet size below which prefix sharing is dense enough for the trie.
  size_t narrow_alphabet_threshold = 16;
  /// Relative threshold k / avg_len above which the trie's band is so wide
  /// the scan wins regardless (the banded trie degrades toward a scan with
  /// overhead).
  double high_k_ratio = 0.5;
  /// When a deadline is set and the router picks the trie, the trie probe
  /// only gets this fraction of the remaining budget; if it times out while
  /// the overall deadline still has slack, the query degrades to the scan
  /// for the rest. ≥ 1 disables the split (the trie gets the full budget).
  double probe_fraction = 0.5;
};

/// \brief Engine that picks scan or trie per the paper's findings.
class AutoSearcher final : public Searcher {
 public:
  /// Profiles `snapshot`'s dataset (pinned for the searcher's lifetime) and
  /// routes queries to the predicted winner; both inner engines share the
  /// handle.
  explicit AutoSearcher(SnapshotHandle snapshot,
                        AutoSearcherOptions options = {});

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  explicit AutoSearcher(const Dataset& dataset,
                        AutoSearcherOptions options = {})
      : AutoSearcher(CollectionSnapshot::Borrow(dataset), options) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "auto"; }
  size_t memory_bytes() const override;
  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

  /// \brief True iff the trie is the dataset-level prediction (what a
  /// k-independent router would always use). Exposed for tests.
  bool PrefersIndex() const noexcept { return prefers_index_; }

  /// \brief How many trie probes timed out and were retried on the scan.
  uint64_t degraded_probes() const noexcept {
    return degraded_probes_.load(std::memory_order_relaxed);
  }

  /// \brief The engine a query with threshold k routes to ("scan"/"trie").
  std::string_view RouteFor(int k) const noexcept;

 private:
  const SequentialScanSearcher& Scan() const;
  const CompressedTrieSearcher& Trie() const;

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
  AutoSearcherOptions options_;
  double avg_length_ = 0;
  bool prefers_index_ = false;

  mutable std::mutex build_mu_;
  mutable std::unique_ptr<SequentialScanSearcher> scan_;
  mutable std::unique_ptr<CompressedTrieSearcher> trie_;
  mutable std::atomic<uint64_t> degraded_probes_{0};
};

}  // namespace sss
