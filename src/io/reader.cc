#include "io/reader.h"

#include <charconv>
#include <cstdio>
#include <vector>

namespace sss {

namespace {

// Reads an entire file into `out`. Uses stdio rather than ifstream to avoid
// per-read locale machinery; dataset files are hundreds of megabytes at the
// paper's full scale.
Status SlurpFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot determine size of '" + path + "'");
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  const size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) {
    return Status::IOError("short read from '" + path + "'");
  }
  return Status::OK();
}

// Invokes fn(line) for each '\n'-separated line, with trailing '\r' removed.
template <typename Fn>
void ForEachLine(std::string_view contents, Fn&& fn) {
  size_t begin = 0;
  while (begin <= contents.size()) {
    size_t end = contents.find('\n', begin);
    if (end == std::string_view::npos) end = contents.size();
    std::string_view line = contents.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    fn(line);
    if (end == contents.size()) break;
    begin = end + 1;
  }
}

}  // namespace

Result<Dataset> ReadDatasetFile(const std::string& path, std::string name,
                                AlphabetKind alphabet) {
  std::string contents;
  SSS_RETURN_NOT_OK(SlurpFile(path, &contents));
  Dataset dataset(std::move(name), alphabet);
  ForEachLine(contents, [&](std::string_view line) {
    if (!line.empty()) dataset.Add(line);
  });
  return dataset;
}

Result<Query> ParseQueryLine(std::string_view line, int default_k) {
  const size_t tab = line.find('\t');
  if (tab == std::string_view::npos) {
    return Query{std::string(line), default_k};
  }
  const std::string_view k_field = line.substr(0, tab);
  int k = 0;
  const auto [ptr, ec] =
      std::from_chars(k_field.data(), k_field.data() + k_field.size(), k);
  if (ec != std::errc() || ptr != k_field.data() + k_field.size() || k < 0) {
    return Status::Invalid("bad threshold field '" + std::string(k_field) +
                           "' in query line");
  }
  return Query{std::string(line.substr(tab + 1)), k};
}

Result<QuerySet> ReadQueryFile(const std::string& path, int default_k) {
  std::string contents;
  SSS_RETURN_NOT_OK(SlurpFile(path, &contents));
  QuerySet queries;
  Status first_error;
  ForEachLine(contents, [&](std::string_view line) {
    if (line.empty() || !first_error.ok()) return;
    Result<Query> q = ParseQueryLine(line, default_k);
    if (!q.ok()) {
      first_error = q.status();
      return;
    }
    queries.push_back(std::move(q).ValueUnsafe());
  });
  if (!first_error.ok()) return first_error;
  return queries;
}

}  // namespace sss
