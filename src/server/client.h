// Blocking client for the sss serving layer: one TCP connection, one
// request/response exchange at a time. Used by sss_loadgen (one client per
// worker thread), the loopback bench, and the server tests.
//
// Two failure planes, deliberately kept apart:
//   * the returned Status is the *transport/protocol* outcome — connection
//     refused, mid-frame disconnect, malformed response. After a non-OK
//     return the connection is unusable (framing cannot resync); Close()
//     and reconnect.
//   * Response::code is the *server-side* outcome (kOk, kUnavailable when
//     shed, kCancelled on deadline, kInvalid), delivered with Status::OK
//     because the exchange itself worked.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.h"
#include "util/net.h"
#include "util/result.h"
#include "util/status.h"

namespace sss::server {

class Client {
 public:
  Client() = default;
  SSS_DISALLOW_COPY_AND_ASSIGN(Client);
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  /// \brief Connects to a running server. `limits` must accept every frame
  /// the server can send back.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                const ProtocolLimits& limits = {});

  bool connected() const noexcept { return socket_.valid(); }

  /// \brief Sends `request` and blocks for its response. Fills the request
  /// id from an internal counter when the caller left it 0. Verifies the
  /// response echoes the request id (mismatch = kCorruption).
  Status Call(Request request, Response* out);

  /// \brief Convenience Call: one query with threshold `k` and an optional
  /// per-request deadline against the server's default engine.
  Status Search(std::string_view query, uint32_t k, uint32_t deadline_ms,
                Response* out);

  /// \brief Admin: ask the server to publish a fresh engine generation from
  /// `path` (empty = re-read its current source). On a kOk response,
  /// out->generation is the newly published generation id.
  Status Reload(std::string_view path, Response* out);

  /// \brief Admin: read the server's current generation id into
  /// out->generation (0 = the server serves no versioned generation).
  Status GetGeneration(Response* out);

  void Close() noexcept { socket_.Close(); }

  /// \brief Wire bytes this client has sent / received (for loadgen's
  /// client-side mirror of the server byte counters).
  uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  uint64_t bytes_received() const noexcept { return bytes_received_; }

 private:
  net::Socket socket_;
  ProtocolLimits limits_;
  uint64_t next_id_ = 1;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace sss::server
