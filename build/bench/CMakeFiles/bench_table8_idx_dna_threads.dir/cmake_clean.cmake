file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_idx_dna_threads.dir/bench_table8_idx_dna_threads.cc.o"
  "CMakeFiles/bench_table8_idx_dna_threads.dir/bench_table8_idx_dna_threads.cc.o.d"
  "bench_table8_idx_dna_threads"
  "bench_table8_idx_dna_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_idx_dna_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
