// Ranked similarity search: the thresholded engines answer "everything
// within k"; applications (spelling suggestions, entity matching — the
// paper's §1 motivation) usually want "the closest few". This module adds
// that on top of the same kernels:
//
//   * RankedSearch  — matches within k, ordered by (distance, id), with
//     exact distances and an optional result cap;
//   * NearestNeighbors — the closest n strings regardless of threshold,
//     found by iterative deepening over k on a compressed trie (each round
//     costs a banded descent, and rounds stop as soon as enough matches
//     exist at the current radius).
#pragma once

#include <cstdint>
#include <vector>

#include "core/compressed_trie.h"
#include "io/dataset.h"

namespace sss {

/// \brief One ranked match.
struct RankedMatch {
  uint32_t id = 0;
  int distance = 0;

  bool operator==(const RankedMatch&) const = default;
  /// Orders by distance, then id (the result ordering guarantee).
  bool operator<(const RankedMatch& other) const {
    return distance < other.distance ||
           (distance == other.distance && id < other.id);
  }
};

/// \brief All dataset strings within `max_distance` of `text`, with exact
/// distances, ordered by (distance, id). `max_results` of 0 means
/// unlimited; otherwise the best `max_results` are returned.
std::vector<RankedMatch> RankedSearch(const Dataset& dataset,
                                      std::string_view text, int max_distance,
                                      size_t max_results = 0);

/// \brief The `n` closest dataset strings to `text` (ties broken by id),
/// regardless of distance. Uses `index` for candidate generation, so
/// repeated lookups against one dataset share the build cost.
/// `max_radius` bounds the deepening (strings farther than it are never
/// returned; pass e.g. the dataset's max length for "no bound").
std::vector<RankedMatch> NearestNeighbors(const CompressedTrieSearcher& index,
                                          const Dataset& dataset,
                                          std::string_view text, size_t n,
                                          int max_radius);

}  // namespace sss
