file(REMOVE_RECURSE
  "CMakeFiles/typo_model_test.dir/gen/typo_model_test.cc.o"
  "CMakeFiles/typo_model_test.dir/gen/typo_model_test.cc.o.d"
  "typo_model_test"
  "typo_model_test.pdb"
  "typo_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typo_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
