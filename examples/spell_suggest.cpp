// Spelling suggestions — the paper's §1 motivation ("the application has to
// be tolerant against input errors") as a ranked-search application.
//
// Builds a city-name dictionary, then for each misspelled input prints the
// closest suggestions via NearestNeighbors (iterative-deepening on the
// compressed trie), exactly how a "did you mean ...?" box works.
//
// Usage: spell_suggest [dictionary_size] [word ...]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/compressed_trie.h"
#include "core/ranked.h"
#include "gen/city_generator.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  const size_t dict_size =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  sss::gen::CityGeneratorOptions options;
  options.num_strings = dict_size;
  options.accent_prob = 0;          // ASCII dictionary for readable output
  options.exotic_string_prob = 0;
  sss::Dataset dictionary =
      sss::gen::CityNameGenerator(options, /*seed=*/20).Generate();

  sss::Stopwatch build_timer;
  sss::CompressedTrieSearcher index(dictionary);
  std::printf("dictionary: %zu entries, index built in %.0f ms\n",
              dictionary.size(), build_timer.ElapsedMillis());

  // Misspell a few dictionary words (or take words from the command line).
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) inputs.emplace_back(argv[i]);
  if (inputs.empty()) {
    for (size_t id = 0; id < 6; ++id) {
      std::string word(dictionary.View(id * 97 % dictionary.size()));
      if (word.size() > 2) {
        word[word.size() / 2] = 'x';       // one typo
        word.erase(word.begin());          // and one dropped letter
      }
      inputs.push_back(word);
    }
  }

  for (const std::string& input : inputs) {
    sss::Stopwatch timer;
    const auto suggestions = sss::NearestNeighbors(
        index, dictionary, input, /*n=*/3,
        /*max_radius=*/static_cast<int>(input.size()) + 2);
    std::printf("\"%s\" -> ", input.c_str());
    if (suggestions.empty()) {
      std::printf("(no suggestion)");
    }
    for (size_t i = 0; i < suggestions.size(); ++i) {
      const auto view = dictionary.View(suggestions[i].id);
      std::printf("%s%.*s (d=%d)", i == 0 ? "" : ", ",
                  static_cast<int>(view.size()), view.data(),
                  suggestions[i].distance);
    }
    std::printf("   [%.2f ms]\n", timer.ElapsedMillis());
  }
  return 0;
}
