# Empty dependencies file for sss_cli.
# This may be replaced when dependencies are built.
