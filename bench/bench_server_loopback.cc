// Serving-layer overhead: the same city-name query batch answered by the
// in-process engine vs. over the loopback TCP server (framing + socket
// round-trip + admission + per-request SearchContext). The delta is the
// cost of putting sss_server in front of a searcher.
//
//   BM_InProcessBatch   — serial SearchBatch, no serving layer
//   BM_Loopback/N       — N client connections splitting the batch, each in
//                         a closed loop (connect once, then request/await)
//
// --json writes BENCH_server_loopback.json: the in-process run via the
// standard batch path, the loopback runs with client-observed latency and
// the server's accumulated SearchStats (engine counters + server_* serving
// counters from the same sink).
#include "bench_common.h"

#include <atomic>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"

namespace sss::bench {
namespace {

// One server over the shared workload for the whole process, torn down by
// the static destructor after the last benchmark ran.
class LoopbackFixture {
 public:
  static LoopbackFixture& Instance() {
    static LoopbackFixture fixture;
    return fixture;
  }

  uint16_t port() const { return server_->port(); }
  const StatsSink& sink() const { return sink_; }

 private:
  LoopbackFixture() {
    const BenchWorkload& w = SharedWorkload(gen::WorkloadKind::kCityNames);
    searcher_ = std::move(MakeSearcher(EngineKind::kSequentialScan,
                                       w.dataset))
                    .ValueOrDie();
    server::ServerOptions options;
    options.max_inflight = 256;  // never shed: this bench measures latency
    options.stats = &sink_;
    server_ = std::make_unique<server::Server>(options);
    Status st = server_->RegisterEngine(
        static_cast<uint8_t>(EngineKind::kSequentialScan), searcher_.get());
    if (st.ok()) st = server_->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "loopback fixture: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  ~LoopbackFixture() { server_->Stop(); }

  StatsSink sink_;
  std::unique_ptr<Searcher> searcher_;
  std::unique_ptr<server::Server> server_;
};

void BM_InProcessBatch(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(gen::WorkloadKind::kCityNames);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, w.dataset))
          .ValueOrDie();
  RunBatchBenchmark(state, *searcher, w.batch_100,
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_InProcessBatch)->Unit(benchmark::kMillisecond);

void BM_Loopback(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(gen::WorkloadKind::kCityNames);
  const QuerySet& queries = w.batch_100;
  LoopbackFixture& fixture = LoopbackFixture::Instance();
  const size_t clients = static_cast<size_t>(state.range(0));

  BenchJson& json = BenchJson::Instance();
  LatencyHistogram wall_ns;
  std::atomic<size_t> total_matches{0};
  std::atomic<size_t> transport_errors{0};
  uint64_t iterations = 0;

  for (auto _ : state) {
    std::atomic<size_t> next{0};
    std::atomic<size_t> matches{0};
    Stopwatch timer;
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        auto client = server::Client::Connect("127.0.0.1", fixture.port());
        if (!client.ok()) {
          transport_errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= queries.size()) break;
          server::Response response;
          const Status st = client->Search(
              queries[i].text,
              static_cast<uint32_t>(queries[i].max_distance), 0, &response);
          if (!st.ok() || response.code != StatusCode::kOk) {
            transport_errors.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          matches.fetch_add(response.matches.size(),
                            std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    if (json.enabled()) {
      wall_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
    }
    ++iterations;
    total_matches.store(matches.load());
    benchmark::DoNotOptimize(total_matches);
  }
  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["matches"] = static_cast<double>(total_matches.load());
  state.counters["transport_errors"] =
      static_cast<double>(transport_errors.load());

  if (json.enabled()) {
    int k_max = 0;
    for (const Query& q : queries) {
      if (q.max_distance > k_max) k_max = q.max_distance;
    }
    // The stats snapshot is the server-side sink: engine counters plus the
    // server_* serving counters, accumulated across iterations.
    json.AddRun("scan+loopback", "closed-loop", clients, queries.size(),
                k_max, total_matches.load(), iterations, wall_ns,
                fixture.sink().Collected());
  }
}
BENCHMARK(BM_Loopback)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("server_loopback", sss::gen::WorkloadKind::kCityNames)
