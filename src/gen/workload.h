// Paper workload descriptors: one call builds "the city-names experiment" or
// "the DNA experiment" at a chosen scale, with the Table-I parameters baked
// in. Benches, integration tests, and examples all go through this so every
// consumer agrees on what "the paper's workload" means.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/city_generator.h"
#include "gen/dna_generator.h"
#include "gen/query_generator.h"
#include "io/dataset.h"

namespace sss::gen {

/// \brief Which of the paper's two workloads.
enum class WorkloadKind {
  kCityNames,  // Table I row 1: 400k strings, ≈255 symbols, len ≤ 64, k ∈ 0..3
  kDnaReads,   // Table I row 2: 750k reads, 5 symbols, len ≈ 100, k ∈ {0,4,8,16}
};

/// \brief A fully materialized workload: the collection plus query batches of
/// the paper's three sizes.
struct Workload {
  WorkloadKind kind;
  double scale;      // fraction of the paper's dataset size
  uint64_t seed;
  Dataset dataset;
  QuerySet queries_100;   // "100 queries" batch (scaled)
  QuerySet queries_500;   // "500 queries" batch (scaled)
  QuerySet queries_1000;  // "1000 queries" batch (scaled)

  /// \brief The batch for a paper query count (100, 500 or 1000).
  const QuerySet& QueriesFor(int paper_count) const;

  /// \brief Actual number of queries in the batch for `paper_count`.
  size_t ScaledCount(int paper_count) const {
    return QueriesFor(paper_count).size();
  }
};

/// \brief Human-readable name ("city_names" / "dna_reads").
std::string ToString(WorkloadKind kind);

/// \brief The Table-I threshold ladder for a workload.
const std::vector<int>& ThresholdsFor(WorkloadKind kind);

/// \brief Builds a workload at `scale` (1.0 = the paper's full size;
/// 0.1 = 40k cities / 75k reads and 10/50/100 queries). Deterministic in
/// (kind, scale, seed).
Workload MakeWorkload(WorkloadKind kind, double scale, uint64_t seed);

}  // namespace sss::gen
