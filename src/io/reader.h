// File readers for the competition's line-oriented formats.
//
//   dataset file: one string per line ('\n' separated; a trailing '\r' from
//                 CRLF files is stripped; empty lines are skipped)
//   query file:   either "k<TAB>string" per line, or plain strings combined
//                 with a default threshold passed by the caller
//
// Both readers enforce ReaderLimits so hostile or corrupted inputs (a 100 GB
// "dataset", a single line with no newlines, a query with k = 2^31-1) fail
// with a descriptive Status instead of exhausting memory or driving an
// engine into a multi-hour verification.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "io/dataset.h"
#include "util/result.h"

namespace sss {

/// \brief Resource limits applied while parsing text inputs. The defaults
/// comfortably cover the paper's full-scale datasets; callers facing
/// untrusted input can tighten them (sss_cli exposes --max-line-bytes).
struct ReaderLimits {
  /// Largest file SlurpFile will load (2 GiB).
  size_t max_file_bytes = size_t{1} << 31;
  /// Longest single line, after '\r' stripping (1 MiB).
  size_t max_line_bytes = size_t{1} << 20;
  /// Largest accepted edit-distance threshold, for both per-line k fields
  /// and the caller-supplied default. Distances beyond string length are
  /// meaningless, and huge k turns every engine into a full verification
  /// pass over the dataset.
  int max_threshold = 1024;
};

/// \brief Reads a dataset file. `name`/`alphabet` tag the returned Dataset.
Result<Dataset> ReadDatasetFile(const std::string& path, std::string name,
                                AlphabetKind alphabet,
                                const ReaderLimits& limits = ReaderLimits());

/// \brief Reads a query file. Lines of the form "k<TAB>string" carry their
/// own threshold; bare lines use `default_k`.
Result<QuerySet> ReadQueryFile(const std::string& path, int default_k,
                               const ReaderLimits& limits = ReaderLimits());

/// \brief Parses one query line (exposed for tests).
Result<Query> ParseQueryLine(std::string_view line, int default_k,
                             const ReaderLimits& limits = ReaderLimits());

}  // namespace sss
