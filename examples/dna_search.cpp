// DNA read search — the paper's non-natural-language workload (§5.6–5.8).
//
// Generates reads from a synthetic genome (the near-duplicate clustering of
// real read sets), then demonstrates the paper's DNA-side conclusion: the
// trie index beats the sequential scan on long strings with a tiny
// alphabet. Also shows the 3-bit dictionary compression from the paper's
// future-work list.
//
// Usage: dna_search [num_reads] [num_queries]
#include <cstdio>
#include <cstdlib>

#include "core/searcher.h"
#include "gen/dna_generator.h"
#include "gen/query_generator.h"
#include "util/bitpack.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  const size_t num_reads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const size_t num_queries =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50;

  std::printf("generating %zu reads (~100bp) from a synthetic genome...\n",
              num_reads);
  sss::gen::DnaGeneratorOptions gen_options;
  gen_options.num_reads = num_reads;
  gen_options.genome_length = 1 << 18;  // high coverage: many near-dupes
  sss::Dataset reads =
      sss::gen::DnaReadGenerator(gen_options, /*seed=*/2013).Generate();

  const sss::DatasetStats stats = reads.ComputeStats();
  std::printf("dataset: %zu reads, alphabet %zu, length %zu..%zu\n",
              stats.num_strings, stats.alphabet_size, stats.min_length,
              stats.max_length);

  // The paper's DNA thresholds: k ∈ {0, 4, 8, 16}.
  sss::gen::QueryGeneratorOptions q_options;
  q_options.num_queries = num_queries;
  q_options.thresholds = {0, 4, 8, 16};
  const sss::QuerySet queries =
      sss::gen::MakeQuerySet(reads, q_options, /*seed=*/7);

  const sss::ExecutionOptions exec{sss::ExecutionStrategy::kFixedPool, 8};
  for (sss::EngineKind kind : {sss::EngineKind::kSequentialScan,
                               sss::EngineKind::kTrieIndex,
                               sss::EngineKind::kCompressedTrieIndex}) {
    auto searcher = sss::MakeSearcher(kind, reads);
    searcher.status().AbortIfNotOK();
    sss::Stopwatch timer;
    const sss::SearchResults results = (*searcher)->SearchBatch(queries, exec);
    const double seconds = timer.ElapsedSeconds();
    size_t total_matches = 0;
    for (const auto& m : results) total_matches += m.size();
    std::printf("%-24s %8.3f s   (%zu queries, %zu matches, index %.1f MB)\n",
                (*searcher)->name().c_str(), seconds, queries.size(),
                total_matches,
                static_cast<double>((*searcher)->memory_bytes()) / 1e6);
  }

  // Dictionary compression (paper §6): pack the whole read set at 3
  // bits/symbol and report the ratio.
  sss::PackedDnaPool packed;
  bool all_packed = true;
  for (size_t i = 0; i < reads.size() && all_packed; ++i) {
    all_packed = packed.Add(reads.View(i)).ok();
  }
  if (all_packed) {
    std::printf(
        "\n3-bit dictionary compression: %zu symbols -> %zu bytes "
        "(%.2fx smaller than 1 byte/symbol)\n",
        packed.total_symbols(), packed.packed_bytes(),
        static_cast<double>(packed.total_symbols()) /
            static_cast<double>(packed.packed_bytes()));
  }
  return 0;
}
