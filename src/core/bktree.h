// BKTreeSearcher — the Burkhard–Keller metric tree, the classic open-source
// answer to "index strings under edit distance" (predates the paper by four
// decades and ships in countless libraries). Included as the natural third
// index family next to the trie and the q-gram index: it exploits only the
// *metric* structure (triangle inequality), no string internals.
//
// Build: each node holds one string; a child edge labelled d leads to the
// subtree of strings at distance exactly d from the node.
// Query(q, k): at a node with pivot p, compute d = ed(q, p); report p if
// d ≤ k; recurse only into child edges labelled within [d − k, d + k]
// (triangle inequality makes others impossible).
//
// Known behaviour this bench suite demonstrates: selectivity degrades as k
// grows relative to the distance spread — at DNA's k = 16 with reads ~100
// long, [d−16, d+16] covers most edges and the tree devolves to a scan
// with extra pointer chasing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief Burkhard–Keller tree engine.
class BKTreeSearcher final : public Searcher {
 public:
  /// Builds the tree over `snapshot` (pinned for the searcher's lifetime).
  /// Duplicate strings chain onto the same node (distance 0 edges are not
  /// representable, so duplicates are stored in the node's id list).
  explicit BKTreeSearcher(SnapshotHandle snapshot);

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  explicit BKTreeSearcher(const Dataset& dataset)
      : BKTreeSearcher(CollectionSnapshot::Borrow(dataset)) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "bk_tree"; }
  size_t memory_bytes() const override;
  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

  /// \brief Node count (== number of distinct strings).
  size_t num_nodes() const noexcept { return nodes_.size(); }

  /// \brief Maximum node depth (diagnostic; balanced-ish trees are shallow).
  size_t MaxDepth() const;

 private:
  struct Node {
    uint32_t pivot_id;                // representative dataset string
    std::vector<uint32_t> dup_ids;    // other ids with identical text
    // Sorted (distance → node index) edges.
    std::vector<std::pair<uint16_t, uint32_t>> children;
  };

  /// Index of the child at distance `d` under `node`, or npos.
  size_t EdgeSlot(const Node& node, uint16_t d) const;

  void Insert(uint32_t id);

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
  std::vector<Node> nodes_;
};

}  // namespace sss
