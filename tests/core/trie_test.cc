#include "core/trie.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

TEST(TrieTest, FindsExactMatch) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Berlin");
  d.Add("Bern");
  d.Add("Ulm");
  TrieSearcher trie(d);
  EXPECT_EQ(trie.Search({"Berlin", 0}), (MatchList{0}));
  EXPECT_EQ(trie.Search({"Ulm", 0}), (MatchList{2}));
  EXPECT_TRUE(trie.Search({"Hamburg", 0}).empty());
}

TEST(TrieTest, FindsApproximateMatches) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Berlin");
  d.Add("Bern");
  d.Add("Ulm");
  TrieSearcher trie(d);
  // ed(Berlin, Bern) = 3 (paper Fig. 4 example words).
  EXPECT_EQ(trie.Search({"Berlin", 3}), (MatchList{0, 1}));
  EXPECT_EQ(trie.Search({"Berl", 1}), (MatchList{1}));  // ed(Berl,Bern)=1
  EXPECT_EQ(trie.Search({"Berl", 2}), (MatchList{0, 1}));
}

TEST(TrieTest, HandlesDuplicateStrings) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("dup");
  d.Add("other");
  d.Add("dup");
  TrieSearcher trie(d);
  EXPECT_EQ(trie.Search({"dup", 0}), (MatchList{0, 2}));
}

TEST(TrieTest, EmptyQueryMatchesByLength) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("a");
  d.Add("ab");
  d.Add("abc");
  TrieSearcher trie(d);
  EXPECT_EQ(trie.Search({"", 2}), (MatchList{0, 1}));
  EXPECT_TRUE(trie.Search({"", 0}).empty());
}

TEST(TrieTest, EmptyDatasetYieldsNothing) {
  Dataset d("empty", AlphabetKind::kGeneric);
  TrieSearcher trie(d);
  EXPECT_TRUE(trie.Search({"q", 5}).empty());
}

TEST(TrieTest, EmptyStringInDataset) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("");
  d.Add("a");
  TrieSearcher trie(d);
  EXPECT_EQ(trie.Search({"", 0}), (MatchList{0}));
  EXPECT_EQ(trie.Search({"a", 1}), (MatchList{0, 1}));
}

TEST(TrieTest, StatsCountNodes) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Berlin");
  d.Add("Bern");
  d.Add("Ulm");
  TrieSearcher trie(d);
  const TrieStats stats = trie.Stats();
  // Fig. 4 (left): root + B,e,r,l,i,n + n + U,l,m = 11 nodes.
  EXPECT_EQ(stats.num_nodes, 11u);
  EXPECT_EQ(stats.num_terminal_nodes, 3u);
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST(TrieTest, SharedPrefixesShareNodes) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("abcde");
  d.Add("abcdf");
  TrieSearcher trie(d);
  // root + a,b,c,d + e + f = 7
  EXPECT_EQ(trie.Stats().num_nodes, 7u);
}

// Randomized equivalence against brute force, across alphabets and k.
struct TrieSweep {
  const char* label;
  const char* alphabet;
  size_t n;
  size_t min_len;
  size_t max_len;
  std::vector<int> ks;
};

class TrieEquivalenceTest : public ::testing::TestWithParam<TrieSweep> {};

TEST_P(TrieEquivalenceTest, MatchesBruteForce) {
  const TrieSweep& cfg = GetParam();
  Xoshiro256 rng(0x791E);
  Dataset d = RandomDataset(&rng, cfg.alphabet, cfg.n, cfg.min_len,
                            cfg.max_len);
  TrieSearcher trie(d);
  for (int t = 0; t < 40; ++t) {
    for (int k : cfg.ks) {
      // Half the queries are perturbed dataset strings (guaranteed hits),
      // half are fresh random strings (mostly misses).
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        if (!text.empty() && k > 0) text[rng.Uniform(text.size())] = 'z';
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      ASSERT_EQ(trie.Search(q), BruteForceSearch(d, q))
          << cfg.label << " q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, TrieEquivalenceTest,
    ::testing::Values(
        TrieSweep{"city_like", "abcdefghij -", 200, 2, 30, {0, 1, 2, 3}},
        TrieSweep{"dna_like", "ACGNT", 150, 40, 60, {0, 4, 8, 16}},
        TrieSweep{"tiny_alphabet", "ab", 150, 0, 12, {0, 1, 2}},
        TrieSweep{"with_duplicates", "abc", 300, 1, 6, {0, 1, 2, 3}}),
    [](const ::testing::TestParamInfo<TrieSweep>& info) {
      return info.param.label;
    });

// The paper-faithful pruning rule must return exactly the same results as
// the banded rule and brute force — only the amount of work differs.
class TriePaperRuleTest : public ::testing::TestWithParam<TrieSweep> {};

TEST_P(TriePaperRuleTest, PaperRuleMatchesBruteForce) {
  const TrieSweep& cfg = GetParam();
  Xoshiro256 rng(0x9A9E);
  Dataset d = RandomDataset(&rng, cfg.alphabet, cfg.n, cfg.min_len,
                            cfg.max_len);
  TrieSearcher paper(d, TriePruning::kPaperRule);
  TrieSearcher banded(d, TriePruning::kBandedRows);
  EXPECT_EQ(paper.pruning(), TriePruning::kPaperRule);
  for (int t = 0; t < 30; ++t) {
    for (int k : cfg.ks) {
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        if (!text.empty() && k > 0) text[rng.Uniform(text.size())] = 'z';
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      const MatchList expected = BruteForceSearch(d, q);
      ASSERT_EQ(paper.Search(q), expected)
          << cfg.label << " (paper rule) q='" << q.text << "' k=" << k;
      ASSERT_EQ(banded.Search(q), expected)
          << cfg.label << " (banded) q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, TriePaperRuleTest,
    ::testing::Values(
        TrieSweep{"city_like", "abcdefghij -", 150, 2, 30, {0, 1, 2, 3}},
        TrieSweep{"dna_like", "ACGNT", 100, 40, 60, {0, 4, 8, 16}},
        TrieSweep{"length_spread", "abc", 150, 0, 40, {0, 1, 2, 3}}),
    [](const ::testing::TestParamInfo<TrieSweep>& info) {
      return info.param.label;
    });

TEST(TrieTest, SearchIsThreadSafe) {
  Xoshiro256 rng(0x7157);
  Dataset d = RandomDataset(&rng, "abcdef", 300, 2, 15);
  TrieSearcher trie(d);
  QuerySet queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(
        {RandomString(&rng, "abcdef", 2, 15), static_cast<int>(i % 4)});
  }
  SearchResults serial(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    serial[i] = trie.Search(queries[i]);
  }
  const SearchResults parallel = trie.SearchBatch(
      queries, {ExecutionStrategy::kFixedPool, /*num_threads=*/8});
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace sss
