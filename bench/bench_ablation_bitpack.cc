// Ablation: 3-bit dictionary compression for DNA (paper §6 "Dictionary
// Compression": "An alphabet of five symbols makes it possible to represent
// a symbol with three bits").
//
// Reports pack/decode throughput and the achieved memory ratio against the
// 1-byte-per-symbol StringPool baseline.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "util/bitpack.h"

namespace sss::bench {
namespace {

const BenchWorkload& Dna() {
  return SharedWorkload(gen::WorkloadKind::kDnaReads);
}

void BM_Bitpack_PackDataset(benchmark::State& state) {
  const BenchWorkload& w = Dna();
  size_t packed_bytes = 0;
  for (auto _ : state) {
    PackedDnaPool pool;
    for (size_t i = 0; i < w.dataset.size(); ++i) {
      benchmark::DoNotOptimize(pool.Add(w.dataset.View(i)).ok());
    }
    packed_bytes = pool.packed_bytes();
  }
  state.counters["packed_mb"] = static_cast<double>(packed_bytes) / 1e6;
  state.counters["raw_mb"] =
      static_cast<double>(w.dataset.pool().total_bytes()) / 1e6;
  state.counters["ratio"] =
      static_cast<double>(w.dataset.pool().total_bytes()) /
      static_cast<double>(packed_bytes);
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() *
                           w.dataset.pool().total_bytes()));
}
BENCHMARK(BM_Bitpack_PackDataset)->Unit(benchmark::kMillisecond);

void BM_Bitpack_DecodeCodes(benchmark::State& state) {
  const BenchWorkload& w = Dna();
  PackedDnaPool pool;
  for (size_t i = 0; i < w.dataset.size(); ++i) {
    pool.Add(w.dataset.View(i)).status().AbortIfNotOK();
  }
  std::vector<uint8_t> codes;
  size_t i = 0;
  for (auto _ : state) {
    pool.DecodeCodes(i++ % pool.size(), &codes);
    benchmark::DoNotOptimize(codes.data());
  }
  state.counters["symbols_per_read"] =
      static_cast<double>(pool.total_symbols()) /
      static_cast<double>(pool.size());
}
BENCHMARK(BM_Bitpack_DecodeCodes)->Unit(benchmark::kMicrosecond);

void BM_Bitpack_Unpack(benchmark::State& state) {
  const BenchWorkload& w = Dna();
  PackedDnaPool pool;
  for (size_t i = 0; i < w.dataset.size(); ++i) {
    pool.Add(w.dataset.View(i)).status().AbortIfNotOK();
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Unpack(i++ % pool.size()));
  }
}
BENCHMARK(BM_Bitpack_Unpack)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Ablation: 3-bit DNA dictionary compression",
               sss::gen::WorkloadKind::kDnaReads)
