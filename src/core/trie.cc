#include "core/trie.h"

#include <algorithm>

#include "core/internal/banded_row.h"
#include "util/macros.h"
#include "util/search_stats.h"

namespace sss {

TrieSearcher::TrieSearcher(SnapshotHandle snapshot, TriePruning pruning)
    : snapshot_(std::move(snapshot)),
      dataset_(snapshot_->dataset()),
      pruning_(pruning) {
  nodes_.emplace_back();  // root
  for (size_t id = 0; id < dataset_.size(); ++id) {
    Insert(dataset_.View(id), static_cast<uint32_t>(id));
  }
}

uint32_t TrieSearcher::ChildOrNull(const Node& node, unsigned char c) const {
  const auto it = std::lower_bound(
      node.children.begin(), node.children.end(), c,
      [](const auto& edge, unsigned char key) { return edge.first < key; });
  if (it == node.children.end() || it->first != c) return 0;  // 0 = none
  return it->second;
}

void TrieSearcher::Insert(std::string_view s, uint32_t id) {
  const auto len = static_cast<uint16_t>(s.size());
  uint32_t cur = 0;
  nodes_[0].min_len = std::min(nodes_[0].min_len, len);
  nodes_[0].max_len = std::max(nodes_[0].max_len, len);
  for (unsigned char c : s) {
    uint32_t next = ChildOrNull(nodes_[cur], c);
    if (next == 0) {
      next = static_cast<uint32_t>(nodes_.size());
      nodes_.emplace_back();
      Node& parent = nodes_[cur];
      const auto it = std::lower_bound(
          parent.children.begin(), parent.children.end(), c,
          [](const auto& edge, unsigned char key) {
            return edge.first < key;
          });
      parent.children.insert(it, {c, next});
    }
    cur = next;
    nodes_[cur].min_len = std::min(nodes_[cur].min_len, len);
    nodes_[cur].max_len = std::max(nodes_[cur].max_len, len);
  }
  nodes_[cur].terminal_ids.push_back(id);
}

TrieStats TrieSearcher::Stats() const {
  TrieStats stats;
  stats.num_nodes = nodes_.size();
  for (const Node& n : nodes_) {
    if (!n.terminal_ids.empty()) ++stats.num_terminal_nodes;
    stats.memory_bytes += sizeof(Node) +
                          n.children.capacity() * sizeof(n.children[0]) +
                          n.terminal_ids.capacity() * sizeof(uint32_t);
  }
  stats.max_depth = nodes_.empty() ? 0 : nodes_[0].max_len;
  return stats;
}

Status TrieSearcher::Search(const Query& query, const SearchContext& ctx,
                            MatchList* out) const {
  return pruning_ == TriePruning::kBandedRows
             ? SearchBanded(query, ctx, out)
             : SearchPaperRule(query, ctx, out);
}

Status TrieSearcher::SearchBanded(const Query& query, const SearchContext& ctx,
                                  MatchList* out) const {
  const int k = query.max_distance;
  const int lq = static_cast<int>(query.text.size());

  thread_local internal::BandedRows rows;
  rows.Init(query.text, k);

  // Iterative DFS; each frame remembers which child to try next so a node's
  // row (indexed by depth) stays valid while its subtree is explored.
  struct Frame {
    uint32_t node;
    int depth;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, 0, 0});

  StatsScope stats(ctx.stats);
  ++stats->trie_nodes_visited;  // root
  const size_t out_before = out->size();

  StopChecker stopper(ctx);
  while (!stack.empty()) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    Frame& frame = stack.back();
    const Node& node = nodes_[frame.node];

    if (frame.next_child == 0 && !node.terminal_ids.empty() &&
        rows.TerminalWithin(frame.depth)) {
      out->insert(out->end(), node.terminal_ids.begin(),
                  node.terminal_ids.end());
    }

    bool descended = false;
    while (frame.next_child < node.children.size()) {
      const auto [label, child_idx] = node.children[frame.next_child++];
      const Node& child = nodes_[child_idx];
      // Length bound (the paper's d_m slack, eq. 10): the subtree's length
      // range must intersect [l_q − k, l_q + k].
      if (static_cast<int>(child.min_len) > lq + k ||
          static_cast<int>(child.max_len) < lq - k) {
        ++stats->trie_nodes_pruned;
        continue;
      }
      const int child_depth = frame.depth + 1;
      // Row bound: the band minimum never decreases with depth.
      if (rows.Advance(child_depth, label) > k) {
        ++stats->trie_nodes_pruned;
        continue;
      }
      stack.push_back(Frame{child_idx, child_depth, 0});
      ++stats->trie_nodes_visited;
      descended = true;
      break;
    }
    if (!descended) stack.pop_back();
  }

  stats->matches_found += out->size() - out_before;
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status TrieSearcher::SearchPaperRule(const Query& query,
                                     const SearchContext& ctx,
                                     MatchList* out) const {
  const int k = query.max_distance;
  const int lq = static_cast<int>(query.text.size());

  thread_local internal::FullRows rows;
  rows.Init(query.text, k, nodes_[0].max_len);

  struct Frame {
    uint32_t node;
    int depth;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, 0, 0});

  StatsScope stats(ctx.stats);
  ++stats->trie_nodes_visited;  // root
  const size_t out_before = out->size();

  StopChecker stopper(ctx);
  while (!stack.empty()) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    Frame& frame = stack.back();
    const Node& node = nodes_[frame.node];

    if (frame.next_child == 0 && !node.terminal_ids.empty() &&
        rows.TerminalWithin(frame.depth)) {
      out->insert(out->end(), node.terminal_ids.begin(),
                  node.terminal_ids.end());
    }

    bool descended = false;
    while (frame.next_child < node.children.size()) {
      const auto [label, child_idx] = node.children[frame.next_child++];
      const Node& child = nodes_[child_idx];
      const int child_depth = frame.depth + 1;
      const int row_min = rows.Advance(child_depth, label);
      // The paper's condition (9): follow the branch only while
      // ed(x_0..i, y_0..i) ≤ k + d_m. The row-minimum conjunct guarantees
      // soundness independently of the rule (min never decreases with
      // depth), so results stay exact even where the paper's bound would
      // over-prune; pruning is never stronger than the paper's, which is
      // the behaviour being reproduced.
      const int d_m =
          internal::PaperLengthSlack(lq, child.min_len, child.max_len);
      if (rows.PrefixDistance(child_depth) > k + d_m && row_min > k) {
        ++stats->trie_nodes_pruned;
        continue;
      }
      stack.push_back(Frame{child_idx, child_depth, 0});
      ++stats->trie_nodes_visited;
      descended = true;
      break;
    }
    if (!descended) stack.pop_back();
  }

  stats->matches_found += out->size() - out_before;
  std::sort(out->begin(), out->end());
  return Status::OK();
}

}  // namespace sss
