// Shared test helpers: an independent brute-force edit-distance reference
// (deliberately written differently from any library kernel), random string
// factories, and a brute-force similarity search.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "io/dataset.h"
#include "util/random.h"

namespace sss::testing {

/// \brief Brute-force Levenshtein via plain recursion with memoization —
/// structurally unlike the DP kernels it validates.
inline int ReferenceEditDistance(std::string_view x, std::string_view y) {
  const size_t lx = x.size(), ly = y.size();
  std::vector<int> memo((lx + 1) * (ly + 1), -1);
  const auto idx = [ly](size_t i, size_t j) { return i * (ly + 1) + j; };
  // Iterative bottom-up over suffixes (i = chars of x left, j = of y).
  for (size_t i = 0; i <= lx; ++i) {
    for (size_t j = 0; j <= ly; ++j) {
      if (i == 0) {
        memo[idx(i, j)] = static_cast<int>(j);
      } else if (j == 0) {
        memo[idx(i, j)] = static_cast<int>(i);
      } else {
        const int same = x[lx - i] == y[ly - j] ? memo[idx(i - 1, j - 1)]
                                                : memo[idx(i - 1, j - 1)] + 1;
        memo[idx(i, j)] =
            std::min({same, memo[idx(i - 1, j)] + 1, memo[idx(i, j - 1)] + 1});
      }
    }
  }
  return memo[idx(lx, ly)];
}

/// \brief Uniform random string over `alphabet` with length in [min, max].
inline std::string RandomString(Xoshiro256* rng, std::string_view alphabet,
                                size_t min_len, size_t max_len) {
  const size_t len = min_len + rng->Uniform(max_len - min_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(alphabet[rng->Uniform(alphabet.size())]);
  }
  return s;
}

/// \brief A dataset of `n` random strings.
inline Dataset RandomDataset(Xoshiro256* rng, std::string_view alphabet,
                             size_t n, size_t min_len, size_t max_len,
                             AlphabetKind kind = AlphabetKind::kGeneric) {
  Dataset d("random", kind);
  for (size_t i = 0; i < n; ++i) {
    d.Add(RandomString(rng, alphabet, min_len, max_len));
  }
  return d;
}

/// \brief Brute-force similarity search (the ground truth for engine tests).
inline MatchList BruteForceSearch(const Dataset& dataset,
                                  const Query& query) {
  MatchList out;
  for (size_t id = 0; id < dataset.size(); ++id) {
    if (ReferenceEditDistance(query.text, dataset.View(id)) <=
        query.max_distance) {
      out.push_back(static_cast<uint32_t>(id));
    }
  }
  return out;
}

}  // namespace sss::testing
