#include "core/edit_distance.h"

#include <algorithm>
#include <cstdlib>

#include "util/macros.h"

namespace sss {

namespace {

inline int Min3(int a, int b, int c) {
  int m = a < b ? a : b;
  return m < c ? m : c;
}

inline int AbsLenDiff(std::string_view x, std::string_view y) {
  return static_cast<int>(x.size() > y.size() ? x.size() - y.size()
                                              : y.size() - x.size());
}

}  // namespace

int EditDistanceFullMatrix(std::string_view x, std::string_view y) {
  const size_t lx = x.size();
  const size_t ly = y.size();
  // The (l_x+1) × (l_y+1) matrix of §2.2, rows indexed by x.
  std::vector<std::vector<int>> m(lx + 1, std::vector<int>(ly + 1, 0));
  for (size_t i = 0; i <= lx; ++i) m[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= ly; ++j) m[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= lx; ++i) {
    for (size_t j = 1; j <= ly; ++j) {
      if (x[i - 1] == y[j - 1]) {
        m[i][j] = m[i - 1][j - 1];  // condition (3)
      } else {
        m[i][j] = 1 + Min3(m[i - 1][j], m[i][j - 1], m[i - 1][j - 1]);  // (4)
      }
    }
  }
  return m[lx][ly];
}

int EditDistanceTwoRow(std::string_view x, std::string_view y) {
  // Keep the shorter string horizontal so the rows are minimal.
  if (x.size() < y.size()) std::swap(x, y);
  const size_t lx = x.size();
  const size_t ly = y.size();
  std::vector<int> prev(ly + 1), cur(ly + 1);
  for (size_t j = 0; j <= ly; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= lx; ++i) {
    cur[0] = static_cast<int>(i);
    const char xi = x[i - 1];
    for (size_t j = 1; j <= ly; ++j) {
      cur[j] = xi == y[j - 1]
                   ? prev[j - 1]
                   : 1 + Min3(prev[j], cur[j - 1], prev[j - 1]);
    }
    std::swap(prev, cur);
  }
  return prev[ly];
}

int BoundedEditDistance(std::string_view x, std::string_view y, int k,
                        EditDistanceWorkspace* ws) {
  SSS_DCHECK(k >= 0);
  // Length filter, eq. (5): d = |l_x − l_y| is a lower bound on ed.
  if (AbsLenDiff(x, y) > k) return k + 1;
  if (k == 0) return x == y ? 0 : 1;
  ++ws->kernel.banded_calls;
  // Keep the shorter string horizontal.
  if (x.size() < y.size()) std::swap(x, y);
  const int lx = static_cast<int>(x.size());
  const int ly = static_cast<int>(y.size());
  // Degenerate row: ed(x, ε) = l_x, and the length filter already ensured
  // l_x ≤ k (the band machinery below assumes ly ≥ 1).
  if (ly == 0) return lx;
  const int inf = k + 1;  // any value > k means "no match"; saturate here

  // Banded DP: a cell (i, j) with |i − j| > k is ≥ |i − j| > k, so only the
  // band of width 2k+1 around the main diagonal is computed.
  ws->row0.assign(static_cast<size_t>(ly) + 1, inf);
  ws->row1.assign(static_cast<size_t>(ly) + 1, inf);
  int* prev = ws->row0.data();
  int* cur = ws->row1.data();
  for (int j = 0; j <= std::min(ly, k); ++j) prev[j] = j;

  for (int i = 1; i <= lx; ++i) {
    const int jlo = std::max(1, i - k);
    const int jhi = std::min(ly, i + k);
    if (jlo > jhi) {
      ++ws->kernel.early_aborts;  // band left the matrix entirely
      return inf;
    }
    cur[jlo - 1] = (i - (jlo - 1)) <= k && jlo - 1 == 0 ? i : inf;
    const char xi = x[i - 1];
    int band_min = inf;
    for (int j = jlo; j <= jhi; ++j) {
      int v;
      if (xi == y[j - 1]) {
        v = prev[j - 1];
      } else {
        v = 1 + Min3(prev[j], cur[j - 1], prev[j - 1]);
        if (v > inf) v = inf;
      }
      cur[j] = v;
      if (v < band_min) band_min = v;
    }
    // Early abort (generalizes conditions (6)/(7)): DP values never drop
    // below the running band minimum, so once the whole band exceeds k the
    // final cell must too.
    if (band_min > k) {
      ++ws->kernel.early_aborts;
      return inf;
    }
    // Reset the stale cell beyond the band so the next row reads inf there.
    if (jhi + 1 <= ly) cur[jhi + 1] = inf;
    std::swap(prev, cur);
  }
  return prev[ly] <= k ? prev[ly] : inf;
}

int BoundedEditDistance(std::string_view x, std::string_view y, int k) {
  EditDistanceWorkspace ws;
  return BoundedEditDistance(x, y, k, &ws);
}

namespace {

// Prepares ws->peq (256 bitmask entries) for pattern x; returns the cleanup
// list implicitly by zeroing only the touched entries afterwards in the
// callers, which reset via ClearPeq.
void BuildPeq(std::string_view x, std::vector<uint64_t>* peq) {
  peq->assign(256, 0);
  for (size_t i = 0; i < x.size(); ++i) {
    (*peq)[static_cast<unsigned char>(x[i])] |= uint64_t{1} << i;
  }
}

}  // namespace

int MyersEditDistance64(std::string_view x, std::string_view y,
                        EditDistanceWorkspace* ws) {
  SSS_DCHECK(x.size() <= 64);
  if (x.empty()) return static_cast<int>(y.size());
  const int m = static_cast<int>(x.size());
  BuildPeq(x, &ws->peq);
  const uint64_t* peq = ws->peq.data();
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  int score = m;
  const uint64_t last = uint64_t{1} << (m - 1);
  for (char c : y) {
    const uint64_t eq = peq[static_cast<unsigned char>(c)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) ++score;
    if (mh & last) --score;
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  return score;
}

namespace {

// One column step of Hyyrö's blocked Myers for block `b`.
// hin ∈ {-1, 0, +1} is the horizontal delta entering the block from above;
// returns the delta leaving the block.
inline int AdvanceBlock(uint64_t* pv_arr, uint64_t* mv_arr, uint64_t eq,
                        size_t b, uint64_t out_mask, int hin) {
  uint64_t pv = pv_arr[b];
  uint64_t mv = mv_arr[b];
  const uint64_t xv = eq | mv;
  if (hin < 0) eq |= 1;
  const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
  uint64_t ph = mv | ~(xh | pv);
  uint64_t mh = pv & xh;
  int hout = 0;
  if (ph & out_mask) hout = 1;
  if (mh & out_mask) hout = -1;
  ph <<= 1;
  mh <<= 1;
  if (hin < 0) {
    mh |= 1;
  } else if (hin > 0) {
    ph |= 1;
  }
  pv_arr[b] = mh | ~(xv | ph);
  mv_arr[b] = ph & xv;
  return hout;
}

}  // namespace

int MyersEditDistanceBlocked(std::string_view x, std::string_view y,
                             EditDistanceWorkspace* ws) {
  if (x.empty()) return static_cast<int>(y.size());
  if (x.size() <= 64) return MyersEditDistance64(x, y, ws);
  const size_t m = x.size();
  const size_t blocks = (m + 63) / 64;

  // peq_block is laid out [char][block].
  ws->peq_block.assign(256 * blocks, 0);
  for (size_t i = 0; i < m; ++i) {
    ws->peq_block[static_cast<unsigned char>(x[i]) * blocks + i / 64] |=
        uint64_t{1} << (i % 64);
  }
  ws->pv_block.assign(blocks, ~uint64_t{0});
  ws->mv_block.assign(blocks, 0);

  uint64_t* pv = ws->pv_block.data();
  uint64_t* mv = ws->mv_block.data();
  const uint64_t* peq = ws->peq_block.data();

  int score = static_cast<int>(m);
  const size_t last_block = blocks - 1;
  const uint64_t last_mask = uint64_t{1} << ((m - 1) % 64);

  for (char c : y) {
    const uint64_t* eq_row = peq + static_cast<unsigned char>(c) * blocks;
    // The top boundary row D[0][j] = j advances by +1 each column — the
    // blocked equivalent of the unconditional `ph = (ph << 1) | 1` in the
    // single-word kernel.
    int carry = 1;
    for (size_t b = 0; b < blocks; ++b) {
      const uint64_t out_mask =
          b == last_block ? last_mask : (uint64_t{1} << 63);
      carry = AdvanceBlock(pv, mv, eq_row[b], b, out_mask, carry);
    }
    score += carry;
  }
  return score;
}

int BoundedMyers(std::string_view x, std::string_view y, int k,
                 EditDistanceWorkspace* ws) {
  SSS_DCHECK(k >= 0);
  if (AbsLenDiff(x, y) > k) return k + 1;
  if (k == 0) return x == y ? 0 : 1;
  if (x.empty()) return static_cast<int>(y.size());
  ++ws->kernel.myers_calls;

  // Run the bit-parallel recurrence with an early abort: each remaining text
  // column can lower the score by at most 1, so once
  // score − columns_left > k the final score must exceed k.
  const int n = static_cast<int>(y.size());
  if (x.size() <= 64) {
    const int m = static_cast<int>(x.size());
    BuildPeq(x, &ws->peq);
    const uint64_t* peq = ws->peq.data();
    uint64_t pv = ~uint64_t{0};
    uint64_t mvec = 0;
    int score = m;
    const uint64_t last = uint64_t{1} << (m - 1);
    for (int col = 0; col < n; ++col) {
      const uint64_t eq = peq[static_cast<unsigned char>(y[col])];
      const uint64_t xv = eq | mvec;
      const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
      uint64_t ph = mvec | ~(xh | pv);
      uint64_t mh = pv & xh;
      if (ph & last) ++score;
      if (mh & last) --score;
      ph = (ph << 1) | 1;
      mh <<= 1;
      pv = mh | ~(xv | ph);
      mvec = ph & xv;
      if (score - (n - 1 - col) > k) {
        ++ws->kernel.early_aborts;
        return k + 1;
      }
    }
    return score <= k ? score : k + 1;
  }

  // Long pattern: blocked recurrence with the same abort.
  const size_t m = x.size();
  const size_t blocks = (m + 63) / 64;
  ws->peq_block.assign(256 * blocks, 0);
  for (size_t i = 0; i < m; ++i) {
    ws->peq_block[static_cast<unsigned char>(x[i]) * blocks + i / 64] |=
        uint64_t{1} << (i % 64);
  }
  ws->pv_block.assign(blocks, ~uint64_t{0});
  ws->mv_block.assign(blocks, 0);
  uint64_t* pv = ws->pv_block.data();
  uint64_t* mv = ws->mv_block.data();
  const uint64_t* peq = ws->peq_block.data();
  int score = static_cast<int>(m);
  const size_t last_block = blocks - 1;
  const uint64_t last_mask = uint64_t{1} << ((m - 1) % 64);
  for (int col = 0; col < n; ++col) {
    const uint64_t* eq_row =
        peq + static_cast<unsigned char>(y[col]) * blocks;
    int carry = 1;  // top boundary row, as in MyersEditDistanceBlocked
    for (size_t b = 0; b < blocks; ++b) {
      const uint64_t out_mask =
          b == last_block ? last_mask : (uint64_t{1} << 63);
      carry = AdvanceBlock(pv, mv, eq_row[b], b, out_mask, carry);
    }
    score += carry;
    if (score - (n - 1 - col) > k) {
      ++ws->kernel.early_aborts;
      return k + 1;
    }
  }
  return score <= k ? score : k + 1;
}

int OsaDistance(std::string_view x, std::string_view y) {
  const size_t lx = x.size();
  const size_t ly = y.size();
  // Three rolling rows: the transposition case reads two rows back.
  std::vector<int> r0(ly + 1), r1(ly + 1), r2(ly + 1);
  int* prev2 = r0.data();
  int* prev = r1.data();
  int* cur = r2.data();
  for (size_t j = 0; j <= ly; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= lx; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= ly; ++j) {
      int v = x[i - 1] == y[j - 1]
                  ? prev[j - 1]
                  : 1 + Min3(prev[j], cur[j - 1], prev[j - 1]);
      if (i > 1 && j > 1 && x[i - 1] == y[j - 2] && x[i - 2] == y[j - 1]) {
        v = std::min(v, prev2[j - 2] + 1);  // adjacent transposition
      }
      cur[j] = v;
    }
    int* tmp = prev2;
    prev2 = prev;
    prev = cur;
    cur = tmp;
  }
  return prev[ly];
}

int BoundedOsa(std::string_view x, std::string_view y, int k,
               EditDistanceWorkspace* ws) {
  SSS_DCHECK(k >= 0);
  // The length filter still holds: every operation (including
  // transposition, which preserves length) changes |l_x − l_y| by ≤ 1.
  const size_t diff =
      x.size() > y.size() ? x.size() - y.size() : y.size() - x.size();
  if (diff > static_cast<size_t>(k)) return k + 1;
  if (k == 0) return x == y ? 0 : 1;
  if (x.size() < y.size()) std::swap(x, y);
  const int lx = static_cast<int>(x.size());
  const int ly = static_cast<int>(y.size());
  if (ly == 0) return lx;
  const int inf = k + 1;

  // Banded variant of OsaDistance (cells off the |i−j| ≤ k band are > k,
  // as for plain Levenshtein: transpositions cost 1 like everything else).
  ws->row0.assign(static_cast<size_t>(ly) + 1, inf);
  ws->row1.assign(static_cast<size_t>(ly) + 1, inf);
  thread_local std::vector<int> row2_storage;
  row2_storage.assign(static_cast<size_t>(ly) + 1, inf);
  int* prev2 = row2_storage.data();
  int* prev = ws->row0.data();
  int* cur = ws->row1.data();
  for (int j = 0; j <= std::min(ly, k); ++j) prev[j] = j;

  for (int i = 1; i <= lx; ++i) {
    const int jlo = std::max(1, i - k);
    const int jhi = std::min(ly, i + k);
    if (jlo > jhi) return inf;
    cur[jlo - 1] = (i - (jlo - 1)) <= k && jlo - 1 == 0 ? i : inf;
    int band_min = inf;
    for (int j = jlo; j <= jhi; ++j) {
      int v;
      if (x[i - 1] == y[j - 1]) {
        v = prev[j - 1];
      } else {
        v = 1 + Min3(prev[j], cur[j - 1], prev[j - 1]);
      }
      if (i > 1 && j > 1 && x[i - 1] == y[j - 2] && x[i - 2] == y[j - 1]) {
        const int t = prev2[j - 2] + 1;
        if (t < v) v = t;
      }
      if (v > inf) v = inf;
      cur[j] = v;
      if (v < band_min) band_min = v;
    }
    if (band_min > k) return inf;
    if (jhi + 1 <= ly) cur[jhi + 1] = inf;
    int* tmp = prev2;
    prev2 = prev;
    prev = cur;
    cur = tmp;
  }
  return prev[ly] <= k ? prev[ly] : inf;
}

bool WithinDistance(std::string_view x, std::string_view y, int k,
                    EditDistanceWorkspace* ws) {
  if (AbsLenDiff(x, y) > k) return false;
  if (k == 0) return x == y;
  // Small thresholds favor the banded DP (2k+1 cells per row); larger ones
  // favor the bit-parallel kernel whose cost is independent of k.
  if (k <= 3) return BoundedEditDistance(x, y, k, ws) <= k;
  return BoundedMyers(x, y, k, ws) <= k;
}

}  // namespace sss
