// LanePool — the candidate collection restructured for many-vs-many
// verification (core/simd_verify).
//
// The byte StringPool stores candidates one after another (AoS): verifying
// candidate i touches memory unrelated to candidate i+1, and the Myers
// kernel state for one pair occupies one 64-bit word of an entire register.
// The lane pool transposes: candidates are grouped into *lanes* of
// kLaneWidth = 4, and each group's text is stored column-major — column j
// holds symbol j of all four lane members, so one verify pass walks all
// four candidates with one sequential read stream and keeps four Myers
// states live per register.
//
// Groups are formed inside half-open length buckets [i·w, (i+1)·w) (w =
// kDefaultLengthBucketWidth, matching the BatchPlanner's query buckets).
// The half-open predicate is deliberate: a candidate whose length lands
// exactly on a bucket boundary belongs to exactly ONE bucket — the earlier
// closed-interval bucketing scanned boundary candidates from both adjacent
// buckets, duplicating their verify work and their match output (the
// regression test BucketBoundaryCandidates covers this). Ids within a
// bucket stay ascending, so a bucket intersected with an id shard is a
// contiguous span of its groups.
//
// Two column layouts per group, chosen at build time:
//   * byte columns — kLaneWidth raw bytes per column (any alphabet);
//   * packed2 columns — ONE byte per column carrying four 2-bit
//     Dna2Codec codes (lane l in bits [2l, 2l+1]), available when all
//     four members are pure {A,C,G,T}. A DNA group's text stream shrinks
//     4×, and the verifier indexes a 4-entry peq table instead of 256.
// Reads containing 'N' (or any other byte) simply land in byte-mode groups;
// the two layouts coexist bucket by bucket, group by group.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/batch_planner.h"
#include "io/dataset.h"

namespace sss {

/// \brief Candidates verified per lane-kernel pass. Matches the four 64-bit
/// lanes of one AVX2 register (and the SWAR tier's unroll factor).
inline constexpr uint32_t kLaneWidth = 4;

/// \brief One group of up to kLaneWidth candidates, viewed for the
/// verifier. Lanes beyond `active` are zero-length padding; kernels run
/// them anyway (branch-free) and callers ignore their verdicts.
struct LaneGroupView {
  const uint32_t* ids = nullptr;      ///< kLaneWidth ids (padding: UINT32_MAX)
  const uint32_t* lengths = nullptr;  ///< kLaneWidth lengths (padding: 0)
  const uint8_t* data = nullptr;      ///< column-major text (see layout above)
  uint32_t num_cols = 0;              ///< max length over the group's lanes
  uint32_t active = 0;                ///< live lanes: 1..kLaneWidth
  bool packed2 = false;  ///< true: 1 byte/column of 2-bit codes; false:
                         ///< kLaneWidth bytes/column of raw symbols
};

/// \brief Tuning knobs for LanePool::Build.
struct LanePoolOptions {
  /// Width of the half-open length buckets candidates are grouped in.
  size_t length_bucket_width = kDefaultLengthBucketWidth;
  /// Whether eligible groups may use the 2-bit packed column layout.
  bool allow_packed2 = true;
};

/// \brief The transposed, length-bucketed candidate pool. Immutable once
/// built; safe to share across threads.
class LanePool {
 public:
  /// \brief One length bucket: all candidates with min_len <= len < max_len
  /// (each candidate is a member of exactly one bucket), in ascending id
  /// order, grouped kLaneWidth at a time.
  struct Bucket {
    uint32_t min_len = 0;  ///< inclusive
    uint32_t max_len = 0;  ///< exclusive
    uint32_t num_candidates = 0;
    /// Per candidate, padded to a multiple of kLaneWidth (ids with
    /// UINT32_MAX, lengths with 0) so every group reads kLaneWidth slots.
    std::vector<uint32_t> ids;
    std::vector<uint32_t> lengths;
    /// Per group: byte offset into `data`, column count, layout flag.
    std::vector<uint64_t> group_offsets;
    std::vector<uint32_t> group_cols;
    std::vector<uint8_t> group_packed2;
    std::vector<uint8_t> data;

    size_t num_groups() const noexcept { return group_offsets.size(); }
  };

  /// \brief Builds the pool over `dataset` (ids 0..size-1).
  static LanePool Build(const Dataset& dataset, LanePoolOptions options = {});

  size_t size() const noexcept { return total_candidates_; }
  const std::vector<Bucket>& buckets() const noexcept { return buckets_; }

  /// \brief The g-th group of `bucket` (g < bucket.num_groups()).
  LaneGroupView Group(const Bucket& bucket, size_t g) const noexcept {
    LaneGroupView view;
    view.ids = bucket.ids.data() + g * kLaneWidth;
    view.lengths = bucket.lengths.data() + g * kLaneWidth;
    view.data = bucket.data.data() + bucket.group_offsets[g];
    view.num_cols = bucket.group_cols[g];
    const uint32_t remaining =
        bucket.num_candidates - static_cast<uint32_t>(g * kLaneWidth);
    view.active = remaining < kLaneWidth ? remaining : kLaneWidth;
    view.packed2 = bucket.group_packed2[g] != 0;
    return view;
  }

  /// \brief Heap bytes held (for memory reporting next to the engines').
  size_t memory_bytes() const noexcept;

 private:
  std::vector<Bucket> buckets_;
  size_t total_candidates_ = 0;
};

}  // namespace sss
