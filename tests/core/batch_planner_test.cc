#include "core/batch_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace sss {
namespace {

QuerySet MakeQueries(std::initializer_list<Query> qs) { return QuerySet(qs); }

// Every query index must appear in exactly one group.
void ExpectCoversAllQueries(const BatchPlan& plan, size_t n) {
  std::set<uint32_t> seen;
  for (const QueryGroup& g : plan.groups) {
    for (uint32_t qi : g) {
      EXPECT_TRUE(seen.insert(qi).second) << "query " << qi << " planned twice";
      EXPECT_LT(qi, n);
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(BatchPlannerTest, EmptyBatchYieldsEmptyPlan) {
  BatchPlanner planner;
  const BatchPlan& plan = planner.Plan({}, 0, 100);
  EXPECT_TRUE(plan.groups.empty());
  EXPECT_EQ(plan.num_queries, 0u);
}

TEST(BatchPlannerTest, GroupsByThresholdAndLengthBucket) {
  BatchPlannerOptions options;
  options.length_bucket_width = 4;
  BatchPlanner planner(options);
  const QuerySet queries = MakeQueries({
      {"abc", 1},       // bucket 0, k=1
      {"abd", 1},       // bucket 0, k=1 → same group
      {"abcdefgh", 1},  // bucket 2, k=1 → different group
      {"abc", 2},       // bucket 0, k=2 → different group
  });
  const BatchPlan& plan = planner.Plan(queries, 0, 100);
  EXPECT_EQ(plan.groups.size(), 3u);
  ExpectCoversAllQueries(plan, queries.size());

  // The (k=1, bucket 0) group holds queries 0 and 1, ascending.
  const auto it = std::find_if(
      plan.groups.begin(), plan.groups.end(),
      [](const QueryGroup& g) { return g.num_queries == 2; });
  ASSERT_NE(it, plan.groups.end());
  EXPECT_EQ(it->queries[0], 0u);
  EXPECT_EQ(it->queries[1], 1u);
  EXPECT_EQ(it->max_distance, 1);
  EXPECT_EQ(it->min_query_len, 3u);
  EXPECT_EQ(it->max_query_len, 3u);
}

TEST(BatchPlannerTest, CandidateWindowIsLengthFilterOverTheGroup) {
  BatchPlanner planner;
  const QuerySet queries = MakeQueries({{"abcd", 2}, {"abcdefg", 2}});
  const BatchPlan& plan = planner.Plan(queries, 0, 100);
  ASSERT_EQ(plan.groups.size(), 1u);
  const QueryGroup& g = plan.groups[0];
  EXPECT_EQ(g.candidate_min_len, 2u);  // 4 - 2
  EXPECT_EQ(g.candidate_max_len, 9u);  // 7 + 2
  EXPECT_FALSE(g.skip);
}

TEST(BatchPlannerTest, WindowClampsAtZero) {
  BatchPlanner planner;
  const QuerySet queries = MakeQueries({{"ab", 5}});
  const BatchPlan& plan = planner.Plan(queries, 0, 100);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].candidate_min_len, 0u);
  EXPECT_EQ(plan.groups[0].candidate_max_len, 7u);
}

TEST(BatchPlannerTest, SkipsGroupsOutsideDatasetLengths) {
  BatchPlanner planner;
  const QuerySet queries = MakeQueries({
      {"a", 1},                      // window [0,2] — misses lengths [10,20]
      {"abcdefghijklm", 2},          // window [11,15] — overlaps
      {"abcdefghijklmnopqrstuvwxyz", 1},  // window [25,27] — misses
  });
  const BatchPlan& plan = planner.Plan(queries, 10, 20);
  ASSERT_EQ(plan.groups.size(), 3u);
  size_t skipped = 0;
  for (const QueryGroup& g : plan.groups) {
    if (g.skip) ++skipped;
  }
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(plan.num_skipped_queries, 2u);
}

TEST(BatchPlannerTest, ReplanningReusesThePlannerWithoutLeaks) {
  BatchPlanner planner;
  for (int round = 0; round < 100; ++round) {
    QuerySet queries;
    for (int i = 0; i < 64; ++i) {
      queries.push_back({std::string(1 + (i % 13), 'x'), i % 4});
    }
    const BatchPlan& plan = planner.Plan(queries, 1, 13);
    ExpectCoversAllQueries(plan, queries.size());
    for (const QueryGroup& g : plan.groups) EXPECT_FALSE(g.skip);
  }
}

TEST(BatchPlannerTest, DeterministicAcrossInputPermutations) {
  // The same multiset of queries must produce the same groups regardless of
  // arrival order (indices differ; the grouped (text, k) multisets do not).
  const QuerySet a = MakeQueries(
      {{"aa", 1}, {"bbbbbbbbbb", 1}, {"cc", 1}, {"dddddddddd", 1}});
  const QuerySet b = MakeQueries(
      {{"dddddddddd", 1}, {"cc", 1}, {"bbbbbbbbbb", 1}, {"aa", 1}});
  BatchPlanner planner;
  std::vector<std::vector<std::pair<std::string, int>>> grouped_a, grouped_b;
  for (const QueryGroup& g : planner.Plan(a, 0, 100).groups) {
    std::vector<std::pair<std::string, int>> members;
    for (uint32_t qi : g) members.emplace_back(a[qi].text, a[qi].max_distance);
    std::sort(members.begin(), members.end());
    grouped_a.push_back(std::move(members));
  }
  for (const QueryGroup& g : planner.Plan(b, 0, 100).groups) {
    std::vector<std::pair<std::string, int>> members;
    for (uint32_t qi : g) members.emplace_back(b[qi].text, b[qi].max_distance);
    std::sort(members.begin(), members.end());
    grouped_b.push_back(std::move(members));
  }
  EXPECT_EQ(grouped_a, grouped_b);
}

}  // namespace
}  // namespace sss
