// Ablation: Hamming vs edit distance on the DNA workload.
//
// PETER (the paper's §2.3 related work) supports both measures; many read
// pipelines use Hamming because substitution-dominated data doesn't need
// indels. This bench quantifies what that buys: Hamming verification is
// O(n/8) words vs the edit kernels' O(k·n) / O(n²/64), and the Hamming trie
// prunes on exact length.
//
// Caveat shown by the matches counter: Hamming finds FEWER matches (a
// single indel shifts every later position), so this is a semantics trade,
// not a free speedup.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/hamming.h"
#include "core/scan.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kDnaReads;

void BM_EditScan(benchmark::State& state) {
  static const auto* engine =
      new SequentialScanSearcher(SharedWorkload(kKind).dataset, ScanOptions{});
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, *engine, w.Batch(100),
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_EditScan)->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

void BM_HammingScan(benchmark::State& state) {
  static const auto* engine =
      new HammingScanSearcher(SharedWorkload(kKind).dataset);
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, *engine, w.Batch(100),
                    {ExecutionStrategy::kSerial, 0});
}
BENCHMARK(BM_HammingScan)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

void BM_HammingTrie(benchmark::State& state) {
  static const auto* engine =
      new HammingTrieSearcher(SharedWorkload(kKind).dataset);
  const BenchWorkload& w = SharedWorkload(kKind);
  RunBatchBenchmark(state, *engine, w.Batch(100),
                    {ExecutionStrategy::kSerial, 0});
  state.counters["index_mb"] =
      static_cast<double>(engine->memory_bytes()) / 1e6;
}
BENCHMARK(BM_HammingTrie)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Ablation: Hamming vs edit distance, DNA reads",
               sss::gen::WorkloadKind::kDnaReads)
