#include "core/lane_pool.h"

#include <algorithm>

#include "util/bitpack.h"

namespace sss {

namespace {

// Writes one group's text into bucket->data, choosing the packed2 layout
// when every live lane is pure {A,C,G,T} (padding lanes are empty and never
// disqualify). `views[l]` is the text of lane l (empty for padding).
void AppendGroup(const std::string_view views[kLaneWidth], uint32_t cols,
                 bool allow_packed2, LanePool::Bucket* bucket) {
  bool packed2 = allow_packed2;
  for (uint32_t l = 0; l < kLaneWidth && packed2; ++l) {
    packed2 = Dna2Codec::IsValid(views[l]);
  }
  bucket->group_offsets.push_back(bucket->data.size());
  bucket->group_cols.push_back(cols);
  bucket->group_packed2.push_back(packed2 ? 1 : 0);
  if (packed2) {
    // One byte per column: lane l's 2-bit code in bits [2l, 2l+1]; columns
    // beyond a lane's length carry code 0, which the verifier never reads
    // (each lane's score is captured at its own length).
    for (uint32_t j = 0; j < cols; ++j) {
      uint8_t byte = 0;
      for (uint32_t l = 0; l < kLaneWidth; ++l) {
        if (j < views[l].size()) {
          byte |= static_cast<uint8_t>(Dna2Codec::Encode(views[l][j])
                                       << (2 * l));
        }
      }
      bucket->data.push_back(byte);
    }
  } else {
    // kLaneWidth raw bytes per column, zero-padded past each lane's end.
    for (uint32_t j = 0; j < cols; ++j) {
      for (uint32_t l = 0; l < kLaneWidth; ++l) {
        bucket->data.push_back(
            j < views[l].size() ? static_cast<uint8_t>(views[l][j]) : 0);
      }
    }
  }
}

}  // namespace

LanePool LanePool::Build(const Dataset& dataset, LanePoolOptions options) {
  LanePool pool;
  pool.total_candidates_ = dataset.size();
  if (dataset.empty()) return pool;
  const size_t width =
      options.length_bucket_width == 0 ? 1 : options.length_bucket_width;

  // Pass 1: count members per bucket index (bucket i holds lengths in the
  // half-open window [i·width, (i+1)·width) — exactly one bucket per
  // candidate, including lengths exactly on a boundary).
  size_t max_bucket = 0;
  for (size_t id = 0; id < dataset.size(); ++id) {
    max_bucket = std::max(max_bucket, dataset.Length(id) / width);
  }
  std::vector<uint32_t> counts(max_bucket + 1, 0);
  for (size_t id = 0; id < dataset.size(); ++id) {
    ++counts[dataset.Length(id) / width];
  }

  // Non-empty buckets only, ascending by length window.
  std::vector<int32_t> bucket_of(max_bucket + 1, -1);
  for (size_t b = 0; b <= max_bucket; ++b) {
    if (counts[b] == 0) continue;
    bucket_of[b] = static_cast<int32_t>(pool.buckets_.size());
    Bucket bucket;
    bucket.min_len = static_cast<uint32_t>(b * width);
    bucket.max_len = static_cast<uint32_t>((b + 1) * width);
    const uint32_t padded =
        (counts[b] + kLaneWidth - 1) / kLaneWidth * kLaneWidth;
    bucket.ids.reserve(padded);
    bucket.lengths.reserve(padded);
    pool.buckets_.push_back(std::move(bucket));
  }

  // Pass 2: distribute ids (ascending id order is preserved within each
  // bucket because ids are visited in order).
  for (size_t id = 0; id < dataset.size(); ++id) {
    Bucket& bucket =
        pool.buckets_[static_cast<size_t>(bucket_of[dataset.Length(id) / width])];
    bucket.ids.push_back(static_cast<uint32_t>(id));
    bucket.lengths.push_back(static_cast<uint32_t>(dataset.Length(id)));
  }

  // Pass 3: pad to whole groups and transpose each group's text.
  for (Bucket& bucket : pool.buckets_) {
    bucket.num_candidates = static_cast<uint32_t>(bucket.ids.size());
    while (bucket.ids.size() % kLaneWidth != 0) {
      bucket.ids.push_back(UINT32_MAX);
      bucket.lengths.push_back(0);
    }
    const size_t groups = bucket.ids.size() / kLaneWidth;
    bucket.group_offsets.reserve(groups);
    bucket.group_cols.reserve(groups);
    bucket.group_packed2.reserve(groups);
    for (size_t g = 0; g < groups; ++g) {
      std::string_view views[kLaneWidth];
      uint32_t cols = 0;
      for (uint32_t l = 0; l < kLaneWidth; ++l) {
        const size_t slot = g * kLaneWidth + l;
        if (slot < bucket.num_candidates) {
          views[l] = dataset.View(bucket.ids[slot]);
          cols = std::max(cols, static_cast<uint32_t>(views[l].size()));
        }
      }
      AppendGroup(views, cols, options.allow_packed2, &bucket);
    }
  }
  return pool;
}

size_t LanePool::memory_bytes() const noexcept {
  size_t bytes = buckets_.capacity() * sizeof(Bucket);
  for (const Bucket& bucket : buckets_) {
    bytes += bucket.ids.capacity() * sizeof(uint32_t) +
             bucket.lengths.capacity() * sizeof(uint32_t) +
             bucket.group_offsets.capacity() * sizeof(uint64_t) +
             bucket.group_cols.capacity() * sizeof(uint32_t) +
             bucket.group_packed2.capacity() +
             bucket.data.capacity();
  }
  return bytes;
}

}  // namespace sss
