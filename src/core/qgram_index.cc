#include "core/qgram_index.h"

#include <algorithm>

#include "core/edit_distance.h"
#include "core/filters.h"
#include "util/macros.h"
#include "util/search_stats.h"

namespace sss {

namespace {

// Same FNV-1a the q-gram filter uses; collisions merge buckets, which only
// adds candidates (never loses one), so the index stays sound.
uint32_t HashGram(const char* p, int q) {
  uint32_t h = 2166136261u;
  for (int i = 0; i < q; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 16777619u;
  }
  return h;
}

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

QGramIndexSearcher::QGramIndexSearcher(SnapshotHandle snapshot,
                                       QGramIndexOptions options)
    : snapshot_(std::move(snapshot)),
      dataset_(snapshot_->dataset()),
      options_(options) {
  SSS_CHECK(options_.q >= 1);
  // Bucket count: roughly one bucket per two grams keeps lists short
  // without exploding memory on small datasets.
  const size_t total_grams_estimate = dataset_.pool().total_bytes();
  const size_t buckets = std::max<size_t>(
      64, RoundUpToPowerOfTwo(total_grams_estimate / 2 + 1));
  bucket_mask_ = buckets - 1;

  // Two passes: count, then fill (classic counting-sort layout, so each
  // posting list is contiguous).
  std::vector<uint64_t> counts(buckets + 1, 0);
  const auto for_each_gram = [&](size_t id, auto&& fn) {
    const std::string_view s = dataset_.View(id);
    if (s.size() < static_cast<size_t>(options_.q)) return;
    for (size_t i = 0; i + options_.q <= s.size(); ++i) {
      fn(BucketOf(HashGram(s.data() + i, options_.q)));
    }
  };
  for (size_t id = 0; id < dataset_.size(); ++id) {
    for_each_gram(id, [&](size_t bucket) { ++counts[bucket + 1]; });
  }
  for (size_t b = 1; b <= buckets; ++b) counts[b] += counts[b - 1];
  bucket_offsets_ = counts;

  postings_.resize(bucket_offsets_[buckets]);
  std::vector<uint64_t> cursor(bucket_offsets_.begin(),
                               bucket_offsets_.end() - 1);
  for (size_t id = 0; id < dataset_.size(); ++id) {
    for_each_gram(id, [&](size_t bucket) {
      postings_[cursor[bucket]++] = static_cast<uint32_t>(id);
    });
  }
}

size_t QGramIndexSearcher::memory_bytes() const {
  return postings_.size() * sizeof(uint32_t) +
         bucket_offsets_.size() * sizeof(uint64_t);
}

Status QGramIndexSearcher::ScanFallback(const Query& query,
                                        const SearchContext& ctx,
                                        MatchList* out) const {
  thread_local EditDistanceWorkspace ws;
  const int k = query.max_distance;
  StatsScope stats(ctx.stats);
  const KernelCounters kernel_before = ws.kernel;
  const size_t out_before = out->size();
  const uint64_t length_rejects_before = stats->length_filter_rejects;
  StopChecker stopper(ctx);
  for (uint32_t id = 0; id < dataset_.size(); ++id) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    if (!LengthFilterPasses(query.text.size(), dataset_.Length(id), k)) {
      ++stats->length_filter_rejects;
      continue;
    }
    if (WithinDistance(query.text, dataset_.View(id), k, &ws)) {
      out->push_back(id);
    }
  }
  stats->candidates_considered += dataset_.size();
  stats->verify_calls += dataset_.size() -
                         (stats->length_filter_rejects -
                          length_rejects_before);
  stats->matches_found += out->size() - out_before;
  stats.AddKernelDelta(ws.kernel, kernel_before);
  return Status::OK();
}

Status QGramIndexSearcher::VerifyCandidates(
    const Query& query, const SearchContext& ctx,
    const std::vector<uint32_t>& candidates, MatchList* out) const {
  thread_local EditDistanceWorkspace ws;
  const int k = query.max_distance;
  StatsScope stats(ctx.stats);
  const KernelCounters kernel_before = ws.kernel;
  const size_t out_before = out->size();
  const uint64_t length_rejects_before = stats->length_filter_rejects;
  StopChecker stopper(ctx);
  for (uint32_t id : candidates) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    if (!LengthFilterPasses(query.text.size(), dataset_.Length(id), k)) {
      ++stats->length_filter_rejects;
      continue;
    }
    if (WithinDistance(query.text, dataset_.View(id), k, &ws)) {
      out->push_back(id);
    }
  }
  stats->candidates_considered += candidates.size();
  stats->verify_calls += candidates.size() -
                         (stats->length_filter_rejects -
                          length_rejects_before);
  stats->matches_found += out->size() - out_before;
  stats.AddKernelDelta(ws.kernel, kernel_before);
  return Status::OK();
}

Status QGramIndexSearcher::Search(const Query& query, const SearchContext& ctx,
                                  MatchList* out) const {
  const int k = query.max_distance;
  const int q = options_.q;
  const int64_t lq = static_cast<int64_t>(query.text.size());
  const int64_t threshold = lq - q + 1 - static_cast<int64_t>(k) * q;

  if (threshold <= 0) {
    // The count bound is vacuous: every id is a candidate.
    return ScanFallback(query, ctx, out);
  }

  // Gather posting hits per candidate. Collect all postings for the query's
  // grams, sort, and count runs — cheaper than a hash map for the short
  // lists typical here, and it leaves candidates in ascending id order.
  thread_local std::vector<uint32_t> hits;
  hits.clear();
  for (size_t i = 0; i + q <= query.text.size(); ++i) {
    const size_t bucket = BucketOf(HashGram(query.text.data() + i, q));
    const uint64_t begin = bucket_offsets_[bucket];
    const uint64_t end = bucket_offsets_[bucket + 1];
    hits.insert(hits.end(), postings_.begin() + begin,
                postings_.begin() + end);
  }
  std::sort(hits.begin(), hits.end());

  thread_local std::vector<uint32_t> candidates;
  candidates.clear();
  for (size_t i = 0; i < hits.size();) {
    size_t j = i;
    while (j < hits.size() && hits[j] == hits[i]) ++j;
    if (static_cast<int64_t>(j - i) >= threshold) {
      candidates.push_back(hits[i]);
    }
    i = j;
  }
  if (ctx.stats != nullptr) {
    StatsScope stats(ctx.stats);
    stats->qgram_candidates += candidates.size();
  }
  return VerifyCandidates(query, ctx, candidates, out);
}

}  // namespace sss
