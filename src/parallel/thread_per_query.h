// Thread-per-query execution — the paper's parallelism strategy 1 (§3.5/3.6):
// "open and close as many threads as possible", i.e. spawn one OS thread per
// query and join it. The paper keeps this implementation *because it loses*
// (Table III row 5 regresses vs. row 4): thread create/join costs dominate
// short queries. We reproduce it for the same reason.
#pragma once

#include <cstddef>
#include <functional>

#include "util/cancellation.h"

namespace sss {

/// \brief Runs fn(i) for i in [0, n), one dedicated std::thread per item.
///
/// `max_live` bounds how many threads exist at once (0 = unbounded, the
/// paper's literal strategy). The bound exists so full-scale runs cannot
/// exhaust thread limits in constrained containers; the default of 0 keeps
/// the paper's behaviour.
///
/// When `stop` requests a stop, no further threads are spawned; already
/// spawned threads are joined as usual (in-progress work stops
/// cooperatively, via the SearchContext the items themselves observe).
///
/// Returns the number of threads actually spawned (== items executed; less
/// than n only when a stop request cut the batch short). Strategy 1 opens
/// and closes one thread per item, so this doubles as its open/close count.
size_t RunThreadPerItem(size_t n, const std::function<void(size_t)>& fn,
                        size_t max_live = 0,
                        const SearchContext* stop = nullptr);

}  // namespace sss
