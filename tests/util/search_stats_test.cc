#include "util/search_stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sss {
namespace {

TEST(SearchStatsTest, DefaultIsAllZero) {
  SearchStats s;
  EXPECT_EQ(s, SearchStats{});
  EXPECT_EQ(s.candidates_considered, 0u);
  EXPECT_EQ(s.tasks_stolen, 0u);
}

TEST(SearchStatsTest, AddSumsEveryField) {
  SearchStats a, b;
  // Give every counter a distinct value via the X-macro so a drifted Add()
  // (a forgotten field) fails loudly.
  uint64_t v = 1;
#define SSS_SET_STAT(name) \
  a.name = v;              \
  b.name = 10 * v;         \
  ++v;
  SSS_FOR_EACH_SEARCH_STAT(SSS_SET_STAT)
#undef SSS_SET_STAT
  a.Add(b);
  v = 1;
#define SSS_CHECK_STAT(name) EXPECT_EQ(a.name, 11 * v) << #name; ++v;
  SSS_FOR_EACH_SEARCH_STAT(SSS_CHECK_STAT)
#undef SSS_CHECK_STAT
}

TEST(SearchStatsTest, AddKernelDeltaFoldsDifferences) {
  SearchStats s;
  KernelCounters before;
  before.banded_calls = 5;
  before.myers_calls = 2;
  before.early_aborts = 1;
  KernelCounters after;
  after.banded_calls = 15;
  after.myers_calls = 2;
  after.early_aborts = 4;
  s.AddKernelDelta(after, before);
  EXPECT_EQ(s.kernel_banded_calls, 10u);
  EXPECT_EQ(s.kernel_myers_calls, 0u);
  EXPECT_EQ(s.dp_early_aborts, 3u);
}

TEST(SearchStatsTest, JsonAndStringMentionEveryCounter) {
  SearchStats s;
  s.candidates_considered = 42;
  const std::string json = s.ToJson();
  const std::string text = s.ToString();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"candidates_considered\":42"), std::string::npos)
      << json;
#define SSS_CHECK_STAT(name)                                         \
  EXPECT_NE(json.find("\"" #name "\":"), std::string::npos) << #name; \
  EXPECT_NE(text.find(#name "="), std::string::npos) << #name;
  SSS_FOR_EACH_SEARCH_STAT(SSS_CHECK_STAT)
#undef SSS_CHECK_STAT
}

TEST(SearchStatsTest, EqualityComparesFieldWise) {
  SearchStats a, b;
  a.trie_nodes_pruned = 7;
  EXPECT_NE(a, b);
  b.trie_nodes_pruned = 7;
  EXPECT_EQ(a, b);
}

TEST(StatsSinkTest, RecordAndCollect) {
  StatsSink sink;
  SearchStats delta;
  delta.verify_calls = 3;
  delta.matches_found = 1;
  sink.Record(delta);
  sink.Record(delta);
  const SearchStats total = sink.Collected();
  EXPECT_EQ(total.verify_calls, 6u);
  EXPECT_EQ(total.matches_found, 2u);
}

TEST(StatsSinkTest, ResetZeroesAllShards) {
  StatsSink sink;
  SearchStats delta;
  delta.cache_hits = 9;
  sink.Record(delta);
  sink.Reset();
  EXPECT_EQ(sink.Collected(), SearchStats{});
}

TEST(StatsSinkTest, ConcurrentRecordsLoseNothing) {
  StatsSink sink;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      SearchStats delta;
      delta.candidates_considered = 1;
      delta.tasks_executed = 2;
      for (int i = 0; i < kPerThread; ++i) sink.Record(delta);
    });
  }
  for (auto& t : threads) t.join();
  const SearchStats total = sink.Collected();
  EXPECT_EQ(total.candidates_considered,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(total.tasks_executed,
            static_cast<uint64_t>(2 * kThreads) * kPerThread);
}

TEST(StatsScopeTest, FlushesToSinkAtDestruction) {
  StatsSink sink;
  {
    StatsScope scope(&sink);
    EXPECT_TRUE(scope.enabled());
    scope->length_filter_rejects = 4;
    (*scope).matches_found = 2;
    // Nothing visible until the scope closes.
    EXPECT_EQ(sink.Collected(), SearchStats{});
  }
  const SearchStats total = sink.Collected();
  EXPECT_EQ(total.length_filter_rejects, 4u);
  EXPECT_EQ(total.matches_found, 2u);
}

TEST(StatsScopeTest, NullSinkIsSafeAndDisabled) {
  StatsScope scope(nullptr);
  EXPECT_FALSE(scope.enabled());
  scope->verify_calls = 99;  // accumulates locally, discarded at scope exit
}

TEST(StatsScopeTest, ForwardsKernelDelta) {
  StatsSink sink;
  {
    StatsScope scope(&sink);
    KernelCounters before, after;
    after.banded_calls = 7;
    after.early_aborts = 2;
    scope.AddKernelDelta(after, before);
  }
  const SearchStats total = sink.Collected();
  EXPECT_EQ(total.kernel_banded_calls, 7u);
  EXPECT_EQ(total.dp_early_aborts, 2u);
}

}  // namespace
}  // namespace sss
