#include "core/auto_searcher.h"

#include "util/search_stats.h"

namespace sss {

AutoSearcher::AutoSearcher(SnapshotHandle snapshot,
                           AutoSearcherOptions options)
    : snapshot_(std::move(snapshot)),
      dataset_(snapshot_->dataset()),
      options_(options) {
  const DatasetStats stats = dataset_.ComputeStats();
  avg_length_ = stats.avg_length;
  // Hypotheses of §2.4: long strings + small alphabet → index wins;
  // short strings + large alphabet → scan wins. Both conditions must hold
  // for the index, mirroring the paper's DNA profile.
  prefers_index_ =
      stats.avg_length >= options_.long_string_threshold &&
      stats.alphabet_size <= options_.narrow_alphabet_threshold;
}

const SequentialScanSearcher& AutoSearcher::Scan() const {
  std::lock_guard<std::mutex> lock(build_mu_);
  if (scan_ == nullptr) {
    scan_ = std::make_unique<SequentialScanSearcher>(snapshot_, ScanOptions{});
  }
  return *scan_;
}

const CompressedTrieSearcher& AutoSearcher::Trie() const {
  std::lock_guard<std::mutex> lock(build_mu_);
  if (trie_ == nullptr) {
    trie_ = std::make_unique<CompressedTrieSearcher>(snapshot_);
  }
  return *trie_;
}

std::string_view AutoSearcher::RouteFor(int k) const noexcept {
  if (!prefers_index_) return "scan";
  // Even on index-friendly data, a huge band makes the trie explore nearly
  // everything while paying traversal overhead; route those to the scan.
  if (avg_length_ > 0 &&
      static_cast<double>(k) / avg_length_ > options_.high_k_ratio) {
    return "scan";
  }
  return "trie";
}

Status AutoSearcher::Search(const Query& query, const SearchContext& ctx,
                            MatchList* out) const {
  if (RouteFor(query.max_distance) != std::string_view("trie")) {
    return Scan().Search(query, ctx, out);
  }

  // With no deadline (or the split disabled) the trie gets the full budget.
  if (ctx.deadline.IsInfinite() || options_.probe_fraction >= 1.0) {
    return Trie().Search(query, ctx, out);
  }

  // Index probe under a sub-deadline: the trie's worst case (wide band on
  // adversarial data) is a scan with traversal overhead, so cap the time we
  // bet on it and keep the rest for the dependable scan.
  SearchContext probe_ctx = ctx;
  probe_ctx.deadline = Deadline::After(
      std::chrono::duration_cast<Deadline::Clock::duration>(
          ctx.deadline.Remaining() * options_.probe_fraction));
  const Status probe = Trie().Search(query, probe_ctx, out);
  if (probe.ok()) return Status::OK();
  if (!probe.IsCancelled() || ctx.StopRequested()) {
    // A real error, an outer cancellation, or an expired overall deadline:
    // nothing is gained by retrying on the scan.
    out->clear();
    return probe.IsCancelled() ? ctx.StopStatus() : probe;
  }

  // The probe budget ran out but the overall deadline has slack: degrade to
  // the sequential scan, whose per-candidate cost is flat and predictable.
  degraded_probes_.fetch_add(1, std::memory_order_relaxed);
  if (ctx.stats != nullptr) {
    SearchStats degrade;
    degrade.degraded_probes = 1;
    ctx.stats->Record(degrade);
  }
  out->clear();
  return Scan().Search(query, ctx, out);
}

size_t AutoSearcher::memory_bytes() const {
  std::lock_guard<std::mutex> lock(build_mu_);
  size_t bytes = 0;
  if (scan_) bytes += scan_->memory_bytes();
  if (trie_) bytes += trie_->memory_bytes();
  return bytes;
}

}  // namespace sss
