# Empty compiler generated dependencies file for bench_ablation_bitpack.
# This may be replaced when dependencies are built.
