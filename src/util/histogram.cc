#include "util/histogram.h"

#include <bit>
#include <cstdio>

namespace sss {

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<size_t>(kOctaves) * kSubBuckets) {}

size_t LatencyHistogram::BucketOf(uint64_t value) noexcept {
  if (value == 0) value = 1;
  const int octave = 63 - std::countl_zero(value);
  if (octave < kSubBucketBits) {
    // Small values map linearly into the first octaves' range.
    return static_cast<size_t>(value);
  }
  if (octave >= kOctaves) {
    // Beyond the tracked range. Shifting by the capped octave would take the
    // sub-index from bits the value has outgrown, wrapping huge values into
    // *low* sub-buckets of the top octave (non-monotonic, and yielding
    // bucket bounds far below the recorded minimum). Saturate to the last
    // bucket instead.
    return static_cast<size_t>(kOctaves) * kSubBuckets - 1;
  }
  const uint64_t sub =
      (value >> (octave - kSubBucketBits)) & (kSubBuckets - 1);
  return static_cast<size_t>(octave) * kSubBuckets +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t bucket) noexcept {
  const size_t octave = bucket / kSubBuckets;
  const uint64_t sub = bucket % kSubBuckets;
  if (octave < static_cast<size_t>(kSubBucketBits)) {
    return bucket;  // linear region
  }
  return ((sub + 1) << (octave - kSubBucketBits)) +
         (uint64_t{1} << octave) - 1;
}

void LatencyHistogram::Record(uint64_t value) noexcept {
  if (value == 0) value = 1;
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Mean() const noexcept {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

uint64_t LatencyHistogram::Percentile(double q) const noexcept {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Clamp the bucket's upper bound into [min, max]: a lone value near
      // the top of its bucket reports the bucket bound, which can otherwise
      // overshoot the true maximum or (for the low quantiles of a bucket
      // shared with the minimum) undershoot the true minimum.
      const uint64_t bound = BucketUpperBound(b);
      const uint64_t lo = min_.load(std::memory_order_relaxed);
      const uint64_t hi = max_.load(std::memory_order_relaxed);
      if (bound < lo) return lo;
      return bound < hi ? bound : hi;
    }
  }
  return max_.load(std::memory_order_relaxed);
}

std::string LatencyHistogram::Summary(const char* unit) const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%llu%s p90=%llu%s p99=%llu%s max=%llu%s (n=%llu)",
                static_cast<unsigned long long>(Percentile(0.50)), unit,
                static_cast<unsigned long long>(Percentile(0.90)), unit,
                static_cast<unsigned long long>(Percentile(0.99)), unit,
                static_cast<unsigned long long>(max()), unit,
                static_cast<unsigned long long>(count()));
  return std::string(buf);
}

std::string LatencyHistogram::ScaledSummary(double divisor,
                                            const char* unit) const {
  if (divisor <= 0) divisor = 1;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "p50=%.2f%s p90=%.2f%s p99=%.2f%s max=%.2f%s (n=%llu)",
                static_cast<double>(Percentile(0.50)) / divisor, unit,
                static_cast<double>(Percentile(0.90)) / divisor, unit,
                static_cast<double>(Percentile(0.99)) / divisor, unit,
                static_cast<double>(max()) / divisor, unit,
                static_cast<unsigned long long>(count()));
  return std::string(buf);
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0);
  sum_.store(0);
  min_.store(UINT64_MAX);
  max_.store(0);
}

}  // namespace sss
