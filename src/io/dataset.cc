#include "io/dataset.h"

#include <array>

namespace sss {

DatasetStats Dataset::ComputeStats() const {
  DatasetStats stats;
  stats.num_strings = size();
  stats.total_bytes = pool_.total_bytes();
  if (empty()) return stats;

  std::array<bool, 256> seen{};
  stats.min_length = SIZE_MAX;
  for (size_t i = 0; i < size(); ++i) {
    const std::string_view s = View(i);
    if (s.size() < stats.min_length) stats.min_length = s.size();
    if (s.size() > stats.max_length) stats.max_length = s.size();
    for (unsigned char c : s) seen[c] = true;
  }
  for (bool b : seen) stats.alphabet_size += b ? 1 : 0;
  stats.avg_length =
      static_cast<double>(stats.total_bytes) / static_cast<double>(size());
  return stats;
}

}  // namespace sss
