// Suffix array over a text, the index structure the paper's related work
// (Navarro et al., §2.3) builds its approximate-substring solution on: "the
// index can only reach a maximum size of four times of the number of
// strings" and is faster than suffix trees for all but very short strings.
//
// Construction is the prefix-doubling algorithm (O(n log² n) with plain
// sorts): deliberately simple, allocation-light, and fast enough for the
// multi-megabyte genomes the read-mapping substrate works on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/macros.h"

namespace sss::align {

/// \brief An immutable suffix array with exact-pattern search.
class SuffixArray {
 public:
  /// Builds the array over `text`. The text is copied (the array must stay
  /// valid independently of the caller's buffer).
  explicit SuffixArray(std::string text);

  /// \brief The indexed text.
  const std::string& text() const noexcept { return text_; }

  size_t size() const noexcept { return sa_.size(); }

  /// \brief The i-th smallest suffix's starting position.
  uint32_t At(size_t i) const noexcept {
    SSS_DCHECK(i < sa_.size());
    return sa_[i];
  }

  /// \brief Half-open range [lo, hi) of suffix-array slots whose suffixes
  /// start with `pattern` (lo == hi when absent).
  std::pair<size_t, size_t> EqualRange(std::string_view pattern) const;

  /// \brief All starting positions of `pattern` in the text, ascending.
  std::vector<uint32_t> Occurrences(std::string_view pattern) const;

  /// \brief Number of occurrences of `pattern`.
  size_t Count(std::string_view pattern) const {
    const auto [lo, hi] = EqualRange(pattern);
    return hi - lo;
  }

  /// \brief Bytes of index storage (the related work's 4n claim: one
  /// 4-byte rank per text byte).
  size_t memory_bytes() const noexcept {
    return sa_.size() * sizeof(uint32_t);
  }

 private:
  std::string text_;
  std::vector<uint32_t> sa_;
};

}  // namespace sss::align
