file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dna_best.dir/bench_fig7_dna_best.cc.o"
  "CMakeFiles/bench_fig7_dna_best.dir/bench_fig7_dna_best.cc.o.d"
  "bench_fig7_dna_best"
  "bench_fig7_dna_best.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dna_best.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
