#include "gen/typo_model.h"

#include <cctype>
#include <cstddef>
#include <utility>

#include "util/macros.h"

namespace sss::gen {

namespace {

// QWERTY adjacency for lowercase letters.
struct NeighborEntry {
  char key;
  const char* neighbors;
};

constexpr NeighborEntry kQwerty[] = {
    {'q', "wa"},    {'w', "qase"},  {'e', "wsdr"},  {'r', "edft"},
    {'t', "rfgy"},  {'y', "tghu"},  {'u', "yhji"},  {'i', "ujko"},
    {'o', "iklp"},  {'p', "ol"},    {'a', "qwsz"},  {'s', "awedxz"},
    {'d', "serfcx"}, {'f', "drtgvc"}, {'g', "ftyhbv"}, {'h', "gyujnb"},
    {'j', "huikmn"}, {'k', "jiolm"}, {'l', "kop"},   {'z', "asx"},
    {'x', "zsdc"},  {'c', "xdfv"},  {'v', "cfgb"},  {'b', "vghn"},
    {'n', "bhjm"},  {'m', "njk"},
};

}  // namespace

std::string_view TypoModel::NeighborsOf(char c) {
  const char lower = static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
  for (const NeighborEntry& entry : kQwerty) {
    if (entry.key == lower) return entry.neighbors;
  }
  return {};
}

TypoModel::TypoModel(TypoModelOptions options) {
  double running = 0.0;
  running += options.neighbor_substitution;
  cumulative_[0] = running;
  running += options.omission;
  cumulative_[1] = running;
  running += options.insertion;
  cumulative_[2] = running;
  running += options.transposition;
  cumulative_[3] = running;
  SSS_CHECK(running > 0.0);
}

std::string TypoModel::Corrupt(std::string_view word, int typos,
                               Xoshiro256* rng) const {
  std::string s(word);
  for (int t = 0; t < typos; ++t) {
    if (s.empty()) {
      s.push_back('a' + static_cast<char>(rng->Uniform(26)));
      continue;
    }
    const double r = rng->UniformDouble() * cumulative_[3];
    if (r < cumulative_[0]) {
      // Neighbouring-key substitution; keep the original case.
      const size_t pos = rng->Uniform(s.size());
      const std::string_view neighbors = NeighborsOf(s[pos]);
      if (!neighbors.empty()) {
        const char replacement = neighbors[rng->Uniform(neighbors.size())];
        s[pos] = std::isupper(static_cast<unsigned char>(s[pos]))
                     ? static_cast<char>(
                           std::toupper(static_cast<unsigned char>(
                               replacement)))
                     : replacement;
      } else {
        s[pos] = 'a' + static_cast<char>(rng->Uniform(26));
      }
    } else if (r < cumulative_[1]) {
      // Omission.
      s.erase(s.begin() + static_cast<ptrdiff_t>(rng->Uniform(s.size())));
    } else if (r < cumulative_[2]) {
      // Insertion: double a letter (most common) or a stray neighbor.
      const size_t pos = rng->Uniform(s.size());
      const char c = s[pos];
      const std::string_view neighbors = NeighborsOf(c);
      const char inserted =
          neighbors.empty() || rng->Bernoulli(0.6)
              ? c
              : neighbors[rng->Uniform(neighbors.size())];
      s.insert(s.begin() + static_cast<ptrdiff_t>(pos), inserted);
    } else {
      // Adjacent transposition.
      if (s.size() >= 2) {
        const size_t pos = rng->Uniform(s.size() - 1);
        std::swap(s[pos], s[pos + 1]);
      }
    }
  }
  return s;
}

}  // namespace sss::gen
