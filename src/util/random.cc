#include "util/random.h"

#ifdef __SIZEOF_INT128__
using uint128_t = unsigned __int128;
#endif

namespace sss {

Xoshiro256::Xoshiro256(uint64_t seed) noexcept {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(&sm);
  }
  // All-zero state is the one invalid state for xoshiro; SplitMix64 of any
  // seed cannot produce four zero words, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Xoshiro256::Uniform(uint64_t bound) noexcept {
  SSS_DCHECK(bound > 0);
#ifdef __SIZEOF_INT128__
  // Lemire's nearly-divisionless unbiased method.
  uint64_t x = (*this)();
  uint128_t m = static_cast<uint128_t>(x) * static_cast<uint128_t>(bound);
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<uint128_t>(x) * static_cast<uint128_t>(bound);
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
#else
  // Portable fallback: rejection sampling on the top bits.
  const uint64_t limit = max() - max() % bound;
  uint64_t x;
  do {
    x = (*this)();
  } while (x >= limit);
  return x % bound;
#endif
}

size_t SampleCumulative(const double* cumulative, size_t n, Xoshiro256* rng) {
  SSS_DCHECK(n > 0);
  const double total = cumulative[n - 1];
  SSS_DCHECK(total > 0.0);
  const double r = rng->UniformDouble() * total;
  // Binary search for the first entry strictly greater than r.
  size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cumulative[mid] > r) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace sss
