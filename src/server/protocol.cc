#include "server/protocol.h"

#include <cstring>

namespace sss::server {
namespace {

// Explicit little-endian stores/loads: the wire format must not depend on
// host byte order.
void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

}  // namespace

void EncodeRequest(const Request& request, std::string* out) {
  out->reserve(out->size() + kRequestHeaderBytes + request.query.size());
  PutU32(out, kRequestMagic);
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(request.type));
  out->push_back(static_cast<char>(request.engine));
  out->push_back(0);  // reserved
  PutU64(out, request.request_id);
  PutU32(out, request.k);
  PutU32(out, request.deadline_ms);
  PutU32(out, static_cast<uint32_t>(request.query.size()));
  PutU32(out, 0);  // reserved
  out->append(request.query);
}

void EncodeResponse(const Response& response, std::string* out) {
  const bool ok = response.code == StatusCode::kOk;
  const uint32_t count = ok ? static_cast<uint32_t>(response.matches.size())
                            : static_cast<uint32_t>(response.message.size());
  const uint32_t payload_len = ok ? count * 4 : count;
  out->reserve(out->size() + kResponseHeaderBytes + payload_len);
  PutU32(out, kResponseMagic);
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(FrameType::kResponse));
  out->push_back(static_cast<char>(response.code));
  out->push_back(0);  // reserved
  PutU64(out, response.request_id);
  PutU32(out, count);
  PutU32(out, payload_len);
  PutU64(out, response.generation);
  if (ok) {
    for (const uint32_t id : response.matches) PutU32(out, id);
  } else {
    out->append(response.message);
  }
}

Status DecodeRequestHeader(const uint8_t* header,
                           const ProtocolLimits& limits, Request* out,
                           uint32_t* query_len) {
  *out = Request{};
  *query_len = 0;
  if (GetU32(header) != kRequestMagic) {
    return Status::Invalid("request frame: bad magic");
  }
  // From here the peer speaks our framing: surface the id it sent so error
  // responses can reference it even when the rest of the header is bad.
  out->request_id = GetU64(header + 8);
  if (header[4] != kProtocolVersion) {
    return Status::Invalid("request frame: unsupported version " +
                           std::to_string(header[4]));
  }
  if (header[5] != static_cast<uint8_t>(FrameType::kSearch) &&
      header[5] != static_cast<uint8_t>(FrameType::kAdmin)) {
    return Status::Invalid("request frame: unexpected type " +
                           std::to_string(header[5]));
  }
  if (header[7] != 0 || GetU32(header + 28) != 0) {
    return Status::Invalid("request frame: nonzero reserved bytes");
  }
  out->type = static_cast<FrameType>(header[5]);
  out->engine = header[6];
  out->k = GetU32(header + 16);
  out->deadline_ms = GetU32(header + 20);
  const uint32_t len = GetU32(header + 24);
  if (out->type == FrameType::kAdmin) {
    // k is the admin op; an unknown op is a peer bug, not a search.
    if (out->k != kAdminOpReload && out->k != kAdminOpGetGeneration) {
      return Status::Invalid("request frame: unknown admin op " +
                             std::to_string(out->k));
    }
  } else if (out->k > limits.max_k) {
    return Status::Invalid("request frame: k " + std::to_string(out->k) +
                           " exceeds limit " + std::to_string(limits.max_k));
  }
  if (len > limits.max_query_bytes) {
    return Status::Invalid("request frame: query length " +
                           std::to_string(len) + " exceeds limit " +
                           std::to_string(limits.max_query_bytes));
  }
  *query_len = len;
  return Status::OK();
}

Status DecodeRequest(std::string_view frame, const ProtocolLimits& limits,
                     Request* out) {
  if (frame.size() < kRequestHeaderBytes) {
    *out = Request{};
    return Status::Corruption("request frame: truncated header (" +
                              std::to_string(frame.size()) + " bytes)");
  }
  uint32_t query_len = 0;
  SSS_RETURN_NOT_OK(DecodeRequestHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), limits, out,
      &query_len));
  if (frame.size() != kRequestHeaderBytes + query_len) {
    return Status::Corruption(
        "request frame: body is " +
        std::to_string(frame.size() - kRequestHeaderBytes) +
        " bytes, header promised " + std::to_string(query_len));
  }
  out->query.assign(frame.substr(kRequestHeaderBytes));
  return Status::OK();
}

Status DecodeResponseHeader(const uint8_t* header,
                            const ProtocolLimits& limits, Response* out,
                            uint32_t* payload_len) {
  *out = Response{};
  *payload_len = 0;
  if (GetU32(header) != kResponseMagic) {
    return Status::Invalid("response frame: bad magic");
  }
  out->request_id = GetU64(header + 8);
  if (header[4] != kProtocolVersion) {
    return Status::Invalid("response frame: unsupported version " +
                           std::to_string(header[4]));
  }
  if (header[5] != static_cast<uint8_t>(FrameType::kResponse)) {
    return Status::Invalid("response frame: unexpected type " +
                           std::to_string(header[5]));
  }
  if (header[7] != 0) {
    return Status::Invalid("response frame: nonzero reserved byte");
  }
  out->code = static_cast<StatusCode>(header[6]);
  if (StatusCodeToString(out->code) == "UnknownError" &&
      out->code != StatusCode::kUnknownError) {
    return Status::Invalid("response frame: unknown status code " +
                           std::to_string(header[6]));
  }
  const uint32_t count = GetU32(header + 16);
  const uint32_t len = GetU32(header + 20);
  out->generation = GetU64(header + 24);
  if (len > limits.max_response_payload) {
    return Status::Invalid("response frame: payload " + std::to_string(len) +
                           " exceeds limit " +
                           std::to_string(limits.max_response_payload));
  }
  const bool ok = out->code == StatusCode::kOk;
  const uint64_t expected =
      ok ? static_cast<uint64_t>(count) * 4 : static_cast<uint64_t>(count);
  if (expected != len) {
    return Status::Corruption("response frame: count " +
                              std::to_string(count) +
                              " inconsistent with payload length " +
                              std::to_string(len));
  }
  *payload_len = len;
  return Status::OK();
}

Status DecodeResponsePayload(std::string_view payload, Response* out) {
  if (out->code == StatusCode::kOk) {
    if (payload.size() % 4 != 0) {
      return Status::Corruption("response payload: not a whole id array");
    }
    const auto* p = reinterpret_cast<const uint8_t*>(payload.data());
    out->matches.resize(payload.size() / 4);
    for (size_t i = 0; i < out->matches.size(); ++i) {
      out->matches[i] = GetU32(p + 4 * i);
    }
  } else {
    out->message.assign(payload);
  }
  return Status::OK();
}

Status DecodeResponse(std::string_view frame, const ProtocolLimits& limits,
                      Response* out) {
  if (frame.size() < kResponseHeaderBytes) {
    *out = Response{};
    return Status::Corruption("response frame: truncated header (" +
                              std::to_string(frame.size()) + " bytes)");
  }
  uint32_t payload_len = 0;
  SSS_RETURN_NOT_OK(DecodeResponseHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), limits, out,
      &payload_len));
  if (frame.size() != kResponseHeaderBytes + payload_len) {
    return Status::Corruption(
        "response frame: body is " +
        std::to_string(frame.size() - kResponseHeaderBytes) +
        " bytes, header promised " + std::to_string(payload_len));
  }
  return DecodeResponsePayload(frame.substr(kResponseHeaderBytes), out);
}

}  // namespace sss::server
