# Empty dependencies file for bench_table5_idx_city_ladder.
# This may be replaced when dependencies are built.
