// CachedSearcher — an LRU result cache in front of any engine. Interactive
// workloads (the paper's §1 applications: search boxes tolerating typos)
// repeat queries heavily; a small exact-match cache removes those entirely
// without touching engine internals.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief Decorator caching Search() results keyed by (text, k).
///
/// Thread-safe; hit bookkeeping is under one mutex, so the cache suits
/// engines whose Search cost dwarfs a map lookup (all of them).
class CachedSearcher final : public Searcher {
 public:
  /// \param inner engine to delegate to (not owned; must outlive this).
  /// \param capacity maximum cached queries (≥ 1).
  CachedSearcher(const Searcher* inner, size_t capacity);

  using Searcher::Search;
  /// Cancelled searches are never cached: only a completed answer is worth
  /// serving to a later caller, and a stopped inner search returns an empty
  /// list by contract.
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override {
    return inner_->name() + "+cache";
  }
  size_t memory_bytes() const override;

  SnapshotHandle SearchedSnapshot() const override {
    return inner_->SearchedSnapshot();
  }

  /// \brief Cache statistics (racy snapshots, for tests and reporting).
  uint64_t hits() const noexcept { return hits_; }
  uint64_t misses() const noexcept { return misses_; }
  size_t entries() const noexcept;

  /// \brief Empties the cache (e.g. after the dataset changes).
  void Clear();

 private:
  struct Key {
    std::string text;
    int k;
    bool operator<(const Key& other) const {
      return k != other.k ? k < other.k : text < other.text;
    }
  };
  struct Entry {
    MatchList results;
    std::list<const Key*>::iterator lru_slot;
  };

  const Searcher* inner_;
  size_t capacity_;

  mutable std::mutex mu_;
  mutable std::map<Key, Entry> cache_;
  // front = most recent. Holds pointers into cache_'s keys (stable under
  // std::map insert/erase of other entries) so each query text is stored
  // once, not duplicated per list node.
  mutable std::list<const Key*> lru_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace sss
