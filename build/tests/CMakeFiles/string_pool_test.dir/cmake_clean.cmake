file(REMOVE_RECURSE
  "CMakeFiles/string_pool_test.dir/util/string_pool_test.cc.o"
  "CMakeFiles/string_pool_test.dir/util/string_pool_test.cc.o.d"
  "string_pool_test"
  "string_pool_test.pdb"
  "string_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
