// Read mapping — the application the paper's DNA workload comes from
// (reference [1] of its bibliography is a read-mapping paper): align
// sequencing reads with errors against a reference genome.
//
// Demonstrates the `align` substrate end to end: suffix-array construction
// over a synthetic genome, pigeonhole seeding, infix verification, strand
// handling — and reports mapping accuracy against the generator's known
// ground truth.
//
// Usage: read_mapping [genome_kbp] [num_reads] [max_k]
#include <cstdio>
#include <cstdlib>

#include "align/read_mapper.h"
#include "gen/dna_generator.h"
#include "gen/query_generator.h"
#include "util/random.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  const size_t genome_kbp =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500;
  const size_t num_reads =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;
  const int max_k = argc > 3 ? std::atoi(argv[3]) : 4;

  // Reference genome via the dataset generator's genome model.
  sss::gen::DnaGeneratorOptions gen_options;
  gen_options.genome_length = genome_kbp * 1000;
  gen_options.num_reads = 1;  // we only want the genome
  sss::gen::DnaReadGenerator generator(gen_options, /*seed=*/31);
  const std::string& genome = generator.genome();

  std::printf("genome: %zu bp\n", genome.size());
  sss::Stopwatch build_timer;
  sss::align::ReadMapperOptions options;
  options.max_distance = max_k;
  sss::align::ReadMapper mapper(genome, options);
  std::printf("suffix array built in %.0f ms (%.1f MB)\n",
              build_timer.ElapsedMillis(),
              static_cast<double>(mapper.index().memory_bytes()) / 1e6);

  // Reads sampled from known positions with ≤ max_k edits, half of them
  // reverse-complemented — so accuracy is measurable.
  sss::Xoshiro256 rng(77);
  struct Truth {
    std::string read;
    size_t position;
    bool reverse;
  };
  std::vector<Truth> reads;
  reads.reserve(num_reads);
  for (size_t i = 0; i < num_reads; ++i) {
    const size_t pos = rng.Uniform(genome.size() - 120);
    std::string read = genome.substr(pos, 100);
    read = sss::gen::Perturb(read, static_cast<int>(rng.Uniform(max_k + 1)),
                             "ACGT", &rng);
    const bool reverse = rng.Bernoulli(0.5);
    if (reverse) read = sss::align::ReverseComplement(read);
    reads.push_back(Truth{std::move(read), pos, reverse});
  }

  sss::Stopwatch map_timer;
  size_t mapped = 0, correct_locus = 0, correct_strand = 0;
  for (const Truth& t : reads) {
    const auto mappings = mapper.Map(t.read);
    if (mappings.empty()) continue;
    ++mapped;
    const auto& best = mappings.front();
    const size_t delta = best.position > t.position
                             ? best.position - t.position
                             : t.position - best.position;
    if (delta <= static_cast<size_t>(2 * max_k)) ++correct_locus;
    if (best.reverse_strand == t.reverse) ++correct_strand;
  }
  const double seconds = map_timer.ElapsedSeconds();

  std::printf(
      "mapped %zu/%zu reads in %.2f s (%.0f reads/s)\n"
      "correct locus: %.1f%%   correct strand: %.1f%%\n",
      mapped, reads.size(), seconds,
      static_cast<double>(reads.size()) / seconds,
      100.0 * static_cast<double>(correct_locus) /
          static_cast<double>(reads.size()),
      100.0 * static_cast<double>(correct_strand) /
          static_cast<double>(reads.size()));
  return 0;
}
