// Ablation: edit-distance kernels.
//
// Per-pair cost of every kernel on pairs drawn from both workloads, across
// the paper's thresholds. Answers the design questions DESIGN.md calls out:
//   * how much does each of §3.2's tricks buy (full matrix → diagonal abort
//     → banded)?
//   * when does the bit-parallel Myers kernel overtake the banded DP
//     (the library's beyond-paper extension)?
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/edit_distance.h"
#include "core/kernels.h"

namespace sss::bench {
namespace {

// A pool of pairs drawn from a workload: half near-duplicates (query is a
// perturbed dataset string), half random pairs — matching the mix a real
// scan verifies.
struct PairSet {
  std::vector<std::pair<std::string, std::string>> pairs;
};

const PairSet& Pairs(gen::WorkloadKind kind) {
  static PairSet city, dna;
  PairSet& set = kind == gen::WorkloadKind::kCityNames ? city : dna;
  if (set.pairs.empty()) {
    const BenchWorkload& w = SharedWorkload(kind);
    Xoshiro256 rng(w.config.seed ^ 0xAB1);
    for (int i = 0; i < 256; ++i) {
      const std::string a(w.dataset.View(rng.Uniform(w.dataset.size())));
      std::string b;
      if (i % 2 == 0) {
        b = a;
        for (int e = 0; e < 4 && !b.empty(); ++e) {
          b[rng.Uniform(b.size())] = 'x';
        }
      } else {
        b = std::string(w.dataset.View(rng.Uniform(w.dataset.size())));
      }
      set.pairs.emplace_back(a, b);
    }
  }
  return set;
}

gen::WorkloadKind KindOf(int64_t arg) {
  return arg == 0 ? gen::WorkloadKind::kCityNames
                  : gen::WorkloadKind::kDnaReads;
}

void BM_Kernel_FullMatrix(benchmark::State& state) {
  const PairSet& set = Pairs(KindOf(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = set.pairs[i++ % set.pairs.size()];
    benchmark::DoNotOptimize(EditDistanceFullMatrix(a, b));
  }
}
BENCHMARK(BM_Kernel_FullMatrix)
    ->ArgNames({"workload"})->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_Kernel_TwoRow(benchmark::State& state) {
  const PairSet& set = Pairs(KindOf(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = set.pairs[i++ % set.pairs.size()];
    benchmark::DoNotOptimize(EditDistanceTwoRow(a, b));
  }
}
BENCHMARK(BM_Kernel_TwoRow)
    ->ArgNames({"workload"})->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_Kernel_DiagonalAbort(benchmark::State& state) {
  const PairSet& set = Pairs(KindOf(state.range(0)));
  const int k = static_cast<int>(state.range(1));
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = set.pairs[i++ % set.pairs.size()];
    benchmark::DoNotOptimize(internal::EditDistanceDiagonalAbort(a, b, k));
  }
}
BENCHMARK(BM_Kernel_DiagonalAbort)
    ->ArgNames({"workload", "k"})
    ->ArgsProduct({{0}, {1, 3}})
    ->ArgsProduct({{1}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);

// The paper's own best kernel (§3.4) — the baseline the library's banded
// and bit-parallel kernels are measured against.
void BM_Kernel_PaperStep4(benchmark::State& state) {
  const PairSet& set = Pairs(KindOf(state.range(0)));
  const int k = static_cast<int>(state.range(1));
  EditDistanceWorkspace ws;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = set.pairs[i++ % set.pairs.size()];
    benchmark::DoNotOptimize(internal::EditDistanceSimpleTypes(a, b, k, &ws));
  }
}
BENCHMARK(BM_Kernel_PaperStep4)
    ->ArgNames({"workload", "k"})
    ->ArgsProduct({{0}, {1, 3}})
    ->ArgsProduct({{1}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);

void BM_Kernel_Banded(benchmark::State& state) {
  const PairSet& set = Pairs(KindOf(state.range(0)));
  const int k = static_cast<int>(state.range(1));
  EditDistanceWorkspace ws;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = set.pairs[i++ % set.pairs.size()];
    benchmark::DoNotOptimize(BoundedEditDistance(a, b, k, &ws));
  }
}
BENCHMARK(BM_Kernel_Banded)
    ->ArgNames({"workload", "k"})
    ->ArgsProduct({{0}, {1, 3}})
    ->ArgsProduct({{1}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);

void BM_Kernel_BoundedMyers(benchmark::State& state) {
  const PairSet& set = Pairs(KindOf(state.range(0)));
  const int k = static_cast<int>(state.range(1));
  EditDistanceWorkspace ws;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = set.pairs[i++ % set.pairs.size()];
    benchmark::DoNotOptimize(BoundedMyers(a, b, k, &ws));
  }
}
BENCHMARK(BM_Kernel_BoundedMyers)
    ->ArgNames({"workload", "k"})
    ->ArgsProduct({{0}, {1, 3}})
    ->ArgsProduct({{1}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);

void BM_Kernel_WithinDispatch(benchmark::State& state) {
  const PairSet& set = Pairs(KindOf(state.range(0)));
  const int k = static_cast<int>(state.range(1));
  EditDistanceWorkspace ws;
  size_t i = 0;
  for (auto _ : state) {
    const auto& [a, b] = set.pairs[i++ % set.pairs.size()];
    benchmark::DoNotOptimize(WithinDistance(a, b, k, &ws));
  }
}
BENCHMARK(BM_Kernel_WithinDispatch)
    ->ArgNames({"workload", "k"})
    ->ArgsProduct({{0}, {1, 3}})
    ->ArgsProduct({{1}, {4, 16}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Ablation: edit-distance kernels (workload 0=city, 1=dna)",
               sss::gen::WorkloadKind::kCityNames)
