file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trie.dir/bench_ablation_trie.cc.o"
  "CMakeFiles/bench_ablation_trie.dir/bench_ablation_trie.cc.o.d"
  "bench_ablation_trie"
  "bench_ablation_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
