
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/join_test.cc" "tests/CMakeFiles/join_test.dir/core/join_test.cc.o" "gcc" "tests/CMakeFiles/join_test.dir/core/join_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/align/CMakeFiles/sss_align.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/sss_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sss_io.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/sss_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
