file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hamming.dir/bench_ablation_hamming.cc.o"
  "CMakeFiles/bench_ablation_hamming.dir/bench_ablation_hamming.cc.o.d"
  "bench_ablation_hamming"
  "bench_ablation_hamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
