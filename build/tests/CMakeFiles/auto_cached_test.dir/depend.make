# Empty dependencies file for auto_cached_test.
# This may be replaced when dependencies are built.
