file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_seq_dna_ladder.dir/bench_table7_seq_dna_ladder.cc.o"
  "CMakeFiles/bench_table7_seq_dna_ladder.dir/bench_table7_seq_dna_ladder.cc.o.d"
  "bench_table7_seq_dna_ladder"
  "bench_table7_seq_dna_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_seq_dna_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
