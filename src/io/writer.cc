#include "io/writer.h"

#include <cstdio>
#include <memory>

#include "util/result.h"

namespace sss {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

Result<FileHandle> OpenForWrite(const std::string& path) {
  FileHandle f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return f;
}

Status CheckWrite(bool ok, const std::string& path) {
  if (!ok) return Status::IOError("short write to '" + path + "'");
  return Status::OK();
}

}  // namespace

Status WriteDatasetFile(const std::string& path, const Dataset& dataset) {
  SSS_ASSIGN_OR_RETURN(FileHandle f, OpenForWrite(path));
  for (size_t i = 0; i < dataset.size(); ++i) {
    const std::string_view s = dataset.View(i);
    const bool ok = std::fwrite(s.data(), 1, s.size(), f.get()) == s.size() &&
                    std::fputc('\n', f.get()) != EOF;
    SSS_RETURN_NOT_OK(CheckWrite(ok, path));
  }
  return Status::OK();
}

Status WriteQueryFile(const std::string& path, const QuerySet& queries) {
  SSS_ASSIGN_OR_RETURN(FileHandle f, OpenForWrite(path));
  for (const Query& q : queries) {
    const bool ok = std::fprintf(f.get(), "%d\t%s\n", q.max_distance,
                                 q.text.c_str()) >= 0;
    SSS_RETURN_NOT_OK(CheckWrite(ok, path));
  }
  return Status::OK();
}

Status WriteResultFile(const std::string& path, const SearchResults& results) {
  SSS_ASSIGN_OR_RETURN(FileHandle f, OpenForWrite(path));
  for (size_t qi = 0; qi < results.size(); ++qi) {
    bool ok = std::fprintf(f.get(), "%zu:", qi) >= 0;
    for (uint32_t id : results[qi]) {
      ok = ok && std::fprintf(f.get(), " %u", id) >= 0;
    }
    ok = ok && std::fputc('\n', f.get()) != EOF;
    SSS_RETURN_NOT_OK(CheckWrite(ok, path));
  }
  return Status::OK();
}

}  // namespace sss
