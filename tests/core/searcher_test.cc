#include "core/searcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

constexpr ExecutionStrategy kAllStrategies[] = {
    ExecutionStrategy::kSerial, ExecutionStrategy::kThreadPerQuery,
    ExecutionStrategy::kFixedPool, ExecutionStrategy::kAdaptive,
    ExecutionStrategy::kSharded};

TEST(SearcherFactoryTest, BuildsEveryEngineKind) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("alpha");
  d.Add("beta");
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
        EngineKind::kPartitionIndex}) {
    auto searcher = MakeSearcher(kind, d);
    ASSERT_TRUE(searcher.ok()) << ToString(kind);
    EXPECT_EQ((*searcher)->name(), ToString(kind));
    EXPECT_EQ((*searcher)->Search({"alpha", 0}), (MatchList{0}));
  }
}

TEST(SearcherFactoryTest, PackedScanRequiresDnaData) {
  Dataset generic("x", AlphabetKind::kGeneric);
  generic.Add("alpha");
  EXPECT_FALSE(MakeSearcher(EngineKind::kPackedDnaScan, generic).ok());

  Dataset dna("y", AlphabetKind::kDna);
  dna.Add("ACGT");
  auto searcher = MakeSearcher(EngineKind::kPackedDnaScan, dna);
  ASSERT_TRUE(searcher.ok());
  EXPECT_EQ((*searcher)->Search({"ACGT", 0}), (MatchList{0}));
}

TEST(SearcherFactoryTest, ToStringNames) {
  EXPECT_EQ(ToString(EngineKind::kSequentialScan), "sequential_scan");
  EXPECT_EQ(ToString(EngineKind::kTrieIndex), "trie_index");
  EXPECT_EQ(ToString(EngineKind::kCompressedTrieIndex),
            "compressed_trie_index");
}

// The paper's central correctness requirement: both competitors (and the
// compressed variant) return identical results on identical batches.
class EngineAgreementTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(EngineAgreementTest, AllEnginesReturnIdenticalBatches) {
  const auto [alphabet, max_k] = GetParam();
  Xoshiro256 rng(0xA6EE);
  Dataset d = RandomDataset(&rng, alphabet, 250, 1, 30);
  std::vector<std::unique_ptr<Searcher>> engines;
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
        EngineKind::kPartitionIndex}) {
    engines.push_back(std::move(MakeSearcher(kind, d)).ValueOrDie());
  }
  QuerySet queries;
  for (int i = 0; i < 40; ++i) {
    queries.push_back({RandomString(&rng, alphabet, 1, 30),
                       static_cast<int>(rng.Uniform(max_k + 1))});
  }
  const SearchResults reference =
      engines[0]->SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  // Cross-check a sample against brute force.
  for (size_t i = 0; i < queries.size(); i += 7) {
    ASSERT_EQ(reference[i], BruteForceSearch(d, queries[i])) << i;
  }
  for (size_t e = 1; e < engines.size(); ++e) {
    EXPECT_EQ(
        engines[e]->SearchBatch(queries, {ExecutionStrategy::kSerial, 0}),
        reference)
        << engines[e]->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EngineAgreementTest,
    ::testing::Values(std::make_tuple("abcdefgh -", 3),
                      std::make_tuple("ACGNT", 8)));

TEST(SearcherBatchTest, AllStrategiesProduceSameResults) {
  Xoshiro256 rng(0xA6EF);
  Dataset d = RandomDataset(&rng, "abcd", 150, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kTrieIndex, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 25; ++i) {
    queries.push_back(
        {RandomString(&rng, "abcd", 1, 12), static_cast<int>(i % 3)});
  }
  const SearchResults serial =
      searcher->SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kThreadPerQuery, ExecutionStrategy::kFixedPool,
        ExecutionStrategy::kAdaptive}) {
    EXPECT_EQ(searcher->SearchBatch(queries, {strategy, 4}), serial)
        << static_cast<int>(strategy);
  }
}

TEST(SearcherBatchTest, EmptyBatchIsEmpty) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("a");
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kSerial, ExecutionStrategy::kThreadPerQuery,
        ExecutionStrategy::kFixedPool, ExecutionStrategy::kAdaptive}) {
    EXPECT_TRUE(searcher->SearchBatch({}, {strategy, 2}).empty());
  }
}

// Every strategy must honor stop conditions: a batch whose deadline expired
// before it started returns all-empty with every query tagged kCancelled.
TEST(SearchCancellationTest, ExpiredDeadlineTruncatesEveryStrategy) {
  Xoshiro256 rng(0xDEAD);
  Dataset d = RandomDataset(&rng, "abcd", 200, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 1, 12), 1});
  }
  SearchContext ctx;
  ctx.deadline = Deadline::AfterMillis(-1);
  ctx.check_interval = 1;
  for (ExecutionStrategy strategy : kAllStrategies) {
    const BatchResult batch =
        searcher->SearchBatch(queries, {strategy, 2}, ctx);
    EXPECT_TRUE(batch.truncated) << static_cast<int>(strategy);
    EXPECT_EQ(batch.completed, 0u) << static_cast<int>(strategy);
    ASSERT_EQ(batch.statuses.size(), queries.size());
    ASSERT_EQ(batch.matches.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(batch.statuses[i].IsCancelled())
          << static_cast<int>(strategy) << " query " << i;
      EXPECT_TRUE(batch.matches[i].empty())
          << static_cast<int>(strategy) << " query " << i;
    }
  }
}

TEST(SearchCancellationTest, PreCancelledTokenTruncatesEveryStrategy) {
  Xoshiro256 rng(0xDEAE);
  Dataset d = RandomDataset(&rng, "abcd", 200, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kTrieIndex, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 1, 12), 1});
  }
  CancellationToken token;
  token.Cancel();
  SearchContext ctx;
  ctx.cancellation = &token;
  ctx.check_interval = 1;
  for (ExecutionStrategy strategy : kAllStrategies) {
    const BatchResult batch =
        searcher->SearchBatch(queries, {strategy, 2}, ctx);
    EXPECT_TRUE(batch.truncated) << static_cast<int>(strategy);
    EXPECT_EQ(batch.completed, 0u) << static_cast<int>(strategy);
    for (const Status& st : batch.statuses) {
      EXPECT_TRUE(st.IsCancelled()) << static_cast<int>(strategy);
    }
  }
}

// With an inactive context the context-taking entry points are equivalent
// to the convenience overloads, for every engine and strategy.
TEST(SearchCancellationTest, InactiveContextMatchesConvenienceOverloads) {
  Xoshiro256 rng(0xDEAF);
  Dataset d = RandomDataset(&rng, "abcd", 150, 1, 12);
  QuerySet queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 1, 12), i % 3});
  }
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
        EngineKind::kPartitionIndex, EngineKind::kBKTree}) {
    auto searcher = std::move(MakeSearcher(kind, d)).ValueOrDie();
    for (const Query& q : queries) {
      MatchList via_ctx;
      ASSERT_TRUE(searcher->Search(q, SearchContext{}, &via_ctx).ok());
      ASSERT_EQ(via_ctx, searcher->Search(q)) << ToString(kind);
    }
    for (ExecutionStrategy strategy : kAllStrategies) {
      const BatchResult batch =
          searcher->SearchBatch(queries, {strategy, 2}, SearchContext{});
      EXPECT_FALSE(batch.truncated);
      EXPECT_EQ(batch.completed, queries.size());
      EXPECT_EQ(batch.matches,
                searcher->SearchBatch(queries, {strategy, 2}))
          << ToString(kind) << " strategy " << static_cast<int>(strategy);
    }
  }
}

// A stub engine that cancels the shared token partway through the batch, to
// exercise mid-flight truncation: completed queries keep full answers, the
// rest come back empty + kCancelled, and nothing hangs.
class SelfCancellingSearcher final : public Searcher {
 public:
  SelfCancellingSearcher(CancellationToken* token, int cancel_at_call)
      : token_(token), cancel_at_call_(cancel_at_call) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override {
    (void)query;
    if (calls_.fetch_add(1) + 1 == cancel_at_call_) token_->Cancel();
    if (ctx.CanStop() && ctx.StopRequested()) {
      out->clear();
      return ctx.StopStatus();
    }
    out->push_back(42);
    return Status::OK();
  }
  std::string name() const override { return "self_cancelling"; }

 private:
  CancellationToken* token_;
  int cancel_at_call_;
  mutable std::atomic<int> calls_{0};
};

TEST(SearchCancellationTest, MidBatchCancelReturnsCompletedSubset) {
  QuerySet queries;
  for (int i = 0; i < 64; ++i) queries.push_back({"q", 0});
  for (ExecutionStrategy strategy : kAllStrategies) {
    CancellationToken token;
    SelfCancellingSearcher searcher(&token, /*cancel_at_call=*/8);
    SearchContext ctx;
    ctx.cancellation = &token;
    const BatchResult batch =
        searcher.SearchBatch(queries, {strategy, 4}, ctx);
    EXPECT_TRUE(batch.truncated) << static_cast<int>(strategy);
    EXPECT_LT(batch.completed, queries.size()) << static_cast<int>(strategy);
    // Per-query invariant: an OK status carries the full answer, a
    // cancelled one carries nothing.
    for (size_t i = 0; i < queries.size(); ++i) {
      if (batch.statuses[i].ok()) {
        EXPECT_EQ(batch.matches[i], (MatchList{42}))
            << static_cast<int>(strategy) << " query " << i;
      } else {
        EXPECT_TRUE(batch.statuses[i].IsCancelled());
        EXPECT_TRUE(batch.matches[i].empty())
            << static_cast<int>(strategy) << " query " << i;
      }
    }
  }
}

TEST(SearchCancellationTest, SerialBatchStopsPromptlyOnCancel) {
  QuerySet queries;
  for (int i = 0; i < 64; ++i) queries.push_back({"q", 0});
  CancellationToken token;
  SelfCancellingSearcher searcher(&token, /*cancel_at_call=*/8);
  SearchContext ctx;
  ctx.cancellation = &token;
  const BatchResult batch =
      searcher.SearchBatch(queries, {ExecutionStrategy::kSerial, 0}, ctx);
  // Serial order is deterministic: calls 1-7 complete, call 8 cancels
  // itself, everything after is skipped by the driver.
  EXPECT_EQ(batch.completed, 7u);
  EXPECT_TRUE(batch.truncated);
  for (size_t i = 0; i < 7; ++i) EXPECT_TRUE(batch.statuses[i].ok()) << i;
  for (size_t i = 7; i < queries.size(); ++i) {
    EXPECT_TRUE(batch.statuses[i].IsCancelled()) << i;
  }
}

// Deadline-bounded real search: a generous deadline changes nothing.
TEST(SearchCancellationTest, GenerousDeadlineCompletesEverything) {
  Xoshiro256 rng(0xDEB0);
  Dataset d = RandomDataset(&rng, "abcd", 150, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 1, 12), 1});
  }
  const SearchResults reference = searcher->SearchBatch(
      queries, {ExecutionStrategy::kSerial, 0});
  SearchContext ctx;
  ctx.deadline = Deadline::After(std::chrono::hours(1));
  for (ExecutionStrategy strategy : kAllStrategies) {
    const BatchResult batch =
        searcher->SearchBatch(queries, {strategy, 2}, ctx);
    EXPECT_FALSE(batch.truncated) << static_cast<int>(strategy);
    EXPECT_EQ(batch.completed, queries.size());
    EXPECT_EQ(batch.matches, reference) << static_cast<int>(strategy);
  }
}

TEST(SearcherTest, IndexMemoryIsReported) {
  Xoshiro256 rng(0xA6F0);
  Dataset d = RandomDataset(&rng, "abcdef", 500, 4, 20);
  auto trie = std::move(MakeSearcher(EngineKind::kTrieIndex, d)).ValueOrDie();
  auto radix = std::move(MakeSearcher(EngineKind::kCompressedTrieIndex, d))
                   .ValueOrDie();
  EXPECT_GT(trie->memory_bytes(), 0u);
  EXPECT_GT(radix->memory_bytes(), 0u);
  EXPECT_LT(radix->memory_bytes(), trie->memory_bytes())
      << "compression should reduce index memory";
}

}  // namespace
}  // namespace sss
