#include "util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sss::net {
namespace {

Status ErrnoStatus(const char* op, int err) {
  return Status::IOError(std::string(op) + ": " + std::strerror(err));
}

Result<sockaddr_in> MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("not a numeric IPv4 address: '" + host + "'");
  }
  return addr;
}

}  // namespace

void Socket::Close() noexcept {
  if (fd_ >= 0) {
    // POSIX leaves the fd state after an EINTR'd close unspecified; on
    // Linux the descriptor is gone either way, so never retry.
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog) {
  SSS_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);
  const int one = 1;
  // Best-effort: rebinding a recently closed port matters for restarts and
  // test loops, but failure to set the option is not fatal.
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(sock.fd(), backlog) != 0) return ErrnoStatus("listen", errno);
  return sock;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return ntohs(addr.sin_port);
}

Result<Socket> Accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    // EBADF/EINVAL are what a closed or shut-down listener reports — the
    // normal way an accept loop learns the server is draining.
    if (errno == EBADF || errno == EINVAL) {
      return Status::Unavailable("listener closed");
    }
    return ErrnoStatus("accept", errno);
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  SSS_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return sock;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("connect", errno);
  }
}

Result<size_t> ReadFull(int fd, void* buf, size_t len) {
  auto* p = static_cast<char*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::recv(fd, p + done, len - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return done;  // clean peer close (possibly mid-buffer)
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
  return done;
}

Status WriteFull(int fd, const void* buf, size_t len) {
  const auto* p = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::send(fd, p + done, len - done, MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Status ShutdownRead(int fd) {
  if (::shutdown(fd, SHUT_RD) != 0 && errno != ENOTCONN) {
    return ErrnoStatus("shutdown", errno);
  }
  return Status::OK();
}

Status ShutdownWrite(int fd) {
  if (::shutdown(fd, SHUT_WR) != 0 && errno != ENOTCONN) {
    return ErrnoStatus("shutdown", errno);
  }
  return Status::OK();
}

Status ShutdownBoth(int fd) {
  if (::shutdown(fd, SHUT_RDWR) != 0 && errno != ENOTCONN) {
    return ErrnoStatus("shutdown", errno);
  }
  return Status::OK();
}

}  // namespace sss::net
