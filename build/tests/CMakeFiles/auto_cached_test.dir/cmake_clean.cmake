file(REMOVE_RECURSE
  "CMakeFiles/auto_cached_test.dir/core/auto_cached_test.cc.o"
  "CMakeFiles/auto_cached_test.dir/core/auto_cached_test.cc.o.d"
  "auto_cached_test"
  "auto_cached_test.pdb"
  "auto_cached_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_cached_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
