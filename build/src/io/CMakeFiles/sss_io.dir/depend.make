# Empty dependencies file for sss_io.
# This may be replaced when dependencies are built.
