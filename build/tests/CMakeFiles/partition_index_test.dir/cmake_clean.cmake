file(REMOVE_RECURSE
  "CMakeFiles/partition_index_test.dir/core/partition_index_test.cc.o"
  "CMakeFiles/partition_index_test.dir/core/partition_index_test.cc.o.d"
  "partition_index_test"
  "partition_index_test.pdb"
  "partition_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
