#include "core/edit_distance.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::RandomString;
using sss::testing::ReferenceEditDistance;

// ---------------------------------------------------------------------------
// Known values
// ---------------------------------------------------------------------------

TEST(EditDistanceTest, PaperWorkedExample) {
  // Figure 1 of the paper: ed("AGGCGT", "AGAGT") = 2.
  EXPECT_EQ(EditDistanceFullMatrix("AGGCGT", "AGAGT"), 2);
  EXPECT_EQ(EditDistanceTwoRow("AGGCGT", "AGAGT"), 2);
}

TEST(EditDistanceTest, ClassicExamples) {
  EXPECT_EQ(EditDistanceFullMatrix("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistanceFullMatrix("flaw", "lawn"), 2);
  EXPECT_EQ(EditDistanceFullMatrix("Berlin", "Bern"), 2);
  EXPECT_EQ(EditDistanceFullMatrix("", ""), 0);
  EXPECT_EQ(EditDistanceFullMatrix("abc", ""), 3);
  EXPECT_EQ(EditDistanceFullMatrix("", "abc"), 3);
  EXPECT_EQ(EditDistanceFullMatrix("same", "same"), 0);
  EXPECT_EQ(EditDistanceFullMatrix("a", "b"), 1);
}

TEST(EditDistanceTest, BoundedReportsExactValueWithinThreshold) {
  EditDistanceWorkspace ws;
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 3, &ws), 3);
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 5, &ws), 3);
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 2, &ws), 0);
}

TEST(EditDistanceTest, BoundedExceedsThresholdMeansGreater) {
  EditDistanceWorkspace ws;
  EXPECT_GT(BoundedEditDistance("kitten", "sitting", 2, &ws), 2);
  EXPECT_GT(BoundedEditDistance("aaaa", "bbbb", 3, &ws), 3);
  EXPECT_GT(BoundedEditDistance("short", "muchlongerstring", 4, &ws), 4);
}

TEST(EditDistanceTest, BoundedZeroThresholdIsEquality) {
  EditDistanceWorkspace ws;
  EXPECT_EQ(BoundedEditDistance("x", "x", 0, &ws), 0);
  EXPECT_GT(BoundedEditDistance("x", "y", 0, &ws), 0);
}

TEST(EditDistanceTest, MyersMatchesOnKnownValues) {
  EditDistanceWorkspace ws;
  EXPECT_EQ(MyersEditDistance64("AGGCGT", "AGAGT", &ws), 2);
  EXPECT_EQ(MyersEditDistance64("kitten", "sitting", &ws), 3);
  EXPECT_EQ(MyersEditDistance64("", "abc", &ws), 3);
  EXPECT_EQ(MyersEditDistance64("abc", "", &ws), 3);
}

TEST(EditDistanceTest, MyersHandles64CharPattern) {
  EditDistanceWorkspace ws;
  const std::string x(64, 'a');
  std::string y = x;
  y[10] = 'b';
  y[50] = 'c';
  EXPECT_EQ(MyersEditDistance64(x, y, &ws), 2);
}

TEST(EditDistanceTest, BlockedMyersCrossesWordBoundaries) {
  EditDistanceWorkspace ws;
  for (size_t len : {63u, 64u, 65u, 127u, 128u, 129u, 200u}) {
    const std::string x(len, 'a');
    std::string y = x;
    y[len / 2] = 'b';
    EXPECT_EQ(MyersEditDistanceBlocked(x, y, &ws), 1) << "len " << len;
    EXPECT_EQ(MyersEditDistanceBlocked(x, x, &ws), 0) << "len " << len;
  }
}

// ---------------------------------------------------------------------------
// Cross-kernel equivalence (parameterized random sweeps)
// ---------------------------------------------------------------------------

struct SweepConfig {
  const char* label;
  const char* alphabet;
  size_t min_len;
  size_t max_len;
  int trials;
};

class KernelEquivalenceTest : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(KernelEquivalenceTest, AllKernelsAgreeWithReference) {
  const SweepConfig& cfg = GetParam();
  Xoshiro256 rng(0xEDu);
  EditDistanceWorkspace ws;
  for (int t = 0; t < cfg.trials; ++t) {
    const std::string x =
        RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
    const std::string y =
        RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
    const int expected = ReferenceEditDistance(x, y);

    ASSERT_EQ(EditDistanceFullMatrix(x, y), expected)
        << "FullMatrix x='" << x << "' y='" << y << "'";
    ASSERT_EQ(EditDistanceTwoRow(x, y), expected)
        << "TwoRow x='" << x << "' y='" << y << "'";
    if (x.size() <= 64) {
      ASSERT_EQ(MyersEditDistance64(x, y, &ws), expected)
          << "Myers64 x='" << x << "' y='" << y << "'";
    }
    ASSERT_EQ(MyersEditDistanceBlocked(x, y, &ws), expected)
        << "MyersBlocked x='" << x << "' y='" << y << "'";
  }
}

TEST_P(KernelEquivalenceTest, BoundedKernelsAgreeWithReference) {
  const SweepConfig& cfg = GetParam();
  Xoshiro256 rng(0xB0u);
  EditDistanceWorkspace ws;
  for (int t = 0; t < cfg.trials; ++t) {
    const std::string x =
        RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
    const std::string y =
        RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
    const int expected = ReferenceEditDistance(x, y);
    for (int k : {0, 1, 2, 3, 4, 8, 16}) {
      const int banded = BoundedEditDistance(x, y, k, &ws);
      const int myers = BoundedMyers(x, y, k, &ws);
      if (expected <= k) {
        ASSERT_EQ(banded, expected)
            << "banded k=" << k << " x='" << x << "' y='" << y << "'";
        ASSERT_EQ(myers, expected)
            << "myers k=" << k << " x='" << x << "' y='" << y << "'";
      } else {
        ASSERT_GT(banded, k)
            << "banded k=" << k << " x='" << x << "' y='" << y << "'";
        ASSERT_GT(myers, k)
            << "myers k=" << k << " x='" << x << "' y='" << y << "'";
      }
      ASSERT_EQ(WithinDistance(x, y, k, &ws), expected <= k)
          << "WithinDistance k=" << k << " x='" << x << "' y='" << y << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, KernelEquivalenceTest,
    ::testing::Values(
        SweepConfig{"tiny_binary", "ab", 0, 6, 400},
        SweepConfig{"short_dna", "ACGNT", 1, 20, 300},
        SweepConfig{"city_like", "abcdefghijklmnopqrstuvwxyz -", 2, 30, 300},
        SweepConfig{"read_like", "ACGNT", 80, 110, 60},
        SweepConfig{"long_mixed", "abcdef", 60, 140, 60},
        SweepConfig{"skewed_lengths", "xyz", 0, 50, 200}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return info.param.label;
    });

// ---------------------------------------------------------------------------
// Metric properties
// ---------------------------------------------------------------------------

TEST(EditDistancePropertyTest, Symmetry) {
  Xoshiro256 rng(0x51);
  for (int t = 0; t < 300; ++t) {
    const std::string x = RandomString(&rng, "abcd", 0, 25);
    const std::string y = RandomString(&rng, "abcd", 0, 25);
    EXPECT_EQ(EditDistanceTwoRow(x, y), EditDistanceTwoRow(y, x));
  }
}

TEST(EditDistancePropertyTest, IdentityOfIndiscernibles) {
  Xoshiro256 rng(0x52);
  for (int t = 0; t < 300; ++t) {
    const std::string x = RandomString(&rng, "abcd", 0, 25);
    EXPECT_EQ(EditDistanceTwoRow(x, x), 0);
    const std::string y = RandomString(&rng, "abcd", 0, 25);
    if (x != y) EXPECT_GT(EditDistanceTwoRow(x, y), 0);
  }
}

TEST(EditDistancePropertyTest, TriangleInequality) {
  Xoshiro256 rng(0x53);
  for (int t = 0; t < 200; ++t) {
    const std::string x = RandomString(&rng, "abc", 0, 15);
    const std::string y = RandomString(&rng, "abc", 0, 15);
    const std::string z = RandomString(&rng, "abc", 0, 15);
    EXPECT_LE(EditDistanceTwoRow(x, z),
              EditDistanceTwoRow(x, y) + EditDistanceTwoRow(y, z))
        << "x='" << x << "' y='" << y << "' z='" << z << "'";
  }
}

TEST(EditDistancePropertyTest, BoundedByLengthDifferenceAndMaxLength) {
  Xoshiro256 rng(0x54);
  for (int t = 0; t < 300; ++t) {
    const std::string x = RandomString(&rng, "abcdef", 0, 30);
    const std::string y = RandomString(&rng, "abcdef", 0, 30);
    const int d = EditDistanceTwoRow(x, y);
    const int len_diff =
        static_cast<int>(x.size() > y.size() ? x.size() - y.size()
                                             : y.size() - x.size());
    EXPECT_GE(d, len_diff);
    EXPECT_LE(d, static_cast<int>(std::max(x.size(), y.size())));
  }
}

TEST(EditDistancePropertyTest, SingleEditMovesDistanceByAtMostOne) {
  Xoshiro256 rng(0x55);
  for (int t = 0; t < 200; ++t) {
    const std::string x = RandomString(&rng, "abcd", 1, 20);
    std::string y = x;
    y[rng.Uniform(y.size())] = 'z';  // one replacement
    EXPECT_LE(EditDistanceTwoRow(x, y), 1);
  }
}

// ---------------------------------------------------------------------------
// Workspace reuse
// ---------------------------------------------------------------------------

TEST(EditDistanceTest, WorkspaceReuseAcrossMixedCalls) {
  // Interleave kernels and sizes against one workspace; stale state must
  // never leak between calls.
  EditDistanceWorkspace ws;
  Xoshiro256 rng(0x56);
  for (int t = 0; t < 200; ++t) {
    const std::string x = RandomString(&rng, "ACGT", 0, 130);
    const std::string y = RandomString(&rng, "ACGT", 0, 130);
    const int expected = ReferenceEditDistance(x, y);
    const int k = static_cast<int>(rng.Uniform(20));
    const int b = BoundedEditDistance(x, y, k, &ws);
    const int m = BoundedMyers(x, y, k, &ws);
    if (expected <= k) {
      ASSERT_EQ(b, expected);
      ASSERT_EQ(m, expected);
    } else {
      ASSERT_GT(b, k);
      ASSERT_GT(m, k);
    }
  }
}

// ---------------------------------------------------------------------------
// OSA (restricted Damerau–Levenshtein)
// ---------------------------------------------------------------------------

TEST(OsaDistanceTest, TranspositionCostsOne) {
  EXPECT_EQ(OsaDistance("the", "hte"), 1);   // Levenshtein would say 2
  EXPECT_EQ(OsaDistance("ab", "ba"), 1);
  EXPECT_EQ(OsaDistance("abcd", "acbd"), 1);
  EXPECT_EQ(OsaDistance("ca", "abc"), 3);    // OSA's classic non-Damerau case
}

TEST(OsaDistanceTest, ReducesToLevenshteinWithoutTranspositions) {
  EXPECT_EQ(OsaDistance("kitten", "sitting"), 3);
  EXPECT_EQ(OsaDistance("", "abc"), 3);
  EXPECT_EQ(OsaDistance("same", "same"), 0);
}

TEST(OsaDistanceTest, NeverExceedsLevenshtein) {
  Xoshiro256 rng(0x05A);
  for (int t = 0; t < 300; ++t) {
    const std::string x = RandomString(&rng, "abc", 0, 20);
    const std::string y = RandomString(&rng, "abc", 0, 20);
    EXPECT_LE(OsaDistance(x, y), ReferenceEditDistance(x, y))
        << "x='" << x << "' y='" << y << "'";
  }
}

TEST(OsaDistanceTest, SingleSwapIsAlwaysOne) {
  Xoshiro256 rng(0x05B);
  for (int t = 0; t < 200; ++t) {
    std::string x = RandomString(&rng, "abcdefgh", 2, 20);
    std::string y = x;
    const size_t i = rng.Uniform(y.size() - 1);
    std::swap(y[i], y[i + 1]);
    EXPECT_LE(OsaDistance(x, y), 1);
  }
}

TEST(BoundedOsaTest, AgreesWithUnbounded) {
  Xoshiro256 rng(0x05C);
  EditDistanceWorkspace ws;
  for (int t = 0; t < 300; ++t) {
    const std::string x = RandomString(&rng, "abcd", 0, 25);
    const std::string y = RandomString(&rng, "abcd", 0, 25);
    const int expected = OsaDistance(x, y);
    for (int k : {0, 1, 2, 3, 6, 12}) {
      const int got = BoundedOsa(x, y, k, &ws);
      if (expected <= k) {
        ASSERT_EQ(got, expected)
            << "x='" << x << "' y='" << y << "' k=" << k;
      } else {
        ASSERT_GT(got, k) << "x='" << x << "' y='" << y << "' k=" << k;
      }
    }
  }
}

TEST(EditDistanceTest, ConvenienceOverloadMatches) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 4), 3);
  EXPECT_GT(BoundedEditDistance("kitten", "sitting", 1), 1);
}

}  // namespace
}  // namespace sss
