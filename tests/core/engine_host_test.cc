// EngineHost lifecycle tests: generation publishing, per-request pinning
// under concurrent reloads (never a mixed-generation answer), cancellation
// and failure leaving the old generation serving, and snapshot version
// monotonicity.
#include "core/engine_host.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "io/snapshot.h"
#include "test_util.h"
#include "util/random.h"
#include "util/search_stats.h"

namespace sss {
namespace {

using testing::RandomDataset;

constexpr std::string_view kAlpha = "abcdefghij";

/// A dataset of `n` copies of "aaaa" — every k=0 "aaaa" query matches all n,
/// so the match count identifies which generation answered.
Dataset UniformDataset(size_t n) {
  Dataset d("uniform", AlphabetKind::kGeneric);
  for (size_t i = 0; i < n; ++i) d.Add("aaaa");
  return d;
}

std::vector<EngineSpec> ScanOnly() {
  return {EngineSpec::For(EngineKind::kSequentialScan)};
}

TEST(EngineSpecTest, ParseKnownNames) {
  auto scan = ParseEngineSpec("scan");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->id, static_cast<uint8_t>(EngineKind::kSequentialScan));
  EXPECT_FALSE(scan->auto_router);

  auto autor = ParseEngineSpec("auto");
  ASSERT_TRUE(autor.ok());
  EXPECT_EQ(autor->id, kAutoEngineId);
  EXPECT_TRUE(autor->auto_router);

  EXPECT_FALSE(ParseEngineSpec("no_such_engine").ok());
}

TEST(EngineHostTest, NoGenerationBeforeFirstLoad) {
  EngineHost host(ScanOnly());
  EXPECT_EQ(host.Acquire(), nullptr);
  EXPECT_EQ(host.generation(), 0u);
  EXPECT_FALSE(host.Reload().ok());  // no source path yet
}

TEST(EngineHostTest, LoadPublishesEveryEngineAndTheSnapshotVersion) {
  Xoshiro256 rng(0x10ad);
  std::vector<EngineSpec> specs = {
      EngineSpec::For(EngineKind::kSequentialScan),
      EngineSpec::For(EngineKind::kTrieIndex),
      EngineSpec::Auto(),
  };
  EngineHost host(specs);
  const SnapshotHandle snapshot =
      CollectionSnapshot::Create(RandomDataset(&rng, kAlpha, 200, 3, 10));
  ASSERT_TRUE(host.Load(snapshot).ok());

  const EngineSetHandle set = host.Acquire();
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->generation, snapshot->version());
  EXPECT_EQ(host.generation(), snapshot->version());
  EXPECT_EQ(set->engines.size(), specs.size());
  for (const EngineSpec& spec : specs) {
    EXPECT_NE(set->Find(spec.id), nullptr) << unsigned{spec.id};
  }
  EXPECT_EQ(set->default_engine, set->Find(specs[0].id));
  EXPECT_EQ(set->Find(0x7E), nullptr);
  // Every engine pins the same snapshot the set advertises.
  for (const auto& engine : set->engines) {
    EXPECT_EQ(engine->SearchedSnapshot(), snapshot);
  }
}

TEST(EngineHostTest, GenerationIdsAreMonotonicAcrossLoads) {
  EngineHost host(ScanOnly());
  uint64_t previous = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        host.Load(CollectionSnapshot::Create(UniformDataset(10 + i))).ok());
    EXPECT_GT(host.generation(), previous);
    previous = host.generation();
  }
  EXPECT_EQ(host.counters().reloads_ok.load(), 4u);
}

TEST(EngineHostTest, DuplicateEngineIdFailsTheLoad) {
  EngineHost host({EngineSpec::For(EngineKind::kSequentialScan),
                   EngineSpec::For(EngineKind::kSequentialScan)});
  const Status st = host.Load(CollectionSnapshot::Create(UniformDataset(5)));
  EXPECT_TRUE(st.IsInvalid()) << st.ToString();
  EXPECT_EQ(host.Acquire(), nullptr);
  EXPECT_EQ(host.counters().reloads_failed.load(), 1u);
}

TEST(EngineHostTest, CancelledBuildLeavesOldGenerationServing) {
  EngineHost host(ScanOnly());
  ASSERT_TRUE(host.Load(CollectionSnapshot::Create(UniformDataset(7))).ok());
  const uint64_t before = host.generation();
  const EngineSetHandle old_set = host.Acquire();

  CancellationToken cancel;
  cancel.Cancel();
  SearchContext ctx;
  ctx.cancellation = &cancel;
  const Status st =
      host.Load(CollectionSnapshot::Create(UniformDataset(9)), ctx);
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_EQ(host.generation(), before);
  EXPECT_EQ(host.Acquire(), old_set);
  EXPECT_EQ(host.counters().reloads_failed.load(), 1u);
}

TEST(EngineHostTest, FailedFileLoadLeavesOldGenerationServing) {
  StatsSink sink;
  EngineHostOptions options;
  options.stats = &sink;
  EngineHost host(ScanOnly(), options);
  ASSERT_TRUE(host.Load(CollectionSnapshot::Create(UniformDataset(7))).ok());
  const uint64_t before = host.generation();

  EXPECT_FALSE(host.LoadFile("/nonexistent/sss_host_test.txt").ok());
  EXPECT_EQ(host.generation(), before);
  ASSERT_NE(host.Acquire(), nullptr);
  EXPECT_EQ(host.counters().reloads_failed.load(), 1u);
  const SearchStats collected = sink.Collected();
  EXPECT_EQ(collected.host_reloads_failed, 1u);
  EXPECT_EQ(collected.host_reloads_ok, 1u);
}

TEST(EngineHostTest, LoadFileRemembersThePathForReload) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("sss_engine_host_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "data.txt").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "alpha\nbeta\ngamma\n";
  }

  EngineHost host(ScanOnly());
  ASSERT_TRUE(host.LoadFile(path).ok());
  EXPECT_EQ(host.source_path(), path);
  const uint64_t first = host.generation();
  ASSERT_NE(host.Acquire(), nullptr);
  EXPECT_EQ(host.Acquire()->snapshot->dataset().size(), 3u);

  // Grow the file; Reload() must pick up the new contents under a new id.
  {
    std::ofstream out(path, std::ios::app);
    out << "delta\n";
  }
  ASSERT_TRUE(host.Reload().ok());
  EXPECT_GT(host.generation(), first);
  EXPECT_EQ(host.Acquire()->snapshot->dataset().size(), 4u);

  std::filesystem::remove_all(dir);
}

// The tentpole guarantee: a search pinned to a generation answers entirely
// from that generation's snapshot, no matter how many reloads land while it
// runs. Readers hammer Acquire()+Search while the main thread republishes
// collections of distinct sizes; every answer must equal the match count of
// exactly the pinned generation — a mixed answer (partly old, partly new
// collection) can produce no other count.
TEST(EngineHostTest, ConcurrentSearchDuringReloadNeverMixesGenerations) {
  constexpr size_t kSizeA = 300;
  constexpr size_t kSizeB = 500;
  EngineHost host(ScanOnly());
  ASSERT_TRUE(host.Load(CollectionSnapshot::Create(UniformDataset(kSizeA)))
                  .ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> searches{0};
  std::atomic<uint64_t> mixed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      Query query;
      query.text = "aaaa";
      query.max_distance = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const EngineSetHandle set = host.Acquire();
        ASSERT_NE(set, nullptr);
        const size_t expected = set->snapshot->dataset().size();
        const MatchList matches = set->default_engine->Search(query);
        if (matches.size() != expected) {
          mixed.fetch_add(1, std::memory_order_relaxed);
        }
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Republishing flips the collection size every time; every flip is a
  // chance for an unpinned reader to see a half-switched world.
  uint64_t last_generation = host.generation();
  for (int i = 0; i < 50; ++i) {
    const size_t size = (i % 2 == 0) ? kSizeB : kSizeA;
    ASSERT_TRUE(
        host.Load(CollectionSnapshot::Create(UniformDataset(size))).ok());
    EXPECT_GT(host.generation(), last_generation);
    last_generation = host.generation();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mixed.load(), 0u);
  EXPECT_GT(searches.load(), 0u);
}

// Dropping the last pin destroys the replaced generation: after a reload,
// the old set's snapshot must die with the old set.
TEST(EngineHostTest, ReplacedGenerationDiesWhenLastPinDrops) {
  EngineHost host(ScanOnly());
  ASSERT_TRUE(host.Load(CollectionSnapshot::Create(UniformDataset(5))).ok());
  EngineSetHandle pinned = host.Acquire();
  std::weak_ptr<const EngineSet> watch = pinned;

  ASSERT_TRUE(host.Load(CollectionSnapshot::Create(UniformDataset(6))).ok());
  EXPECT_FALSE(watch.expired());  // the pin still holds the old world
  // The pinned set keeps answering from the old collection.
  Query query;
  query.text = "aaaa";
  query.max_distance = 0;
  EXPECT_EQ(pinned->default_engine->Search(query).size(), 5u);

  pinned.reset();
  EXPECT_TRUE(watch.expired());
}

TEST(SnapshotTest, OwnedAndBorrowedSnapshotsGetDistinctRisingVersions) {
  Dataset borrowed_from("b", AlphabetKind::kGeneric);
  borrowed_from.Add("x");
  const SnapshotHandle owned =
      CollectionSnapshot::Create(UniformDataset(2), "somewhere.txt");
  const SnapshotHandle borrowed = CollectionSnapshot::Borrow(borrowed_from);
  EXPECT_GT(borrowed->version(), owned->version());
  EXPECT_TRUE(owned->owns_dataset());
  EXPECT_FALSE(borrowed->owns_dataset());
  EXPECT_EQ(owned->source_path(), "somewhere.txt");
  EXPECT_EQ(&borrowed->dataset(), &borrowed_from);
  EXPECT_GE(CollectionSnapshot::LatestVersion(), borrowed->version());
}

}  // namespace
}  // namespace sss
