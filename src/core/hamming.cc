#include "core/hamming.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "util/macros.h"
#include "util/search_stats.h"

namespace sss {

int HammingDistance(std::string_view x, std::string_view y) {
  SSS_DCHECK(x.size() == y.size());
  // Word-parallel: XOR eight bytes at a time; a differing byte leaves at
  // least one set bit in its lane. Collapse each lane to its LSB via the
  // standard (v | v>>4 | v>>2 | v>>1) & 0x01 trick, then popcount.
  size_t i = 0;
  int mismatches = 0;
  for (; i + 8 <= x.size(); i += 8) {
    uint64_t a, b;
    std::memcpy(&a, x.data() + i, 8);
    std::memcpy(&b, y.data() + i, 8);
    uint64_t v = a ^ b;
    if (v == 0) continue;
    v |= v >> 4;
    v |= v >> 2;
    v |= v >> 1;
    v &= 0x0101010101010101ULL;
    mismatches += std::popcount(v);
  }
  for (; i < x.size(); ++i) {
    mismatches += x[i] != y[i] ? 1 : 0;
  }
  return mismatches;
}

int BoundedHamming(std::string_view x, std::string_view y, int k) {
  SSS_DCHECK(k >= 0);
  if (x.size() != y.size()) return k + 1;
  size_t i = 0;
  int mismatches = 0;
  for (; i + 8 <= x.size(); i += 8) {
    uint64_t a, b;
    std::memcpy(&a, x.data() + i, 8);
    std::memcpy(&b, y.data() + i, 8);
    uint64_t v = a ^ b;
    if (v == 0) continue;
    v |= v >> 4;
    v |= v >> 2;
    v |= v >> 1;
    v &= 0x0101010101010101ULL;
    mismatches += std::popcount(v);
    if (mismatches > k) return k + 1;
  }
  for (; i < x.size(); ++i) {
    mismatches += x[i] != y[i] ? 1 : 0;
    if (mismatches > k) return k + 1;
  }
  return mismatches;
}

HammingScanSearcher::HammingScanSearcher(SnapshotHandle snapshot)
    : snapshot_(std::move(snapshot)), dataset_(snapshot_->dataset()) {}

Status HammingScanSearcher::Search(const Query& query,
                                   const SearchContext& ctx,
                                   MatchList* out) const {
  return SearchRange(query, 0, static_cast<uint32_t>(dataset_.size()), ctx,
                     out);
}

Status HammingScanSearcher::SearchRange(const Query& query, uint32_t begin,
                                        uint32_t end, const SearchContext& ctx,
                                        MatchList* out) const {
  const int k = query.max_distance;
  const std::string_view q = query.text;
  StatsScope stats(ctx.stats);
  const size_t out_before = out->size();
  StopChecker stopper(ctx);
  for (uint32_t id = begin; id < end; ++id) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    if (dataset_.Length(id) != q.size()) {
      ++stats->length_filter_rejects;
      continue;
    }
    if (BoundedHamming(q, dataset_.View(id), k) <= k) {
      out->push_back(id);
    }
  }
  stats->candidates_considered += end - begin;
  stats->verify_calls += (end - begin) - stats->length_filter_rejects;
  stats->matches_found += out->size() - out_before;
  return Status::OK();
}

HammingTrieSearcher::HammingTrieSearcher(SnapshotHandle snapshot)
    : snapshot_(std::move(snapshot)), dataset_(snapshot_->dataset()) {
  nodes_.emplace_back();
  for (size_t id = 0; id < dataset_.size(); ++id) {
    Insert(dataset_.View(id), static_cast<uint32_t>(id));
  }
}

void HammingTrieSearcher::Insert(std::string_view s, uint32_t id) {
  const auto len = static_cast<uint16_t>(s.size());
  uint32_t cur = 0;
  nodes_[0].min_len = std::min(nodes_[0].min_len, len);
  nodes_[0].max_len = std::max(nodes_[0].max_len, len);
  for (unsigned char c : s) {
    Node& node = nodes_[cur];
    const auto it = std::lower_bound(
        node.children.begin(), node.children.end(), c,
        [](const auto& edge, unsigned char key) { return edge.first < key; });
    uint32_t next;
    if (it == node.children.end() || it->first != c) {
      next = static_cast<uint32_t>(nodes_.size());
      const auto slot = it - node.children.begin();
      nodes_.emplace_back();  // may invalidate node/it
      nodes_[cur].children.insert(nodes_[cur].children.begin() + slot,
                                  {c, next});
    } else {
      next = it->second;
    }
    cur = next;
    nodes_[cur].min_len = std::min(nodes_[cur].min_len, len);
    nodes_[cur].max_len = std::max(nodes_[cur].max_len, len);
  }
  nodes_[cur].terminal_ids.push_back(id);
}

Status HammingTrieSearcher::Search(const Query& query,
                                   const SearchContext& ctx,
                                   MatchList* out) const {
  const int k = query.max_distance;
  const std::string_view q = query.text;
  const auto lq = static_cast<uint16_t>(q.size());

  // DFS frames carry the mismatch count so far; at depth d the next label
  // is compared against q[d].
  struct Frame {
    uint32_t node;
    uint16_t depth;
    uint16_t mismatches;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{0, 0, 0, 0});

  StatsScope stats(ctx.stats);
  ++stats->trie_nodes_visited;  // root
  const size_t out_before = out->size();

  StopChecker stopper(ctx);
  while (!stack.empty()) {
    if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
      out->clear();
      return ctx.StopStatus();
    }
    Frame& frame = stack.back();
    const Node& node = nodes_[frame.node];

    if (frame.next_child == 0 && frame.depth == lq &&
        !node.terminal_ids.empty()) {
      // Hamming matches end exactly at the query's length.
      out->insert(out->end(), node.terminal_ids.begin(),
                  node.terminal_ids.end());
    }

    bool descended = false;
    while (frame.depth < lq && frame.next_child < node.children.size()) {
      const auto [label, child_idx] = node.children[frame.next_child++];
      const Node& child = nodes_[child_idx];
      // Only subtrees containing strings of exactly the query's length can
      // match under Hamming distance.
      if (child.min_len > lq || child.max_len < lq) {
        ++stats->trie_nodes_pruned;
        continue;
      }
      const uint16_t mismatches =
          frame.mismatches +
          (label == static_cast<unsigned char>(q[frame.depth]) ? 0 : 1);
      if (mismatches > k) {
        ++stats->trie_nodes_pruned;
        continue;
      }
      stack.push_back(Frame{child_idx,
                            static_cast<uint16_t>(frame.depth + 1),
                            mismatches, 0});
      ++stats->trie_nodes_visited;
      descended = true;
      break;
    }
    if (!descended) stack.pop_back();
  }

  stats->matches_found += out->size() - out_before;
  std::sort(out->begin(), out->end());
  return Status::OK();
}

size_t HammingTrieSearcher::memory_bytes() const {
  size_t bytes = nodes_.size() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.children.capacity() * sizeof(n.children[0]) +
             n.terminal_ids.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace sss
