// Wire protocol for the sss serving layer: a small versioned
// length-prefixed binary framing, one request frame in, one response frame
// out, over a plain TCP byte stream.
//
// Request frame (little-endian, 32-byte header + query bytes):
//
//   offset  size  field
//   0       4     magic        "SSSQ" (0x51535353)
//   4       1     version      kProtocolVersion (2)
//   5       1     type         FrameType::kSearch (1) or kAdmin (3)
//   6       1     engine       EngineKind value, or kAnyEngine (0xFF);
//                              ignored for kAdmin
//   7       1     reserved     must be 0
//   8       8     request_id   echoed verbatim in the response
//   16      4     k            kSearch: edit-distance threshold
//                              (<= limits.max_k); kAdmin: the admin op
//                              (kAdminOpReload / kAdminOpGetGeneration)
//   20      4     deadline_ms  per-request budget (0 = none)
//   24      4     query_len    bytes of query text following the header
//                              (kAdmin reload: optional dataset path;
//                              empty = reload the server's current source)
//   28      4     reserved     must be 0
//   32      ...   query bytes  (<= limits.max_query_bytes)
//
// Response frame (32-byte header + payload):
//
//   offset  size  field
//   0       4     magic        "SSSP" (0x50535353)
//   4       1     version
//   5       1     type         FrameType::kResponse (2)
//   6       1     status       StatusCode of the server-side outcome
//   7       1     reserved     must be 0
//   8       8     request_id
//   16      4     count        match ids (OK) / message bytes (error)
//   20      4     payload_len  bytes following the header; must equal
//                              count*4 (OK) or count (error)
//   24      8     generation   id of the engine generation (collection
//                              snapshot version) that answered; 0 when the
//                              server serves no versioned generation.
//                              Admin responses carry the post-op generation.
//   32      ...   payload      u32 match ids ascending, or message text
//
// v1 → v2: the response header grew from 24 to 32 bytes (the generation
// field) and kAdmin frames were added. Version bytes are checked on both
// sides, so a v1 peer gets a clean "unsupported version" error instead of a
// misparse.
//
// Decoding is defensive by construction: every field is range-checked
// against ProtocolLimits before any allocation sized from the wire, and the
// decoder classifies failures as kInvalid (a well-formed peer would never
// send this: bad magic/version/type, limit violations, nonzero reserved
// bytes) vs kCorruption (the frame itself is inconsistent or truncated).
// Decoders never abort, whatever the bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sss::server {

inline constexpr uint32_t kRequestMagic = 0x51535353;   // "SSSQ"
inline constexpr uint32_t kResponseMagic = 0x50535353;  // "SSSP"
inline constexpr uint8_t kProtocolVersion = 2;

/// \brief Engine selector meaning "whatever the server's default is".
inline constexpr uint8_t kAnyEngine = 0xFF;

enum class FrameType : uint8_t {
  kSearch = 1,
  kResponse = 2,
  kAdmin = 3,
};

/// \brief Admin ops (the request's k field when type == kAdmin).
inline constexpr uint32_t kAdminOpReload = 1;
inline constexpr uint32_t kAdminOpGetGeneration = 2;

inline constexpr size_t kRequestHeaderBytes = 32;
inline constexpr size_t kResponseHeaderBytes = 32;

/// \brief Hard ceilings a decoder enforces before trusting any
/// length-prefixed field. Both sides of a connection must agree on limits
/// at least as large as the frames they exchange.
struct ProtocolLimits {
  /// Longest accepted query text (matches ReaderLimits::max_line_bytes).
  uint32_t max_query_bytes = 1u << 20;
  /// Largest accepted threshold (matches ReaderLimits::max_threshold).
  uint32_t max_k = 1024;
  /// Largest response payload a client will accept (64 MiB of match ids).
  uint32_t max_response_payload = 1u << 26;
};

/// \brief One request, decoded (or about to be encoded). `type` selects the
/// interpretation: kSearch uses every field as named; kAdmin reuses `k` as
/// the admin op and `query` as the op's argument (reload: dataset path,
/// empty = current source).
struct Request {
  uint64_t request_id = 0;
  FrameType type = FrameType::kSearch;
  uint8_t engine = kAnyEngine;
  uint32_t k = 0;
  uint32_t deadline_ms = 0;  // 0 = no per-request deadline
  std::string query;
};

/// \brief One response. `code` is the server-side outcome of the search
/// (kOk, kUnavailable when shed, kCancelled on deadline, kInvalid on a
/// malformed request); transport failures never appear here.
struct Response {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  /// Engine generation (collection snapshot version) that answered — 0 when
  /// the server serves no versioned generation. Admin responses carry the
  /// generation after the op.
  uint64_t generation = 0;
  std::string message;            // non-OK only
  std::vector<uint32_t> matches;  // OK only, ascending ids
};

/// \brief Appends the encoded request frame to `out`.
void EncodeRequest(const Request& request, std::string* out);

/// \brief Appends the encoded response frame to `out`. Error responses
/// carry `message`; OK responses carry `matches`.
void EncodeResponse(const Response& response, std::string* out);

/// \brief Validates a 32-byte request header and extracts the fixed fields
/// plus the query length still to be read from the stream. On failure the
/// request id is still filled in when the header was long enough to carry
/// one, so servers can address their error frame.
Status DecodeRequestHeader(const uint8_t* header, const ProtocolLimits& limits,
                           Request* out, uint32_t* query_len);

/// \brief Decodes a complete request frame held in one buffer (header +
/// query). Classifies short/inconsistent buffers as kCorruption.
Status DecodeRequest(std::string_view frame, const ProtocolLimits& limits,
                     Request* out);

/// \brief Validates a 32-byte response header; `payload_len` is the byte
/// count still to be read from the stream.
Status DecodeResponseHeader(const uint8_t* header,
                            const ProtocolLimits& limits, Response* out,
                            uint32_t* payload_len);

/// \brief Decodes a response payload (match ids or error message) into a
/// header-decoded Response.
Status DecodeResponsePayload(std::string_view payload, Response* out);

/// \brief Decodes a complete response frame held in one buffer.
Status DecodeResponse(std::string_view frame, const ProtocolLimits& limits,
                      Response* out);

}  // namespace sss::server
