#include "align/suffix_array.h"

#include <algorithm>
#include <numeric>

namespace sss::align {

SuffixArray::SuffixArray(std::string text) : text_(std::move(text)) {
  const size_t n = text_.size();
  sa_.resize(n);
  std::iota(sa_.begin(), sa_.end(), 0u);
  if (n == 0) return;

  // Prefix doubling: rank[i] orders suffixes by their first `len` chars;
  // each round doubles `len` by sorting on (rank[i], rank[i + len]).
  std::vector<uint32_t> rank(n), next_rank(n);
  for (size_t i = 0; i < n; ++i) {
    rank[i] = static_cast<unsigned char>(text_[i]);
  }

  std::vector<uint32_t> key2(n);
  for (size_t len = 1;; len <<= 1) {
    const auto sort_key2 = [&](uint32_t i) -> uint32_t {
      return i + len < n ? rank[i + len] + 1 : 0;  // 0 = past the end
    };
    for (size_t i = 0; i < n; ++i) key2[i] = sort_key2(static_cast<uint32_t>(i));

    std::sort(sa_.begin(), sa_.end(), [&](uint32_t a, uint32_t b) {
      return rank[a] != rank[b] ? rank[a] < rank[b] : key2[a] < key2[b];
    });

    next_rank[sa_[0]] = 0;
    for (size_t i = 1; i < n; ++i) {
      const uint32_t prev = sa_[i - 1];
      const uint32_t cur = sa_[i];
      const bool same = rank[prev] == rank[cur] && key2[prev] == key2[cur];
      next_rank[cur] = next_rank[prev] + (same ? 0 : 1);
    }
    rank.swap(next_rank);
    if (rank[sa_[n - 1]] == n - 1) break;  // all ranks distinct: done
  }
}

std::pair<size_t, size_t> SuffixArray::EqualRange(
    std::string_view pattern) const {
  // Binary search on the sorted suffixes; a suffix "matches" when its first
  // |pattern| characters equal the pattern.
  const auto suffix = [&](size_t slot) -> std::string_view {
    return std::string_view(text_).substr(sa_[slot]);
  };
  const auto less_than_pattern = [&](size_t slot) {
    return suffix(slot).substr(0, pattern.size()) < pattern;
  };

  size_t lo = 0, hi = sa_.size();
  // Lower bound: first suffix whose prefix is >= pattern.
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (less_than_pattern(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const size_t begin = lo;
  // Upper bound: first suffix whose prefix is > pattern.
  hi = sa_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (suffix(mid).substr(0, pattern.size()) <= pattern) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {begin, lo};
}

std::vector<uint32_t> SuffixArray::Occurrences(
    std::string_view pattern) const {
  const auto [lo, hi] = EqualRange(pattern);
  std::vector<uint32_t> positions(sa_.begin() + lo, sa_.begin() + hi);
  std::sort(positions.begin(), positions.end());
  return positions;
}

}  // namespace sss::align
