# Empty compiler generated dependencies file for read_mapper_test.
# This may be replaced when dependencies are built.
