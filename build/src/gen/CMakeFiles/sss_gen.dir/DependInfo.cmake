
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/city_corpus.cc" "src/gen/CMakeFiles/sss_gen.dir/city_corpus.cc.o" "gcc" "src/gen/CMakeFiles/sss_gen.dir/city_corpus.cc.o.d"
  "/root/repo/src/gen/city_generator.cc" "src/gen/CMakeFiles/sss_gen.dir/city_generator.cc.o" "gcc" "src/gen/CMakeFiles/sss_gen.dir/city_generator.cc.o.d"
  "/root/repo/src/gen/dna_generator.cc" "src/gen/CMakeFiles/sss_gen.dir/dna_generator.cc.o" "gcc" "src/gen/CMakeFiles/sss_gen.dir/dna_generator.cc.o.d"
  "/root/repo/src/gen/query_generator.cc" "src/gen/CMakeFiles/sss_gen.dir/query_generator.cc.o" "gcc" "src/gen/CMakeFiles/sss_gen.dir/query_generator.cc.o.d"
  "/root/repo/src/gen/typo_model.cc" "src/gen/CMakeFiles/sss_gen.dir/typo_model.cc.o" "gcc" "src/gen/CMakeFiles/sss_gen.dir/typo_model.cc.o.d"
  "/root/repo/src/gen/workload.cc" "src/gen/CMakeFiles/sss_gen.dir/workload.cc.o" "gcc" "src/gen/CMakeFiles/sss_gen.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sss_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
