# Empty dependencies file for string_pool_test.
# This may be replaced when dependencies are built.
