// Hamming-distance support. PETER — the related work the paper builds its
// trie on (§2.3) — "supports Hamming and edit distance"; read-matching
// pipelines often use Hamming first (same-length substitution-only
// comparisons are common and far cheaper). This module adds:
//
//   * plain and word-parallel bounded Hamming kernels;
//   * HammingScanSearcher, a Searcher answering Hamming queries with the
//     same batch/parallelism machinery as the edit-distance engines;
//   * trie descent for Hamming (exact-depth mismatch counting) lives in
//     HammingTrieSearcher — pruning is trivial compared to edit distance
//     (mismatches only grow), which makes it a clean index showcase.
//
// Semantics: strings of different lengths are at infinite Hamming distance
// (never match), the standard convention.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/searcher.h"
#include "io/dataset.h"

namespace sss {

/// \brief Exact Hamming distance of two equal-length strings.
/// Precondition: x.size() == y.size().
int HammingDistance(std::string_view x, std::string_view y);

/// \brief Bounded Hamming distance: the exact distance if ≤ k, else any
/// value > k (may stop counting early). Different lengths return k+1.
int BoundedHamming(std::string_view x, std::string_view y, int k);

/// \brief True iff x and y have equal length and Hamming distance ≤ k.
inline bool WithinHamming(std::string_view x, std::string_view y, int k) {
  return BoundedHamming(x, y, k) <= k;
}

/// \brief Sequential scan under Hamming distance.
class HammingScanSearcher final : public Searcher {
 public:
  explicit HammingScanSearcher(SnapshotHandle snapshot);

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  explicit HammingScanSearcher(const Dataset& dataset)
      : HammingScanSearcher(CollectionSnapshot::Borrow(dataset)) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "hamming_scan"; }

  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }
  bool SupportsRangeSearch() const override { return true; }
  Status SearchRange(const Query& query, uint32_t begin, uint32_t end,
                     const SearchContext& ctx, MatchList* out) const override;

 private:
  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
};

/// \brief Prefix trie under Hamming distance: descend counting mismatches;
/// prune when the count exceeds k or the subtree's lengths differ from the
/// query's (Hamming only matches equal lengths, so the per-node length
/// range is decisively selective).
class HammingTrieSearcher final : public Searcher {
 public:
  explicit HammingTrieSearcher(SnapshotHandle snapshot);

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  explicit HammingTrieSearcher(const Dataset& dataset)
      : HammingTrieSearcher(CollectionSnapshot::Borrow(dataset)) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "hamming_trie"; }
  size_t memory_bytes() const override;
  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

 private:
  struct Node {
    std::vector<std::pair<unsigned char, uint32_t>> children;
    std::vector<uint32_t> terminal_ids;
    uint16_t min_len = UINT16_MAX;
    uint16_t max_len = 0;
  };

  void Insert(std::string_view s, uint32_t id);

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
  std::vector<Node> nodes_;
};

}  // namespace sss
