# Empty compiler generated dependencies file for bench_ablation_sorting.
# This may be replaced when dependencies are built.
