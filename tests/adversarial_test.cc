// Adversarial inputs: datasets built to stress representation assumptions —
// NUL bytes, 0xFF bytes, empty strings, one-symbol monocultures, extreme
// length skew, total duplication. Every engine must stay correct (checked
// against brute force) and must not crash or hang.
#include <gtest/gtest.h>

#include <memory>

#include "core/searcher.h"
#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;

std::vector<std::unique_ptr<Searcher>> AllGenericEngines(const Dataset& d) {
  std::vector<std::unique_ptr<Searcher>> engines;
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
        EngineKind::kPartitionIndex, EngineKind::kBKTree}) {
    engines.push_back(std::move(MakeSearcher(kind, d)).ValueOrDie());
  }
  return engines;
}

void ExpectAllEnginesAgree(const Dataset& d, const QuerySet& queries) {
  const auto engines = AllGenericEngines(d);
  for (const Query& q : queries) {
    const MatchList expected = BruteForceSearch(d, q);
    for (const auto& engine : engines) {
      ASSERT_EQ(engine->Search(q), expected)
          << engine->name() << " k=" << q.max_distance << " |q|="
          << q.text.size();
    }
  }
}

TEST(AdversarialTest, EmbeddedNulBytes) {
  Dataset d("nul", AlphabetKind::kGeneric);
  d.Add(std::string("a\0b", 3));
  d.Add(std::string("a\0c", 3));
  d.Add(std::string("\0\0\0", 3));
  d.Add("abc");
  ExpectAllEnginesAgree(
      d, {{std::string("a\0b", 3), 0},
          {std::string("a\0b", 3), 1},
          {std::string("\0", 1), 2},
          {"abc", 1}});
}

TEST(AdversarialTest, HighBytes) {
  Dataset d("high", AlphabetKind::kGeneric);
  d.Add("\xFF\xFE\xFD");
  d.Add("\xFF\xFE\xFC");
  d.Add("\x80\x80");
  ExpectAllEnginesAgree(d, {{"\xFF\xFE\xFD", 0},
                            {"\xFF\xFE\xFD", 1},
                            {"\x80\x80\x80", 1}});
}

TEST(AdversarialTest, ManyEmptyStrings) {
  Dataset d("empties", AlphabetKind::kGeneric);
  for (int i = 0; i < 20; ++i) d.Add("");
  d.Add("a");
  d.Add("ab");
  ExpectAllEnginesAgree(d, {{"", 0}, {"", 1}, {"a", 1}, {"xyz", 2}});
}

TEST(AdversarialTest, SingleSymbolMonoculture) {
  // Pathological trie: one long chain; pathological BK-tree: distances are
  // pure length differences.
  Dataset d("mono", AlphabetKind::kGeneric);
  for (size_t len = 0; len <= 40; ++len) d.Add(std::string(len, 'a'));
  ExpectAllEnginesAgree(d, {{std::string(20, 'a'), 0},
                            {std::string(20, 'a'), 3},
                            {std::string(45, 'a'), 4},
                            {"", 2},
                            {std::string(20, 'b'), 2}});
}

TEST(AdversarialTest, TotalDuplication) {
  Dataset d("dups", AlphabetKind::kGeneric);
  for (int i = 0; i < 64; ++i) d.Add("clone");
  ExpectAllEnginesAgree(d, {{"clone", 0}, {"clone", 2}, {"alone", 1}});
}

TEST(AdversarialTest, ExtremeLengthSkew) {
  Dataset d("skew", AlphabetKind::kGeneric);
  d.Add("a");
  d.Add(std::string(500, 'x') + "tail");
  d.Add(std::string(500, 'x') + "tali");
  d.Add("b");
  QuerySet queries = {{std::string(500, 'x') + "tail", 2},
                      {"a", 1},
                      {std::string(499, 'x') + "tail", 1}};
  ExpectAllEnginesAgree(d, queries);
}

TEST(AdversarialTest, SharedPrefixExplosion) {
  // Strings sharing a 30-char prefix; trie pruning must still terminate
  // fast and correctly when the divergence is at the tail.
  Dataset d("prefix", AlphabetKind::kGeneric);
  const std::string prefix(30, 'p');
  for (int i = 0; i < 50; ++i) {
    d.Add(prefix + static_cast<char>('a' + i % 26) +
          std::to_string(i));
  }
  ExpectAllEnginesAgree(d, {{prefix + "a0", 0},
                            {prefix + "a0", 2},
                            {prefix, 4},
                            {"q" + prefix + "a0", 1}});
}

TEST(AdversarialTest, LargeThresholdSwallowsEverything) {
  Xoshiro256 rng(0xADF);
  Dataset d("all", AlphabetKind::kGeneric);
  for (int i = 0; i < 40; ++i) {
    d.Add(sss::testing::RandomString(&rng, "ab", 0, 6));
  }
  // k bigger than any string: every id matches.
  const Query q{"aaa", 10};
  const auto engines = AllGenericEngines(d);
  for (const auto& engine : engines) {
    ASSERT_EQ(engine->Search(q).size(), d.size()) << engine->name();
  }
}

}  // namespace
}  // namespace sss
