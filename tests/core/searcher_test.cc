#include "core/searcher.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

TEST(SearcherFactoryTest, BuildsEveryEngineKind) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("alpha");
  d.Add("beta");
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
        EngineKind::kPartitionIndex}) {
    auto searcher = MakeSearcher(kind, d);
    ASSERT_TRUE(searcher.ok()) << ToString(kind);
    EXPECT_EQ((*searcher)->name(), ToString(kind));
    EXPECT_EQ((*searcher)->Search({"alpha", 0}), (MatchList{0}));
  }
}

TEST(SearcherFactoryTest, PackedScanRequiresDnaData) {
  Dataset generic("x", AlphabetKind::kGeneric);
  generic.Add("alpha");
  EXPECT_FALSE(MakeSearcher(EngineKind::kPackedDnaScan, generic).ok());

  Dataset dna("y", AlphabetKind::kDna);
  dna.Add("ACGT");
  auto searcher = MakeSearcher(EngineKind::kPackedDnaScan, dna);
  ASSERT_TRUE(searcher.ok());
  EXPECT_EQ((*searcher)->Search({"ACGT", 0}), (MatchList{0}));
}

TEST(SearcherFactoryTest, ToStringNames) {
  EXPECT_EQ(ToString(EngineKind::kSequentialScan), "sequential_scan");
  EXPECT_EQ(ToString(EngineKind::kTrieIndex), "trie_index");
  EXPECT_EQ(ToString(EngineKind::kCompressedTrieIndex),
            "compressed_trie_index");
}

// The paper's central correctness requirement: both competitors (and the
// compressed variant) return identical results on identical batches.
class EngineAgreementTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(EngineAgreementTest, AllEnginesReturnIdenticalBatches) {
  const auto [alphabet, max_k] = GetParam();
  Xoshiro256 rng(0xA6EE);
  Dataset d = RandomDataset(&rng, alphabet, 250, 1, 30);
  std::vector<std::unique_ptr<Searcher>> engines;
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
        EngineKind::kPartitionIndex}) {
    engines.push_back(std::move(MakeSearcher(kind, d)).ValueOrDie());
  }
  QuerySet queries;
  for (int i = 0; i < 40; ++i) {
    queries.push_back({RandomString(&rng, alphabet, 1, 30),
                       static_cast<int>(rng.Uniform(max_k + 1))});
  }
  const SearchResults reference =
      engines[0]->SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  // Cross-check a sample against brute force.
  for (size_t i = 0; i < queries.size(); i += 7) {
    ASSERT_EQ(reference[i], BruteForceSearch(d, queries[i])) << i;
  }
  for (size_t e = 1; e < engines.size(); ++e) {
    EXPECT_EQ(
        engines[e]->SearchBatch(queries, {ExecutionStrategy::kSerial, 0}),
        reference)
        << engines[e]->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EngineAgreementTest,
    ::testing::Values(std::make_tuple("abcdefgh -", 3),
                      std::make_tuple("ACGNT", 8)));

TEST(SearcherBatchTest, AllStrategiesProduceSameResults) {
  Xoshiro256 rng(0xA6EF);
  Dataset d = RandomDataset(&rng, "abcd", 150, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kTrieIndex, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 25; ++i) {
    queries.push_back(
        {RandomString(&rng, "abcd", 1, 12), static_cast<int>(i % 3)});
  }
  const SearchResults serial =
      searcher->SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kThreadPerQuery, ExecutionStrategy::kFixedPool,
        ExecutionStrategy::kAdaptive}) {
    EXPECT_EQ(searcher->SearchBatch(queries, {strategy, 4}), serial)
        << static_cast<int>(strategy);
  }
}

TEST(SearcherBatchTest, EmptyBatchIsEmpty) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("a");
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kSerial, ExecutionStrategy::kThreadPerQuery,
        ExecutionStrategy::kFixedPool, ExecutionStrategy::kAdaptive}) {
    EXPECT_TRUE(searcher->SearchBatch({}, {strategy, 2}).empty());
  }
}

TEST(SearcherTest, IndexMemoryIsReported) {
  Xoshiro256 rng(0xA6F0);
  Dataset d = RandomDataset(&rng, "abcdef", 500, 4, 20);
  auto trie = std::move(MakeSearcher(EngineKind::kTrieIndex, d)).ValueOrDie();
  auto radix = std::move(MakeSearcher(EngineKind::kCompressedTrieIndex, d))
                   .ValueOrDie();
  EXPECT_GT(trie->memory_bytes(), 0u);
  EXPECT_GT(radix->memory_bytes(), 0u);
  EXPECT_LT(radix->memory_bytes(), trie->memory_bytes())
      << "compression should reduce index memory";
}

}  // namespace
}  // namespace sss
