# Empty dependencies file for sss_util.
# This may be replaced when dependencies are built.
