#include "util/cancellation.h"

namespace sss {

Status SearchContext::StopStatus() const {
  if (cancellation != nullptr && cancellation->IsCancelled()) {
    return Status::Cancelled("search cancelled");
  }
  if (deadline.Expired()) {
    return Status::Cancelled("search deadline exceeded");
  }
  // Used to pre-mark work that a stopped batch never reached.
  return Status::Cancelled("search stopped before this work ran");
}

}  // namespace sss
