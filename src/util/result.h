// Result<T>: value-or-Status, modeled on arrow::Result. Returned by
// operations that produce a value but can fail.
#pragma once

#include <utility>
#include <variant>

#include "util/macros.h"
#include "util/status.h"

namespace sss {

/// \brief Holds either a successfully produced T or the Status explaining why
/// none could be produced.
///
/// Like arrow::Result, a Result is contextually convertible from both T and
/// Status, so functions can `return Status::Invalid(...)` or `return value;`
/// interchangeably.
template <typename T>
class Result {
 public:
  /// Constructs a failed Result. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    SSS_DCHECK(!std::get<Status>(repr_).ok());
  }
  /// Constructs a successful Result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit

  Result(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) noexcept = default;

  /// \brief True iff a value is present.
  bool ok() const noexcept { return std::holds_alternative<T>(repr_); }

  /// \brief The error Status, or OK when a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// \brief The value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    if (SSS_PREDICT_FALSE(!ok())) std::get<Status>(repr_).Abort();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    if (SSS_PREDICT_FALSE(!ok())) std::get<Status>(repr_).Abort();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    if (SSS_PREDICT_FALSE(!ok())) std::get<Status>(repr_).Abort();
    return std::move(std::get<T>(repr_));
  }

  /// \brief The value without checking. Only call after ok() returned true
  /// (used by SSS_ASSIGN_OR_RETURN).
  T ValueUnsafe() && { return std::move(std::get<T>(repr_)); }
  const T& ValueUnsafe() const& { return std::get<T>(repr_); }

  /// \brief The value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const& {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace sss
