// Runtime kernel-tier dispatch for the many-vs-many verify kernels.
//
// The scan-shaped engines can verify a whole lane of candidates per pass
// (core/simd_verify) instead of one pair at a time. Which instruction set
// backs that lane kernel is decided ONCE per process, from CPUID, the first
// time anyone asks — never per call:
//
//   kScalar  per-pair Myers (the PR 3 kernels, unchanged; the default)
//   kSwar    4 × 64-bit lanes in portable C++ (ILP, no intrinsics)
//   kAvx2    4 × 64-bit lanes in one __m256i (requires AVX2 at runtime)
//
// Callers pick a KernelTierChoice on SearchContext; ResolveKernelTier clamps
// it to what the hardware can actually run. The SSS_FORCE_KERNEL_TIER
// environment variable (scalar|swar|avx2|auto) overrides every per-context
// choice — it exists so CI can run the differential kernel-equivalence suite
// under each tier without recompiling — and is itself clamped to the
// detected capability (forcing avx2 on a non-AVX2 machine degrades to swar
// rather than executing illegal instructions).
//
// This lives in util (not core) so SearchContext (util/cancellation.h) can
// carry the knob without depending on the engine layer.
#pragma once

#include <optional>
#include <string_view>

namespace sss {

/// \brief An executable many-vs-many kernel implementation, ordered by
/// preference (higher = wider).
enum class KernelTier : int {
  kScalar = 0,
  kSwar = 1,
  kAvx2 = 2,
};

/// \brief What a caller asks for. kAuto means "best the machine supports";
/// explicit tiers are clamped down to the detected capability.
enum class KernelTierChoice : int {
  kScalar = 0,
  kSwar = 1,
  kAvx2 = 2,
  kAuto = 3,
};

std::string_view ToString(KernelTier tier) noexcept;
std::string_view ToString(KernelTierChoice choice) noexcept;

/// \brief Parses "scalar" | "swar" | "avx2" | "auto" (exact, lowercase).
std::optional<KernelTierChoice> ParseKernelTierChoice(
    std::string_view name) noexcept;

/// \brief The widest tier this CPU can execute, probed via CPUID on first
/// use and cached. Ignores SSS_FORCE_KERNEL_TIER.
KernelTier DetectCpuKernelTier() noexcept;

/// \brief The process-wide dispatch decision: DetectCpuKernelTier() clamped
/// by SSS_FORCE_KERNEL_TIER when that is set to a parseable value. Read once
/// and cached; changing the environment mid-process has no effect.
KernelTier ActiveKernelTier() noexcept;

/// \brief True iff SSS_FORCE_KERNEL_TIER was set to a parseable value when
/// the dispatch decision was made (i.e. ActiveKernelTier overrides every
/// per-context choice).
bool KernelTierForced() noexcept;

/// \brief The tier a context asking for `choice` actually runs:
/// the forced tier when SSS_FORCE_KERNEL_TIER is in effect, else the
/// detected tier for kAuto, else `choice` clamped to the detected tier.
KernelTier ResolveKernelTier(KernelTierChoice choice) noexcept;

}  // namespace sss
