file(REMOVE_RECURSE
  "CMakeFiles/thread_per_query_test.dir/parallel/thread_per_query_test.cc.o"
  "CMakeFiles/thread_per_query_test.dir/parallel/thread_per_query_test.cc.o.d"
  "thread_per_query_test"
  "thread_per_query_test.pdb"
  "thread_per_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thread_per_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
