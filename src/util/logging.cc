#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/env.h"

namespace sss {

namespace {

LogLevel InitialLevel() {
  auto value = GetEnv("SSS_LOG_LEVEL");
  if (!value) return LogLevel::kInfo;
  if (*value == "debug") return LogLevel::kDebug;
  if (*value == "warning") return LogLevel::kWarning;
  if (*value == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Serializes whole lines so concurrent threads do not interleave mid-line.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStorage().load()); }

void SetLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) {
    const char* basename = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') basename = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << basename << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace sss
