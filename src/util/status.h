// Status: lightweight error propagation without exceptions, modeled on
// arrow::Status / rocksdb::Status. Functions that can fail for reasons other
// than programmer error return Status (or Result<T>, see result.h).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "util/macros.h"

namespace sss {

/// \brief Machine-readable category of a Status.
enum class StatusCode : char {
  kOk = 0,
  kInvalid = 1,        // invalid argument / malformed input
  kIOError = 2,        // filesystem-level failure
  kKeyError = 3,       // lookup of a missing key / id
  kOutOfMemory = 4,    // allocation failure or capacity exceeded
  kNotImplemented = 5, // feature intentionally absent
  kCancelled = 6,      // cooperative cancellation
  kUnknownError = 7,
  kCorruption = 8,     // stored data failed integrity checks
  kUnavailable = 9,    // service overloaded or shutting down; retryable
};

/// \brief Returns a human-readable name for a StatusCode ("Invalid", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// The OK state is represented by a null pointer so that the success path
/// costs a single pointer test and Status fits in one register.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&& other) noexcept {
    // Self-move must leave the status unchanged, not in the unspecified
    // state unique_ptr's defaulted move assignment would produce.
    if (this != &other) state_ = std::move(other.state_);
    return *this;
  }

  /// \brief Returns an OK status.
  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalid, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status UnknownError(std::string msg) {
    return Status(StatusCode::kUnknownError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const noexcept { return state_ == nullptr; }

  StatusCode code() const noexcept {
    return state_ ? state_->code : StatusCode::kOk;
  }

  bool IsInvalid() const noexcept { return code() == StatusCode::kInvalid; }
  bool IsIOError() const noexcept { return code() == StatusCode::kIOError; }
  bool IsKeyError() const noexcept { return code() == StatusCode::kKeyError; }
  bool IsOutOfMemory() const noexcept {
    return code() == StatusCode::kOutOfMemory;
  }
  bool IsNotImplemented() const noexcept {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsCancelled() const noexcept { return code() == StatusCode::kCancelled; }
  bool IsCorruption() const noexcept {
    return code() == StatusCode::kCorruption;
  }
  bool IsUnavailable() const noexcept {
    return code() == StatusCode::kUnavailable;
  }

  /// \brief The error message; empty for OK.
  const std::string& message() const noexcept {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  /// \brief "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// \brief Aborts the process if not OK. For use in tests and examples where
  /// failure is unrecoverable.
  void Abort() const;
  void AbortIfNotOK() const {
    if (SSS_PREDICT_FALSE(!ok())) Abort();
  }

  bool operator==(const Status& other) const noexcept {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

}  // namespace sss
