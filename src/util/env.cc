#include "util/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace sss {

std::optional<std::string> GetEnv(std::string_view name) {
  std::string key(name);
  const char* value = std::getenv(key.c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

int64_t GetEnvInt(std::string_view name, int64_t fallback) {
  auto value = GetEnv(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') return fallback;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(std::string_view name, double fallback) {
  auto value = GetEnv(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') return fallback;
  return parsed;
}

bool GetEnvBool(std::string_view name, bool fallback) {
  auto value = GetEnv(name);
  if (!value) return fallback;
  std::string lowered = *value;
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lowered == "1" || lowered == "true" || lowered == "on" ||
      lowered == "yes") {
    return true;
  }
  if (lowered == "0" || lowered == "false" || lowered == "off" ||
      lowered == "no") {
    return false;
  }
  return fallback;
}

}  // namespace sss
