// Static work partitioning — the paper's "simple partitioning" (§3.6,
// strategy 2): split a range of work items evenly across a fixed number of
// workers.
#pragma once

#include <cstddef>
#include <vector>

#include "util/macros.h"

namespace sss {

/// \brief A half-open index range [begin, end).
struct Range {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin == end; }
  bool operator==(const Range&) const = default;
};

/// \brief Splits [0, n) into `parts` contiguous ranges whose sizes differ by
/// at most one (the first n % parts ranges get the extra element). Always
/// returns exactly `parts` ranges; trailing ranges may be empty when
/// n < parts.
inline std::vector<Range> PartitionEvenly(size_t n, size_t parts) {
  SSS_CHECK(parts > 0);
  std::vector<Range> ranges;
  ranges.reserve(parts);
  const size_t base = n / parts;
  const size_t extra = n % parts;
  size_t begin = 0;
  for (size_t p = 0; p < parts; ++p) {
    const size_t len = base + (p < extra ? 1 : 0);
    ranges.push_back(Range{begin, begin + len});
    begin += len;
  }
  return ranges;
}

}  // namespace sss
