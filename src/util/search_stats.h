// Search observability: per-operation counters for everything the paper's
// argument is built on — how many candidates the filters discard, how often
// the DP kernels abort early, how much of a trie a query actually touches.
// The paper justifies every optimization step (§3–§5) with exactly these
// numbers; SearchStats makes the reproduction's engines report them.
//
// Collection is strictly opt-in and near-zero-cost when disabled:
//   * Engines accumulate into a stack-local SearchStats via StatsScope —
//     plain register/stack increments, no atomics, no locks — and flush the
//     local once per Search/SearchRange call.
//   * The flush target is a StatsSink (attached through
//     SearchContext::stats; nullptr = disabled, the default). The sink is
//     thread-safe: deltas land in one of a few cache-line-padded shards
//     picked by thread id, so concurrent workers almost never contend, and
//     Collected() merges the shards after the executor barrier.
//
// This lives in util (not core) so the executors in src/parallel can report
// their own counters (pool opens/closes, task claims/steals) into the same
// sink without depending on the engine layer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "util/macros.h"

namespace sss {

// Every counter, named once. X-macro so Add/ToJson/ToString/operator== can
// never drift from the field list.
#define SSS_FOR_EACH_SEARCH_STAT(X) \
  X(candidates_considered)          \
  X(length_filter_rejects)          \
  X(frequency_filter_rejects)       \
  X(qgram_filter_rejects)           \
  X(verify_calls)                   \
  X(kernel_banded_calls)            \
  X(kernel_myers_calls)             \
  X(dp_early_aborts)                \
  X(simd_lanes_verified)            \
  X(simd_fallback_pairs)            \
  X(dispatch_tier)                  \
  X(trie_nodes_visited)             \
  X(trie_nodes_pruned)              \
  X(bktree_distance_calls)          \
  X(qgram_candidates)               \
  X(partition_probes)               \
  X(cache_hits)                     \
  X(cache_misses)                   \
  X(degraded_probes)                \
  X(matches_found)                  \
  X(planner_skipped_queries)        \
  X(pool_opens)                     \
  X(pool_closes)                    \
  X(tasks_executed)                 \
  X(tasks_stolen)                   \
  X(server_requests_accepted)       \
  X(server_requests_shed)           \
  X(server_requests_cancelled)      \
  X(server_bytes_in)                \
  X(server_bytes_out)               \
  X(host_reloads_ok)                \
  X(host_reloads_failed)            \
  X(host_reload_build_micros)

/// \brief Per-call counters the edit-distance kernels maintain inside the
/// EditDistanceWorkspace they already receive. Engines snapshot the
/// workspace counters around their verify loop and fold the delta into
/// their SearchStats, so kernel-level counts need no extra plumbing.
struct KernelCounters {
  uint64_t banded_calls = 0;  // BoundedEditDistance invocations
  uint64_t myers_calls = 0;   // BoundedMyers invocations
  uint64_t early_aborts = 0;  // band/score aborts before the last row
};

/// \brief One batch's (or one call's) worth of search effectiveness
/// counters. Plain data; Add() merges, fields sum independently.
///
/// Counter taxonomy:
///   * candidate funnel — candidates_considered, *_rejects, verify_calls:
///     the scan-shaped engines' per-id pipeline (also the index engines'
///     post-candidate verify loops);
///   * kernels — kernel_*_calls, dp_early_aborts: which DP kernel verified
///     and how often the paper's abort conditions fired;
///   * lane kernels — simd_lanes_verified (candidates verified by a
///     many-vs-many lane kernel), simd_fallback_pairs (candidates a
///     non-scalar tier had to verify per-pair: empty queries, filters on,
///     or a non-default verify kernel); their sum equals verify_calls on
///     the lane-capable engines. dispatch_tier is a label, not a count:
///     the resolved KernelTier (0=scalar 1=swar 2=avx2) the batch drivers
///     record once per batch — comparable across strategies, meaningless
///     to sum across batches run under different tiers;
///   * index traversal — trie_nodes_*, bktree_distance_calls,
///     qgram_candidates, partition_probes: work the index structures did;
///   * decorators — cache_hits/misses (CachedSearcher), degraded_probes
///     (AutoSearcher's trie probe falling back to the scan);
///   * execution layer — planner_skipped_queries plus pool/task counters
///     the executors report once per batch at the merge barrier;
///   * serving layer — server_requests_* and server_bytes_* reported per
///     request by sss::server::Server (and mirrored client-side by
///     sss_loadgen, which observes the same events from the other end of
///     the connection);
///   * lifecycle — host_reloads_* and host_reload_build_micros reported by
///     EngineHost once per Load/Reload attempt (build_micros is the wall
///     time spent constructing the engine set that was, or failed to be,
///     published).
struct SearchStats {
#define SSS_DECLARE_STAT(name) uint64_t name = 0;
  SSS_FOR_EACH_SEARCH_STAT(SSS_DECLARE_STAT)
#undef SSS_DECLARE_STAT

  /// \brief Field-wise sum.
  void Add(const SearchStats& other) noexcept;

  /// \brief Folds a kernel-counter delta (after − before) into the kernel
  /// fields. `after` must be ≥ `before` field-wise (same workspace, later).
  void AddKernelDelta(const KernelCounters& after,
                      const KernelCounters& before) noexcept;

  /// \brief Appends a flat JSON object ({"candidates_considered":N,...})
  /// containing every counter, in declaration order.
  void AppendJson(std::string* out) const;
  std::string ToJson() const;

  /// \brief One "name=value" line per counter (human-readable --stats).
  std::string ToString() const;

  bool operator==(const SearchStats&) const = default;
};

/// \brief Thread-safe accumulator the engines and executors flush into.
/// Deltas are merged under per-shard mutexes (shard picked by thread id),
/// so workers contend only on hash collisions; Collected() merges all
/// shards — call it after the batch barrier for a consistent total.
class StatsSink {
 public:
  StatsSink();
  SSS_DISALLOW_COPY_AND_ASSIGN(StatsSink);

  /// \brief Adds `delta` to this thread's shard. Safe from any thread.
  void Record(const SearchStats& delta) noexcept;

  /// \brief Sum over all shards. Consistent once no Record() is in flight
  /// (i.e. after the executors' join barrier).
  SearchStats Collected() const;

  /// \brief Zeroes every shard (reuse across batches).
  void Reset();

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Shard {
    mutable std::mutex mu;
    SearchStats stats;
  };
  size_t ShardIndex() const noexcept;
  Shard shards_[kShards];
};

/// \brief RAII accumulator for one engine call: counters increment on the
/// stack (free when disabled — the sink pointer is never touched in the hot
/// loop) and flush to the sink, if any, at scope exit.
class StatsScope {
 public:
  explicit StatsScope(StatsSink* sink) noexcept : sink_(sink) {}
  SSS_DISALLOW_COPY_AND_ASSIGN(StatsScope);
  ~StatsScope() {
    if (sink_ != nullptr) sink_->Record(local_);
  }

  /// \brief True iff a sink is attached. Lets call sites skip work that
  /// only exists to be counted (none of the hot loops need this).
  bool enabled() const noexcept { return sink_ != nullptr; }

  /// \brief Convenience forward to the local stats' AddKernelDelta.
  void AddKernelDelta(const KernelCounters& after,
                      const KernelCounters& before) noexcept {
    local_.AddKernelDelta(after, before);
  }

  SearchStats* operator->() noexcept { return &local_; }
  SearchStats& operator*() noexcept { return local_; }

 private:
  StatsSink* sink_;
  SearchStats local_;
};

}  // namespace sss
