#include "server/protocol.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/random.h"

namespace sss::server {
namespace {

Request MakeRequest() {
  Request r;
  r.request_id = 0xDEADBEEFCAFEF00Dull;
  r.engine = 3;
  r.k = 2;
  r.deadline_ms = 250;
  r.query = "mannheim";
  return r;
}

TEST(ProtocolTest, RequestRoundTrip) {
  const Request in = MakeRequest();
  std::string frame;
  EncodeRequest(in, &frame);
  ASSERT_EQ(frame.size(), kRequestHeaderBytes + in.query.size());

  Request out;
  ASSERT_TRUE(DecodeRequest(frame, ProtocolLimits(), &out).ok());
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.engine, in.engine);
  EXPECT_EQ(out.k, in.k);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.query, in.query);
}

TEST(ProtocolTest, EmptyQueryRoundTrips) {
  Request in;
  in.request_id = 7;
  std::string frame;
  EncodeRequest(in, &frame);
  Request out;
  ASSERT_TRUE(DecodeRequest(frame, ProtocolLimits(), &out).ok());
  EXPECT_EQ(out.query, "");
}

TEST(ProtocolTest, OkResponseRoundTrip) {
  Response in;
  in.request_id = 42;
  in.code = StatusCode::kOk;
  in.matches = {1, 5, 9, 1000000};
  std::string frame;
  EncodeResponse(in, &frame);
  ASSERT_EQ(frame.size(), kResponseHeaderBytes + 4 * in.matches.size());

  Response out;
  ASSERT_TRUE(DecodeResponse(frame, ProtocolLimits(), &out).ok());
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.code, StatusCode::kOk);
  EXPECT_EQ(out.matches, in.matches);
  EXPECT_EQ(out.message, "");
}

TEST(ProtocolTest, ErrorResponseRoundTrip) {
  Response in;
  in.request_id = 43;
  in.code = StatusCode::kUnavailable;
  in.message = "server overloaded";
  std::string frame;
  EncodeResponse(in, &frame);

  Response out;
  ASSERT_TRUE(DecodeResponse(frame, ProtocolLimits(), &out).ok());
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.code, StatusCode::kUnavailable);
  EXPECT_EQ(out.message, in.message);
  EXPECT_TRUE(out.matches.empty());
}

TEST(ProtocolTest, AdminRequestRoundTrip) {
  Request in;
  in.request_id = 77;
  in.type = FrameType::kAdmin;
  in.k = kAdminOpReload;
  in.query = "/data/new_collection.txt";  // reload path rides in the query
  std::string frame;
  EncodeRequest(in, &frame);

  Request out;
  ASSERT_TRUE(DecodeRequest(frame, ProtocolLimits(), &out).ok());
  EXPECT_EQ(out.type, FrameType::kAdmin);
  EXPECT_EQ(out.k, kAdminOpReload);
  EXPECT_EQ(out.query, in.query);
}

TEST(ProtocolTest, UnknownAdminOpIsInvalid) {
  Request in;
  in.type = FrameType::kAdmin;
  in.k = 999;  // not a defined admin op
  std::string frame;
  EncodeRequest(in, &frame);
  Request out;
  EXPECT_TRUE(DecodeRequest(frame, ProtocolLimits(), &out).IsInvalid());
}

TEST(ProtocolTest, AdminOpIsNotBoundedByMaxK) {
  // kAdmin reuses the k field as the op id; the search threshold limit must
  // not apply (ops are validated against the op table instead).
  ProtocolLimits limits;
  limits.max_k = 1;
  Request in;
  in.type = FrameType::kAdmin;
  in.k = kAdminOpGetGeneration;  // 2 > max_k, still valid
  std::string frame;
  EncodeRequest(in, &frame);
  Request out;
  EXPECT_TRUE(DecodeRequest(frame, limits, &out).ok());
}

TEST(ProtocolTest, ResponseGenerationRoundTrips) {
  Response in;
  in.request_id = 5;
  in.generation = 0x0123456789ABCDEFull;
  in.matches = {4};
  std::string frame;
  EncodeResponse(in, &frame);

  Response out;
  ASSERT_TRUE(DecodeResponse(frame, ProtocolLimits(), &out).ok());
  EXPECT_EQ(out.generation, in.generation);

  // Error responses carry the generation too.
  Response err;
  err.request_id = 6;
  err.code = StatusCode::kUnavailable;
  err.generation = 3;
  err.message = "shed";
  frame.clear();
  EncodeResponse(err, &frame);
  ASSERT_TRUE(DecodeResponse(frame, ProtocolLimits(), &out).ok());
  EXPECT_EQ(out.generation, 3u);
}

TEST(ProtocolTest, BadMagicIsInvalid) {
  std::string frame;
  EncodeRequest(MakeRequest(), &frame);
  frame[0] = 'X';
  Request out;
  EXPECT_TRUE(DecodeRequest(frame, ProtocolLimits(), &out).IsInvalid());
}

TEST(ProtocolTest, BadVersionIsInvalid) {
  std::string frame;
  EncodeRequest(MakeRequest(), &frame);
  frame[4] = 99;
  Request out;
  EXPECT_TRUE(DecodeRequest(frame, ProtocolLimits(), &out).IsInvalid());
}

TEST(ProtocolTest, BadTypeIsInvalid) {
  std::string frame;
  EncodeRequest(MakeRequest(), &frame);
  frame[5] = 7;
  Request out;
  EXPECT_TRUE(DecodeRequest(frame, ProtocolLimits(), &out).IsInvalid());
}

TEST(ProtocolTest, NonzeroReservedIsInvalid) {
  std::string frame;
  EncodeRequest(MakeRequest(), &frame);
  frame[7] = 1;
  Request out;
  EXPECT_TRUE(DecodeRequest(frame, ProtocolLimits(), &out).IsInvalid());
}

TEST(ProtocolTest, InvalidHeaderStillYieldsRequestId) {
  // The server addresses its error frame by the id it managed to read.
  Request in = MakeRequest();
  std::string frame;
  EncodeRequest(in, &frame);
  frame[28] = 1;  // nonzero trailing reserved word
  Request out;
  uint32_t query_len = 0;
  const Status st =
      DecodeRequestHeader(reinterpret_cast<const uint8_t*>(frame.data()),
                          ProtocolLimits(), &out, &query_len);
  EXPECT_TRUE(st.IsInvalid());
  EXPECT_EQ(out.request_id, in.request_id);
}

TEST(ProtocolTest, OversizedKIsInvalid) {
  Request in = MakeRequest();
  ProtocolLimits limits;
  in.k = limits.max_k + 1;
  std::string frame;
  EncodeRequest(in, &frame);
  Request out;
  EXPECT_TRUE(DecodeRequest(frame, limits, &out).IsInvalid());
}

TEST(ProtocolTest, OversizedQueryLengthIsInvalid) {
  // A header announcing a query larger than the limit must be rejected
  // before anything is allocated from the wire value.
  std::string frame;
  EncodeRequest(MakeRequest(), &frame);
  const uint32_t huge = 0xFFFFFFFF;
  std::memcpy(frame.data() + 24, &huge, 4);  // little-endian hosts only
  Request out;
  uint32_t query_len = 0;
  EXPECT_TRUE(DecodeRequestHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  ProtocolLimits(), &out, &query_len)
                  .IsInvalid());
}

TEST(ProtocolTest, TruncatedRequestIsCorruption) {
  std::string frame;
  EncodeRequest(MakeRequest(), &frame);
  Request out;
  // Any prefix shorter than the full frame: header cut or query cut.
  for (const size_t len : {0ul, 1ul, kRequestHeaderBytes - 1,
                           kRequestHeaderBytes + 2}) {
    SCOPED_TRACE(len);
    EXPECT_TRUE(DecodeRequest(std::string_view(frame.data(), len),
                              ProtocolLimits(), &out)
                    .IsCorruption());
  }
}

TEST(ProtocolTest, TruncatedResponseIsCorruption) {
  Response in;
  in.request_id = 1;
  in.matches = {2, 3};
  std::string frame;
  EncodeResponse(in, &frame);
  Response out;
  for (const size_t len :
       {0ul, kResponseHeaderBytes - 1, kResponseHeaderBytes + 3}) {
    SCOPED_TRACE(len);
    EXPECT_TRUE(DecodeResponse(std::string_view(frame.data(), len),
                               ProtocolLimits(), &out)
                    .IsCorruption());
  }
}

TEST(ProtocolTest, ResponseCountPayloadMismatchIsCorruption) {
  Response in;
  in.request_id = 1;
  in.matches = {2, 3};
  std::string frame;
  EncodeResponse(in, &frame);
  // count = 2 but payload_len claims 4 bytes (should be 8).
  const uint32_t bad_len = 4;
  std::memcpy(frame.data() + 20, &bad_len, 4);
  frame.resize(kResponseHeaderBytes + bad_len);
  Response out;
  EXPECT_TRUE(
      DecodeResponse(frame, ProtocolLimits(), &out).IsCorruption());
}

TEST(ProtocolTest, UnknownResponseStatusByteIsInvalid) {
  Response in;
  in.request_id = 1;
  in.code = StatusCode::kInvalid;
  in.message = "m";
  std::string frame;
  EncodeResponse(in, &frame);
  frame[6] = 0x7F;  // not a StatusCode
  Response out;
  EXPECT_TRUE(DecodeResponse(frame, ProtocolLimits(), &out).IsInvalid());
}

// The decoder's contract is "never abort, whatever the bytes": throw random
// buffers and mutated valid frames at it and require a clean Status every
// time. Run with a fixed seed so failures reproduce.
TEST(ProtocolTest, FuzzRandomBuffersNeverCrash) {
  Xoshiro256 rng(0xF022);
  ProtocolLimits limits;
  for (int iter = 0; iter < 5000; ++iter) {
    const size_t len = rng.Uniform(128);
    std::string buf;
    buf.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(rng.Uniform(256)));
    }
    Request req;
    Response resp;
    (void)DecodeRequest(buf, limits, &req);
    (void)DecodeResponse(buf, limits, &resp);
  }
}

TEST(ProtocolTest, FuzzMutatedValidFramesNeverCrash) {
  Xoshiro256 rng(0xF023);
  ProtocolLimits limits;
  std::string request_frame;
  EncodeRequest(MakeRequest(), &request_frame);
  Response ok;
  ok.request_id = 9;
  ok.matches = {1, 2, 3};
  std::string response_frame;
  EncodeResponse(ok, &response_frame);

  for (int iter = 0; iter < 5000; ++iter) {
    std::string buf = rng.Uniform(2) == 0 ? request_frame : response_frame;
    // Flip a handful of random bytes, sometimes truncate.
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      buf[rng.Uniform(buf.size())] = static_cast<char>(rng.Uniform(256));
    }
    if (rng.Uniform(4) == 0) buf.resize(rng.Uniform(buf.size() + 1));
    Request req;
    Response resp;
    (void)DecodeRequest(buf, limits, &req);
    (void)DecodeResponse(buf, limits, &resp);
  }
}

}  // namespace
}  // namespace sss::server
