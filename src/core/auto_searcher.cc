#include "core/auto_searcher.h"

namespace sss {

AutoSearcher::AutoSearcher(const Dataset& dataset,
                           AutoSearcherOptions options)
    : dataset_(dataset), options_(options) {
  const DatasetStats stats = dataset.ComputeStats();
  avg_length_ = stats.avg_length;
  // Hypotheses of §2.4: long strings + small alphabet → index wins;
  // short strings + large alphabet → scan wins. Both conditions must hold
  // for the index, mirroring the paper's DNA profile.
  prefers_index_ =
      stats.avg_length >= options_.long_string_threshold &&
      stats.alphabet_size <= options_.narrow_alphabet_threshold;
}

const SequentialScanSearcher& AutoSearcher::Scan() const {
  std::lock_guard<std::mutex> lock(build_mu_);
  if (scan_ == nullptr) {
    scan_ = std::make_unique<SequentialScanSearcher>(dataset_, ScanOptions{});
  }
  return *scan_;
}

const CompressedTrieSearcher& AutoSearcher::Trie() const {
  std::lock_guard<std::mutex> lock(build_mu_);
  if (trie_ == nullptr) {
    trie_ = std::make_unique<CompressedTrieSearcher>(dataset_);
  }
  return *trie_;
}

std::string_view AutoSearcher::RouteFor(int k) const noexcept {
  if (!prefers_index_) return "scan";
  // Even on index-friendly data, a huge band makes the trie explore nearly
  // everything while paying traversal overhead; route those to the scan.
  if (avg_length_ > 0 &&
      static_cast<double>(k) / avg_length_ > options_.high_k_ratio) {
    return "scan";
  }
  return "trie";
}

MatchList AutoSearcher::Search(const Query& query) const {
  return RouteFor(query.max_distance) == std::string_view("trie")
             ? Trie().Search(query)
             : Scan().Search(query);
}

size_t AutoSearcher::memory_bytes() const {
  std::lock_guard<std::mutex> lock(build_mu_);
  size_t bytes = 0;
  if (scan_) bytes += scan_->memory_bytes();
  if (trie_) bytes += trie_->memory_bytes();
  return bytes;
}

}  // namespace sss
