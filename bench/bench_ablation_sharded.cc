// Ablation: sharded batch execution (plan once, shard the pool, reuse
// per-worker arenas) vs. the paper's per-query strategies (§3.6).
//
// The sharded driver differs from the fixed pool in three ways, each
// measurable here: (1) the BatchPlanner applies the length filter once per
// (threshold × length-bucket) group instead of once per query; (2) work is
// (shard × group) cells over a contiguous string-pool range, so a task
// touches one cache-sized slice of the pool for many queries; (3) each
// worker reuses one arena + match buffer across every task it steals, so
// the hot path performs no allocation after warm-up.
//
// The macro batch (10k city queries) is the headline: batching is exactly
// the regime where planning amortizes. Small batches bound the overhead.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/scan.h"
#include "gen/query_generator.h"

namespace sss::bench {
namespace {

constexpr gen::WorkloadKind kKind = gen::WorkloadKind::kCityNames;

const SequentialScanSearcher& Engine() {
  static const auto* engine =
      new SequentialScanSearcher(SharedWorkload(kKind).dataset, ScanOptions{});
  return *engine;
}

// The paper's batches stop at 1000; the sharded driver targets larger ones.
// Built once, seeded like the shared batches so rows are reproducible.
const QuerySet& MacroBatch() {
  static const QuerySet* batch = [] {
    const BenchWorkload& w = SharedWorkload(kKind);
    gen::QueryGeneratorOptions q;
    q.thresholds = gen::ThresholdsFor(kKind);
    q.num_queries = w.config.BatchSize(10000);
    return new QuerySet(
        gen::MakeQuerySet(w.dataset, q, w.config.seed ^ 0x2710));
  }();
  return *batch;
}

void RunStrategy(benchmark::State& state, ExecutionStrategy strategy,
                 const QuerySet& queries) {
  ExecutionOptions exec;
  exec.strategy = strategy;
  exec.num_threads = static_cast<size_t>(state.range(0));
  RunBatchBenchmark(state, Engine(), queries, exec);
}

// --- The headline: 10k-query macro batch, every strategy. ---

void BM_Macro_Serial(benchmark::State& state) {
  RunStrategy(state, ExecutionStrategy::kSerial, MacroBatch());
}
void BM_Macro_FixedPool(benchmark::State& state) {
  RunStrategy(state, ExecutionStrategy::kFixedPool, MacroBatch());
}
void BM_Macro_Adaptive(benchmark::State& state) {
  RunStrategy(state, ExecutionStrategy::kAdaptive, MacroBatch());
}
void BM_Macro_Sharded(benchmark::State& state) {
  RunStrategy(state, ExecutionStrategy::kSharded, MacroBatch());
}
#define SSS_MACRO_BENCH(fn)                                       \
  BENCHMARK(fn)                                                   \
      ->ArgNames({"threads"})                                     \
      ->Arg(1)->Arg(4)->Arg(8)                                    \
      ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1)
SSS_MACRO_BENCH(BM_Macro_Serial);
SSS_MACRO_BENCH(BM_Macro_FixedPool);
SSS_MACRO_BENCH(BM_Macro_Adaptive);
SSS_MACRO_BENCH(BM_Macro_Sharded);
#undef SSS_MACRO_BENCH

// --- Small batches: the overhead bound (paper-scale 500-query batch). ---

void BM_Small_FixedPool(benchmark::State& state) {
  RunStrategy(state, ExecutionStrategy::kFixedPool,
              SharedWorkload(kKind).Batch(500));
}
void BM_Small_Sharded(benchmark::State& state) {
  RunStrategy(state, ExecutionStrategy::kSharded,
              SharedWorkload(kKind).Batch(500));
}
BENCHMARK(BM_Small_FixedPool)
    ->ArgNames({"threads"})
    ->Arg(4)->Arg(8)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);
BENCHMARK(BM_Small_Sharded)
    ->ArgNames({"threads"})
    ->Arg(4)->Arg(8)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

// --- Shard-size sweep: cache-slice granularity on the macro batch. ---

void BM_Sharded_ShardSize(benchmark::State& state) {
  ExecutionOptions exec;
  exec.strategy = ExecutionStrategy::kSharded;
  exec.num_threads = 4;
  exec.shard_size = static_cast<size_t>(state.range(0));
  RunBatchBenchmark(state, Engine(), MacroBatch(), exec);
}
BENCHMARK(BM_Sharded_ShardSize)
    ->ArgNames({"shard_size"})
    ->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kSecond)->UseRealTime()->Iterations(1);

}  // namespace
}  // namespace sss::bench

SSS_BENCH_MAIN("Ablation: sharded batch execution vs per-query strategies",
               sss::gen::WorkloadKind::kCityNames)
