file(REMOVE_RECURSE
  "CMakeFiles/dna_generator_test.dir/gen/dna_generator_test.cc.o"
  "CMakeFiles/dna_generator_test.dir/gen/dna_generator_test.cc.o.d"
  "dna_generator_test"
  "dna_generator_test.pdb"
  "dna_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
