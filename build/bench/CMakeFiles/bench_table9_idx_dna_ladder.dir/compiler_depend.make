# Empty compiler generated dependencies file for bench_table9_idx_dna_ladder.
# This may be replaced when dependencies are built.
