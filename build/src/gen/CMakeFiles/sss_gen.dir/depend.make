# Empty dependencies file for sss_gen.
# This may be replaced when dependencies are built.
