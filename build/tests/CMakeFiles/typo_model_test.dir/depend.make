# Empty dependencies file for typo_model_test.
# This may be replaced when dependencies are built.
