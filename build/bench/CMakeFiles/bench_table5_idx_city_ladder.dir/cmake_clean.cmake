file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_idx_city_ladder.dir/bench_table5_idx_city_ladder.cc.o"
  "CMakeFiles/bench_table5_idx_city_ladder.dir/bench_table5_idx_city_ladder.cc.o.d"
  "bench_table5_idx_city_ladder"
  "bench_table5_idx_city_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_idx_city_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
