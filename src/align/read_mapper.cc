#include "align/read_mapper.h"

#include <algorithm>

#include "core/partition_index.h"
#include "util/macros.h"

namespace sss::align {

int InfixEditDistance(std::string_view read, std::string_view window,
                      int k) {
  SSS_DCHECK(k >= 0);
  if (read.empty()) return 0;  // the empty infix matches anywhere
  // Semi-global DP: rows over the read, columns over the window. The top
  // row is all zeros (the alignment may start at any window position) and
  // the answer is the minimum of the bottom row (it may end anywhere).
  const size_t lr = read.size();
  const size_t lw = window.size();
  const int inf = k + 1;
  thread_local std::vector<int> prev_storage, cur_storage;
  prev_storage.assign(lw + 1, 0);  // free start
  cur_storage.assign(lw + 1, 0);
  int* prev = prev_storage.data();
  int* cur = cur_storage.data();

  for (size_t i = 1; i <= lr; ++i) {
    cur[0] = static_cast<int>(i);  // starting before the window costs
    int row_min = cur[0];
    const char ri = read[i - 1];
    for (size_t j = 1; j <= lw; ++j) {
      int v;
      if (ri == window[j - 1]) {
        v = prev[j - 1];
      } else {
        int m = prev[j] < cur[j - 1] ? prev[j] : cur[j - 1];
        if (prev[j - 1] < m) m = prev[j - 1];
        v = m + 1;
        if (v > inf) v = inf;
      }
      cur[j] = v;
      if (v < row_min) row_min = v;
    }
    if (row_min > k) return inf;  // no placement can recover
    std::swap(prev, cur);
  }
  int best = inf;
  for (size_t j = 0; j <= lw; ++j) best = std::min(best, prev[j]);
  return best;
}

std::string ReverseComplement(std::string_view dna) {
  std::string out;
  out.reserve(dna.size());
  for (size_t i = dna.size(); i-- > 0;) {
    switch (dna[i]) {
      case 'A': out.push_back('T'); break;
      case 'T': out.push_back('A'); break;
      case 'C': out.push_back('G'); break;
      case 'G': out.push_back('C'); break;
      default:  out.push_back('N'); break;
    }
  }
  return out;
}

ReadMapper::ReadMapper(std::string genome, ReadMapperOptions options)
    : sa_(std::move(genome)), options_(options) {
  SSS_CHECK(options_.max_distance >= 0);
}

void ReadMapper::CollectCandidates(std::string_view read,
                                   std::vector<uint32_t>* starts) const {
  const int pieces = options_.max_distance + 1;
  const std::vector<size_t> bounds =
      PartitionIndexSearcher::PieceBounds(read.size(), pieces);
  const size_t genome_len = sa_.text().size();
  for (int j = 0; j < pieces; ++j) {
    const size_t seed_begin = bounds[j];
    const size_t seed_len = bounds[j + 1] - bounds[j];
    if (seed_len == 0) continue;
    const std::string_view seed = read.substr(seed_begin, seed_len);
    const auto [lo, hi] = sa_.EqualRange(seed);
    if (options_.max_seed_hits > 0 &&
        hi - lo > options_.max_seed_hits) {
      continue;  // repeat-masked seed
    }
    for (size_t slot = lo; slot < hi; ++slot) {
      const size_t occurrence = sa_.At(slot);
      // The read would start k before/after (occurrence − seed offset);
      // one window start per occurrence, clamped into the genome.
      const size_t ideal =
          occurrence >= seed_begin ? occurrence - seed_begin : 0;
      const size_t start =
          ideal >= static_cast<size_t>(options_.max_distance)
              ? ideal - static_cast<size_t>(options_.max_distance)
              : 0;
      if (start < genome_len) {
        starts->push_back(static_cast<uint32_t>(start));
      }
    }
  }
  std::sort(starts->begin(), starts->end());
  starts->erase(std::unique(starts->begin(), starts->end()), starts->end());
}

void ReadMapper::VerifyStrand(std::string_view read, bool reverse,
                              std::vector<Mapping>* out) const {
  thread_local std::vector<uint32_t> starts;
  starts.clear();
  CollectCandidates(read, &starts);
  const int k = options_.max_distance;
  const std::string_view genome = sa_.text();
  const size_t window_len = read.size() + 2 * static_cast<size_t>(k);

  // Candidate windows overlap; dedupe verified hits by rounding to the
  // window grid later — here every candidate is verified independently.
  for (uint32_t start : starts) {
    const std::string_view window =
        genome.substr(start, std::min(window_len, genome.size() - start));
    const int d = InfixEditDistance(read, window, k);
    if (d <= k) {
      out->push_back(Mapping{start, d, reverse});
    }
  }
}

std::vector<Mapping> ReadMapper::Map(std::string_view read) const {
  std::vector<Mapping> out;
  VerifyStrand(read, /*reverse=*/false, &out);
  if (options_.map_reverse_strand) {
    const std::string rc = ReverseComplement(read);
    VerifyStrand(rc, /*reverse=*/true, &out);
  }
  std::sort(out.begin(), out.end());
  // Collapse near-identical placements (windows shifted by ≤ 2k around the
  // same locus report the same alignment).
  std::vector<Mapping> dedup;
  const uint32_t merge_radius = 2 * static_cast<uint32_t>(
                                        options_.max_distance) + 1;
  for (const Mapping& m : out) {
    bool duplicate = false;
    for (const Mapping& kept : dedup) {
      const uint32_t delta = m.position > kept.position
                                 ? m.position - kept.position
                                 : kept.position - m.position;
      if (m.reverse_strand == kept.reverse_strand &&
          delta <= merge_radius) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) dedup.push_back(m);
    if (dedup.size() >= options_.max_mappings) break;
  }
  return dedup;
}

}  // namespace sss::align
