// Deterministic, seedable PRNG utilities. All generators in sss take explicit
// 64-bit seeds so that every experiment row is reproducible from its printed
// seed. We implement splitmix64 (seeding) and xoshiro256** (bulk generation)
// rather than depend on unspecified std::mt19937 distribution behaviour.
#pragma once

#include <cstdint>
#include <limits>

#include "util/macros.h"

namespace sss {

/// \brief splitmix64: statistically strong 64-bit mixer, used to expand one
/// user seed into xoshiro's 256-bit state.
inline uint64_t SplitMix64(uint64_t* state) noexcept {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1
/// period. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  /// Constructs a generator whose entire state is derived from `seed`.
  explicit Xoshiro256(uint64_t seed = kDefaultSeed) noexcept;

  /// Seed used when none is supplied; benches print it alongside results.
  static constexpr uint64_t kDefaultSeed = 0x5353535342454443ULL;  // "SSSSBEDC"

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<uint64_t>::max();
  }

  /// \brief Next 64 random bits.
  uint64_t operator()() noexcept {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// \brief Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound) noexcept;

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) noexcept {
    SSS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// \brief Uniform double in [0, 1).
  double UniformDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// \brief True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) noexcept { return UniformDouble() < p; }

  /// \brief Forks an independent stream (for per-thread generators).
  Xoshiro256 Fork() noexcept { return Xoshiro256((*this)()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

/// \brief Samples an index from a discrete cumulative weight table.
/// `cumulative` must be non-decreasing with a positive final entry; returns
/// the smallest i with cumulative[i] > r where r is uniform in
/// [0, cumulative.back()).
size_t SampleCumulative(const double* cumulative, size_t n, Xoshiro256* rng);

}  // namespace sss
