#include "core/simd_verify.h"

#include <algorithm>

#include "core/filters.h"
#include "util/bitpack.h"
#include "util/macros.h"
#include "util/search_stats.h"

// The AVX2 lane kernel is compiled whenever the compiler supports
// function-level target attributes on x86 — including baseline -msse2
// builds — and is entered only when CPUID reported AVX2 at runtime
// (util/kernel_dispatch decides once per process).
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SSS_HAVE_AVX2_LANE_KERNEL 1
#include <immintrin.h>
#else
#define SSS_HAVE_AVX2_LANE_KERNEL 0
#endif

namespace sss {

namespace {

/// Everything a lane kernel needs for one group, marshalled once. scores[]
/// come back as raw final Myers distances (the <=k clamp happens in
/// VerifyGroup so every tier clamps identically).
struct LaneKernelJob {
  const uint64_t* peq = nullptr;  // [symbol][blocks]
  size_t blocks = 0;
  uint64_t last_mask = 0;
  int64_t m = 0;  // query length == initial score
  const LaneGroupView* group = nullptr;
  uint64_t* pv = nullptr;  // blocks × kLaneWidth scratch (blocks > 1 only)
  uint64_t* mv = nullptr;
  int64_t scores[kLaneWidth] = {0, 0, 0, 0};
};

// The per-lane symbol indices of column j under either column layout.
inline void ColumnSymbols(const LaneGroupView& g, uint32_t j,
                          size_t sym[kLaneWidth]) {
  if (g.packed2) {
    const uint8_t byte = g.data[j];
    sym[0] = byte & 3u;
    sym[1] = (byte >> 2) & 3u;
    sym[2] = (byte >> 4) & 3u;
    sym[3] = (byte >> 6) & 3u;
  } else {
    const uint8_t* col = g.data + static_cast<size_t>(j) * kLaneWidth;
    sym[0] = col[0];
    sym[1] = col[1];
    sym[2] = col[2];
    sym[3] = col[3];
  }
}

// One block step of the blocked Myers recurrence for a single lane — the
// by-reference twin of edit_distance.cc's AdvanceBlock, kept line-for-line
// equivalent so the differential suite pins all tiers to the same scalar
// semantics.
inline int SwarStep(uint64_t& pv, uint64_t& mv, uint64_t eq,
                    uint64_t out_mask, int hin) {
  const uint64_t xv = eq | mv;
  if (hin < 0) eq |= 1;
  const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
  uint64_t ph = mv | ~(xh | pv);
  uint64_t mh = pv & xh;
  int hout = 0;
  if (ph & out_mask) hout = 1;
  if (mh & out_mask) hout = -1;
  ph <<= 1;
  mh <<= 1;
  if (hin < 0) {
    mh |= 1;
  } else if (hin > 0) {
    ph |= 1;
  }
  pv = mh | ~(xv | ph);
  mv = ph & xv;
  return hout;
}

// Portable 4-lane tier: four independent recurrences advanced per column in
// plain C++ — the compiler keeps the four states in registers (B <= 1) and
// the shared peq row amortizes the table walk the per-pair kernel repays
// for every candidate.
void RunSwar(LaneKernelJob& job) {
  const LaneGroupView& g = *job.group;
  const size_t kb = job.blocks;
  int64_t score[kLaneWidth] = {job.m, job.m, job.m, job.m};
  int64_t final_d[kLaneWidth] = {job.m, job.m, job.m, job.m};
  size_t sym[kLaneWidth];
  if (kb == 1) {
    uint64_t pv[kLaneWidth] = {~uint64_t{0}, ~uint64_t{0}, ~uint64_t{0},
                               ~uint64_t{0}};
    uint64_t mv[kLaneWidth] = {0, 0, 0, 0};
    for (uint32_t j = 0; j < g.num_cols; ++j) {
      ColumnSymbols(g, j, sym);
      for (uint32_t l = 0; l < kLaneWidth; ++l) {
        score[l] +=
            SwarStep(pv[l], mv[l], job.peq[sym[l]], job.last_mask, 1);
        if (g.lengths[l] == j + 1) final_d[l] = score[l];
      }
    }
  } else {
    uint64_t* pv = job.pv;
    uint64_t* mv = job.mv;
    std::fill(pv, pv + kb * kLaneWidth, ~uint64_t{0});
    std::fill(mv, mv + kb * kLaneWidth, uint64_t{0});
    for (uint32_t j = 0; j < g.num_cols; ++j) {
      ColumnSymbols(g, j, sym);
      int hin[kLaneWidth] = {1, 1, 1, 1};  // top boundary row: +1 per column
      for (size_t b = 0; b < kb; ++b) {
        const uint64_t out_mask =
            b == kb - 1 ? job.last_mask : (uint64_t{1} << 63);
        for (uint32_t l = 0; l < kLaneWidth; ++l) {
          hin[l] = SwarStep(pv[b * kLaneWidth + l], mv[b * kLaneWidth + l],
                            job.peq[sym[l] * kb + b], out_mask, hin[l]);
        }
      }
      for (uint32_t l = 0; l < kLaneWidth; ++l) {
        score[l] += hin[l];
        if (g.lengths[l] == j + 1) final_d[l] = score[l];
      }
    }
  }
  for (uint32_t l = 0; l < kLaneWidth; ++l) job.scores[l] = final_d[l];
}

#if SSS_HAVE_AVX2_LANE_KERNEL

// Loads the four lanes' peq words for block b into one vector (four scalar
// loads — cheaper and more portable across microarchitectures than a
// gather for this access pattern).
__attribute__((always_inline, target("avx2"))) inline __m256i LoadEq(
    const uint64_t* peq, const size_t sym[kLaneWidth], size_t blocks,
    size_t b) {
  return _mm256_set_epi64x(static_cast<int64_t>(peq[sym[3] * blocks + b]),
                           static_cast<int64_t>(peq[sym[2] * blocks + b]),
                           static_cast<int64_t>(peq[sym[1] * blocks + b]),
                           static_cast<int64_t>(peq[sym[0] * blocks + b]));
}

// One block step for all four lanes at once: SwarStep with the horizontal
// carries hin/hout held as a (+1 mask, −1 mask) pair of per-lane all-ones
// masks (at most one set per lane, mirroring hout ∈ {-1, 0, +1}).
__attribute__((always_inline, target("avx2"))) inline void Avx2Step(
    __m256i& pv, __m256i& mv, __m256i eq, __m256i out_mask, __m256i& hin_p,
    __m256i& hin_n) {
  const __m256i all1 = _mm256_set1_epi64x(-1);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i xv = _mm256_or_si256(eq, mv);
  eq = _mm256_or_si256(eq, _mm256_and_si256(hin_n, one));
  const __m256i sum = _mm256_add_epi64(_mm256_and_si256(eq, pv), pv);
  const __m256i xh = _mm256_or_si256(_mm256_xor_si256(sum, pv), eq);
  __m256i ph =
      _mm256_or_si256(mv, _mm256_xor_si256(_mm256_or_si256(xh, pv), all1));
  __m256i mh = _mm256_and_si256(pv, xh);
  // out_mask is a single bit, so (x & mask) == mask iff the bit is set.
  const __m256i ph_hit =
      _mm256_cmpeq_epi64(_mm256_and_si256(ph, out_mask), out_mask);
  const __m256i mh_hit =
      _mm256_cmpeq_epi64(_mm256_and_si256(mh, out_mask), out_mask);
  ph = _mm256_slli_epi64(ph, 1);
  mh = _mm256_slli_epi64(mh, 1);
  mh = _mm256_or_si256(mh, _mm256_and_si256(hin_n, one));
  ph = _mm256_or_si256(ph, _mm256_and_si256(hin_p, one));
  pv = _mm256_or_si256(mh,
                       _mm256_xor_si256(_mm256_or_si256(xv, ph), all1));
  mv = _mm256_and_si256(ph, xv);
  hin_p = _mm256_andnot_si256(mh_hit, ph_hit);  // mh wins, as in SwarStep
  hin_n = mh_hit;
}

// The AVX2 tier: one __m256i carries all four lanes' 64-bit Myers state.
// Specialized loops keep the state in registers for the common pattern
// sizes (B=1 covers city names, B=2 covers ~100-char DNA reads); longer
// queries spill block state through the job scratch.
__attribute__((target("avx2"))) void RunAvx2(LaneKernelJob& job) {
  const LaneGroupView& g = *job.group;
  const size_t kb = job.blocks;
  const __m256i all1 = _mm256_set1_epi64x(-1);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i last_mask =
      _mm256_set1_epi64x(static_cast<int64_t>(job.last_mask));
  const __m256i len_vec =
      _mm256_set_epi64x(static_cast<int64_t>(g.lengths[3]),
                        static_cast<int64_t>(g.lengths[2]),
                        static_cast<int64_t>(g.lengths[1]),
                        static_cast<int64_t>(g.lengths[0]));
  __m256i score = _mm256_set1_epi64x(job.m);
  __m256i final_d = score;  // ed(query, ε) = m; overwritten at each lane end
  size_t sym[kLaneWidth];

  if (kb == 1) {
    __m256i pv = all1, mv = zero;
    for (uint32_t j = 0; j < g.num_cols; ++j) {
      ColumnSymbols(g, j, sym);
      __m256i hp = all1, hn = zero;  // top boundary row: +1 into block 0
      Avx2Step(pv, mv, LoadEq(job.peq, sym, 1, 0), last_mask, hp, hn);
      score = _mm256_sub_epi64(score, hp);  // hp lanes are -1 masks: -= -1
      score = _mm256_add_epi64(score, hn);
      const __m256i at_end = _mm256_cmpeq_epi64(
          len_vec, _mm256_set1_epi64x(static_cast<int64_t>(j) + 1));
      final_d = _mm256_blendv_epi8(final_d, score, at_end);
    }
  } else if (kb == 2) {
    const __m256i top = _mm256_set1_epi64x(
        static_cast<int64_t>(uint64_t{1} << 63));
    __m256i pv0 = all1, mv0 = zero, pv1 = all1, mv1 = zero;
    for (uint32_t j = 0; j < g.num_cols; ++j) {
      ColumnSymbols(g, j, sym);
      __m256i hp = all1, hn = zero;
      Avx2Step(pv0, mv0, LoadEq(job.peq, sym, 2, 0), top, hp, hn);
      Avx2Step(pv1, mv1, LoadEq(job.peq, sym, 2, 1), last_mask, hp, hn);
      score = _mm256_sub_epi64(score, hp);
      score = _mm256_add_epi64(score, hn);
      const __m256i at_end = _mm256_cmpeq_epi64(
          len_vec, _mm256_set1_epi64x(static_cast<int64_t>(j) + 1));
      final_d = _mm256_blendv_epi8(final_d, score, at_end);
    }
  } else {
    const __m256i top = _mm256_set1_epi64x(
        static_cast<int64_t>(uint64_t{1} << 63));
    uint64_t* pv = job.pv;
    uint64_t* mv = job.mv;
    for (size_t b = 0; b < kb; ++b) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(pv + b * kLaneWidth), all1);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(mv + b * kLaneWidth), zero);
    }
    for (uint32_t j = 0; j < g.num_cols; ++j) {
      ColumnSymbols(g, j, sym);
      __m256i hp = all1, hn = zero;
      for (size_t b = 0; b < kb; ++b) {
        __m256i pvb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pv + b * kLaneWidth));
        __m256i mvb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(mv + b * kLaneWidth));
        Avx2Step(pvb, mvb, LoadEq(job.peq, sym, kb, b),
                 b == kb - 1 ? last_mask : top, hp, hn);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(pv + b * kLaneWidth),
                            pvb);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(mv + b * kLaneWidth),
                            mvb);
      }
      score = _mm256_sub_epi64(score, hp);
      score = _mm256_add_epi64(score, hn);
      const __m256i at_end = _mm256_cmpeq_epi64(
          len_vec, _mm256_set1_epi64x(static_cast<int64_t>(j) + 1));
      final_d = _mm256_blendv_epi8(final_d, score, at_end);
    }
  }

  alignas(32) int64_t fin[kLaneWidth];
  _mm256_store_si256(reinterpret_cast<__m256i*>(fin), final_d);
  for (uint32_t l = 0; l < kLaneWidth; ++l) job.scores[l] = fin[l];
}

#endif  // SSS_HAVE_AVX2_LANE_KERNEL

}  // namespace

void LaneVerifier::SetQuery(std::string_view query) {
  if (query_ == query) return;  // tables already describe this pattern
  query_.assign(query);
  blocks_ = query.empty() ? 0 : (query.size() + 63) / 64;
  last_mask_ = query.empty() ? 0 : uint64_t{1} << ((query.size() - 1) % 64);
  byte_peq_ready_ = false;
  packed2_peq_ready_ = false;
}

const uint64_t* LaneVerifier::PeqFor(const LaneGroupView& group) {
  if (group.packed2) {
    if (!packed2_peq_ready_) {
      packed2_peq_.assign(Dna2Codec::kAlphabetSize * blocks_, 0);
      for (size_t i = 0; i < query_.size(); ++i) {
        const uint8_t code = Dna2Codec::Encode(query_[i]);
        // Query symbols outside {A,C,G,T} match no candidate code — the
        // same verdict raw-byte comparison gives, since packed2 groups
        // contain only pure-ACGT candidates.
        if (code == Dna2Codec::kInvalidCode) continue;
        packed2_peq_[code * blocks_ + i / 64] |= uint64_t{1} << (i % 64);
      }
      packed2_peq_ready_ = true;
    }
    return packed2_peq_.data();
  }
  if (!byte_peq_ready_) {
    byte_peq_.assign(256 * blocks_, 0);
    for (size_t i = 0; i < query_.size(); ++i) {
      byte_peq_[static_cast<unsigned char>(query_[i]) * blocks_ + i / 64] |=
          uint64_t{1} << (i % 64);
    }
    byte_peq_ready_ = true;
  }
  return byte_peq_.data();
}

void LaneVerifier::RunScalar(const LaneGroupView& g, int k,
                             int out[kLaneWidth]) {
  // The scalar tier is the per-pair reference run through the lane layout:
  // materialize each lane's text and ask BoundedMyers. The differential
  // suite uses it to pin the wide tiers to the scalar kernel's verdicts.
  for (uint32_t l = 0; l < kLaneWidth; ++l) {
    const uint32_t len = g.lengths[l];
    lane_text_.resize(len);
    if (g.packed2) {
      for (uint32_t j = 0; j < len; ++j) {
        lane_text_[j] =
            Dna2Codec::Decode((g.data[j] >> (2 * l)) & 3u);
      }
    } else {
      for (uint32_t j = 0; j < len; ++j) {
        lane_text_[j] =
            static_cast<char>(g.data[static_cast<size_t>(j) * kLaneWidth + l]);
      }
    }
    out[l] = BoundedMyers(query_, lane_text_, k, &scalar_ws_);
  }
}

void LaneVerifier::VerifyGroup(const LaneGroupView& group, int k,
                               KernelTier tier, int out[kLaneWidth]) {
  SSS_DCHECK(k >= 0);
  if (query_.empty()) {
    // ed(ε, y) = |y|, reported exactly when <= k, else k+1 — what
    // BoundedMyers returns through its length filter.
    for (uint32_t l = 0; l < kLaneWidth; ++l) {
      out[l] = group.lengths[l] <= static_cast<uint32_t>(k)
                   ? static_cast<int>(group.lengths[l])
                   : k + 1;
    }
    return;
  }
  if (tier == KernelTier::kScalar) {
    RunScalar(group, k, out);
    return;
  }
  LaneKernelJob job;
  job.peq = PeqFor(group);
  job.blocks = blocks_;
  job.last_mask = last_mask_;
  job.m = static_cast<int64_t>(query_.size());
  job.group = &group;
  if (blocks_ > 1) {
    pv_.resize(blocks_ * kLaneWidth);
    mv_.resize(blocks_ * kLaneWidth);
    job.pv = pv_.data();
    job.mv = mv_.data();
  }
#if SSS_HAVE_AVX2_LANE_KERNEL
  // The CPUID re-check makes a stray kAvx2 request on non-AVX2 hardware
  // degrade to SWAR instead of faulting (ResolveKernelTier already clamps;
  // this guards direct callers).
  if (tier == KernelTier::kAvx2 &&
      DetectCpuKernelTier() == KernelTier::kAvx2) {
    RunAvx2(job);
  } else {
    RunSwar(job);
  }
#else
  (void)tier;
  RunSwar(job);
#endif
  // Uniform clamp: the full recurrence computed the exact distance; values
  // beyond k collapse to k+1 exactly like the per-pair kernel's reject
  // paths (length filter included, since distance >= |length difference|).
  for (uint32_t l = 0; l < kLaneWidth; ++l) {
    out[l] = job.scores[l] <= k ? static_cast<int>(job.scores[l]) : k + 1;
  }
}

Status LaneVerifyRange(const LanePool& pool, const Query& query,
                       const SearchContext& ctx, KernelTier tier,
                       uint32_t begin, uint32_t end, MatchList* out) {
  SSS_DCHECK(!query.text.empty());
  thread_local LaneVerifier verifier;
  verifier.SetQuery(query.text);
  const int k = query.max_distance;
  const int64_t qlen = static_cast<int64_t>(query.text.size());
  const int64_t wlo = qlen - k;
  const int64_t whi = qlen + k;

  StatsScope stats(ctx.stats);
  StopChecker stopper(ctx);
  const size_t out_before = out->size();
  int dist[kLaneWidth];

  for (const LanePool::Bucket& bucket : pool.buckets()) {
    // Ids are ascending within a bucket, so an id shard is a contiguous
    // slot span. A group straddling a shard boundary is re-verified by the
    // neighbouring shard, but each candidate's verdict is consumed exactly
    // once — that keeps the funnel counters strategy-independent.
    const uint32_t* ids = bucket.ids.data();
    const uint32_t i0 = static_cast<uint32_t>(
        std::lower_bound(ids, ids + bucket.num_candidates, begin) - ids);
    const uint32_t i1 = static_cast<uint32_t>(
        std::lower_bound(ids, ids + bucket.num_candidates, end) - ids);
    if (i0 >= i1) continue;
    // Bucket-level length filter: the half-open window [min_len, max_len)
    // either misses [wlo, whi] for every member (wholesale reject — the
    // very verdict LengthFilterPasses would return per pair) or the
    // members are checked individually below.
    if (static_cast<int64_t>(bucket.min_len) > whi ||
        static_cast<int64_t>(bucket.max_len) <= wlo) {
      stats->length_filter_rejects += i1 - i0;
      continue;
    }
    for (uint32_t g = i0 / kLaneWidth; g * kLaneWidth < i1; ++g) {
      if (SSS_PREDICT_FALSE(stopper.ShouldStop())) {
        out->clear();
        return ctx.StopStatus();
      }
      const uint32_t lane_lo = std::max(i0, g * kLaneWidth);
      const uint32_t lane_hi = std::min(i1, (g + 1) * kLaneWidth);
      bool pass[kLaneWidth] = {false, false, false, false};
      uint32_t live = 0;
      for (uint32_t slot = lane_lo; slot < lane_hi; ++slot) {
        if (LengthFilterPasses(query.text.size(), bucket.lengths[slot], k)) {
          pass[slot - g * kLaneWidth] = true;
          ++live;
        } else {
          ++stats->length_filter_rejects;
        }
      }
      if (live == 0) continue;
      verifier.VerifyGroup(pool.Group(bucket, g), k, tier, dist);
      for (uint32_t slot = lane_lo; slot < lane_hi; ++slot) {
        const uint32_t l = slot - g * kLaneWidth;
        if (pass[l] && dist[l] <= k) out->push_back(ids[slot]);
      }
    }
  }

  stats->candidates_considered += end - begin;
  const uint64_t verified = (end - begin) - stats->length_filter_rejects;
  stats->verify_calls += verified;
  stats->simd_lanes_verified += verified;
  stats->matches_found += out->size() - out_before;
  // Matches were collected bucket-major; the contract is ascending ids.
  std::sort(out->begin() + static_cast<ptrdiff_t>(out_before), out->end());
  return Status::OK();
}

}  // namespace sss
