#include "util/histogram.h"

#include <gtest/gtest.h>

#include <thread>

#include "util/random.h"

namespace sss {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
  // Percentile error bounded by the bucket width (~1/16 of the octave).
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 1000.0, 1000.0 / 8);
}

TEST(HistogramTest, ZeroClampsToOne) {
  LatencyHistogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1u);
}

TEST(HistogramTest, MinMaxMeanExact) {
  LatencyHistogram h;
  for (uint64_t v : {5u, 10u, 15u, 20u, 25u}) h.Record(v);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 25u);
  EXPECT_DOUBLE_EQ(h.Mean(), 15.0);
}

TEST(HistogramTest, PercentilesOfUniformData) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  // Log-bucketing guarantees ≤ ~7% relative error at these magnitudes.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 5000, 5000 * 0.08);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.9)), 9000, 9000 * 0.08);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 9900, 9900 * 0.08);
  EXPECT_EQ(h.Percentile(1.0), 10000u);
}

TEST(HistogramTest, PercentileNeverExceedsMax) {
  Xoshiro256 rng(0x415);
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) h.Record(1 + rng.Uniform(1 << 20));
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_LE(h.Percentile(q), h.max()) << q;
    EXPECT_GE(h.Percentile(q), h.min() / 2) << q;  // bucket lower slack
  }
  // Monotone in q.
  EXPECT_LE(h.Percentile(0.25), h.Percentile(0.75));
  EXPECT_LE(h.Percentile(0.75), h.Percentile(0.99));
}

TEST(HistogramTest, HandlesHugeValues) {
  LatencyHistogram h;
  h.Record(uint64_t{1} << 47);
  h.Record(uint64_t{1} << 50);  // beyond the last octave: clamped bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), uint64_t{1} << 50);
  EXPECT_GT(h.Percentile(0.99), uint64_t{1} << 46);
}

TEST(HistogramTest, LinearRegionIsExact) {
  // Values below 2^kSubBucketBits get one bucket each, so percentiles in
  // the linear region carry no bucketing error at all.
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 15; ++v) h.Record(v);
  EXPECT_EQ(h.Percentile(0.0), 1u);
  EXPECT_EQ(h.Percentile(0.5), 8u);
  EXPECT_EQ(h.Percentile(1.0), 15u);
  for (uint64_t v = 1; v <= 15; ++v) {
    LatencyHistogram single;
    single.Record(v);
    EXPECT_EQ(single.Percentile(0.5), v) << v;
  }
}

TEST(HistogramTest, ExactPowersOfTwoStayInBounds) {
  for (int octave = 0; octave < 63; ++octave) {
    LatencyHistogram h;
    const uint64_t v = uint64_t{1} << octave;
    h.Record(v);
    // Every percentile of a single-value histogram must be the value itself:
    // the bucket bound is clamped into [min, max] = [v, v].
    EXPECT_EQ(h.Percentile(0.0), v) << octave;
    EXPECT_EQ(h.Percentile(0.5), v) << octave;
    EXPECT_EQ(h.Percentile(1.0), v) << octave;
  }
}

TEST(HistogramTest, ValuesBeyondLastOctaveNeverReportBelowMin) {
  // Values ≥ 2^48 outgrow the bucket table. The former sub-index shift
  // wrapped them into low sub-buckets of the top octave, whose upper bound
  // sits far below the recorded minimum — percentiles must clamp up to min.
  LatencyHistogram h;
  const uint64_t huge = uint64_t{1} << 55;
  h.Record(huge);
  h.Record(huge + 12345);
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_GE(h.Percentile(q), h.min()) << q;
    EXPECT_LE(h.Percentile(q), h.max()) << q;
  }
}

TEST(HistogramTest, PercentileMonotoneInQ) {
  Xoshiro256 rng(0xBEEF);
  LatencyHistogram h;
  for (int i = 0; i < 10000; ++i) h.Record(1 + rng.Uniform(1 << 24));
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const uint64_t p = h.Percentile(q);
    EXPECT_GE(p, prev) << q;
    prev = p;
  }
  EXPECT_EQ(h.Percentile(1.0), h.max());
}

TEST(HistogramTest, ScaledSummaryDividesValues) {
  LatencyHistogram h;
  h.Record(2500);  // 2.5 units after dividing by 1000
  const std::string s = h.ScaledSummary(1e3, "us");
  EXPECT_NE(s.find("p50=2.5"), std::string::npos) << s;
  EXPECT_NE(s.find("us"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(HistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(50);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, SummaryMentionsPercentiles) {
  LatencyHistogram h;
  h.Record(100);
  const std::string s = h.Summary("us");
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Xoshiro256 rng(static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1 + rng.Uniform(1 << 16));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace sss
