#include "parallel/adaptive_pool.h"

#include <algorithm>

#include "util/failpoint.h"

namespace sss {

AdaptivePool::AdaptivePool(AdaptivePoolOptions options) : options_(options) {
  if (options_.max_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.max_threads = hw == 0 ? 4 : hw;
  }
  options_.min_threads = std::max<size_t>(1, options_.min_threads);
  options_.max_threads =
      std::max(options_.max_threads, options_.min_threads);
  options_.initial_threads =
      std::clamp(options_.initial_threads, options_.min_threads,
                 options_.max_threads);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < options_.initial_threads; ++i) OpenWorkerLocked();
  }
  master_ = std::thread([this] { MasterLoop(); });
}

AdaptivePool::~AdaptivePool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  master_.join();  // master joins every worker before exiting
}

void AdaptivePool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void AdaptivePool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void AdaptivePool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                               size_t chunk, const SearchContext* stop) {
  if (chunk == 0) chunk = 1;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([&fn, begin, end, stop] {
      if (stop != nullptr && stop->StopRequested()) return;
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  Wait();
}

size_t AdaptivePool::CancelPending() {
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped = tasks_.size();
    tasks_.clear();
    in_flight_ -= dropped;
    if (in_flight_ == 0) all_done_.notify_all();
  }
  return dropped;
}

void AdaptivePool::OpenWorkerLocked() {
  Worker w;
  w.state = std::make_shared<WorkerState>();
  w.thread = std::thread([this, state = w.state] { WorkerLoop(state); });
  workers_.push_back(std::move(w));
  live_threads_.fetch_add(1);
  total_opens_.fetch_add(1);
  size_t peak = peak_threads_.load();
  while (live_threads_.load() > peak &&
         !peak_threads_.compare_exchange_weak(peak, live_threads_.load())) {
  }
}

void AdaptivePool::ReapExitedLocked() {
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (it->state->exited.load()) {
      it->thread.join();
      it = retired_.erase(it);
    } else {
      ++it;
    }
  }
}

void AdaptivePool::MasterLoop() {
  for (;;) {
    std::this_thread::sleep_for(options_.master_interval);
    std::unique_lock<std::mutex> lock(mu_);
    ReapExitedLocked();
    if (shutting_down_ && tasks_.empty()) break;

    // The watermark rules. Only the master applies them, so two threads can
    // never decide "open" and "close" simultaneously — the paper's
    // master/slave answer to the locking problem.
    //
    // `workers_.size()` (not the live_threads_ atomic) is the worker count
    // the rules run on: the atomic still includes retired workers that have
    // not exited yet, and counting those once let the master close its last
    // real worker — after which a short queue (pressure below the high
    // watermark) could never trigger a reopen and the batch hung forever.
    const size_t live = workers_.size();
    const double pressure = static_cast<double>(tasks_.size()) /
                            static_cast<double>(std::max<size_t>(1, live));
    if (workers_.empty() && !tasks_.empty()) {
      // Never strand a queue: pending work with no worker overrides the
      // watermarks (defense in depth; the min bound below should already
      // make this unreachable).
      OpenWorkerLocked();
    } else if (pressure > options_.high_watermark &&
               live < options_.max_threads) {
      OpenWorkerLocked();
    } else if (pressure < options_.low_watermark &&
               live > options_.min_threads && !workers_.empty()) {
      Worker victim = std::move(workers_.back());
      workers_.pop_back();
      victim.state->retire.store(true);
      retired_.push_back(std::move(victim));
      total_closes_.fetch_add(1);
      lock.unlock();
      task_available_.notify_all();  // wake it so it sees the flag
      continue;
    }
  }

  // Shutdown: retire everyone, then join — WITHOUT holding mu_, because a
  // waiting worker must reacquire mu_ to wake from the condition variable.
  std::list<Worker> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Worker& w : workers_) {
      w.state->retire.store(true);
      retired_.push_back(std::move(w));
    }
    workers_.clear();
    to_join.swap(retired_);
  }
  task_available_.notify_all();
  for (Worker& w : to_join) w.thread.join();
}

void AdaptivePool::WorkerLoop(std::shared_ptr<WorkerState> state) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [&] {
        return shutting_down_ || state->retire.load() || !tasks_.empty();
      });
      if (state->retire.load() || tasks_.empty()) {
        // Exiting. If work is still queued, this thread may have consumed
        // the Submit notification meant for it — pass the baton so the task
        // cannot be stranded.
        const bool pending = !tasks_.empty();
        lock.unlock();
        if (pending) task_available_.notify_one();
        break;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    SSS_FAILPOINT("adaptive_pool:task");
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
  live_threads_.fetch_sub(1);
  state->exited.store(true);
}

}  // namespace sss
