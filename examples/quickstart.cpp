// Quickstart: the smallest complete use of the library.
//
//   1. put strings in a Dataset,
//   2. build an engine (sequential scan here — the paper's winner for short
//      strings),
//   3. ask for everything within edit distance k of a query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/scan.h"
#include "core/searcher.h"
#include "io/dataset.h"

int main() {
  // 1. A tiny collection (the paper's Fig. 4 words plus friends).
  sss::Dataset cities("demo", sss::AlphabetKind::kGeneric);
  cities.Add("Berlin");
  cities.Add("Bern");
  cities.Add("Ulm");
  cities.Add("Magdeburg");
  cities.Add("Marburg");
  cities.Add("Hamburg");

  // 2. Build a search engine. MakeSearcher also offers kTrieIndex and
  //    kCompressedTrieIndex with the same interface.
  auto searcher =
      sss::MakeSearcher(sss::EngineKind::kSequentialScan, cities);
  if (!searcher.ok()) {
    std::fprintf(stderr, "engine construction failed: %s\n",
                 searcher.status().ToString().c_str());
    return 1;
  }

  // 3. Search: all strings within edit distance 2 of "Berlim".
  const sss::Query query{"Berlim", 2};
  const sss::MatchList matches = (*searcher)->Search(query);

  std::printf("strings within edit distance %d of \"%s\":\n",
              query.max_distance, query.text.c_str());
  for (uint32_t id : matches) {
    std::printf("  [%u] %.*s\n", id,
                static_cast<int>(cities.View(id).size()),
                cities.View(id).data());
  }

  // Batch interface: several queries, answered in parallel on a fixed pool
  // (the paper's best strategy).
  const sss::QuerySet batch = {{"Ulm", 1}, {"Hamburg", 0}, {"Maqdeburg", 1}};
  const sss::SearchResults results = (*searcher)->SearchBatch(
      batch, {sss::ExecutionStrategy::kFixedPool, /*num_threads=*/4});
  for (size_t i = 0; i < batch.size(); ++i) {
    std::printf("query \"%s\" (k=%d): %zu match(es)\n", batch[i].text.c_str(),
                batch[i].max_distance, results[i].size());
  }
  return 0;
}
