#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace sss {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalid:
      return "Invalid";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnknownError:
      return "UnknownError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "UnknownError";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const {
  std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace sss
