# Empty dependencies file for partition_index_test.
# This may be replaced when dependencies are built.
