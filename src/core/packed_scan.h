// PackedDnaScanSearcher — the paper's "Dictionary Compression" future-work
// item (§6) taken all the way to an engine: the read collection is stored
// at 3 bits/symbol (3/8 of the byte-per-symbol StringPool) and queries are
// verified against decoded code sequences, so the scan touches ~2.7x less
// memory per pass. Symbol codes compare exactly like symbols, so every
// edit-distance kernel applies unchanged to code strings.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/lane_pool.h"
#include "core/searcher.h"
#include "io/dataset.h"
#include "util/bitpack.h"
#include "util/result.h"

namespace sss {

/// \brief Sequential scan over 3-bit-packed DNA storage.
class PackedDnaScanSearcher final : public Searcher {
 public:
  /// \brief Packs `snapshot`'s dataset (pinned for the searcher's lifetime;
  /// must contain only {A,C,G,N,T}); fails with Invalid otherwise.
  static Result<std::unique_ptr<PackedDnaScanSearcher>> Make(
      SnapshotHandle snapshot);

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  static Result<std::unique_ptr<PackedDnaScanSearcher>> Make(
      const Dataset& dataset) {
    return Make(CollectionSnapshot::Borrow(dataset));
  }

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "packed_dna_scan"; }

  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

  /// Like the byte scan, the packed pool is laid out in id order, so an id
  /// shard is a sub-scan.
  bool SupportsRangeSearch() const override { return true; }
  Status SearchRange(const Query& query, uint32_t begin, uint32_t end,
                     const SearchContext& ctx, MatchList* out) const override;

  /// \brief Packed bytes held (plus the lazily-built lane pool, once a
  /// non-scalar kernel tier has been used) — compare with
  /// dataset.pool().total_bytes().
  size_t memory_bytes() const override;

  /// \brief Compression ratio vs 1 byte/symbol.
  double compression_ratio() const {
    return static_cast<double>(pool_.total_symbols()) /
           static_cast<double>(pool_.packed_bytes());
  }

 private:
  explicit PackedDnaScanSearcher(SnapshotHandle snapshot)
      : snapshot_(std::move(snapshot)), dataset_(snapshot_->dataset()) {}

  /// Lazily-built transposed pool for the lane tiers: pure-ACGT groups take
  /// the 2-bit packed2 column layout — denser still than the 3-bit scan
  /// storage — and 'N'-bearing reads fall back to byte columns.
  const LanePool& EnsureLanePool() const;

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
  PackedDnaPool pool_;

  mutable std::once_flag lane_pool_once_;
  mutable std::unique_ptr<LanePool> lane_pool_storage_;
  mutable std::atomic<const LanePool*> lane_pool_{nullptr};
};

}  // namespace sss
