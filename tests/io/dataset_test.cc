#include "io/dataset.h"

#include <gtest/gtest.h>

namespace sss {
namespace {

TEST(DatasetTest, EmptyStats) {
  Dataset d("empty", AlphabetKind::kGeneric);
  const DatasetStats stats = d.ComputeStats();
  EXPECT_EQ(stats.num_strings, 0u);
  EXPECT_EQ(stats.alphabet_size, 0u);
  EXPECT_EQ(stats.total_bytes, 0u);
}

TEST(DatasetTest, AddAndView) {
  Dataset d("test", AlphabetKind::kGeneric);
  EXPECT_EQ(d.Add("Berlin"), 0u);
  EXPECT_EQ(d.Add("Bern"), 1u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.View(0), "Berlin");
  EXPECT_EQ(d[1], "Bern");
  EXPECT_EQ(d.Length(0), 6u);
}

TEST(DatasetTest, MetadataPreserved) {
  Dataset d("dna_reads", AlphabetKind::kDna);
  EXPECT_EQ(d.name(), "dna_reads");
  EXPECT_EQ(d.alphabet(), AlphabetKind::kDna);
}

TEST(DatasetTest, StatsComputeAllFields) {
  Dataset d("stats", AlphabetKind::kGeneric);
  d.Add("ab");      // 2 distinct
  d.Add("abcd");    // +2
  d.Add("a");       // +0
  const DatasetStats stats = d.ComputeStats();
  EXPECT_EQ(stats.num_strings, 3u);
  EXPECT_EQ(stats.alphabet_size, 4u);  // a b c d
  EXPECT_EQ(stats.min_length, 1u);
  EXPECT_EQ(stats.max_length, 4u);
  EXPECT_EQ(stats.total_bytes, 7u);
  EXPECT_DOUBLE_EQ(stats.avg_length, 7.0 / 3.0);
}

TEST(DatasetTest, StatsCountHighBytesDistinctly) {
  Dataset d("latin1", AlphabetKind::kGeneric);
  d.Add("\xE9\xE8\xE9");  // é è é
  const DatasetStats stats = d.ComputeStats();
  EXPECT_EQ(stats.alphabet_size, 2u);
}

TEST(DatasetTest, QueryDefaults) {
  Query q;
  EXPECT_EQ(q.text, "");
  EXPECT_EQ(q.max_distance, 0);
}

}  // namespace
}  // namespace sss
