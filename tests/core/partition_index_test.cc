#include "core/partition_index.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

TEST(PieceBoundsTest, EvenAndUnevenSplits) {
  EXPECT_EQ(PartitionIndexSearcher::PieceBounds(12, 4),
            (std::vector<size_t>{0, 3, 6, 9, 12}));
  EXPECT_EQ(PartitionIndexSearcher::PieceBounds(10, 4),
            (std::vector<size_t>{0, 3, 6, 8, 10}));
  EXPECT_EQ(PartitionIndexSearcher::PieceBounds(2, 4),
            (std::vector<size_t>{0, 1, 2, 2, 2}));
  EXPECT_EQ(PartitionIndexSearcher::PieceBounds(0, 2),
            (std::vector<size_t>{0, 0, 0}));
  EXPECT_EQ(PartitionIndexSearcher::PieceBounds(5, 1),
            (std::vector<size_t>{0, 5}));
}

TEST(PartitionIndexTest, FindsExactAndApproximate) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Magdeburg");
  d.Add("Hamburg");
  d.Add("Marburg");
  PartitionIndexSearcher index(d, {/*max_k=*/3});
  EXPECT_EQ(index.Search({"Magdeburg", 0}), (MatchList{0}));
  EXPECT_EQ(index.Search({"Maqdeburg", 1}), (MatchList{0}));
  EXPECT_EQ(index.Search({"Magdeburg", 3}), (MatchList{0, 2}));
  EXPECT_TRUE(index.Search({"Leipzig", 2}).empty());
  EXPECT_EQ(index.name(), "partition_index");
}

TEST(PartitionIndexTest, ThresholdAboveBudgetFallsBack) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("abcdef");
  d.Add("uvwxyz");
  PartitionIndexSearcher index(d, {/*max_k=*/1});
  // k=4 exceeds max_k=1; the fallback must still answer correctly.
  EXPECT_EQ(index.Search({"abxxxf", 4}), (MatchList{0}));
}

TEST(PartitionIndexTest, ShortStringsAreNeverLost) {
  // Strings shorter than max_k+1 have empty pieces; the pigeonhole probe
  // cannot see them, so they are kept as always-verified candidates.
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("ab");    // shorter than max_k+1 = 4
  d.Add("a");
  d.Add("abcdefgh");
  PartitionIndexSearcher index(d, {/*max_k=*/3});
  EXPECT_EQ(index.Search({"ab", 0}), (MatchList{0}));
  EXPECT_EQ(index.Search({"ax", 1}), (MatchList{0, 1}));  // ed(ax,a)=1 too
  EXPECT_EQ(index.Search({"abc", 2}), (MatchList{0, 1}));
}

TEST(PartitionIndexTest, EmptyDatasetAndQuery) {
  Dataset empty("e", AlphabetKind::kGeneric);
  PartitionIndexSearcher index(empty, {});
  EXPECT_TRUE(index.Search({"x", 1}).empty());

  Dataset d("d", AlphabetKind::kGeneric);
  d.Add("ab");
  PartitionIndexSearcher index2(d, {/*max_k=*/2});
  EXPECT_EQ(index2.Search({"", 2}), (MatchList{0}));
}

struct PartitionSweep {
  const char* label;
  const char* alphabet;
  int max_k;
  size_t min_len;
  size_t max_len;
  std::vector<int> ks;
};

class PartitionIndexEquivalenceTest
    : public ::testing::TestWithParam<PartitionSweep> {};

TEST_P(PartitionIndexEquivalenceTest, MatchesBruteForce) {
  const PartitionSweep& cfg = GetParam();
  Xoshiro256 rng(0x9A27);
  Dataset d =
      RandomDataset(&rng, cfg.alphabet, 200, cfg.min_len, cfg.max_len);
  PartitionIndexSearcher index(d, {cfg.max_k});
  for (int t = 0; t < 30; ++t) {
    for (int k : cfg.ks) {
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        if (!text.empty() && k > 0) text[rng.Uniform(text.size())] = 'z';
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      ASSERT_EQ(index.Search(q), BruteForceSearch(d, q))
          << cfg.label << " q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PartitionIndexEquivalenceTest,
    ::testing::Values(
        PartitionSweep{"city_k3", "abcdefghij -", 3, 2, 30, {0, 1, 2, 3}},
        PartitionSweep{"dna_k16", "ACGNT", 16, 40, 60, {0, 4, 8, 16}},
        PartitionSweep{"short_strings", "abc", 3, 0, 6, {0, 1, 2, 3}},
        PartitionSweep{"beyond_budget", "abcd", 2, 2, 20, {0, 1, 2, 3, 4}}),
    [](const ::testing::TestParamInfo<PartitionSweep>& info) {
      return info.param.label;
    });

TEST(PartitionIndexTest, EditedInsertionsAndDeletionsShiftPieces) {
  // Directed test for the ±k drift handling: insertions before a piece.
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("abcdefghijkl");  // 12 chars, max_k=2 → pieces of 4
  PartitionIndexSearcher index(d, {/*max_k=*/2});
  // Two insertions at the front shift every piece right by 2.
  EXPECT_EQ(index.Search({"xyabcdefghijkl", 2}), (MatchList{0}));
  // Two deletions at the front shift left by 2.
  EXPECT_EQ(index.Search({"cdefghijkl", 2}), (MatchList{0}));
}

TEST(PartitionIndexTest, ReportsMemory) {
  Xoshiro256 rng(0x9A28);
  Dataset d = RandomDataset(&rng, "abcdef", 300, 8, 20);
  PartitionIndexSearcher index(d, {/*max_k=*/3});
  EXPECT_GT(index.memory_bytes(), 0u);
}

}  // namespace
}  // namespace sss
