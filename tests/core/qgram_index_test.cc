#include "core/qgram_index.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomDataset;
using sss::testing::RandomString;

TEST(QGramIndexTest, FindsExactMatches) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Magdeburg");
  d.Add("Hamburg");
  d.Add("Marburg");
  QGramIndexSearcher index(d, {/*q=*/2});
  EXPECT_EQ(index.Search({"Magdeburg", 0}), (MatchList{0}));
  EXPECT_EQ(index.Search({"Hamburg", 0}), (MatchList{1}));
  EXPECT_TRUE(index.Search({"Berlin", 0}).empty());
  EXPECT_EQ(index.name(), "qgram_index");
}

TEST(QGramIndexTest, FindsApproximateMatches) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Magdeburg");
  d.Add("Hamburg");
  d.Add("Marburg");
  QGramIndexSearcher index(d, {/*q=*/2});
  EXPECT_EQ(index.Search({"Maqdeburg", 1}), (MatchList{0}));
  EXPECT_EQ(index.Search({"Magdeburg", 3}), (MatchList{0, 2}));
}

TEST(QGramIndexTest, ShortQueriesUseFallback) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("ab");
  d.Add("ac");
  d.Add("zz");
  QGramIndexSearcher index(d, {/*q=*/3});  // every profile empty
  EXPECT_EQ(index.Search({"ab", 1}), (MatchList{0, 1}));
  EXPECT_EQ(index.Search({"zz", 0}), (MatchList{2}));
}

TEST(QGramIndexTest, VacuousThresholdStillCorrect) {
  // l_q − q + 1 − k·q ≤ 0 forces the scan fallback.
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("abcdef");
  d.Add("abcxef");
  QGramIndexSearcher index(d, {/*q=*/3});
  EXPECT_EQ(index.Search({"abcdef", 2}), (MatchList{0, 1}));
}

TEST(QGramIndexTest, EmptyDatasetAndEmptyQuery) {
  Dataset empty("e", AlphabetKind::kGeneric);
  QGramIndexSearcher index(empty, {});
  EXPECT_TRUE(index.Search({"x", 2}).empty());

  Dataset d("d", AlphabetKind::kGeneric);
  d.Add("a");
  QGramIndexSearcher index2(d, {});
  EXPECT_EQ(index2.Search({"", 1}), (MatchList{0}));
}

TEST(QGramIndexTest, ReportsMemory) {
  Xoshiro256 rng(0x96);
  Dataset d = RandomDataset(&rng, "abcdef", 200, 5, 20);
  QGramIndexSearcher index(d, {/*q=*/3});
  EXPECT_GT(index.memory_bytes(), 0u);
  EXPECT_GT(index.num_buckets(), 0u);
}

struct QGramSweep {
  const char* label;
  const char* alphabet;
  int q;
  size_t min_len;
  size_t max_len;
  std::vector<int> ks;
};

class QGramIndexEquivalenceTest
    : public ::testing::TestWithParam<QGramSweep> {};

TEST_P(QGramIndexEquivalenceTest, MatchesBruteForce) {
  const QGramSweep& cfg = GetParam();
  Xoshiro256 rng(0x96A);
  Dataset d =
      RandomDataset(&rng, cfg.alphabet, 200, cfg.min_len, cfg.max_len);
  QGramIndexSearcher index(d, {cfg.q});
  for (int t = 0; t < 40; ++t) {
    for (int k : cfg.ks) {
      std::string text;
      if (t % 2 == 0) {
        text = std::string(d.View(rng.Uniform(d.size())));
        if (!text.empty() && k > 0) text[rng.Uniform(text.size())] = 'z';
      } else {
        text = RandomString(&rng, cfg.alphabet, cfg.min_len, cfg.max_len);
      }
      const Query q{text, k};
      ASSERT_EQ(index.Search(q), BruteForceSearch(d, q))
          << cfg.label << " q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, QGramIndexEquivalenceTest,
    ::testing::Values(
        QGramSweep{"city_q2", "abcdefghij -", 2, 2, 30, {0, 1, 2, 3}},
        QGramSweep{"city_q3", "abcdefghij -", 3, 2, 30, {0, 1, 2, 3}},
        QGramSweep{"dna_q6", "ACGNT", 6, 40, 60, {0, 4, 8, 16}},
        QGramSweep{"tiny_q1", "ab", 1, 0, 10, {0, 1, 2}}),
    [](const ::testing::TestParamInfo<QGramSweep>& info) {
      return info.param.label;
    });

TEST(QGramIndexTest, SearchIsThreadSafe) {
  Xoshiro256 rng(0x96B);
  Dataset d = RandomDataset(&rng, "abcdef", 300, 3, 18);
  QGramIndexSearcher index(d, {/*q=*/2});
  QuerySet queries;
  for (int i = 0; i < 48; ++i) {
    queries.push_back(
        {RandomString(&rng, "abcdef", 3, 18), static_cast<int>(i % 3)});
  }
  const SearchResults serial =
      index.SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  EXPECT_EQ(index.SearchBatch(queries, {ExecutionStrategy::kFixedPool, 8}),
            serial);
}

}  // namespace
}  // namespace sss
