// sss_server — TCP front-end for the search engines (see src/server/).
//
//   sss_cli generate --workload city --count 40000 --out data.txt
//   sss_server --data data.txt --engine scan,qgram --port 7070
//              --max-inflight 64 --deadline-ms 500    (one command line)
//
// Prints "listening on HOST:PORT" once ready (scripts wait for that line),
// serves until SIGTERM/SIGINT, then drains gracefully: in-flight requests
// finish and get their responses before the process exits 0. --stats-json
// dumps the server counters and accumulated engine SearchStats at shutdown.
//
// Engines are served from an EngineHost generation built over one
// collection snapshot; ids follow uint8_t(EngineKind) (kAutoEngineId for
// "auto"), and the first name in --engine is the default for requests that
// do not pin an engine. SIGHUP (or a kAdmin reload frame) republishes a
// fresh generation from the --data file with zero downtime: in-flight
// requests drain on the old snapshot while new ones see the new
// generation. --reload-on-sighup=false leaves SIGHUP at its default
// (fatal) disposition.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_host.h"
#include "core/searcher.h"
#include "io/reader.h"
#include "server/server.h"
#include "util/failpoint.h"
#include "util/flags.h"
#include "util/search_stats.h"

namespace sss::server {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIOError = 3;
constexpr int kExitUnavailable = 5;

volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }
void HandleReloadSignal(int) { g_reload_requested = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: sss_server --data FILE [flags]\n"
      "  --host ADDR        numeric IPv4 bind address (default 127.0.0.1)\n"
      "  --port N           port; 0 picks an ephemeral one (default 0)\n"
      "  --dna              dataset uses the DNA alphabet\n"
      "  --engine LIST      comma list of engines to register; first is the\n"
      "                     default (default scan). Names as in sss_cli,\n"
      "                     plus 'auto' for the dataset-profiled router.\n"
      "  --reload-on-sighup BOOL\n"
      "                     SIGHUP republishes a fresh engine generation\n"
      "                     from --data with zero downtime (default true)\n"
      "  --max-inflight N   searches in flight before shedding (default 64)\n"
      "  --deadline-ms MS   server-side cap on request deadlines; requests\n"
      "                     without one get the cap (default 0 = uncapped)\n"
      "  --backlog N        listen backlog (default 128)\n"
      "  --stats-json       print counters + SearchStats JSON at shutdown\n"
      "  --failpoint LIST   comma list of NAME=fail[:N] | NAME=sleep:MS[:N]\n"
      "                     (needs a -DSSS_FAILPOINTS=ON build)\n"
      "exit codes: 0 clean shutdown, 1 error, 2 usage, 3 I/O error,\n"
      "            5 could not bind/listen\n");
  return kExitUsage;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  if (status.IsIOError()) return kExitIOError;
  if (status.IsUnavailable()) return kExitUnavailable;
  return kExitError;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Arms failpoints from "NAME=fail[:N],NAME=sleep:MS[:N]". In builds without
// SSS_FAILPOINTS the flag is a hard error: a fault-injection run that
// silently injects nothing would pass CI for the wrong reason.
Status ArmFailpoints(const std::string& spec) {
  if (spec.empty()) return Status::OK();
#if !defined(SSS_FAILPOINTS)
  return Status::Invalid(
      "--failpoint needs a -DSSS_FAILPOINTS=ON build; this binary has "
      "failpoints compiled out");
#else
  for (const std::string& entry : SplitCommas(spec)) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::Invalid("--failpoint entry '" + entry +
                             "' is not NAME=MODE");
    }
    const std::string name = entry.substr(0, eq);
    std::vector<std::string> mode;
    size_t start = eq + 1;
    while (start <= entry.size()) {
      const size_t colon = entry.find(':', start);
      const size_t end = colon == std::string::npos ? entry.size() : colon;
      mode.push_back(entry.substr(start, end - start));
      if (colon == std::string::npos) break;
      start = colon + 1;
    }
    if (mode.empty()) {
      return Status::Invalid("--failpoint entry '" + entry + "' has no mode");
    }
    if (mode[0] == "fail") {
      const int times = mode.size() > 1 ? std::atoi(mode[1].c_str()) : -1;
      FailPoints::Instance().Fail(
          name, Status::IOError("injected fault at " + name), times);
    } else if (mode[0] == "sleep") {
      if (mode.size() < 2) {
        return Status::Invalid("--failpoint sleep needs sleep:MS");
      }
      const int ms = std::atoi(mode[1].c_str());
      const int times = mode.size() > 2 ? std::atoi(mode[2].c_str()) : -1;
      FailPoints::Instance().Sleep(name, std::chrono::milliseconds(ms),
                                   times);
    } else {
      return Status::Invalid("--failpoint mode '" + mode[0] +
                             "' is not fail|sleep");
    }
  }
  return Status::OK();
#endif
}

void PrintStatsJson(const Server& server, const StatsSink& sink,
                    uint64_t generation) {
  const ServerCounters& c = server.counters();
  std::string json;
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema_version\":1,\"server\":{"
      "\"connections_accepted\":%llu,\"requests_ok\":%llu,"
      "\"requests_shed\":%llu,\"requests_cancelled\":%llu,"
      "\"requests_rejected\":%llu,\"protocol_errors\":%llu,"
      "\"bytes_in\":%llu,\"bytes_out\":%llu,"
      "\"reloads_ok\":%llu,\"reloads_failed\":%llu,"
      "\"generation\":%llu},\"stats\":",
      static_cast<unsigned long long>(c.connections_accepted.load()),
      static_cast<unsigned long long>(c.requests_ok.load()),
      static_cast<unsigned long long>(c.requests_shed.load()),
      static_cast<unsigned long long>(c.requests_cancelled.load()),
      static_cast<unsigned long long>(c.requests_rejected.load()),
      static_cast<unsigned long long>(c.protocol_errors.load()),
      static_cast<unsigned long long>(c.bytes_in.load()),
      static_cast<unsigned long long>(c.bytes_out.load()),
      static_cast<unsigned long long>(c.reloads_ok.load()),
      static_cast<unsigned long long>(c.reloads_failed.load()),
      static_cast<unsigned long long>(generation));
  json += buf;
  sink.Collected().AppendJson(&json);
  json += "}";
  std::printf("%s\n", json.c_str());
}

int Run(const FlagSet& flags) {
  const std::string data_path =
      flags.GetString("data", flags.GetString("dataset", ""));
  if (data_path.empty()) {
    std::fprintf(stderr, "sss_server: --data is required\n");
    return kExitUsage;
  }

  ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  Result<int64_t> port = flags.GetInt("port", 0);
  if (!port.ok()) return Fail(port.status());
  if (*port < 0 || *port > 65535) {
    std::fprintf(stderr, "sss_server: --port out of range\n");
    return kExitUsage;
  }
  options.port = static_cast<uint16_t>(*port);
  Result<int64_t> max_inflight = flags.GetInt("max-inflight", 64);
  if (!max_inflight.ok()) return Fail(max_inflight.status());
  if (*max_inflight < 1) {
    std::fprintf(stderr, "sss_server: --max-inflight must be >= 1\n");
    return kExitUsage;
  }
  options.max_inflight = static_cast<size_t>(*max_inflight);
  Result<int64_t> deadline_ms = flags.GetInt("deadline-ms", 0);
  if (!deadline_ms.ok()) return Fail(deadline_ms.status());
  if (*deadline_ms < 0) {
    std::fprintf(stderr, "sss_server: --deadline-ms must be >= 0\n");
    return kExitUsage;
  }
  options.max_deadline_ms = static_cast<uint32_t>(*deadline_ms);
  Result<int64_t> backlog = flags.GetInt("backlog", 128);
  if (!backlog.ok()) return Fail(backlog.status());
  options.backlog = static_cast<int>(*backlog);

  Status fp = ArmFailpoints(flags.GetString("failpoint", ""));
  if (!fp.ok()) return Fail(fp);

  Result<bool> dna = flags.GetBool("dna", false);
  if (!dna.ok()) return Fail(dna.status());
  Result<bool> reload_on_sighup = flags.GetBool("reload-on-sighup", true);
  if (!reload_on_sighup.ok()) return Fail(reload_on_sighup.status());

  std::vector<EngineSpec> specs;
  for (const std::string& name :
       SplitCommas(flags.GetString("engine", "scan"))) {
    auto spec = ParseEngineSpec(name);
    if (!spec.ok()) return Fail(spec.status());
    specs.push_back(*spec);
  }
  if (specs.empty()) {
    std::fprintf(stderr, "sss_server: --engine list is empty\n");
    return kExitUsage;
  }

  StatsSink sink;
  options.stats = &sink;

  // The host owns every engine generation; the server borrows the host and
  // pins one generation per request, so a reload never races a search.
  EngineHostOptions host_options;
  host_options.alphabet = *dna ? AlphabetKind::kDna : AlphabetKind::kGeneric;
  host_options.stats = &sink;
  EngineHost host(std::move(specs), host_options);
  Status loaded = host.LoadFile(data_path);
  if (!loaded.ok()) return Fail(loaded);

  Server server(options);
  Status st = server.RegisterHost(&host);
  if (!st.ok()) return Fail(st);

  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  if (*reload_on_sighup) {
    struct sigaction reload_action = {};
    reload_action.sa_handler = HandleReloadSignal;
    sigaction(SIGHUP, &reload_action, nullptr);
  }

  st = server.Start();
  if (!st.ok()) return Fail(st);
  std::printf("listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  while (g_stop_requested == 0) {
    if (g_reload_requested != 0) {
      // Reload on the main thread, not in the signal handler: a handler may
      // only touch the flag, and serializing reloads here means a SIGHUP
      // burst coalesces into one republish per loop turn.
      g_reload_requested = 0;
      const Status reloaded = server.Reload();
      if (reloaded.ok()) {
        std::fprintf(stderr, "sss_server: reloaded, generation %llu\n",
                     static_cast<unsigned long long>(host.generation()));
      } else {
        std::fprintf(stderr, "sss_server: reload failed (still serving "
                             "generation %llu): %s\n",
                     static_cast<unsigned long long>(host.generation()),
                     reloaded.ToString().c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "sss_server: draining\n");
  server.Stop();

  Result<bool> stats_json = flags.GetBool("stats-json", false);
  if (stats_json.ok() && *stats_json) {
    PrintStatsJson(server, sink, host.generation());
  }
  return kExitOk;
}

}  // namespace
}  // namespace sss::server

int main(int argc, char** argv) {
  auto flags = sss::FlagSet::Parse(argc, argv);
  if (!flags.ok()) return sss::server::Fail(flags.status());
  if (flags->Has("help")) return sss::server::Usage();
  return sss::server::Run(*flags);
}
