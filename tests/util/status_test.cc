#include "util/status.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/result.h"

namespace sss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_TRUE(Status::Invalid("bad").IsInvalid());
  EXPECT_TRUE(Status::IOError("io").IsIOError());
  EXPECT_TRUE(Status::KeyError("key").IsKeyError());
  EXPECT_TRUE(Status::OutOfMemory("oom").IsOutOfMemory());
  EXPECT_TRUE(Status::NotImplemented("ni").IsNotImplemented());
  EXPECT_TRUE(Status::Cancelled("c").IsCancelled());
  EXPECT_EQ(Status::Invalid("bad input").message(), "bad input");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::Invalid("oops").ToString(), "Invalid: oops");
  EXPECT_EQ(Status::IOError("gone").ToString(), "IOError: gone");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::Invalid("x");
  Status b = a;
  EXPECT_TRUE(b.IsInvalid());
  EXPECT_EQ(b.message(), "x");
  EXPECT_TRUE(a.IsInvalid());  // source untouched
  EXPECT_EQ(a, b);
}

TEST(StatusTest, MoveTransfersState) {
  Status a = Status::IOError("y");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "y");
}

// Every non-OK code, built once and reused by the round-trip tests below.
std::vector<Status> AllErrorStatuses() {
  return {Status::Invalid("m"),        Status::IOError("m"),
          Status::KeyError("m"),       Status::OutOfMemory("m"),
          Status::NotImplemented("m"), Status::Cancelled("m"),
          Status::UnknownError("m"),   Status::Corruption("m"),
          Status::Unavailable("m")};
}

TEST(StatusTest, CopyRoundTripsEveryCode) {
  for (const Status& original : AllErrorStatuses()) {
    Status copy = original;
    EXPECT_EQ(copy, original);
    Status assigned;
    assigned = original;
    EXPECT_EQ(assigned, original);
    // Overwriting an existing error must replace, not merge.
    Status overwritten = Status::Invalid("other");
    overwritten = original;
    EXPECT_EQ(overwritten, original);
  }
  Status ok_over_error = Status::Invalid("x");
  ok_over_error = Status::OK();
  EXPECT_TRUE(ok_over_error.ok());
}

TEST(StatusTest, MoveRoundTripsEveryCode) {
  for (const Status& original : AllErrorStatuses()) {
    Status source = original;
    Status moved = std::move(source);
    EXPECT_EQ(moved, original);
    Status assigned;
    Status source2 = original;
    assigned = std::move(source2);
    EXPECT_EQ(assigned, original);
  }
}

TEST(StatusTest, SelfAssignmentPreservesState) {
  for (const Status& original : AllErrorStatuses()) {
    Status s = original;
    Status* alias = &s;  // defeats -Wself-assign / -Wself-move
    s = *alias;
    EXPECT_EQ(s, original) << original.ToString();
    s = std::move(*alias);
    EXPECT_EQ(s, original) << original.ToString();
  }
  Status ok;
  Status* ok_alias = &ok;
  ok = *ok_alias;
  EXPECT_TRUE(ok.ok());
  ok = std::move(*ok_alias);
  EXPECT_TRUE(ok.ok());
}

TEST(StatusTest, UnavailableFactoryAndPredicate) {
  Status s = Status::Unavailable("server overloaded");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "Unavailable: server overloaded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("m"), Status::Invalid("m"));
  EXPECT_FALSE(Status::Invalid("m") == Status::Invalid("n"));
  EXPECT_FALSE(Status::Invalid("m") == Status::IOError("m"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeToStringNamesAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalid), "Invalid");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnknownError), "UnknownError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Invalid("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalid());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::Invalid("x");
  EXPECT_EQ(ok.ValueOr(0), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueUnsafe();
  EXPECT_EQ(*p, 5);
}

Status FailingOperation() { return Status::IOError("disk on fire"); }

Status PropagationSite() {
  SSS_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(PropagationSite().IsIOError());
}

Result<int> ProduceInt(bool fail) {
  if (fail) return Status::Invalid("asked to fail");
  return 10;
}

Status AssignSite(bool fail, int* out) {
  SSS_ASSIGN_OR_RETURN(*out, ProduceInt(fail));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagatesAndAssigns) {
  int out = 0;
  EXPECT_TRUE(AssignSite(false, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(AssignSite(true, &out).IsInvalid());
}

}  // namespace
}  // namespace sss
