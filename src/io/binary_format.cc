#include "io/binary_format.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "util/failpoint.h"

namespace sss {

namespace {

constexpr char kMagic[8] = {'S', 'S', 'S', 'D', 'A', 'T', '0', '1'};

uint64_t Fnv1a(const char* data, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}
constexpr uint64_t kFnvSeed = 1469598103934665603ULL;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

class ChecksummingWriter {
 public:
  ChecksummingWriter(std::FILE* f, const std::string& path)
      : f_(f), path_(path) {}

  Status Write(const void* data, size_t len) {
    if (std::fwrite(data, 1, len, f_) != len) {
      return Status::IOError("short write to '" + path_ + "'");
    }
    checksum_ = Fnv1a(static_cast<const char*>(data), len, checksum_);
    return Status::OK();
  }

  template <typename T>
  Status WriteScalar(T value) {
    return Write(&value, sizeof(T));
  }

  uint64_t checksum() const { return checksum_; }

 private:
  std::FILE* f_;
  const std::string& path_;
  uint64_t checksum_ = kFnvSeed;
};

class ChecksummingReader {
 public:
  ChecksummingReader(const std::string& contents) : contents_(contents) {}

  Status Read(void* out, size_t len) {
    if (pos_ + len > contents_.size()) {
      return Status::Corruption("binary dataset truncated");
    }
    std::memcpy(out, contents_.data() + pos_, len);
    checksum_ = Fnv1a(contents_.data() + pos_, len, checksum_);
    pos_ += len;
    return Status::OK();
  }

  template <typename T>
  Result<T> ReadScalar() {
    T value;
    SSS_RETURN_NOT_OK(Read(&value, sizeof(T)));
    return value;
  }

  const char* Cursor() const { return contents_.data() + pos_; }
  size_t Remaining() const { return contents_.size() - pos_; }
  Status Skip(size_t len) {
    if (pos_ + len > contents_.size()) {
      return Status::Corruption("binary dataset truncated");
    }
    checksum_ = Fnv1a(contents_.data() + pos_, len, checksum_);
    pos_ += len;
    return Status::OK();
  }

  uint64_t checksum() const { return checksum_; }

 private:
  const std::string& contents_;
  size_t pos_ = 0;
  uint64_t checksum_ = kFnvSeed;
};

}  // namespace

Status WriteBinaryDataset(const std::string& path, const Dataset& dataset) {
  FileHandle f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  ChecksummingWriter writer(f.get(), path);

  SSS_RETURN_NOT_OK(writer.Write(kMagic, sizeof(kMagic)));
  SSS_RETURN_NOT_OK(writer.WriteScalar<uint32_t>(
      dataset.alphabet() == AlphabetKind::kDna ? 1u : 0u));
  SSS_RETURN_NOT_OK(writer.WriteScalar<uint32_t>(
      static_cast<uint32_t>(dataset.name().size())));
  SSS_RETURN_NOT_OK(
      writer.Write(dataset.name().data(), dataset.name().size()));
  SSS_RETURN_NOT_OK(
      writer.WriteScalar<uint64_t>(static_cast<uint64_t>(dataset.size())));

  uint64_t offset = 0;
  SSS_RETURN_NOT_OK(writer.WriteScalar<uint64_t>(offset));
  for (size_t id = 0; id < dataset.size(); ++id) {
    offset += dataset.Length(id);
    SSS_RETURN_NOT_OK(writer.WriteScalar<uint64_t>(offset));
  }
  SSS_RETURN_NOT_OK(
      writer.Write(dataset.pool().data(), dataset.pool().total_bytes()));

  // Checksum is over everything preceding it (not itself).
  const uint64_t checksum = writer.checksum();
  if (std::fwrite(&checksum, 1, sizeof(checksum), f.get()) !=
      sizeof(checksum)) {
    return Status::IOError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<Dataset> ReadBinaryDataset(const std::string& path) {
  SSS_FAILPOINT_STATUS("binary_format:read");
  // Slurp whole file (the format is designed for one read).
  FileHandle f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) return Status::IOError("cannot stat '" + path + "'");
  std::fseek(f.get(), 0, SEEK_SET);
  std::string contents(static_cast<size_t>(size), '\0');
  if (size > 0 &&
      std::fread(contents.data(), 1, contents.size(), f.get()) !=
          contents.size()) {
    return Status::IOError("short read from '" + path + "'");
  }

  if (contents.size() < sizeof(kMagic) + sizeof(uint64_t)) {
    return Status::Corruption("binary dataset too small to be valid");
  }
  // Body excludes the trailing checksum.
  const std::string body =
      contents.substr(0, contents.size() - sizeof(uint64_t));
  ChecksummingReader reader(body);

  char magic[sizeof(kMagic)];
  SSS_RETURN_NOT_OK(reader.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic: not an sss binary dataset");
  }

  SSS_ASSIGN_OR_RETURN(uint32_t alphabet_raw, reader.ReadScalar<uint32_t>());
  if (alphabet_raw > 1) {
    return Status::Corruption("unknown alphabet tag in binary dataset");
  }
  SSS_ASSIGN_OR_RETURN(uint32_t name_len, reader.ReadScalar<uint32_t>());
  if (name_len > reader.Remaining()) {
    return Status::Corruption("binary dataset truncated (name)");
  }
  std::string name(name_len, '\0');
  SSS_RETURN_NOT_OK(reader.Read(name.data(), name_len));

  SSS_ASSIGN_OR_RETURN(uint64_t count, reader.ReadScalar<uint64_t>());
  // Overflow-safe bound check on the offsets table.
  if (count >= reader.Remaining() / sizeof(uint64_t)) {
    return Status::Corruption("binary dataset truncated (offsets)");
  }
  std::vector<uint64_t> offsets(count + 1);
  SSS_RETURN_NOT_OK(
      reader.Read(offsets.data(), offsets.size() * sizeof(uint64_t)));
  for (size_t i = 0; i < count; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption("binary dataset has non-monotone offsets");
    }
  }
  if (offsets[count] != reader.Remaining()) {
    return Status::Corruption("binary dataset truncated (string bytes)");
  }

  Dataset dataset(std::move(name), alphabet_raw == 1 ? AlphabetKind::kDna
                                                     : AlphabetKind::kGeneric);
  dataset.Reserve(count, offsets[count]);
  const char* bytes = reader.Cursor();
  for (size_t i = 0; i < count; ++i) {
    dataset.Add(std::string_view(bytes + offsets[i],
                                 offsets[i + 1] - offsets[i]));
  }
  SSS_RETURN_NOT_OK(reader.Skip(offsets[count]));

  uint64_t stored_checksum;
  std::memcpy(&stored_checksum,
              contents.data() + contents.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (stored_checksum != reader.checksum()) {
    return Status::Corruption("binary dataset checksum mismatch (corrupt file)");
  }
  return dataset;
}

}  // namespace sss
