// Table I: "Overview about the data sets and their properties".
//
// Prints the generated datasets' statistics in the paper's layout and
// benchmarks generation + stats computation throughput.
//
//   paper:  city names  400,000 strings, ca. 255 symbols, max len 64
//           DNA         750,000 reads,   5 symbols,       len ca. 100
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace sss::bench {
namespace {

void BM_GenerateCityDataset(benchmark::State& state) {
  const BenchConfig cfg = GetBenchConfig(gen::WorkloadKind::kCityNames);
  gen::CityGeneratorOptions options;
  options.num_strings = cfg.DatasetSize();
  for (auto _ : state) {
    Dataset d = gen::CityNameGenerator(options, cfg.seed).Generate();
    benchmark::DoNotOptimize(d.size());
  }
  state.counters["strings"] = static_cast<double>(options.num_strings);
}
BENCHMARK(BM_GenerateCityDataset)->Unit(benchmark::kMillisecond);

void BM_GenerateDnaDataset(benchmark::State& state) {
  const BenchConfig cfg = GetBenchConfig(gen::WorkloadKind::kDnaReads);
  gen::DnaGeneratorOptions options;
  options.num_reads = cfg.DatasetSize();
  for (auto _ : state) {
    Dataset d = gen::DnaReadGenerator(options, cfg.seed).Generate();
    benchmark::DoNotOptimize(d.size());
  }
  state.counters["reads"] = static_cast<double>(options.num_reads);
}
BENCHMARK(BM_GenerateDnaDataset)->Unit(benchmark::kMillisecond);

void BM_ComputeStats(benchmark::State& state) {
  const BenchWorkload& w = SharedWorkload(gen::WorkloadKind::kCityNames);
  for (auto _ : state) {
    DatasetStats stats = w.dataset.ComputeStats();
    benchmark::DoNotOptimize(stats.alphabet_size);
  }
}
BENCHMARK(BM_ComputeStats)->Unit(benchmark::kMillisecond);

void PrintTableOne() {
  const BenchWorkload& city = SharedWorkload(gen::WorkloadKind::kCityNames);
  const BenchWorkload& dna = SharedWorkload(gen::WorkloadKind::kDnaReads);
  const DatasetStats cs = city.dataset.ComputeStats();
  const DatasetStats ds = dna.dataset.ComputeStats();
  std::printf("\nTable I. Overview about the data sets and their properties\n");
  std::printf("%-12s %12s %10s %12s %-14s\n", "", "#Data sets", "#Symbols",
              "Length", "Edit distance");
  std::printf("%-12s %12zu %10zu %9zu max %-14s   (paper: 400,000 / ca.255 / max 64)\n",
              "City names", cs.num_strings, cs.alphabet_size, cs.max_length,
              "0,1,2,3");
  std::printf("%-12s %12zu %10zu %9.0f avg %-14s   (paper: 750,000 / 5 / ca.100)\n",
              "DNA", ds.num_strings, ds.alphabet_size, ds.avg_length,
              "0,4,8,16");
}

}  // namespace
}  // namespace sss::bench

int main(int argc, char** argv) {
  sss::bench::BenchJson::Instance().StripFlag(&argc, argv);
  const auto& city =
      sss::bench::SharedWorkload(sss::gen::WorkloadKind::kCityNames);
  sss::bench::PrintBanner("Table I: dataset properties", city);
  sss::bench::SetBenchJsonContext("Table I: dataset properties", city);
  sss::bench::PrintTableOne();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!sss::bench::BenchJson::Instance().Write()) return 1;
  return 0;
}
