// Differential fuzzing: for many random seeds, build a random workload
// (random alphabet, lengths, duplicates, thresholds) and require every
// engine to return byte-identical results, cross-checked against brute
// force. This is the paper's §3.1 correctness gate turned into a
// randomized regression net: any divergence between any two engines on any
// input is a failure, and the seed in the test name reproduces it.
#include <gtest/gtest.h>

#include <memory>

#include "core/searcher.h"
#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::BruteForceSearch;
using sss::testing::RandomString;

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllEnginesAgreeOnRandomWorkload) {
  Xoshiro256 rng(GetParam());

  // Randomize the workload shape itself.
  static constexpr const char* kAlphabets[] = {
      "ab", "ACGNT", "abcdefghijklmnop", "aA -.'",
  };
  const std::string_view alphabet = kAlphabets[rng.Uniform(4)];
  const size_t n = 50 + rng.Uniform(250);
  const size_t min_len = rng.Uniform(4);
  const size_t max_len = min_len + 1 + rng.Uniform(30);
  const bool plant_duplicates = rng.Bernoulli(0.5);

  Dataset d("fuzz", alphabet == std::string_view("ACGNT")
                        ? AlphabetKind::kDna
                        : AlphabetKind::kGeneric);
  for (size_t i = 0; i < n; ++i) {
    if (plant_duplicates && i > 0 && rng.Bernoulli(0.15)) {
      d.Add(d.View(rng.Uniform(i)));  // exact duplicate of an earlier string
    } else {
      d.Add(RandomString(&rng, alphabet, min_len, max_len));
    }
  }

  std::vector<std::unique_ptr<Searcher>> engines;
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
        EngineKind::kPartitionIndex, EngineKind::kBKTree}) {
    engines.push_back(std::move(MakeSearcher(kind, d)).ValueOrDie());
  }
  if (d.alphabet() == AlphabetKind::kDna) {
    auto packed = MakeSearcher(EngineKind::kPackedDnaScan, d);
    ASSERT_TRUE(packed.ok());
    engines.push_back(std::move(packed).ValueUnsafe());
  }

  for (int t = 0; t < 25; ++t) {
    const int k = static_cast<int>(rng.Uniform(8));
    std::string text;
    switch (rng.Uniform(3)) {
      case 0:  // perturbed dataset string (hits likely)
        text = std::string(d.View(rng.Uniform(d.size())));
        for (int e = 0; e < k && !text.empty(); ++e) {
          text[rng.Uniform(text.size())] =
              alphabet[rng.Uniform(alphabet.size())];
        }
        break;
      case 1:  // fresh random string (misses likely)
        text = RandomString(&rng, alphabet, min_len, max_len);
        break;
      default:  // extreme length (edge cases)
        text = RandomString(&rng, alphabet, 0,
                            rng.Bernoulli(0.5) ? 1 : max_len + 6);
        break;
    }
    const Query q{text, k};
    const MatchList expected = BruteForceSearch(d, q);
    for (const auto& engine : engines) {
      ASSERT_EQ(engine->Search(q), expected)
          << "engine " << engine->name() << " seed " << GetParam()
          << " q='" << q.text << "' k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 17));

// Batch-vs-serial equivalence as a fuzzed invariant: every ExecutionStrategy
// must return byte-identical SearchResults on the same random workload, for
// every engine. A strategy is only an execution plan — any divergence
// (ordering, duplication, a dropped shard) is a bug, and the seed in the
// test name reproduces it.
class CrossStrategyDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossStrategyDifferentialTest, AllStrategiesAgreeOnRandomWorkload) {
  Xoshiro256 rng(GetParam());

  static constexpr const char* kAlphabets[] = {
      "ab", "ACGNT", "abcdefghijklmnop", "aA -.'",
  };
  const std::string_view alphabet = kAlphabets[rng.Uniform(4)];
  const size_t n = 100 + rng.Uniform(400);
  const size_t min_len = rng.Uniform(4);
  const size_t max_len = min_len + 1 + rng.Uniform(30);

  Dataset d("fuzz", alphabet == std::string_view("ACGNT")
                        ? AlphabetKind::kDna
                        : AlphabetKind::kGeneric);
  for (size_t i = 0; i < n; ++i) {
    d.Add(RandomString(&rng, alphabet, min_len, max_len));
  }

  std::vector<std::unique_ptr<Searcher>> engines;
  for (EngineKind kind :
       {EngineKind::kSequentialScan, EngineKind::kTrieIndex,
        EngineKind::kCompressedTrieIndex, EngineKind::kQGramIndex,
        EngineKind::kPartitionIndex, EngineKind::kBKTree}) {
    engines.push_back(std::move(MakeSearcher(kind, d)).ValueOrDie());
  }
  if (d.alphabet() == AlphabetKind::kDna) {
    auto packed = MakeSearcher(EngineKind::kPackedDnaScan, d);
    ASSERT_TRUE(packed.ok());
    engines.push_back(std::move(packed).ValueUnsafe());
  }

  // A batch whose shape stresses the planner: mixed thresholds, mixed
  // lengths (including out-of-range ones that plan into skipped groups).
  QuerySet queries;
  const size_t batch = 20 + rng.Uniform(30);
  for (size_t i = 0; i < batch; ++i) {
    const int k = static_cast<int>(rng.Uniform(6));
    std::string text;
    switch (rng.Uniform(3)) {
      case 0:
        text = std::string(d.View(rng.Uniform(d.size())));
        for (int e = 0; e < k && !text.empty(); ++e) {
          text[rng.Uniform(text.size())] =
              alphabet[rng.Uniform(alphabet.size())];
        }
        break;
      case 1:
        text = RandomString(&rng, alphabet, min_len, max_len);
        break;
      default:
        text = RandomString(&rng, alphabet, 0,
                            rng.Bernoulli(0.5) ? 1 : max_len + 8);
        break;
    }
    queries.push_back({std::move(text), k});
  }

  const ExecutionStrategy strategies[] = {
      ExecutionStrategy::kSerial, ExecutionStrategy::kThreadPerQuery,
      ExecutionStrategy::kFixedPool, ExecutionStrategy::kAdaptive,
      ExecutionStrategy::kSharded};

  for (const auto& engine : engines) {
    ExecutionOptions serial;
    serial.strategy = ExecutionStrategy::kSerial;
    const SearchResults expected = engine->SearchBatch(queries, serial);
    ASSERT_EQ(expected.size(), queries.size());

    for (const ExecutionStrategy strategy : strategies) {
      ExecutionOptions exec;
      exec.strategy = strategy;
      exec.num_threads = 1 + rng.Uniform(4);
      // Tiny shards + narrow buckets maximize (shard × group) cells, the
      // hardest merge the sharded driver faces.
      exec.shard_size = 1 + rng.Uniform(64);
      exec.length_bucket_width = 1 + rng.Uniform(8);
      const SearchResults got = engine->SearchBatch(queries, exec);
      ASSERT_EQ(got, expected)
          << "engine " << engine->name() << " strategy "
          << static_cast<int>(strategy) << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossStrategyDifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace sss
