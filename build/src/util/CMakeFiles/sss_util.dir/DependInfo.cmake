
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/arena.cc" "src/util/CMakeFiles/sss_util.dir/arena.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/arena.cc.o.d"
  "/root/repo/src/util/bitpack.cc" "src/util/CMakeFiles/sss_util.dir/bitpack.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/bitpack.cc.o.d"
  "/root/repo/src/util/env.cc" "src/util/CMakeFiles/sss_util.dir/env.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/env.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/util/CMakeFiles/sss_util.dir/flags.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/flags.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/sss_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/util/CMakeFiles/sss_util.dir/logging.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/util/CMakeFiles/sss_util.dir/random.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/sss_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/status.cc.o.d"
  "/root/repo/src/util/string_pool.cc" "src/util/CMakeFiles/sss_util.dir/string_pool.cc.o" "gcc" "src/util/CMakeFiles/sss_util.dir/string_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
