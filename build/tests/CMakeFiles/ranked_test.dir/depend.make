# Empty dependencies file for ranked_test.
# This may be replaced when dependencies are built.
