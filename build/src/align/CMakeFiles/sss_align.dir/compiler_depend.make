# Empty compiler generated dependencies file for sss_align.
# This may be replaced when dependencies are built.
