file(REMOVE_RECURSE
  "CMakeFiles/spell_suggest.dir/spell_suggest.cpp.o"
  "CMakeFiles/spell_suggest.dir/spell_suggest.cpp.o.d"
  "spell_suggest"
  "spell_suggest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spell_suggest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
