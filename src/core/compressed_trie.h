// CompressedTrieSearcher — the paper's §4.2 improvement: a path-compressed
// (radix) trie. Chains of single-child nodes collapse into one node carrying
// a multi-character edge label (Fig. 4: "Berlin"/"Bern"/"Ulm" halves the
// node count), cutting memory and the per-node bookkeeping on descent.
//
// Edge labels are zero-copy views into the dataset's StringPool (stable for
// the life of the dataset), so compression costs no label storage at all.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/filters.h"
#include "core/searcher.h"
#include "core/trie.h"
#include "io/dataset.h"
#include "util/result.h"
#include "util/status.h"

namespace sss {

/// \brief The path-compressed prefix-trie engine (paper §4.2).
class CompressedTrieSearcher final : public Searcher {
 public:
  /// Builds the radix trie over `snapshot` (pinned for the searcher's
  /// lifetime; edge labels alias its dataset's storage). `pruning` selects
  /// the descent rule (see TriePruning): the paper-faithful k + d_m test or
  /// this library's banded rows. `frequency_bounds` additionally stores
  /// per-subtree frequency-vector ranges in every node and prunes branches
  /// whose symbol counts cannot reach the query — PETER's early filtering
  /// (Rheinländer et al., discussed in the paper's §2.3).
  explicit CompressedTrieSearcher(
      SnapshotHandle snapshot,
      TriePruning pruning = TriePruning::kBandedRows,
      bool frequency_bounds = false);

  /// Legacy borrowed-dataset overload: `dataset` must outlive this
  /// searcher.
  explicit CompressedTrieSearcher(
      const Dataset& dataset, TriePruning pruning = TriePruning::kBandedRows,
      bool frequency_bounds = false)
      : CompressedTrieSearcher(CollectionSnapshot::Borrow(dataset), pruning,
                               frequency_bounds) {}

  using Searcher::Search;
  Status Search(const Query& query, const SearchContext& ctx,
                MatchList* out) const override;
  std::string name() const override { return "compressed_trie_index"; }
  size_t memory_bytes() const override { return Stats().memory_bytes; }
  SnapshotHandle SearchedSnapshot() const override { return snapshot_; }

  /// \brief Node counts and sizes (compare against TrieSearcher::Stats for
  /// the Fig. 4 compression ratio).
  TrieStats Stats() const;

  TriePruning pruning() const noexcept { return pruning_; }

  /// \brief Serializes the built index (checksummed; labels are stored as
  /// offsets into the dataset's string pool). Reloading against a dataset
  /// whose bytes differ is detected and rejected.
  Status SaveIndex(const std::string& path) const;

  /// \brief Loads an index previously saved over (byte-identical)
  /// `dataset`, skipping the build. The dataset must outlive the searcher.
  static Result<std::unique_ptr<CompressedTrieSearcher>> LoadIndex(
      const std::string& path, const Dataset& dataset);

 private:
  // Tag ctor used by LoadIndex: members initialized, no build.
  struct SkipBuild {};
  CompressedTrieSearcher(SnapshotHandle snapshot, TriePruning pruning,
                         bool frequency_bounds, SkipBuild)
      : snapshot_(std::move(snapshot)),
        dataset_(snapshot_->dataset()),
        pruning_(pruning),
        frequency_bounds_(frequency_bounds),
        buckets_(dataset_.alphabet()) {}

  Status SearchBanded(const Query& query, const SearchContext& ctx,
                      MatchList* out) const;
  Status SearchPaperRule(const Query& query, const SearchContext& ctx,
                         MatchList* out) const;

  struct Node {
    // The multi-character edge label leading *into* this node (empty for
    // the root); a view into the dataset pool.
    const char* label = nullptr;
    uint32_t label_len = 0;
    // Sorted (first label byte → node index) edges.
    std::vector<std::pair<unsigned char, uint32_t>> children;
    std::vector<uint32_t> terminal_ids;
    uint16_t min_len = UINT16_MAX;
    uint16_t max_len = 0;
    // Per-bucket count ranges over the subtree (PETER-style metadata; only
    // maintained when frequency_bounds is on).
    FrequencyVector freq_min{};
    FrequencyVector freq_max{};

    std::string_view label_view() const {
      return std::string_view(label, label_len);
    }
  };

  void Insert(std::string_view s, uint32_t id);

  /// Index of the edge slot for byte `c` in `node`, or npos.
  static size_t EdgeSlot(const Node& node, unsigned char c);

  /// True iff the query's vector is compatible with `node`'s subtree count
  /// ranges at threshold k (always true when bounds are off).
  bool FrequencyCompatible(const Node& node, const FrequencyVector& qv,
                           int k) const noexcept;

  SnapshotHandle snapshot_;
  const Dataset& dataset_;  // == snapshot_->dataset()
  TriePruning pruning_;
  bool frequency_bounds_;
  SymbolBuckets buckets_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace sss
