// Synthetic DNA read generator.
//
// Stand-in for the competition's human-genome reads file (Table I: 750,000
// reads, alphabet {A,C,G,N,T}, length ≈100). Reads are sampled from one
// synthetic reference genome with a sequencing-error model (substitutions,
// insertions, deletions, ambiguous 'N' calls). Because many reads cover
// overlapping genome positions, the dataset contains the clusters of
// near-identical strings that make similarity search on read sets
// non-trivial — the property the paper's DNA experiments rely on.
#pragma once

#include <cstdint>
#include <string>

#include "io/dataset.h"
#include "util/random.h"

namespace sss::gen {

/// \brief Tuning knobs for DnaReadGenerator.
struct DnaGeneratorOptions {
  /// Number of reads to generate.
  size_t num_reads = 750000;
  /// Length of the synthetic reference genome the reads are drawn from.
  size_t genome_length = 1 << 20;  // 1 Mbp
  /// Mean read length (Table I: ≈100).
  size_t read_length = 100;
  /// Max deviation of an individual read's length (uniform in ±jitter).
  size_t read_length_jitter = 4;
  /// Per-base substitution error probability.
  double substitution_rate = 0.01;
  /// Per-base insertion probability.
  double insertion_rate = 0.002;
  /// Per-base deletion probability.
  double deletion_rate = 0.002;
  /// Per-base probability of an ambiguous 'N' call.
  double n_rate = 0.003;
  /// Fraction of reads taken from the reverse strand (complemented).
  double reverse_strand_prob = 0.5;
};

/// \brief Generates sequencing-read-like strings over {A,C,G,N,T}.
///
/// Deterministic for a given (options, seed). Not thread-safe.
class DnaReadGenerator {
 public:
  explicit DnaReadGenerator(DnaGeneratorOptions options = {},
                            uint64_t seed = Xoshiro256::kDefaultSeed);

  /// \brief Generates one read.
  std::string Next();

  /// \brief Generates options.num_reads reads into a Dataset tagged
  /// AlphabetKind::kDna.
  Dataset Generate();

  /// \brief The reference genome reads are sampled from (for tests).
  const std::string& genome() const noexcept { return genome_; }

  const DnaGeneratorOptions& options() const noexcept { return options_; }

 private:
  void BuildGenome();

  DnaGeneratorOptions options_;
  Xoshiro256 rng_;
  std::string genome_;
};

}  // namespace sss::gen
