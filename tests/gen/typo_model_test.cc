#include "gen/typo_model.h"

#include <gtest/gtest.h>

#include "core/edit_distance.h"
#include "test_util.h"
#include "util/random.h"

namespace sss::gen {
namespace {

TEST(TypoModelTest, NeighborsAreSymmetric) {
  for (char c = 'a'; c <= 'z'; ++c) {
    const std::string_view neighbors = TypoModel::NeighborsOf(c);
    for (char n : neighbors) {
      EXPECT_NE(TypoModel::NeighborsOf(n).find(c), std::string_view::npos)
          << c << " lists " << n << " but not vice versa";
    }
  }
}

TEST(TypoModelTest, NeighborsHandleCaseAndNonLetters) {
  EXPECT_EQ(TypoModel::NeighborsOf('G'), TypoModel::NeighborsOf('g'));
  EXPECT_TRUE(TypoModel::NeighborsOf(' ').empty());
  EXPECT_TRUE(TypoModel::NeighborsOf('7').empty());
  EXPECT_TRUE(TypoModel::NeighborsOf('\xE9').empty());
}

TEST(TypoModelTest, ZeroTyposIsIdentity) {
  TypoModel model;
  Xoshiro256 rng(1);
  EXPECT_EQ(model.Corrupt("Magdeburg", 0, &rng), "Magdeburg");
}

TEST(TypoModelTest, SingleTypoIsOneOsaOperation) {
  TypoModel model;
  Xoshiro256 rng(2);
  for (int t = 0; t < 300; ++t) {
    const std::string base =
        sss::testing::RandomString(&rng, "abcdefgh", 3, 15);
    const std::string corrupted = model.Corrupt(base, 1, &rng);
    EXPECT_LE(OsaDistance(base, corrupted), 1)
        << "base='" << base << "' out='" << corrupted << "'";
  }
}

TEST(TypoModelTest, StackedTyposStayWithinLevenshteinBudget) {
  // Overlapping mistakes break the OSA bound (that metric forbids editing
  // a region twice), but each mistake is ≤ 2 plain edit operations.
  TypoModel model;
  Xoshiro256 rng(2);
  for (int typos : {1, 2, 3}) {
    for (int t = 0; t < 200; ++t) {
      const std::string base =
          sss::testing::RandomString(&rng, "abcdefgh", 3, 15);
      const std::string corrupted = model.Corrupt(base, typos, &rng);
      EXPECT_LE(sss::testing::ReferenceEditDistance(base, corrupted),
                2 * typos)
          << "base='" << base << "' out='" << corrupted << "'";
    }
  }
}

TEST(TypoModelTest, SubstitutionsPreferNeighbors) {
  TypoModelOptions options;
  options.neighbor_substitution = 1.0;
  options.omission = options.insertion = options.transposition = 0.0;
  TypoModel model(options);
  Xoshiro256 rng(3);
  size_t neighbor_hits = 0, total = 0;
  for (int t = 0; t < 500; ++t) {
    const std::string base = "gggggggg";
    const std::string out = model.Corrupt(base, 1, &rng);
    ASSERT_EQ(out.size(), base.size());
    for (size_t i = 0; i < out.size(); ++i) {
      if (out[i] != base[i]) {
        ++total;
        if (TypoModel::NeighborsOf('g').find(out[i]) !=
            std::string_view::npos) {
          ++neighbor_hits;
        }
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_EQ(neighbor_hits, total) << "all substitutions must be neighbors";
}

TEST(TypoModelTest, PreservesCaseOnSubstitution) {
  TypoModelOptions options;
  options.neighbor_substitution = 1.0;
  options.omission = options.insertion = options.transposition = 0.0;
  TypoModel model(options);
  Xoshiro256 rng(4);
  for (int t = 0; t < 100; ++t) {
    const std::string out = model.Corrupt("GGGG", 1, &rng);
    for (char c : out) {
      EXPECT_TRUE(std::isupper(static_cast<unsigned char>(c))) << out;
    }
  }
}

TEST(TypoModelTest, OmissionsShorten) {
  TypoModelOptions options;
  options.omission = 1.0;
  options.neighbor_substitution = options.insertion =
      options.transposition = 0.0;
  TypoModel model(options);
  Xoshiro256 rng(5);
  EXPECT_EQ(model.Corrupt("abcdef", 2, &rng).size(), 4u);
}

TEST(TypoModelTest, EmptyInputSurvives) {
  TypoModel model;
  Xoshiro256 rng(6);
  const std::string out = model.Corrupt("", 2, &rng);
  EXPECT_LE(out.size(), 2u);  // only insertions can apply
}

TEST(TypoModelTest, DeterministicForSeed) {
  TypoModel model;
  Xoshiro256 a(7), b(7);
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(model.Corrupt("Heidelberg", 2, &a),
              model.Corrupt("Heidelberg", 2, &b));
  }
}

}  // namespace
}  // namespace sss::gen
