// Candidate filters: cheap necessary conditions checked before the (costly)
// edit-distance verification.
//
//   * length filter — eq. (5) of the paper: |l_x − l_y| ≤ k;
//   * frequency-vector filter — the paper's "Frequency vectors" future-work
//     item (§6): per-string occurrence counts of five key symbols (DNA:
//     A,C,G,N,T; names: the vowels A,E,I,O,U) give the lower bound
//     ed(x,y) ≥ ⌈L1(freq(x), freq(y)) / 2⌉, since one edit operation moves
//     the bucketed count vector by at most 2 in L1;
//   * q-gram count filter — the classic bound from the related literature:
//     strings within edit distance k share at least (l_q − q + 1) − k·q of
//     the query's positional-free q-grams.
//
// All filters are sound (they never drop a true match — property-tested) and
// the filter ablation bench measures their selectivity and cost.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "io/dataset.h"

namespace sss {

/// \brief True iff the length filter passes: |l_x − l_y| ≤ k (eq. 5).
inline bool LengthFilterPasses(size_t lx, size_t ly, int k) noexcept {
  const size_t d = lx > ly ? lx - ly : ly - lx;
  return d <= static_cast<size_t>(k);
}

/// \brief Bucketed symbol-occurrence counts: five tracked symbols plus an
/// "everything else" bucket.
using FrequencyVector = std::array<uint16_t, 6>;

/// \brief The symbol→bucket mapping behind frequency vectors. The tracked
/// symbols follow the paper (§6): A,C,G,N,T for DNA; the vowels A,E,I,O,U
/// (case-insensitive) otherwise.
class SymbolBuckets {
 public:
  explicit SymbolBuckets(AlphabetKind kind);

  /// \brief The bucket index (0..5) a symbol maps to.
  int BucketOf(unsigned char c) const noexcept { return bucket_of_[c]; }

  /// \brief Occurrence counts of `s` per bucket.
  FrequencyVector Compute(std::string_view s) const {
    FrequencyVector v{};
    for (char c : s) {
      ++v[static_cast<size_t>(bucket_of_[static_cast<unsigned char>(c)])];
    }
    return v;
  }

 private:
  std::array<int8_t, 256> bucket_of_{};
};

/// \brief Precomputed frequency vectors for every string of a dataset.
class FrequencyVectorFilter {
 public:
  /// Builds vectors for all of `dataset`.
  explicit FrequencyVectorFilter(const Dataset& dataset);

  /// \brief Computes the vector for an ad-hoc string (the query side).
  FrequencyVector Compute(std::string_view s) const {
    return buckets_.Compute(s);
  }

  /// \brief True iff `id` may be within distance k of a query with vector
  /// `query_vec` — i.e. the L1 lower bound does not exceed k.
  bool MayMatch(const FrequencyVector& query_vec, size_t id,
                int k) const noexcept {
    const uint16_t* v = vectors_.data() + id * 6;
    unsigned l1 = 0;
    for (int b = 0; b < 6; ++b) {
      const int d = static_cast<int>(query_vec[b]) - static_cast<int>(v[b]);
      l1 += static_cast<unsigned>(d < 0 ? -d : d);
    }
    // ed ≥ ceil(l1 / 2)
    return (l1 + 1) / 2 <= static_cast<unsigned>(k);
  }

  /// \brief The bucket index (0..5) a symbol maps to.
  int BucketOf(unsigned char c) const noexcept { return buckets_.BucketOf(c); }

 private:
  SymbolBuckets buckets_;
  std::vector<uint16_t> vectors_;  // 6 entries per string
};

/// \brief Count-bound filter over hashed q-grams.
class QGramFilter {
 public:
  /// Builds sorted q-gram profiles for all of `dataset`.
  /// \param q gram size; strings shorter than q have an empty profile and
  ///        always pass (the bound is vacuous for them).
  QGramFilter(const Dataset& dataset, int q);

  /// \brief Hashed, sorted q-gram profile of an ad-hoc string.
  std::vector<uint32_t> Profile(std::string_view s) const;

  /// \brief True iff `id` may be within distance k of a query whose profile
  /// is `query_profile` (and whose length is `query_len`).
  bool MayMatch(const std::vector<uint32_t>& query_profile, size_t query_len,
                size_t id, int k) const noexcept;

  int q() const noexcept { return q_; }

 private:
  int q_;
  std::vector<uint32_t> grams_;    // concatenated sorted profiles
  std::vector<uint64_t> offsets_;  // size()+1 entries into grams_
};

}  // namespace sss
