# Empty dependencies file for bench_table8_idx_dna_threads.
# This may be replaced when dependencies are built.
