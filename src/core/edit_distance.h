// Edit-distance kernels.
//
// The paper's optimization story (§2.2, §3.2) runs through these functions:
//   * EditDistanceFullMatrix — the textbook (l_x+1)×(l_y+1) matrix of §2.2,
//     used by the step-1 reference implementation;
//   * EditDistanceTwoRow — same recurrence, O(min(l_x,l_y)) memory;
//   * BoundedEditDistance — the step-2 kernel: length filter (eq. 5),
//     banded computation, and the main-diagonal early abort of
//     conditions (6)/(7);
//   * MyersEditDistance / BoundedMyers — Myers' bit-parallel algorithm
//     (beyond the paper; used by the library's best configuration and the
//     kernel ablation bench).
//
// All kernels agree exactly; tests cross-check them pairwise and against a
// brute-force recursive definition.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/search_stats.h"

namespace sss {

/// \brief Unit-cost Levenshtein distance via the full DP matrix (§2.2).
/// O(l_x · l_y) time and memory. The reference every other kernel is
/// validated against.
int EditDistanceFullMatrix(std::string_view x, std::string_view y);

/// \brief Same distance with two rolling rows; O(min) memory.
int EditDistanceTwoRow(std::string_view x, std::string_view y);

/// \brief Scratch buffers for bounded computations, reusable across calls so
/// the scan's hot loop performs no allocation (paper §3.3/§3.4).
struct EditDistanceWorkspace {
  std::vector<int> row0;
  std::vector<int> row1;
  std::vector<uint64_t> peq;        // Myers pattern-match bitmasks (256)
  std::vector<uint64_t> peq_block;  // blocked Myers masks (256 × blocks)
  std::vector<uint64_t> mv_block;   // blocked Myers vertical-negative masks
  std::vector<uint64_t> pv_block;   // blocked Myers vertical-positive masks
  std::vector<int> score_block;     // blocked Myers per-block scores

  /// Monotone call/abort counters the bounded kernels maintain. Engines
  /// snapshot these around their verify loop and report the delta (see
  /// SearchStats::AddKernelDelta); the workspace is thread-local in every
  /// engine, so the delta is exact regardless of execution strategy.
  KernelCounters kernel;
};

/// \brief Bounded distance: returns ed(x, y) if it is ≤ k, otherwise any
/// value > k (callers must only compare against k).
///
/// Applies, in order: the length filter |l_x − l_y| > k (eq. 5), a banded
/// DP of width 2k+1 (cells off the band cannot be ≤ k), and the paper's
/// early abort — once the band minimum (which dominates the main-diagonal
/// test of conditions (6)/(7)) exceeds k, no later cell can recover.
int BoundedEditDistance(std::string_view x, std::string_view y, int k,
                        EditDistanceWorkspace* ws);

/// \brief Convenience overload with an internal workspace (slower; tests).
int BoundedEditDistance(std::string_view x, std::string_view y, int k);

/// \brief True iff ed(x, y) ≤ k, via the fastest applicable kernel.
bool WithinDistance(std::string_view x, std::string_view y, int k,
                    EditDistanceWorkspace* ws);

/// \brief Myers' bit-parallel distance for patterns up to 64 symbols.
/// Precondition: x.size() <= 64.
int MyersEditDistance64(std::string_view x, std::string_view y,
                        EditDistanceWorkspace* ws);

/// \brief Myers' blocked bit-parallel distance for arbitrary lengths.
int MyersEditDistanceBlocked(std::string_view x, std::string_view y,
                             EditDistanceWorkspace* ws);

/// \brief Bounded Myers: like BoundedEditDistance but bit-parallel. Returns
/// a value > k when the distance exceeds k (may abort early).
int BoundedMyers(std::string_view x, std::string_view y, int k,
                 EditDistanceWorkspace* ws);

/// \brief Optimal string alignment (restricted Damerau–Levenshtein)
/// distance: insert/delete/replace plus adjacent transposition, each cost
/// 1, with no substring edited twice. The measure spell checkers usually
/// want ("hte" is one typo away from "the", not two). Not a metric in the
/// strict sense (triangle inequality can fail); offered as a kernel and in
/// RankedSearch-style applications, not in the exact threshold engines.
int OsaDistance(std::string_view x, std::string_view y);

/// \brief Bounded OSA distance: exact when ≤ k, any value > k otherwise.
/// Applies the length filter and a band of width 2k+1.
int BoundedOsa(std::string_view x, std::string_view y, int k,
               EditDistanceWorkspace* ws);

}  // namespace sss
