// End-to-end fault injection through the SSS_FAILPOINTS framework: injected
// reader I/O errors surface as Status, injected stalls and deadlines
// truncate batches gracefully on every execution strategy, and nothing
// hangs or leaks work. This test only builds with -DSSS_FAILPOINTS=ON (see
// tests/CMakeLists.txt).
#include "util/failpoint.h"

#ifndef SSS_FAILPOINTS
#error "fault_injection_test requires -DSSS_FAILPOINTS=ON"
#endif

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "core/engine_host.h"
#include "core/searcher.h"
#include "io/binary_format.h"
#include "io/reader.h"
#include "parallel/thread_pool.h"
#include "server/client.h"
#include "server/server.h"
#include "test_util.h"
#include "util/arena.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace sss {
namespace {

using sss::testing::RandomDataset;
using sss::testing::RandomString;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::Instance().DisableAll();
    dir_ = std::filesystem::temp_directory_path() /
           ("sss_fault_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailPoints::Instance().DisableAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string WriteLines(const std::string& name,
                         const std::vector<std::string>& lines) {
    const std::string path = Path(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (const std::string& line : lines) out << line << '\n';
    return path;
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Framework mechanics
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, HitCountsRecordEvaluations) {
  FailPoints::Instance().ClearCounts();
  EXPECT_EQ(FailPoints::Instance().HitCount("reader:open"), 0u);
  const std::string path = WriteLines("d.txt", {"abc", "def"});
  ASSERT_TRUE(ReadDatasetFile(path, "d", AlphabetKind::kGeneric).ok());
  EXPECT_GE(FailPoints::Instance().HitCount("reader:open"), 1u);
  EXPECT_GE(FailPoints::Instance().HitCount("reader:read"), 1u);
}

TEST_F(FaultInjectionTest, TimesBudgetExpires) {
  const std::string path = WriteLines("d.txt", {"abc"});
  FailPoints::Instance().Fail("reader:open", Status::IOError("injected"),
                              /*times=*/1);
  auto first = ReadDatasetFile(path, "d", AlphabetKind::kGeneric);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsIOError());
  // The budget is spent: the next read goes through untouched.
  EXPECT_TRUE(ReadDatasetFile(path, "d", AlphabetKind::kGeneric).ok());
}

TEST_F(FaultInjectionTest, DisableRestoresNormalBehavior) {
  const std::string path = WriteLines("d.txt", {"abc"});
  FailPoints::Instance().Fail("reader:open", Status::IOError("injected"));
  ASSERT_FALSE(ReadDatasetFile(path, "d", AlphabetKind::kGeneric).ok());
  FailPoints::Instance().Disable("reader:open");
  EXPECT_TRUE(ReadDatasetFile(path, "d", AlphabetKind::kGeneric).ok());
}

TEST_F(FaultInjectionTest, CallbacksFireOnEvaluation) {
  std::atomic<int> fired{0};
  FailPoints::Instance().Callback("reader:open", [&fired] { ++fired; });
  const std::string path = WriteLines("d.txt", {"abc"});
  ASSERT_TRUE(ReadDatasetFile(path, "d", AlphabetKind::kGeneric).ok());
  EXPECT_GE(fired.load(), 1);
}

// ---------------------------------------------------------------------------
// Injected I/O failures surface as Status, never crashes
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, ReaderReadErrorSurfacesAsStatus) {
  const std::string path = WriteLines("d.txt", {"abc", "def"});
  FailPoints::Instance().Fail("reader:read",
                              Status::IOError("injected mid-read failure"));
  auto loaded = ReadDatasetFile(path, "d", AlphabetKind::kGeneric);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
  EXPECT_NE(loaded.status().message().find("injected"), std::string::npos);
}

TEST_F(FaultInjectionTest, QueryReaderErrorSurfacesAsStatus) {
  const std::string path = WriteLines("q.txt", {"1\tabc", "2\tdef"});
  FailPoints::Instance().Fail("reader:open", Status::IOError("injected"));
  auto queries = ReadQueryFile(path, 0);
  ASSERT_FALSE(queries.ok());
  EXPECT_TRUE(queries.status().IsIOError());
}

TEST_F(FaultInjectionTest, BinaryReadErrorSurfacesAsStatus) {
  Dataset d("bin", AlphabetKind::kGeneric);
  d.Add("hello");
  ASSERT_TRUE(WriteBinaryDataset(Path("d.bin"), d).ok());
  FailPoints::Instance().Fail("binary_format:read",
                              Status::IOError("injected"));
  auto loaded = ReadBinaryDataset(Path("d.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
  FailPoints::Instance().Disable("binary_format:read");
  EXPECT_TRUE(ReadBinaryDataset(Path("d.bin")).ok());
}

// ---------------------------------------------------------------------------
// Deadline mid-batch: graceful truncation on every strategy
// ---------------------------------------------------------------------------

constexpr ExecutionStrategy kAllStrategies[] = {
    ExecutionStrategy::kSerial, ExecutionStrategy::kThreadPerQuery,
    ExecutionStrategy::kFixedPool, ExecutionStrategy::kAdaptive,
    ExecutionStrategy::kSharded};

TEST_F(FaultInjectionTest, DeadlineMidBatchTruncatesEveryStrategy) {
  Xoshiro256 rng(0xFA01);
  Dataset d = RandomDataset(&rng, "abcd", 300, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 1, 12), 1});
  }
  // Every query stalls 10 ms at the run_query hook while the whole batch
  // has a 5 ms budget: whichever queries start must observe the expired
  // deadline right after their stall, the rest are skipped outright.
  FailPoints::Instance().Sleep("searcher:run_query",
                               std::chrono::milliseconds(10));
  SearchContext ctx;
  ctx.deadline = Deadline::AfterMillis(5);
  ctx.check_interval = 1;
  for (ExecutionStrategy strategy : kAllStrategies) {
    ctx.deadline = Deadline::AfterMillis(5);
    const Stopwatch timer;
    const BatchResult batch =
        searcher->SearchBatch(queries, {strategy, 4}, ctx);
    EXPECT_TRUE(batch.truncated) << static_cast<int>(strategy);
    EXPECT_LT(batch.completed, queries.size()) << static_cast<int>(strategy);
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!batch.statuses[i].ok()) {
        EXPECT_TRUE(batch.statuses[i].IsCancelled());
        EXPECT_TRUE(batch.matches[i].empty());
      }
    }
    // Nothing hangs: even thread-per-query (32 concurrent 10 ms stalls)
    // finishes orders of magnitude inside this bound.
    EXPECT_LT(timer.ElapsedSeconds(), 30.0) << static_cast<int>(strategy);
  }
}

TEST_F(FaultInjectionTest, SerialDeadlinePreservesCompletedPrefix) {
  Xoshiro256 rng(0xFA02);
  Dataset d = RandomDataset(&rng, "abcd", 200, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 1, 12), 1});
  }
  const SearchResults reference =
      searcher->SearchBatch(queries, {ExecutionStrategy::kSerial, 0});

  FailPoints::Instance().Sleep("searcher:run_query",
                               std::chrono::milliseconds(2));
  SearchContext ctx;
  ctx.deadline = Deadline::AfterMillis(25);
  const BatchResult batch =
      searcher->SearchBatch(queries, {ExecutionStrategy::kSerial, 0}, ctx);
  // 64 queries x 2 ms stall >> 25 ms budget: the batch cannot finish, and
  // whatever did finish must match the undisturbed serial reference.
  EXPECT_TRUE(batch.truncated);
  EXPECT_LT(batch.completed, queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (batch.statuses[i].ok()) {
      EXPECT_EQ(batch.matches[i], reference[i]) << "query " << i;
    } else {
      EXPECT_TRUE(batch.matches[i].empty()) << "query " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Worker stalls: recovered, never stranded
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, StalledPoolWorkersRecoverWithoutHang) {
  Xoshiro256 rng(0xFA03);
  Dataset d = RandomDataset(&rng, "abcd", 100, 1, 10);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 32; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 1, 10), 1});
  }
  // Stall two of the pool's worker bootstraps for 100 ms; the other workers
  // keep draining, and Wait() must still return once the stalled ones wake.
  FailPoints::Instance().Sleep("thread_pool:task",
                               std::chrono::milliseconds(100), /*times=*/2);
  const Stopwatch timer;
  const BatchResult batch = searcher->SearchBatch(
      queries, {ExecutionStrategy::kFixedPool, 4}, SearchContext{});
  EXPECT_LT(timer.ElapsedSeconds(), 30.0);
  EXPECT_FALSE(batch.truncated);
  EXPECT_EQ(batch.completed, queries.size());
}

TEST_F(FaultInjectionTest, CancelPendingDropsQueuedWork) {
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  // The lone worker stalls 50 ms on its first task, leaving the rest queued
  // where CancelPending can reach them.
  FailPoints::Instance().Sleep("thread_pool:task",
                               std::chrono::milliseconds(50), /*times=*/1);
  pool.Submit([] {});
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&executed] { ++executed; });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const size_t dropped = pool.CancelPending();
  pool.Wait();  // must return: queue drained, in-flight accounting intact
  EXPECT_GE(dropped, 10u);
  EXPECT_EQ(executed.load(), 0);
}

// ---------------------------------------------------------------------------
// Allocation path instrumentation
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, ArenaAllocationsHitTheFailpoint) {
  FailPoints::Instance().ClearCounts();
  Arena arena;
  (void)arena.NewArray<uint32_t>(1 << 16);
  EXPECT_GE(FailPoints::Instance().HitCount("arena:add_block"), 1u);
}

TEST_F(FaultInjectionTest, ShardedBatchExercisesQueryFailpoint) {
  FailPoints::Instance().ClearCounts();
  Xoshiro256 rng(0xFA04);
  Dataset d = RandomDataset(&rng, "abcd", 2000, 1, 12);
  auto searcher =
      std::move(MakeSearcher(EngineKind::kSequentialScan, d)).ValueOrDie();
  QuerySet queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back({RandomString(&rng, "abcd", 1, 12), 1});
  }
  const SearchResults serial =
      searcher->SearchBatch(queries, {ExecutionStrategy::kSerial, 0});
  const BatchResult sharded = searcher->SearchBatch(
      queries, {ExecutionStrategy::kSharded, 4}, SearchContext{});
  EXPECT_EQ(sharded.matches, serial);
  EXPECT_GE(FailPoints::Instance().HitCount("searcher:run_query"),
            queries.size());
}

// ---------------------------------------------------------------------------
// Serving layer: injected socket faults sever one connection, not the server
// ---------------------------------------------------------------------------

class ServerFaultTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    FaultInjectionTest::SetUp();
    Xoshiro256 rng(0xFA05);
    dataset_ = RandomDataset(&rng, "abcd", 200, 1, 12);
    searcher_ = std::move(MakeSearcher(EngineKind::kSequentialScan, dataset_))
                    .ValueOrDie();
    server::ServerOptions options;
    server_ = std::make_unique<server::Server>(options);
    ASSERT_TRUE(server_
                    ->RegisterEngine(
                        static_cast<uint8_t>(EngineKind::kSequentialScan),
                        searcher_.get())
                    .ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    FaultInjectionTest::TearDown();
  }

  // One clean request/response on a fresh connection.
  void ExpectServes() {
    auto client = server::Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    server::Response response;
    ASSERT_TRUE(client->Search("abc", 1, 0, &response).ok());
    EXPECT_EQ(response.code, StatusCode::kOk);
  }

  Dataset dataset_{"empty", AlphabetKind::kGeneric};
  std::unique_ptr<Searcher> searcher_;
  std::unique_ptr<server::Server> server_;
};

TEST_F(ServerFaultTest, InjectedReadFaultSeversOneConnection) {
  // Armed before connecting: the handler evaluates server:read when it
  // starts waiting for the first request, so arming later would race.
  FailPoints::Instance().Fail("server:read", Status::IOError("injected"),
                              /*times=*/1);
  auto client = server::Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  server::Response response;
  // The server drops the connection without a response frame; the client
  // sees a transport error, never a crash or a hang.
  EXPECT_FALSE(client->Search("abc", 1, 0, &response).ok());
  EXPECT_GE(FailPoints::Instance().HitCount("server:read"), 1u);
  ExpectServes();  // the budget is spent and the server is fine
}

TEST_F(ServerFaultTest, InjectedWriteFaultDropsResponseNotServer) {
  auto client = server::Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  FailPoints::Instance().Fail("server:write", Status::IOError("injected"),
                              /*times=*/1);
  server::Response response;
  EXPECT_FALSE(client->Search("abc", 1, 0, &response).ok());
  // The search itself completed before the write was severed.
  EXPECT_EQ(server_->counters().requests_ok.load(), 1u);
  ExpectServes();
}

TEST_F(ServerFaultTest, RepeatedFaultsNeverWedgeTheAcceptLoop) {
  FailPoints::Instance().Fail("server:read", Status::IOError("injected"),
                              /*times=*/5);
  for (int i = 0; i < 5; ++i) {
    auto client = server::Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    server::Response response;
    EXPECT_FALSE(client->Search("abc", 1, 0, &response).ok());
  }
  ExpectServes();
  EXPECT_GE(server_->counters().connections_accepted.load(), 6u);
}

TEST_F(ServerFaultTest, AcceptHookIsOnThePath) {
  FailPoints::Instance().ClearCounts();
  ExpectServes();
  EXPECT_GE(FailPoints::Instance().HitCount("server:accept"), 1u);
}

TEST_F(ServerFaultTest, SlowReadDelaysButDeliversResponse) {
  FailPoints::Instance().Sleep("server:read", std::chrono::milliseconds(30),
                               /*times=*/1);
  const Stopwatch timer;
  ExpectServes();
  EXPECT_LT(timer.ElapsedSeconds(), 30.0);  // delayed, not deadlocked
}

// ---------------------------------------------------------------------------
// Reload path: injected faults fail the reload, never the serving generation
// ---------------------------------------------------------------------------

class HostFaultTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    FaultInjectionTest::SetUp();
    path_ = WriteLines("host.txt", {"aaaa", "aaaa", "aaaa"});
    host_ = std::make_unique<EngineHost>(
        std::vector<EngineSpec>{EngineSpec::For(EngineKind::kSequentialScan)});
    ASSERT_TRUE(host_->LoadFile(path_).ok());
    baseline_ = host_->generation();
    ASSERT_NE(baseline_, 0u);
  }

  // The serving contract after any failed reload: the old generation still
  // answers, and a clean retry succeeds under a newer id.
  void ExpectOldGenerationServesThenRecovers() {
    EXPECT_EQ(host_->generation(), baseline_);
    const EngineSetHandle set = host_->Acquire();
    ASSERT_NE(set, nullptr);
    EXPECT_EQ(set->generation, baseline_);
    Query query;
    query.text = "aaaa";
    query.max_distance = 0;
    EXPECT_EQ(set->default_engine->Search(query).size(), 3u);
    FailPoints::Instance().DisableAll();
    ASSERT_TRUE(host_->Reload().ok());
    EXPECT_GT(host_->generation(), baseline_);
  }

  std::string path_;
  std::unique_ptr<EngineHost> host_;
  uint64_t baseline_ = 0;
};

TEST_F(HostFaultTest, InjectedReadFaultFailsReloadNotServing) {
  FailPoints::Instance().Fail("engine_host:read", Status::IOError("injected"),
                              /*times=*/1);
  const Status st = host_->Reload();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(host_->counters().reloads_failed.load(), 1u);
  ExpectOldGenerationServesThenRecovers();
}

TEST_F(HostFaultTest, InjectedBuildFaultFailsReloadNotServing) {
  FailPoints::Instance().Fail("engine_host:build",
                              Status::UnknownError("injected build failure"),
                              /*times=*/1);
  ASSERT_FALSE(host_->Reload().ok());
  EXPECT_EQ(host_->counters().reloads_failed.load(), 1u);
  ExpectOldGenerationServesThenRecovers();
}

TEST_F(HostFaultTest, SlowPublishStallsTheSwapNotTheReaders) {
  // The swap itself stalls 50 ms; readers keep acquiring the old set the
  // whole time, so a slow publish delays the new world without ever leaving
  // a gap where Acquire() returns nothing.
  FailPoints::Instance().Sleep("engine_host:publish",
                               std::chrono::milliseconds(50), /*times=*/1);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> null_acquires{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (host_->Acquire() == nullptr) {
        null_acquires.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  const Stopwatch timer;
  ASSERT_TRUE(host_->Reload().ok());
  EXPECT_LT(timer.ElapsedSeconds(), 30.0);
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(null_acquires.load(), 0u);
  EXPECT_GT(host_->generation(), baseline_);
}

}  // namespace
}  // namespace sss
