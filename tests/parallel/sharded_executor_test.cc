#include "parallel/sharded_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace sss {
namespace {

TEST(ShardedExecutorTest, RunsEveryTaskExactlyOnce) {
  ShardedExecutorOptions options;
  options.num_threads = 4;
  ShardedExecutor executor(options);
  std::vector<std::atomic<int>> hits(1000);
  executor.Run(hits.size(), [&](size_t task, ShardScratch*) {
    hits[task].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ShardedExecutorTest, ZeroTasksReturnsImmediately) {
  ShardedExecutor executor;
  executor.Run(0, [](size_t, ShardScratch*) { FAIL() << "no task to run"; });
}

TEST(ShardedExecutorTest, SingleWorkerRunsInline) {
  ShardedExecutorOptions options;
  options.num_threads = 1;
  ShardedExecutor executor(options);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(64);
  executor.Run(ran_on.size(), [&](size_t task, ShardScratch* scratch) {
    ran_on[task] = std::this_thread::get_id();
    EXPECT_EQ(scratch->worker_index, 0u);
  });
  for (const auto& id : ran_on) EXPECT_EQ(id, caller);
}

TEST(ShardedExecutorTest, NeverMoreWorkersThanTasks) {
  ShardedExecutorOptions options;
  options.num_threads = 8;
  ShardedExecutor executor(options);
  std::mutex mu;
  std::set<size_t> workers_seen;
  executor.Run(2, [&](size_t, ShardScratch* scratch) {
    std::lock_guard<std::mutex> lock(mu);
    workers_seen.insert(scratch->worker_index);
  });
  EXPECT_LE(workers_seen.size(), 2u);
}

TEST(ShardedExecutorTest, ScratchPersistsAcrossRuns) {
  ShardedExecutorOptions options;
  options.num_threads = 1;
  ShardedExecutor executor(options);

  // Allocate from the worker arena in the first run…
  const uint32_t* stored = nullptr;
  executor.Run(1, [&](size_t, ShardScratch* scratch) {
    auto* data = scratch->arena.NewArray<uint32_t>(4);
    std::iota(data, data + 4, 7u);
    stored = data;
  });
  ASSERT_NE(stored, nullptr);

  // …and it must still be readable after (and during) a second run: the
  // sharded driver merges arena-backed spans after Run() returns.
  executor.Run(1, [&](size_t, ShardScratch* scratch) {
    EXPECT_GT(scratch->arena.bytes_allocated(), 0u);
  });
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(stored[i], 7u + i);

  EXPECT_EQ(executor.scratch(0).tasks_run, 2u);

  // ResetScratch rewinds the arena and clears stats.
  executor.ResetScratch();
  EXPECT_EQ(executor.scratch(0).arena.bytes_allocated(), 0u);
  EXPECT_EQ(executor.scratch(0).tasks_run, 0u);
}

TEST(ShardedExecutorTest, MatchBufferIsReusedNotReallocated) {
  ShardedExecutorOptions options;
  options.num_threads = 1;
  ShardedExecutor executor(options);
  executor.Run(1, [](size_t, ShardScratch* scratch) {
    scratch->match_buffer.assign(512, 1u);
  });
  const uint32_t* data_before = executor.scratch(0).match_buffer.data();
  executor.Run(1, [&](size_t, ShardScratch* scratch) {
    // clear() + refill below capacity must not reallocate — this is the
    // per-query hot path.
    scratch->match_buffer.clear();
    scratch->match_buffer.assign(256, 2u);
    EXPECT_EQ(scratch->match_buffer.data(), data_before);
  });
}

TEST(ShardedExecutorTest, OversubscribedManySmallRuns) {
  // More workers than cores, thousands of tiny task batches: exercises
  // spawn/join and cursor races the way a batch-serving loop would.
  ShardedExecutorOptions options;
  options.num_threads = 8;
  ShardedExecutor executor(options);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 500; ++round) {
    executor.Run(3, [&](size_t, ShardScratch*) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 1500u);
}

TEST(ShardedExecutorTest, SkewedTasksAllComplete) {
  ShardedExecutorOptions options;
  options.num_threads = 4;
  ShardedExecutor executor(options);
  std::atomic<size_t> done{0};
  executor.Run(64, [&](size_t task, ShardScratch*) {
    if (task == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64u);
}

TEST(ShardedExecutorTest, WorkerIndicesAreStableAndDistinct) {
  ShardedExecutorOptions options;
  options.num_threads = 3;
  ShardedExecutor executor(options);
  ASSERT_EQ(executor.num_threads(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(executor.scratch(i).worker_index, i);
  }
}

}  // namespace
}  // namespace sss
