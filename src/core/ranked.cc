#include "core/ranked.h"

#include <algorithm>

#include "core/edit_distance.h"
#include "core/filters.h"
#include "util/macros.h"

namespace sss {

std::vector<RankedMatch> RankedSearch(const Dataset& dataset,
                                      std::string_view text, int max_distance,
                                      size_t max_results) {
  SSS_CHECK(max_distance >= 0);
  thread_local EditDistanceWorkspace ws;
  std::vector<RankedMatch> out;
  for (uint32_t id = 0; id < dataset.size(); ++id) {
    if (!LengthFilterPasses(text.size(), dataset.Length(id), max_distance)) {
      continue;
    }
    // BoundedMyers/banded both return the exact distance when ≤ k.
    const int d = max_distance <= 3
                      ? BoundedEditDistance(text, dataset.View(id),
                                            max_distance, &ws)
                      : BoundedMyers(text, dataset.View(id), max_distance,
                                     &ws);
    if (d <= max_distance) {
      out.push_back(RankedMatch{id, d});
    }
  }
  std::sort(out.begin(), out.end());
  if (max_results > 0 && out.size() > max_results) {
    out.resize(max_results);
  }
  return out;
}

std::vector<RankedMatch> NearestNeighbors(const CompressedTrieSearcher& index,
                                          const Dataset& dataset,
                                          std::string_view text, size_t n,
                                          int max_radius) {
  SSS_CHECK(max_radius >= 0);
  std::vector<RankedMatch> out;
  if (n == 0 || dataset.empty()) return out;

  thread_local EditDistanceWorkspace ws;
  // Iterative deepening: radii 0, 1, 2, 4, 8, ... Each round is a full
  // thresholded search; once it returns ≥ n matches (or the radius cap is
  // hit), exact distances rank them. Doubling keeps the total work within a
  // constant factor of the final round.
  int radius = 0;
  for (;;) {
    const MatchList ids =
        index.Search(Query{std::string(text), radius});
    if (ids.size() >= n || radius >= max_radius) {
      out.reserve(ids.size());
      for (uint32_t id : ids) {
        const int d = BoundedMyers(text, dataset.View(id), radius, &ws);
        SSS_DCHECK(d <= radius);
        out.push_back(RankedMatch{id, d});
      }
      std::sort(out.begin(), out.end());
      if (out.size() > n) out.resize(n);
      return out;
    }
    radius = radius == 0 ? 1 : std::min(max_radius, radius * 2);
  }
}

}  // namespace sss
