#include "parallel/thread_pool.h"

#include <atomic>

#include "parallel/partitioner.h"
#include "util/failpoint.h"

namespace sss {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultThreadCount();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    SSS_FAILPOINT("thread_pool:task");
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

size_t ThreadPool::CancelPending() {
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped = tasks_.size();
    while (!tasks_.empty()) tasks_.pop();
    in_flight_ -= dropped;
    if (in_flight_ == 0) all_done_.notify_all();
  }
  return dropped;
}

void ThreadPool::StaticParallelFor(size_t n,
                                   const std::function<void(size_t)>& fn,
                                   const SearchContext* stop) {
  const std::vector<Range> ranges = PartitionEvenly(n, num_threads());
  for (const Range& r : ranges) {
    if (r.empty()) continue;
    Submit([&fn, r, stop] {
      for (size_t i = r.begin; i < r.end; ++i) {
        if (stop != nullptr && stop->StopRequested()) return;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::DynamicParallelFor(size_t n,
                                    const std::function<void(size_t)>& fn,
                                    size_t chunk, const SearchContext* stop,
                                    PoolRunStats* run_stats) {
  if (chunk == 0) chunk = 1;
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  // One claim counter per worker; only worker w touches slot w, so the
  // vector needs no synchronization beyond the pool's own barrier.
  auto claims = std::make_shared<std::vector<uint64_t>>(num_threads(), 0);
  for (size_t w = 0; w < num_threads(); ++w) {
    Submit([cursor, claims, w, n, chunk, &fn, stop] {
      for (;;) {
        if (stop != nullptr && stop->StopRequested()) return;
        const size_t begin = cursor->fetch_add(chunk);
        if (begin >= n) return;
        ++(*claims)[w];
        const size_t end = begin + chunk < n ? begin + chunk : n;
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
  if (run_stats != nullptr) {
    uint64_t total = 0;
    for (uint64_t c : *claims) total += c;
    // A worker's fair share under static partitioning; anything beyond it
    // was dynamically taken over from slower workers.
    const uint64_t fair =
        num_threads() == 0 ? total : (total + num_threads() - 1) / num_threads();
    uint64_t stolen = 0;
    for (uint64_t c : *claims) {
      if (c > fair) stolen += c - fair;
    }
    run_stats->chunks_executed = total;
    run_stats->chunks_stolen = stolen;
  }
}

}  // namespace sss
