#include "core/filters.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace sss {
namespace {

using sss::testing::RandomDataset;
using sss::testing::RandomString;
using sss::testing::ReferenceEditDistance;

TEST(LengthFilterTest, PassesIffWithinDelta) {
  EXPECT_TRUE(LengthFilterPasses(5, 5, 0));
  EXPECT_TRUE(LengthFilterPasses(5, 7, 2));
  EXPECT_TRUE(LengthFilterPasses(7, 5, 2));
  EXPECT_FALSE(LengthFilterPasses(5, 8, 2));
  EXPECT_FALSE(LengthFilterPasses(8, 5, 2));
  EXPECT_TRUE(LengthFilterPasses(0, 0, 0));
  EXPECT_FALSE(LengthFilterPasses(0, 1, 0));
}

TEST(FrequencyVectorFilterTest, ComputeCountsDnaSymbols) {
  Dataset d("dna", AlphabetKind::kDna);
  d.Add("AACGT");
  FrequencyVectorFilter filter(d);
  const FrequencyVector v = filter.Compute("AACGT");
  EXPECT_EQ(v[0], 2);  // A
  EXPECT_EQ(v[1], 1);  // C
  EXPECT_EQ(v[2], 1);  // G
  EXPECT_EQ(v[3], 0);  // N
  EXPECT_EQ(v[4], 1);  // T
  EXPECT_EQ(v[5], 0);  // other
}

TEST(FrequencyVectorFilterTest, ComputeCountsVowelsCaseInsensitive) {
  Dataset d("city", AlphabetKind::kGeneric);
  d.Add("x");
  FrequencyVectorFilter filter(d);
  const FrequencyVector v = filter.Compute("Aachen-Oo");
  EXPECT_EQ(v[0], 2);  // A + a
  EXPECT_EQ(v[1], 1);  // e
  EXPECT_EQ(v[3], 2);  // O + o
  EXPECT_EQ(v[5], 4);  // c, h, n, '-'
}

TEST(FrequencyVectorFilterTest, ExactMatchAlwaysPasses) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Magdeburg");
  FrequencyVectorFilter filter(d);
  EXPECT_TRUE(filter.MayMatch(filter.Compute("Magdeburg"), 0, 0));
}

TEST(FrequencyVectorFilterTest, DistantStringsArePruned) {
  Dataset d("dna", AlphabetKind::kDna);
  d.Add("AAAAAAAAAA");
  FrequencyVectorFilter filter(d);
  // Query all-T: bucket L1 distance is 20, bound = 10 > k for small k.
  EXPECT_FALSE(filter.MayMatch(filter.Compute("TTTTTTTTTT"), 0, 3));
  EXPECT_TRUE(filter.MayMatch(filter.Compute("TTTTTTTTTT"), 0, 10));
}

// Soundness property: the filter never prunes a true match.
class FrequencyFilterSoundnessTest
    : public ::testing::TestWithParam<std::pair<const char*, AlphabetKind>> {
};

TEST_P(FrequencyFilterSoundnessTest, NeverPrunesTrueMatch) {
  const auto [alphabet, kind] = GetParam();
  Xoshiro256 rng(0xF1);
  Dataset d = RandomDataset(&rng, alphabet, 150, 0, 25, kind);
  FrequencyVectorFilter filter(d);
  for (int t = 0; t < 60; ++t) {
    const std::string q = RandomString(&rng, alphabet, 0, 25);
    const FrequencyVector qvec = filter.Compute(q);
    for (int k : {0, 1, 2, 3, 8}) {
      for (size_t id = 0; id < d.size(); ++id) {
        const int dist =
            ReferenceEditDistance(q, d.View(id));
        if (dist <= k) {
          ASSERT_TRUE(filter.MayMatch(qvec, id, k))
              << "pruned true match: q='" << q << "' s='" << d.View(id)
              << "' ed=" << dist << " k=" << k;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Alphabets, FrequencyFilterSoundnessTest,
    ::testing::Values(
        std::make_pair("ACGNT", AlphabetKind::kDna),
        std::make_pair("aeioubcdfg XY", AlphabetKind::kGeneric)),
    [](const auto& info) {
      return info.param.second == AlphabetKind::kDna ? "dna" : "generic";
    });

TEST(FrequencyVectorFilterTest, FilterIsSelectiveOnRandomData) {
  // Not a correctness requirement, but if the filter passes everything it is
  // useless; random DNA at k=1 should be heavily pruned.
  Xoshiro256 rng(0xF2);
  Dataset d = RandomDataset(&rng, "ACGT", 500, 20, 20, AlphabetKind::kDna);
  FrequencyVectorFilter filter(d);
  const std::string q = RandomString(&rng, "ACGT", 20, 20);
  const FrequencyVector qvec = filter.Compute(q);
  size_t passed = 0;
  for (size_t id = 0; id < d.size(); ++id) {
    passed += filter.MayMatch(qvec, id, 1) ? 1 : 0;
  }
  EXPECT_LT(passed, d.size() / 2);
}

TEST(QGramFilterTest, ProfileOfShortStringIsEmpty) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("ab");
  QGramFilter filter(d, 3);
  EXPECT_TRUE(filter.Profile("ab").empty());
  EXPECT_EQ(filter.Profile("abc").size(), 1u);
  EXPECT_EQ(filter.Profile("abcd").size(), 2u);
}

TEST(QGramFilterTest, ShortQueryAlwaysPasses) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("whatever");
  QGramFilter filter(d, 4);
  EXPECT_TRUE(filter.MayMatch(filter.Profile("ab"), 2, 0, 0));
}

TEST(QGramFilterTest, IdenticalStringsPass) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("Magdeburg");
  QGramFilter filter(d, 2);
  EXPECT_TRUE(filter.MayMatch(filter.Profile("Magdeburg"), 9, 0, 0));
}

TEST(QGramFilterTest, DisjointStringsPrunedAtLowK) {
  Dataset d("x", AlphabetKind::kGeneric);
  d.Add("aaaaaaaaaa");
  QGramFilter filter(d, 2);
  EXPECT_FALSE(filter.MayMatch(filter.Profile("bbbbbbbbbb"), 10, 0, 1));
}

class QGramSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(QGramSoundnessTest, NeverPrunesTrueMatch) {
  const int q = GetParam();
  Xoshiro256 rng(0xF3 + q);
  Dataset d = RandomDataset(&rng, "abcdef", 120, 0, 30);
  QGramFilter filter(d, q);
  for (int t = 0; t < 50; ++t) {
    const std::string query = RandomString(&rng, "abcdef", 0, 30);
    const auto profile = filter.Profile(query);
    for (int k : {0, 1, 2, 4}) {
      for (size_t id = 0; id < d.size(); ++id) {
        const int dist = ReferenceEditDistance(query, d.View(id));
        if (dist <= k) {
          ASSERT_TRUE(filter.MayMatch(profile, query.size(), id, k))
              << "pruned true match: q='" << query << "' s='" << d.View(id)
              << "' ed=" << dist << " k=" << k << " qgram=" << q;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GramSizes, QGramSoundnessTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sss
