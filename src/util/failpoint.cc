#include "util/failpoint.h"

#if defined(SSS_FAILPOINTS)

#include <thread>

namespace sss {

FailPoints& FailPoints::Instance() {
  static FailPoints* instance = new FailPoints();  // never destroyed
  return *instance;
}

void FailPoints::Sleep(std::string_view name,
                       std::chrono::milliseconds duration, int times) {
  std::lock_guard<std::mutex> lock(mu_);
  Action& a = actions_[std::string(name)];
  a.sleep = duration;
  a.remaining = times;
}

void FailPoints::Fail(std::string_view name, Status error, int times) {
  std::lock_guard<std::mutex> lock(mu_);
  Action& a = actions_[std::string(name)];
  a.error = std::move(error);
  a.remaining = times;
}

void FailPoints::Callback(std::string_view name, std::function<void()> fn,
                          int times) {
  std::lock_guard<std::mutex> lock(mu_);
  Action& a = actions_[std::string(name)];
  a.callback = std::move(fn);
  a.remaining = times;
}

void FailPoints::Disable(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = actions_.find(name);
  if (it != actions_.end()) actions_.erase(it);
}

void FailPoints::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  actions_.clear();
  hits_.clear();
}

uint64_t FailPoints::HitCount(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = hits_.find(name);
  return it == hits_.end() ? 0 : it->second;
}

void FailPoints::ClearCounts() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_.clear();
}

Status FailPoints::Evaluate(const char* name) {
  // Copy the action out under the lock, then run its effects unlocked so a
  // sleeping failpoint cannot serialize unrelated hooks (or deadlock with a
  // callback that re-enters the registry).
  std::chrono::milliseconds sleep{0};
  std::function<void()> callback;
  Status error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_[name];
    const auto it = actions_.find(std::string_view(name));
    if (it == actions_.end()) return Status::OK();
    Action& a = it->second;
    if (a.remaining == 0) return Status::OK();
    if (a.remaining > 0) --a.remaining;
    sleep = a.sleep;
    callback = a.callback;
    error = a.error;
  }
  if (sleep.count() > 0) std::this_thread::sleep_for(sleep);
  if (callback) callback();
  return error;
}

}  // namespace sss

#endif  // SSS_FAILPOINTS
