#include "util/search_stats.h"

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace sss {

void SearchStats::Add(const SearchStats& other) noexcept {
#define SSS_ADD_STAT(name) name += other.name;
  SSS_FOR_EACH_SEARCH_STAT(SSS_ADD_STAT)
#undef SSS_ADD_STAT
}

void SearchStats::AddKernelDelta(const KernelCounters& after,
                                 const KernelCounters& before) noexcept {
  kernel_banded_calls += after.banded_calls - before.banded_calls;
  kernel_myers_calls += after.myers_calls - before.myers_calls;
  dp_early_aborts += after.early_aborts - before.early_aborts;
}

void SearchStats::AppendJson(std::string* out) const {
  char buf[96];
  out->push_back('{');
  bool first = true;
#define SSS_JSON_STAT(name)                                              \
  {                                                                      \
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64,                 \
                  first ? "" : ",", #name, name);                        \
    out->append(buf);                                                    \
    first = false;                                                       \
  }
  SSS_FOR_EACH_SEARCH_STAT(SSS_JSON_STAT)
#undef SSS_JSON_STAT
  out->push_back('}');
}

std::string SearchStats::ToJson() const {
  std::string out;
  AppendJson(&out);
  return out;
}

std::string SearchStats::ToString() const {
  std::string out;
  char buf[96];
#define SSS_TEXT_STAT(name)                                       \
  {                                                               \
    std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 "\n", #name,    \
                  name);                                          \
    out.append(buf);                                              \
  }
  SSS_FOR_EACH_SEARCH_STAT(SSS_TEXT_STAT)
#undef SSS_TEXT_STAT
  if (!out.empty()) out.pop_back();  // trailing newline
  return out;
}

StatsSink::StatsSink() = default;

size_t StatsSink::ShardIndex() const noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         kShards;
}

void StatsSink::Record(const SearchStats& delta) noexcept {
  Shard& shard = shards_[ShardIndex()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.stats.Add(delta);
}

SearchStats StatsSink::Collected() const {
  SearchStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.Add(shard.stats);
  }
  return total;
}

void StatsSink::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.stats = SearchStats{};
  }
}

}  // namespace sss
