// Minimal command-line flag parsing for the CLI tool and examples:
// "--key value", "--key=value", and boolean "--switch" forms, plus
// positional arguments. No registry, no statics — parse argv into a map and
// query it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace sss {

/// \brief Parsed command line: flags plus positional arguments in order.
class FlagSet {
 public:
  /// \brief Parses argv[1..argc). Fails on a dangling "--key" with
  /// `value_flags` naming keys that require values (others are boolean).
  static Result<FlagSet> Parse(int argc, const char* const* argv);

  /// \brief True iff --name was present (with or without a value).
  bool Has(std::string_view name) const;

  /// \brief String value of --name, or `fallback` when absent.
  std::string GetString(std::string_view name, std::string fallback) const;

  /// \brief Integer value of --name; fails on unparsable values.
  Result<int64_t> GetInt(std::string_view name, int64_t fallback) const;

  /// \brief Double value of --name; fails on unparsable values.
  Result<double> GetDouble(std::string_view name, double fallback) const;

  /// \brief Boolean: present without value, or "true"/"1"/"false"/"0".
  Result<bool> GetBool(std::string_view name, bool fallback) const;

  /// \brief Positional (non-flag) arguments, in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// \brief Flags that were parsed but never queried — for unknown-flag
  /// diagnostics. Call after all Get*/Has calls.
  std::vector<std::string> UnreadFlags() const;

 private:
  struct Value {
    std::string text;
    bool has_text = false;
    mutable bool read = false;
  };
  std::map<std::string, Value, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sss
