// City-name search — the paper's natural-language workload (§5.3–5.5).
//
// Generates a scaled-down version of the competition's geographical-names
// dataset, builds BOTH competitors (optimized sequential scan and
// compressed prefix trie), runs the same typo-style query batch through
// each, and reports wall-clock timings side by side — a miniature of the
// paper's Fig. 6 experiment, runnable in seconds.
//
// Usage: city_search [num_strings] [num_queries]
#include <cstdio>
#include <cstdlib>

#include "core/searcher.h"
#include "gen/city_generator.h"
#include "gen/query_generator.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  const size_t num_strings =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40000;
  const size_t num_queries =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;

  std::printf("generating %zu city names...\n", num_strings);
  sss::gen::CityGeneratorOptions gen_options;
  gen_options.num_strings = num_strings;
  sss::Dataset cities =
      sss::gen::CityNameGenerator(gen_options, /*seed=*/2013).Generate();

  const sss::DatasetStats stats = cities.ComputeStats();
  std::printf(
      "dataset: %zu strings, alphabet %zu symbols, length %zu..%zu "
      "(avg %.1f)\n",
      stats.num_strings, stats.alphabet_size, stats.min_length,
      stats.max_length, stats.avg_length);

  // Typo-style queries with the paper's city thresholds k ∈ {0,1,2,3}.
  sss::gen::QueryGeneratorOptions q_options;
  q_options.num_queries = num_queries;
  q_options.thresholds = {0, 1, 2, 3};
  const sss::QuerySet queries =
      sss::gen::MakeQuerySet(cities, q_options, /*seed=*/42);

  const sss::ExecutionOptions exec{sss::ExecutionStrategy::kFixedPool, 8};
  for (sss::EngineKind kind : {sss::EngineKind::kSequentialScan,
                               sss::EngineKind::kCompressedTrieIndex}) {
    auto searcher = sss::MakeSearcher(kind, cities);
    searcher.status().AbortIfNotOK();

    sss::Stopwatch timer;
    const sss::SearchResults results = (*searcher)->SearchBatch(queries, exec);
    const double seconds = timer.ElapsedSeconds();

    size_t total_matches = 0;
    for (const auto& m : results) total_matches += m.size();
    std::printf("%-24s %8.3f s   (%zu queries, %zu total matches)\n",
                (*searcher)->name().c_str(), seconds, queries.size(),
                total_matches);
  }

  // Show one query's results, human-readably.
  auto searcher = sss::MakeSearcher(sss::EngineKind::kSequentialScan, cities);
  searcher.status().AbortIfNotOK();
  const sss::Query& sample = queries.front();
  const sss::MatchList matches = (*searcher)->Search(sample);
  std::printf("\nsample query \"%s\" (k=%d) -> %zu match(es)\n",
              sample.text.c_str(), sample.max_distance, matches.size());
  for (size_t i = 0; i < matches.size() && i < 10; ++i) {
    const auto v = cities.View(matches[i]);
    std::printf("  %.*s\n", static_cast<int>(v.size()), v.data());
  }
  return 0;
}
