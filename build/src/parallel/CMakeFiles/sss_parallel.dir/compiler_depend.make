# Empty compiler generated dependencies file for sss_parallel.
# This may be replaced when dependencies are built.
